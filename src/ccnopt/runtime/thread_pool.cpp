#include "ccnopt/runtime/thread_pool.hpp"

#include <algorithm>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/obs/registry.hpp"

namespace ccnopt::runtime {

ThreadPool::ThreadPool(std::size_t thread_count) {
  CCNOPT_EXPECTS(thread_count >= 1);
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  CCNOPT_ENSURES(queue_.empty());
  // Workers are joined: the accounting fields are stable without the lock.
  obs::MetricsRegistry& registry = obs::perf();
  registry.incr("runtime.pool.pools");
  registry.incr("runtime.pool.tasks_submitted", tasks_submitted_);
  registry.incr("runtime.pool.tasks_executed", tasks_executed_);
  registry.set_gauge("runtime.pool.last_thread_count",
                     static_cast<double>(workers_.size()));
  registry.set_gauge("runtime.pool.last_max_queue_depth",
                     static_cast<double>(max_queue_depth_));
}

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::uint64_t ThreadPool::tasks_submitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tasks_submitted_;
}

std::uint64_t ThreadPool::tasks_executed() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tasks_executed_;
}

std::size_t ThreadPool::max_queue_depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return max_queue_depth_;
}

std::size_t ThreadPool::default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    CCNOPT_EXPECTS(accepting_);
    queue_.push_back(std::move(job));
    ++tasks_submitted_;
    max_queue_depth_ = std::max(max_queue_depth_, queue_.size());
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return !queue_.empty() || !accepting_; });
      // Shutdown still drains the queue: exit only once it is empty.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++tasks_executed_;
    }
    job();  // packaged_task captures any exception for the future
  }
}

}  // namespace ccnopt::runtime
