#include "ccnopt/runtime/thread_pool.hpp"

#include <algorithm>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::runtime {

ThreadPool::ThreadPool(std::size_t thread_count) {
  CCNOPT_EXPECTS(thread_count >= 1);
  workers_.reserve(thread_count);
  for (std::size_t i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    accepting_ = false;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  CCNOPT_ENSURES(queue_.empty());
}

std::size_t ThreadPool::pending() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::default_thread_count() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    CCNOPT_EXPECTS(accepting_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return !queue_.empty() || !accepting_; });
      // Shutdown still drains the queue: exit only once it is empty.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();  // packaged_task captures any exception for the future
  }
}

}  // namespace ccnopt::runtime
