// Fixed-size worker pool: a mutex+condvar task queue drained by N threads.
// submit() returns a std::future, so results and exceptions propagate to
// the caller; the destructor runs every task already submitted (pending or
// in flight) before joining, so work is never silently dropped.
//
// The pool is an execution resource only — determinism is the job of the
// layers above it (parallel_for writes results by index, SweepRunner /
// ReplicationRunner derive per-task seeds and reduce in index order).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ccnopt::runtime {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers; requires thread_count >= 1.
  explicit ThreadPool(std::size_t thread_count = default_thread_count());

  /// Drains the queue: every submitted task runs to completion, then the
  /// workers are joined. Submitting from another thread while the
  /// destructor runs is a contract violation.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker.
  std::size_t pending() const;

  // Lifetime accounting, maintained under the queue mutex (no extra
  // synchronization cost) and flushed to the obs::perf() registry by the
  // destructor. Task counts depend on chunking (and therefore the thread
  // count), and queue depth on scheduling, so none of this belongs in the
  // deterministic obs::metrics() domain.
  std::uint64_t tasks_submitted() const;
  std::uint64_t tasks_executed() const;
  /// High-water mark of the queue length observed at enqueue time.
  std::size_t max_queue_depth() const;

  /// Enqueues `fn` and returns a future for its result. If `fn` throws,
  /// the exception is captured and rethrown from future::get().
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using Result = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    enqueue([task] { (*task)(); });
    return future;
  }

  /// hardware_concurrency(), or 1 when the runtime cannot report it.
  static std::size_t default_thread_count();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> queue_;
  bool accepting_ = true;  // flips when the destructor begins
  std::uint64_t tasks_submitted_ = 0;
  std::uint64_t tasks_executed_ = 0;
  std::size_t max_queue_depth_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace ccnopt::runtime
