// Point-parallel evaluation of the model's parameter sweeps.
//
// Each grid point is an independent Lemma 2 / Theorem 1 root-finding
// problem, so the grid fans out across the pool; results are written to
// their point's index and reduced in order with the same
// model::reduce_sweep_outcomes the serial sweeps use. The output is
// therefore bit-identical to model::sweep_* regardless of thread count —
// figure and table goldens stay valid.
#pragma once

#include <vector>

#include "ccnopt/model/sensitivity.hpp"
#include "ccnopt/runtime/thread_pool.hpp"

namespace ccnopt::runtime {

class SweepRunner {
 public:
  explicit SweepRunner(ThreadPool& pool) : pool_(pool) {}

  /// Parallel equivalent of model::sweep(base, parameter, values).
  Expected<std::vector<model::SweepPoint>> run(
      const model::SystemParams& base, model::SweepParameter parameter,
      const std::vector<double>& values) const;

 private:
  ThreadPool& pool_;
};

}  // namespace ccnopt::runtime
