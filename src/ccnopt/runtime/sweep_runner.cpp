#include "ccnopt/runtime/sweep_runner.hpp"

#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/span.hpp"
#include "ccnopt/runtime/parallel.hpp"

namespace ccnopt::runtime {

Expected<std::vector<model::SweepPoint>> SweepRunner::run(
    const model::SystemParams& base, model::SweepParameter parameter,
    const std::vector<double>& values) const {
  const obs::ScopedSpan span("sweep.run");
  obs::metrics().incr("model.sweep.runs");
  obs::metrics().incr("model.sweep.points", values.size());
  std::vector<model::SweepPointOutcome> outcomes(values.size());
  // Root-finding cost varies across the grid (e.g. near s = 1), so split
  // into small fixed-size blocks to keep the pool busy. Fixed blocks (not
  // per-worker chunks) make the partitioning identical at every thread
  // count.
  parallel_for_blocked(pool_, values.size(), 8, [&](ChunkRange block) {
    for (std::size_t i = block.begin; i < block.end; ++i) {
      outcomes[i] = model::evaluate_sweep_point(base, parameter, values[i]);
    }
  });
  return model::reduce_sweep_outcomes(outcomes);
}

}  // namespace ccnopt::runtime
