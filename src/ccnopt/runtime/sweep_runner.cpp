#include "ccnopt/runtime/sweep_runner.hpp"

#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/span.hpp"
#include "ccnopt/runtime/parallel.hpp"

namespace ccnopt::runtime {

Expected<std::vector<model::SweepPoint>> SweepRunner::run(
    const model::SystemParams& base, model::SweepParameter parameter,
    const std::vector<double>& values) const {
  const obs::ScopedSpan span("sweep.run");
  obs::metrics().incr("model.sweep.runs");
  obs::metrics().incr("model.sweep.points", values.size());
  std::vector<model::SweepPointOutcome> outcomes(values.size());
  // Root-finding cost varies across the grid (e.g. near s = 1), so chunk
  // finer than one-per-worker to keep the pool busy.
  parallel_for(
      pool_, values.size(),
      [&](std::size_t i) {
        outcomes[i] = model::evaluate_sweep_point(base, parameter, values[i]);
      },
      4 * pool_.thread_count());
  return model::reduce_sweep_outcomes(outcomes);
}

}  // namespace ccnopt::runtime
