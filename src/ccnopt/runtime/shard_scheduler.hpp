// ShardExecutor on top of the worker pool: the bridge that gives one
// Simulation run real threads. Lives in runtime/ because sim/ sits below
// the pool in the dependency order — the sharded engine only sees the
// ShardExecutor interface.
#pragma once

#include <cstddef>
#include <functional>

#include "ccnopt/runtime/thread_pool.hpp"
#include "ccnopt/sim/sharded.hpp"

namespace ccnopt::runtime {

/// Runs shard bodies on a ThreadPool: bodies 0..count-2 are submitted,
/// the last runs inline on the calling thread (with count worker-sized
/// pools the caller would otherwise idle through every region). Each
/// run_shards() call blocks until all bodies finished — future get() is
/// the barrier, so every body's writes happen-before the caller resumes —
/// and rethrows the first body exception after the barrier.
///
/// The scheduler is an execution resource only: the sharded engine's
/// outputs are byte-identical whether regions run here, on a 1-thread
/// pool, or on SerialShardExecutor.
class ShardScheduler final : public sim::ShardExecutor {
 public:
  /// The pool is not owned and must outlive the scheduler. Sharing a pool
  /// between a scheduler and other concurrent submitters is fine; sharing
  /// it between two schedulers running simultaneously deadlock-free too
  /// (the inline shard keeps every caller making progress).
  explicit ShardScheduler(ThreadPool& pool) : pool_(&pool) {}

  void run_shards(std::size_t count,
                  const std::function<void(std::size_t)>& body) override;

 private:
  ThreadPool* pool_;
};

}  // namespace ccnopt::runtime
