#include "ccnopt/runtime/parallel.hpp"

#include <algorithm>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::runtime {

std::vector<ChunkRange> static_chunks(std::size_t count,
                                      std::size_t chunk_count) {
  CCNOPT_EXPECTS(chunk_count >= 1);
  chunk_count = std::min(std::max<std::size_t>(count, 1), chunk_count);
  const std::size_t base = count / chunk_count;
  const std::size_t remainder = count % chunk_count;
  std::vector<ChunkRange> chunks;
  chunks.reserve(chunk_count);
  std::size_t begin = 0;
  for (std::size_t i = 0; i < chunk_count; ++i) {
    const std::size_t size = base + (i < remainder ? 1 : 0);
    chunks.push_back(ChunkRange{begin, begin + size});
    begin += size;
  }
  CCNOPT_ENSURES(begin == count);
  return chunks;
}

std::vector<ChunkRange> fixed_blocks(std::size_t count,
                                     std::size_t block_size) {
  CCNOPT_EXPECTS(block_size >= 1);
  std::vector<ChunkRange> blocks;
  blocks.reserve(count / block_size + 1);
  for (std::size_t begin = 0; begin < count; begin += block_size) {
    blocks.push_back(ChunkRange{begin, std::min(begin + block_size, count)});
  }
  return blocks;
}

}  // namespace ccnopt::runtime
