// Data-parallel loops over a ThreadPool with static chunking.
//
// parallel_for(pool, count, body) splits [0, count) into contiguous chunks
// (one per worker by default), runs them on the pool, and blocks until all
// complete. Exceptions thrown by the body are rethrown in the caller —
// the lowest-chunk-index exception wins, deterministically. Items after a
// throwing item in the same chunk are skipped; other chunks still run.
//
// parallel_map(pool, items, fn) is the ordered variant: results land at
// their item's index, so the output is independent of thread count and
// scheduling.
#pragma once

#include <cstddef>
#include <exception>
#include <future>
#include <type_traits>
#include <vector>

#include "ccnopt/runtime/thread_pool.hpp"

namespace ccnopt::runtime {

/// Half-open index range [begin, end).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Splits [0, count) into at most `chunk_count` contiguous ranges of
/// near-equal size (sizes differ by at most 1, larger chunks first).
/// Returns fewer chunks when count < chunk_count; requires chunk_count >= 1.
std::vector<ChunkRange> static_chunks(std::size_t count,
                                      std::size_t chunk_count);

/// Splits [0, count) into ceil(count / block_size) contiguous ranges of
/// exactly `block_size` items (the last may be short). Unlike
/// static_chunks, block boundaries depend only on block_size — never on
/// the worker count — so work partitioned this way is identical at any
/// thread count (the property the batched request engine's per-block
/// processing relies on). Requires block_size >= 1.
std::vector<ChunkRange> fixed_blocks(std::size_t count,
                                     std::size_t block_size);

/// Runs body(i) for every i in [0, count) across the pool. `chunk_count`
/// of 0 means one chunk per worker thread; pass a multiple of
/// pool.thread_count() for finer-grained load balancing when per-item cost
/// varies. Blocks until every chunk finishes, then rethrows the first (by
/// chunk index) captured exception, if any.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t count, const Body& body,
                  std::size_t chunk_count = 0) {
  if (count == 0) return;
  if (chunk_count == 0) chunk_count = pool.thread_count();
  const std::vector<ChunkRange> chunks = static_chunks(count, chunk_count);
  std::vector<std::future<void>> futures;
  futures.reserve(chunks.size());
  for (const ChunkRange& chunk : chunks) {
    futures.push_back(pool.submit([&body, chunk] {
      for (std::size_t i = chunk.begin; i < chunk.end; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Runs body(block) for every fixed-size block of [0, count) across the
/// pool (block boundaries from fixed_blocks, so they are thread-count
/// invariant). Use instead of parallel_for when the body amortizes
/// per-batch setup — e.g. draining a sampler or flushing metrics once per
/// block — while keeping deterministic partitioning.
template <typename Body>
void parallel_for_blocked(ThreadPool& pool, std::size_t count,
                          std::size_t block_size, const Body& body) {
  if (count == 0) return;
  const std::vector<ChunkRange> blocks = fixed_blocks(count, block_size);
  std::vector<std::future<void>> futures;
  futures.reserve(blocks.size());
  for (const ChunkRange& block : blocks) {
    futures.push_back(pool.submit([&body, block] { body(block); }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

/// Ordered map: result[i] = fn(items[i]). The result type must be
/// default-constructible (slots are preallocated and filled in place).
template <typename T, typename Fn>
auto parallel_map(ThreadPool& pool, const std::vector<T>& items, const Fn& fn,
                  std::size_t chunk_count = 0)
    -> std::vector<std::invoke_result_t<const Fn&, const T&>> {
  using Result = std::invoke_result_t<const Fn&, const T&>;
  std::vector<Result> results(items.size());
  parallel_for(
      pool, items.size(), [&](std::size_t i) { results[i] = fn(items[i]); },
      chunk_count);
  return results;
}

}  // namespace ccnopt::runtime
