#include "ccnopt/runtime/replication_runner.hpp"

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/numerics/stats.hpp"
#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/span.hpp"
#include "ccnopt/runtime/parallel.hpp"

namespace ccnopt::runtime {
namespace {

MetricSummary summarize(const std::vector<sim::SimReport>& reports,
                        double sim::SimReport::* metric) {
  numerics::RunningStats stats;
  for (const sim::SimReport& report : reports) stats.add(report.*metric);
  MetricSummary summary;
  summary.mean = stats.mean();
  if (stats.count() >= 2) {
    summary.stddev = stats.stddev();
    summary.ci95_half_width = stats.mean_ci_half_width();
  }
  return summary;
}

}  // namespace

ReplicationSummary ReplicationRunner::run(const topology::Graph& graph,
                                          const sim::SimConfig& base,
                                          std::size_t replications) const {
  CCNOPT_EXPECTS(replications >= 1);
  const obs::ScopedSpan span("replication.run");
  obs::metrics().incr("sim.replication_batches");
  ReplicationSummary summary;
  summary.master_seed = base.seed;
  summary.reports.resize(replications);
  std::vector<obs::TraceBuffer> trace_slots(replications);
  std::vector<obs::Timeline> timeline_slots(replications);
  std::vector<obs::TopoRecorder> topo_slots(replications);
  parallel_for(pool_, replications, [&](std::size_t i) {
    const obs::ScopedSpan sim_span("replication.sim");
    sim::SimConfig config = base;
    config.seed = derive_seed(base.seed, i);
    config.network.seed = derive_seed(config.seed, 1);
    sim::Simulation simulation(graph, config);
    summary.reports[i] = simulation.run();
    if (base.trace_sample_k > 0) trace_slots[i] = simulation.traces();
    if (base.timeline_epoch > 0) timeline_slots[i] = simulation.timeline();
    if (base.record_topo) topo_slots[i] = simulation.topo();
  });
  // Concatenate in replication order so the merged buffers are independent
  // of worker scheduling.
  for (std::size_t i = 0; i < replications; ++i) {
    for (obs::TraceEvent event : trace_slots[i]) {
      event.replication = static_cast<std::uint32_t>(i);
      summary.traces.push_back(event);
    }
  }
  if (base.timeline_epoch > 0) {
    summary.timeline =
        obs::Timeline(base.timeline_epoch, sim::timeline_columns());
    for (std::size_t i = 0; i < replications; ++i) {
      summary.timeline.append(timeline_slots[i],
                              static_cast<std::uint32_t>(i));
    }
  }
  if (base.record_topo) {
    for (std::size_t i = 0; i < replications; ++i) {
      summary.topo.merge(topo_slots[i]);
    }
  }
  summary.mean_latency_ms =
      summarize(summary.reports, &sim::SimReport::mean_latency_ms);
  summary.origin_load = summarize(summary.reports, &sim::SimReport::origin_load);
  summary.local_fraction =
      summarize(summary.reports, &sim::SimReport::local_fraction);
  summary.mean_hops = summarize(summary.reports, &sim::SimReport::mean_hops);
  return summary;
}

}  // namespace ccnopt::runtime
