#include "ccnopt/runtime/shard_scheduler.hpp"

#include <future>
#include <vector>

namespace ccnopt::runtime {

void ShardScheduler::run_shards(std::size_t count,
                                const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(count - 1);
  for (std::size_t shard = 0; shard + 1 < count; ++shard) {
    futures.push_back(pool_->submit([&body, shard] { body(shard); }));
  }
  // Even a throwing inline body must not leave the barrier: the submitted
  // bodies capture `body` by reference and may still be running.
  std::exception_ptr error;
  try {
    body(count - 1);
  } catch (...) {
    error = std::current_exception();
  }
  for (std::future<void>& future : futures) future.wait();
  if (error) std::rethrow_exception(error);
  for (std::future<void>& future : futures) future.get();
}

}  // namespace ccnopt::runtime
