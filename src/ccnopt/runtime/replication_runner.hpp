// Monte-Carlo replication of the discrete-event simulator.
//
// Fans out N independent sim::Simulation runs across the pool. Replication
// i runs with seed derive_seed(master, i) (its network RNG gets the next
// sub-stream of that seed), so the set of runs is fixed by the master seed
// alone: results are bit-identical regardless of thread count. Reports are
// kept in replication order and aggregated into mean / stddev / 95%-CI
// summaries per metric.
#pragma once

#include <cstddef>
#include <vector>

#include "ccnopt/obs/trace.hpp"
#include "ccnopt/runtime/thread_pool.hpp"
#include "ccnopt/sim/simulation.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::runtime {

/// Normal-approximation summary of one metric across replications
/// (half-width z * sd / sqrt(n), z = 1.96; 0 when n < 2).
struct MetricSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double ci95_half_width = 0.0;
};

struct ReplicationSummary {
  std::uint64_t master_seed = 0;
  std::vector<sim::SimReport> reports;  // one per replication, in order
  /// Sampled request traces concatenated in replication order, with each
  /// event's `replication` field set to its replication index. Empty unless
  /// base.trace_sample_k > 0. Replication order (not completion order), so
  /// the buffer is bit-identical regardless of thread count.
  obs::TraceBuffer traces;
  /// Per-epoch timelines merged in replication order, with each epoch's
  /// `replication` field set to its replication index. Disabled/empty
  /// unless base.timeline_epoch > 0; bit-identical regardless of thread
  /// count for the same reason as `traces`.
  obs::Timeline timeline;
  /// Per-router/per-link flight recorders summed entity-by-entity in
  /// replication index order (replications() tracks how many merged).
  /// Disabled/empty unless base.record_topo; every counter is an integer
  /// sum and the one double accumulates in that fixed order, so the merged
  /// recorder is bit-identical regardless of thread count.
  obs::TopoRecorder topo;
  MetricSummary mean_latency_ms;
  MetricSummary origin_load;
  MetricSummary local_fraction;
  MetricSummary mean_hops;

  std::size_t replications() const { return reports.size(); }
};

class ReplicationRunner {
 public:
  explicit ReplicationRunner(ThreadPool& pool) : pool_(pool) {}

  /// Runs `replications` independent simulations of `base` on `graph`
  /// (base.seed is the master seed). Requires replications >= 1.
  ReplicationSummary run(const topology::Graph& graph,
                         const sim::SimConfig& base,
                         std::size_t replications) const;

 private:
  ThreadPool& pool_;
};

}  // namespace ccnopt::runtime
