// Zipf exponent estimation from observed requests.
//
// The optimizer needs s; a deployed coordinator only sees request streams.
// Two estimators:
//   * fit_zipf_loglog — least-squares slope of log(frequency) vs log(rank)
//     over the observed head; simple, biased by the noisy tail, standard in
//     measurement papers (e.g. the paper's [17]).
//   * fit_zipf_mle — maximum likelihood: solves
//       d/ds log L = -sum(log r_i)/n - d/ds log H_{N,s} = 0
//     by Newton on the exact harmonic sums; consistent and much tighter.
// Both operate on a rank-frequency histogram (counts indexed by true rank)
// or on raw samples. The adaptive controller (model/adaptive.hpp) feeds
// these from its per-epoch observations.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ccnopt/common/error.hpp"

namespace ccnopt::popularity {

struct ZipfFit {
  double s = 0.0;         ///< estimated exponent
  double r_squared = 1.0; ///< goodness of the log-log fit (1.0 for MLE)
  std::uint64_t samples = 0;
};

/// Builds a frequency histogram from raw rank samples (1-based ranks);
/// index i holds the count of rank i+1. `catalog_size` bounds the ranks.
std::vector<std::uint64_t> rank_histogram(std::span<const std::uint64_t> ranks,
                                          std::uint64_t catalog_size);

/// Log-log least squares over the ranks with non-zero counts, optionally
/// truncated to the `head_ranks` most popular ranks (0 = use all). Requires
/// at least 3 distinct observed ranks.
Expected<ZipfFit> fit_zipf_loglog(std::span<const std::uint64_t> histogram,
                                  std::uint64_t head_ranks = 0);

/// Maximum-likelihood fit over catalog 1..histogram.size(): Newton on the
/// score function, bracketed in s in [0.05, 3]. Requires a non-empty
/// histogram with at least one count and at least two distinct ranks.
Expected<ZipfFit> fit_zipf_mle(std::span<const std::uint64_t> histogram);

}  // namespace ccnopt::popularity
