#include "ccnopt/popularity/zipf.hpp"

#include <algorithm>
#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::popularity {

ZipfDistribution::ZipfDistribution(std::uint64_t catalog_size,
                                   double exponent)
    : n_(catalog_size),
      s_(exponent),
      table_(std::make_shared<numerics::HarmonicTable>(catalog_size,
                                                       exponent)) {
  CCNOPT_EXPECTS(catalog_size >= 1);
  CCNOPT_EXPECTS(exponent > 0.0);
}

double ZipfDistribution::pmf(std::uint64_t rank) const {
  CCNOPT_EXPECTS(rank >= 1 && rank <= n_);
  return std::pow(static_cast<double>(rank), -s_) / normalizer();
}

double ZipfDistribution::cdf(std::uint64_t rank) const {
  if (rank == 0) return 0.0;
  rank = std::min(rank, n_);
  return table_->at(rank) / normalizer();
}

std::uint64_t ZipfDistribution::inverse_cdf(double u) const {
  CCNOPT_EXPECTS(u >= 0.0 && u <= 1.0);
  return table_->lower_bound(u * normalizer());
}

ContinuousZipf::ContinuousZipf(double catalog_size, double exponent)
    : n_(catalog_size), s_(exponent) {
  CCNOPT_EXPECTS(catalog_size > 1.0);
  CCNOPT_EXPECTS(exponent > 0.0);
  CCNOPT_EXPECTS(std::abs(exponent - 1.0) > 1e-9);
  denom_ = std::pow(n_, 1.0 - s_) - 1.0;
}

double ContinuousZipf::cdf(double x) const {
  if (x <= 1.0) return 0.0;
  if (x >= n_) return 1.0;
  return (std::pow(x, 1.0 - s_) - 1.0) / denom_;
}

double ContinuousZipf::density(double x) const {
  if (x < 1.0 || x > n_) return 0.0;
  return (1.0 - s_) / denom_ * std::pow(x, -s_);
}

double ContinuousZipf::inverse_cdf(double p) const {
  CCNOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  return std::pow(p * denom_ + 1.0, 1.0 / (1.0 - s_));
}

double continuous_approximation_error(const ZipfDistribution& exact,
                                      int probe_points) {
  CCNOPT_EXPECTS(probe_points >= 2);
  const double n = static_cast<double>(exact.catalog_size());
  const ContinuousZipf approx(n, exact.exponent());
  double worst = 0.0;
  const double log_n = std::log(n);
  for (int i = 0; i < probe_points; ++i) {
    const double t = static_cast<double>(i) / (probe_points - 1);
    const auto rank = static_cast<std::uint64_t>(
        std::clamp(std::exp(t * log_n), 1.0, n));
    worst = std::max(worst, std::abs(exact.cdf(rank) -
                                     approx.cdf(static_cast<double>(rank))));
  }
  return worst;
}

}  // namespace ccnopt::popularity
