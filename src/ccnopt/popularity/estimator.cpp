#include "ccnopt/popularity/estimator.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/numerics/harmonic.hpp"
#include "ccnopt/numerics/roots.hpp"
#include "ccnopt/numerics/stats.hpp"

namespace ccnopt::popularity {

std::vector<std::uint64_t> rank_histogram(std::span<const std::uint64_t> ranks,
                                          std::uint64_t catalog_size) {
  CCNOPT_EXPECTS(catalog_size >= 1);
  std::vector<std::uint64_t> histogram(catalog_size, 0);
  for (const std::uint64_t rank : ranks) {
    CCNOPT_EXPECTS(rank >= 1 && rank <= catalog_size);
    ++histogram[rank - 1];
  }
  return histogram;
}

Expected<ZipfFit> fit_zipf_loglog(std::span<const std::uint64_t> histogram,
                                  std::uint64_t head_ranks) {
  std::vector<double> log_rank;
  std::vector<double> log_freq;
  std::uint64_t samples = 0;
  const std::uint64_t limit =
      head_ranks == 0 ? histogram.size()
                      : std::min<std::uint64_t>(head_ranks, histogram.size());
  for (std::uint64_t i = 0; i < limit; ++i) {
    samples += histogram[i];
    if (histogram[i] == 0) continue;
    log_rank.push_back(std::log(static_cast<double>(i + 1)));
    log_freq.push_back(std::log(static_cast<double>(histogram[i])));
  }
  if (log_rank.size() < 3) {
    return Status(ErrorCode::kFailedPrecondition,
                  "fit_zipf_loglog: need at least 3 distinct observed ranks");
  }
  const numerics::LinearFit fit = numerics::linear_fit(log_rank, log_freq);
  ZipfFit result;
  result.s = -fit.slope;
  result.r_squared = fit.r_squared;
  result.samples = samples;
  return result;
}

Expected<ZipfFit> fit_zipf_mle(std::span<const std::uint64_t> histogram) {
  const std::uint64_t catalog = histogram.size();
  if (catalog < 2) {
    return Status(ErrorCode::kInvalidArgument,
                  "fit_zipf_mle: catalog must have at least 2 ranks");
  }
  std::uint64_t samples = 0;
  double sum_log_rank = 0.0;
  std::uint64_t distinct = 0;
  for (std::uint64_t i = 0; i < catalog; ++i) {
    if (histogram[i] == 0) continue;
    ++distinct;
    samples += histogram[i];
    sum_log_rank += static_cast<double>(histogram[i]) *
                    std::log(static_cast<double>(i + 1));
  }
  if (samples == 0 || distinct < 2) {
    return Status(ErrorCode::kFailedPrecondition,
                  "fit_zipf_mle: need samples on at least 2 distinct ranks");
  }
  const double mean_log_rank = sum_log_rank / static_cast<double>(samples);

  // Score: g(s) = T1(s)/T0(s) - mean_log_rank, where
  //   T0 = H_{N,s} = sum_j j^{-s},  T1 = L_{N,s} = sum_j j^{-s} log j
  // (T1/T0 is the model's expected log-rank; MLE matches it to the data).
  // Both sums route through the numerics split: exact below the threshold
  // (bit-identical to the old inline loop, smallest-terms-first), O(1)
  // Euler-Maclaurin above it — so each Brent iteration costs O(1) at
  // web-scale catalogs instead of O(catalog).
  // g is continuous and decreasing in s; bracket and solve with Brent.
  auto expected_log_rank = [catalog](double s) {
    const double t0 = numerics::harmonic(catalog, s);
    const double t1 = numerics::harmonic_log(catalog, s);
    return t1 / t0;
  };
  const auto g = [&](double s) {
    return expected_log_rank(s) - mean_log_rank;
  };

  constexpr double kLo = 0.05;
  constexpr double kHi = 3.0;
  // Clamp to the bracket if the data sit outside the searchable range
  // (e.g. a nearly-uniform or single-spike histogram).
  if (g(kLo) <= 0.0) return ZipfFit{kLo, 1.0, samples};
  if (g(kHi) >= 0.0) return ZipfFit{kHi, 1.0, samples};
  const auto root =
      numerics::brent(g, kLo, kHi, numerics::RootOptions{1e-10, 0.0, 200});
  if (!root) return root.status();
  return ZipfFit{root->root, 1.0, samples};
}

}  // namespace ccnopt::popularity
