// Zipf-Mandelbrot popularity: f(i) ~ (i + q)^{-s}. The plateau parameter
// q >= 0 flattens the head — measured web/video popularity (the paper's
// refs [17]-[19]) is often Zipf-Mandelbrot rather than pure Zipf (q = 0).
// Paired with the generalized model (model/general.hpp) this tests how
// robust the paper's conclusions are to the popularity law's head shape.
#pragma once

#include <cstdint>
#include <vector>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::popularity {

/// Exact discrete Zipf-Mandelbrot over ranks 1..N.
class ZipfMandelbrot {
 public:
  /// Requires N >= 1, s > 0, q >= 0. q = 0 recovers ZipfDistribution.
  ZipfMandelbrot(std::uint64_t catalog_size, double exponent, double plateau);

  std::uint64_t catalog_size() const { return prefix_.size() - 1; }
  double exponent() const { return s_; }
  double plateau() const { return q_; }

  /// P(rank = i); requires 1 <= i <= N.
  double pmf(std::uint64_t rank) const;
  /// P(rank <= k); clamps beyond N.
  double cdf(std::uint64_t rank) const;
  /// Unnormalized weights (i + q)^{-s} for AliasSampler.
  std::vector<double> weights() const;

 private:
  double s_;
  double q_;
  std::vector<double> prefix_;  // prefix_[k] = sum_{j<=k} (j+q)^{-s}
};

/// Continuous approximation (the Eq. 6 analogue):
/// F(x) = ((x+q)^{1-s} - (1+q)^{1-s}) / ((N+q)^{1-s} - (1+q)^{1-s}).
class ContinuousZipfMandelbrot {
 public:
  /// Requires N > 1, s > 0, s != 1, q >= 0.
  ContinuousZipfMandelbrot(double catalog_size, double exponent,
                           double plateau);

  double catalog_size() const { return n_; }
  double exponent() const { return s_; }
  double plateau() const { return q_; }

  /// Clamped to [0, 1]; F(x <= 1) = 0.
  double cdf(double x) const;
  /// x with F(x) = p, p in [0, 1].
  double inverse_cdf(double p) const;

 private:
  double n_;
  double s_;
  double q_;
  double head_;   // (1+q)^{1-s}
  double denom_;  // (N+q)^{1-s} - (1+q)^{1-s}
};

}  // namespace ccnopt::popularity
