#include "ccnopt/popularity/sampler.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::popularity {
namespace {

/// log1p(x)/x, continuous at 0 (-> 1). Keeps h_integral_inverse accurate
/// for tiny arguments (s near 1, huge N).
double helper1(double x) {
  return std::abs(x) > 1e-8 ? std::log1p(x) / x : 1.0 - x * (0.5 - x / 3.0);
}

/// expm1(x)/x, continuous at 0 (-> 1). Same role for h_integral.
double helper2(double x) {
  return std::abs(x) > 1e-8 ? std::expm1(x) / x : 1.0 + x * (0.5 + x / 6.0);
}

}  // namespace

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  build(weights);
}

AliasSampler::AliasSampler(const ZipfDistribution& zipf) {
  // Zipf weight i^-s computed as exp(-s * log i): one transcendental per
  // rank instead of pow()'s two, into a buffer reused across rebuilds on
  // the same thread (per-epoch workloads reconstruct samplers often).
  thread_local std::vector<double> weights;
  weights.resize(zipf.catalog_size());
  const double s = zipf.exponent();
  weights[0] = 1.0;  // exp(-s * log 1)
  for (std::uint64_t i = 1; i < weights.size(); ++i) {
    weights[i] = std::exp(-s * std::log(static_cast<double>(i + 1)));
  }
  build(weights);
}

void AliasSampler::build(const std::vector<double>& weights) {
  CCNOPT_EXPECTS(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CCNOPT_EXPECTS(w >= 0.0);
    total += w;
  }
  CCNOPT_EXPECTS(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Scaled probabilities: mean 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically 1.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::uint64_t AliasSampler::sample(Rng& rng) {
  const std::uint64_t bucket = rng.uniform_int(0, prob_.size() - 1);
  const bool accept = rng.uniform() < prob_[bucket];
  const std::uint64_t index = accept ? bucket : alias_[bucket];
  return index + 1;  // ranks are 1-based
}

void AliasSampler::sample_block(Rng& rng, std::uint64_t* out,
                                std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) out[i] = AliasSampler::sample(rng);
}

ZipfRejectionSampler::ZipfRejectionSampler(std::uint64_t catalog_size,
                                           double exponent)
    : n_(catalog_size), s_(exponent) {
  CCNOPT_EXPECTS(catalog_size >= 1);
  CCNOPT_EXPECTS(exponent > 0.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n_) + 0.5);
  // Every k with k - x <= threshold accepts without evaluating the exact
  // acceptance bound; tuned so the shortcut is taken for the popular head
  // ranks (where most draws land).
  rejection_threshold_ =
      2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfRejectionSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - s_) * log_x) * log_x;
}

double ZipfRejectionSampler::h(double x) const {
  return std::exp(-s_ * std::log(x));
}

double ZipfRejectionSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - s_);
  // Numerical round-off can push t below the domain edge -1 (which maps to
  // the hat's pole); clamp as the original algorithm does.
  if (t < -1.0) t = -1.0;
  return std::exp(helper1(t) * x);
}

std::uint64_t ZipfRejectionSampler::sample(Rng& rng) {
  // Hörmann–Derflinger rejection-inversion: invert the hat primitive at a
  // uniform height between H(N + 0.5) and H(1.5) - 1, round to the nearest
  // rank, and accept when the uniform falls under the pmf's share of the
  // hat. Expected iterations are < 2 uniformly in N and s.
  for (;;) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) {
      k = 1.0;
    } else if (k > static_cast<double>(n_)) {
      k = static_cast<double>(n_);
    }
    if (k - x <= rejection_threshold_ ||
        u >= h_integral(k + 0.5) - h(k)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

void ZipfRejectionSampler::sample_block(Rng& rng, std::uint64_t* out,
                                        std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = ZipfRejectionSampler::sample(rng);
  }
}

const char* to_string(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kAuto:
      return "auto";
    case SamplerKind::kAlias:
      return "alias";
    case SamplerKind::kRejectionInversion:
      return "rejection_inversion";
  }
  return "unknown";
}

std::unique_ptr<RankSampler> make_zipf_sampler(std::uint64_t catalog_size,
                                               double exponent,
                                               SamplerKind kind) {
  CCNOPT_EXPECTS(catalog_size >= 1);
  const bool reject =
      kind == SamplerKind::kRejectionInversion ||
      (kind == SamplerKind::kAuto && catalog_size >= kRejectionAutoThreshold);
  if (reject) {
    return std::make_unique<ZipfRejectionSampler>(catalog_size, exponent);
  }
  return std::make_unique<AliasSampler>(
      ZipfDistribution(catalog_size, exponent));
}

}  // namespace ccnopt::popularity
