#include "ccnopt/popularity/sampler.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::popularity {

AliasSampler::AliasSampler(const std::vector<double>& weights) {
  build(weights);
}

AliasSampler::AliasSampler(const ZipfDistribution& zipf) {
  // Zipf weight i^-s computed as exp(-s * log i): one transcendental per
  // rank instead of pow()'s two, into a buffer reused across rebuilds on
  // the same thread (per-epoch workloads reconstruct samplers often).
  thread_local std::vector<double> weights;
  weights.resize(zipf.catalog_size());
  const double s = zipf.exponent();
  weights[0] = 1.0;  // exp(-s * log 1)
  for (std::uint64_t i = 1; i < weights.size(); ++i) {
    weights[i] = std::exp(-s * std::log(static_cast<double>(i + 1)));
  }
  build(weights);
}

void AliasSampler::build(const std::vector<double>& weights) {
  CCNOPT_EXPECTS(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CCNOPT_EXPECTS(w >= 0.0);
    total += w;
  }
  CCNOPT_EXPECTS(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  // Scaled probabilities: mean 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are numerically 1.
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;
}

std::uint64_t AliasSampler::sample(Rng& rng) {
  const std::uint64_t bucket = rng.uniform_int(0, prob_.size() - 1);
  const bool accept = rng.uniform() < prob_[bucket];
  const std::uint64_t index = accept ? bucket : alias_[bucket];
  return index + 1;  // ranks are 1-based
}

}  // namespace ccnopt::popularity
