// Random rank samplers for Zipf workloads (the simulator's Independent
// Reference Model request stream).
//
// Two implementations with different trade-offs:
//   * AliasSampler — Walker/Vose alias method: O(N) build, O(1) draw.
//     The default for simulator catalogs.
//   * InverseCdfSampler — binary search over the harmonic prefix table:
//     zero extra memory beyond the distribution, O(log N) draw.
#pragma once

#include <cstdint>
#include <vector>

#include "ccnopt/common/random.hpp"
#include "ccnopt/popularity/zipf.hpp"

namespace ccnopt::popularity {

/// Uniform-over-categories sampler interface: draws ranks in 1..N.
class RankSampler {
 public:
  virtual ~RankSampler() = default;
  virtual std::uint64_t sample(Rng& rng) = 0;
  virtual std::uint64_t catalog_size() const = 0;
};

/// Walker/Vose alias method over an explicit probability vector.
class AliasSampler final : public RankSampler {
 public:
  /// Marks the O(1)-per-draw guarantee; workloads on the simulator hot
  /// path static_assert on this so a sampler swap to an O(log N) draw
  /// cannot land silently.
  static constexpr bool kConstantTimeSample = true;

  /// Builds from any discrete distribution over ranks 1..N given as
  /// (unnormalized) weights; requires non-empty weights, all >= 0, sum > 0.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Convenience: builds the weight vector from a ZipfDistribution.
  explicit AliasSampler(const ZipfDistribution& zipf);

  std::uint64_t sample(Rng& rng) override;
  std::uint64_t catalog_size() const override { return prob_.size(); }

 private:
  void build(const std::vector<double>& weights);

  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // fallback bucket
};

/// Inverse-CDF sampler backed by the distribution's harmonic table.
class InverseCdfSampler final : public RankSampler {
 public:
  explicit InverseCdfSampler(ZipfDistribution zipf) : zipf_(std::move(zipf)) {}

  std::uint64_t sample(Rng& rng) override {
    return zipf_.inverse_cdf(rng.uniform());
  }
  std::uint64_t catalog_size() const override { return zipf_.catalog_size(); }

 private:
  ZipfDistribution zipf_;
};

}  // namespace ccnopt::popularity
