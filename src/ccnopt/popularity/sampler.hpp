// Random rank samplers for Zipf workloads (the simulator's Independent
// Reference Model request stream).
//
// Three implementations with different trade-offs:
//   * AliasSampler — Walker/Vose alias method: O(N) build, O(N) memory,
//     O(1) draw. The default for catalogs that fit comfortably in memory.
//   * ZipfRejectionSampler — Hörmann–Derflinger rejection-inversion:
//     O(1) build, O(1) memory, O(1) expected draw. The only viable option
//     for web-scale catalogs (N >= 10^6), where alias tables cost hundreds
//     of megabytes per exponent.
//   * InverseCdfSampler — binary search over the harmonic prefix table:
//     zero extra memory beyond the distribution, O(log N) draw.
//
// make_zipf_sampler() picks between the first two: alias for small
// catalogs (it is slightly cheaper per draw), rejection-inversion once the
// catalog crosses kRejectionAutoThreshold.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccnopt/common/random.hpp"
#include "ccnopt/popularity/zipf.hpp"

namespace ccnopt::popularity {

/// Uniform-over-categories sampler interface: draws ranks in 1..N.
class RankSampler {
 public:
  virtual ~RankSampler() = default;
  virtual std::uint64_t sample(Rng& rng) = 0;
  virtual std::uint64_t catalog_size() const = 0;

  /// Draws `count` ranks into `out`, consuming `rng` exactly as `count`
  /// successive sample() calls would — the block is a pure amortization of
  /// the per-draw virtual dispatch, never a different stream. Hot-path
  /// samplers override this with a tight devirtualized loop.
  virtual void sample_block(Rng& rng, std::uint64_t* out, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) out[i] = sample(rng);
  }
};

/// Walker/Vose alias method over an explicit probability vector.
class AliasSampler final : public RankSampler {
 public:
  /// Marks the O(1)-per-draw guarantee; workloads on the simulator hot
  /// path static_assert on this so a sampler swap to an O(log N) draw
  /// cannot land silently.
  static constexpr bool kConstantTimeSample = true;

  /// Builds from any discrete distribution over ranks 1..N given as
  /// (unnormalized) weights; requires non-empty weights, all >= 0, sum > 0.
  explicit AliasSampler(const std::vector<double>& weights);

  /// Convenience: builds the weight vector from a ZipfDistribution.
  explicit AliasSampler(const ZipfDistribution& zipf);

  std::uint64_t sample(Rng& rng) override;
  /// Block draws devirtualized through the final class (the inner sample()
  /// calls inline); same stream as repeated sample().
  void sample_block(Rng& rng, std::uint64_t* out, std::size_t count) override;
  std::uint64_t catalog_size() const override { return prob_.size(); }

 private:
  void build(const std::vector<double>& weights);

  std::vector<double> prob_;        // acceptance probability per bucket
  std::vector<std::uint32_t> alias_;  // fallback bucket
};

/// Inverse-CDF sampler backed by the distribution's harmonic table.
class InverseCdfSampler final : public RankSampler {
 public:
  explicit InverseCdfSampler(ZipfDistribution zipf) : zipf_(std::move(zipf)) {}

  std::uint64_t sample(Rng& rng) override {
    return zipf_.inverse_cdf(rng.uniform());
  }
  std::uint64_t catalog_size() const override { return zipf_.catalog_size(); }

 private:
  ZipfDistribution zipf_;
};

/// Exact Zipf(s, N) sampling by rejection-inversion (Hörmann & Derflinger,
/// "Rejection-inversion to generate variates from monotone discrete
/// distributions", ACM TOMACS 1996). The hat function t^{-s} is inverted in
/// closed form, so one draw costs a couple of transcendentals and accepts
/// with probability bounded away from zero uniformly in N and s — no table,
/// no normalizer, no O(N) anything. The drawn ranks follow the same exact
/// pmf i^{-s}/H_{N,s} as AliasSampler (only the random-stream consumption
/// differs, so the two are distribution- but not stream-equivalent).
class ZipfRejectionSampler final : public RankSampler {
 public:
  static constexpr bool kConstantTimeSample = true;

  /// Requires catalog_size >= 1 and exponent > 0 (s = 1 is fine; the
  /// s -> 1 limit is handled via log1p/expm1 forms).
  ZipfRejectionSampler(std::uint64_t catalog_size, double exponent);

  std::uint64_t sample(Rng& rng) override;
  /// Block draws devirtualized through the final class (the inner sample()
  /// calls inline); same stream as repeated sample().
  void sample_block(Rng& rng, std::uint64_t* out, std::size_t count) override;
  std::uint64_t catalog_size() const override { return n_; }
  double exponent() const { return s_; }

 private:
  /// Primitive of the hat h(x) = x^{-s}, shifted so the s -> 1 limit is
  /// smooth: H(x) = (x^{1-s} - 1)/(1 - s), computed as helper2 terms.
  double h_integral(double x) const;
  /// The hat itself, h(x) = x^{-s}.
  double h(double x) const;
  /// Inverse of h_integral.
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_integral_x1_;       // H(1.5) - 1
  double h_integral_n_;        // H(N + 0.5)
  double rejection_threshold_; // shortcut: accept when k - x <= this
};

/// Sampler selection for make_zipf_sampler.
enum class SamplerKind {
  kAuto,                ///< alias below kRejectionAutoThreshold, else rejection
  kAlias,               ///< force the O(N)-memory alias table
  kRejectionInversion,  ///< force the O(1)-memory rejection-inversion sampler
};

const char* to_string(SamplerKind kind);

/// Catalog size at which kAuto switches from the alias table to
/// rejection-inversion: ~2 x 10^6 doubles of table is where build time and
/// memory start to dominate a short simulation.
inline constexpr std::uint64_t kRejectionAutoThreshold = 1ull << 20;

/// Builds an exact Zipf(s, N) rank sampler. kAuto keeps the alias table for
/// small catalogs (byte-compatible with the historical streams) and
/// switches to rejection-inversion at kRejectionAutoThreshold, where the
/// alias build would cost O(N) time and memory.
std::unique_ptr<RankSampler> make_zipf_sampler(
    std::uint64_t catalog_size, double exponent,
    SamplerKind kind = SamplerKind::kAuto);

}  // namespace ccnopt::popularity
