// Zipf content-popularity models.
//
// The paper (Section III-A) models content popularity as Zipf with exponent
// s in (0,1) U (1,2) over a catalog of N contents:
//   f(i; s, N) = i^{-s} / H_{N,s}                      (Eq. 1)
//   F(k; s, N) = H_{k,s} / H_{N,s}
// and, for analysis, the continuous approximation (Eq. 6):
//   F(x; s, N) ~= (x^{1-s} - 1) / (N^{1-s} - 1).
//
// ZipfDistribution is the exact discrete model (ground truth, workload
// generation); ContinuousZipf is the analytical stand-in the optimizer uses.
#pragma once

#include <cstdint>
#include <memory>

#include "ccnopt/numerics/harmonic.hpp"

namespace ccnopt::popularity {

/// Exact discrete Zipf(s, N) over ranks 1..N.
class ZipfDistribution {
 public:
  /// Requires N >= 1 and s > 0. Builds an O(N) harmonic table, so this is
  /// for catalogs that fit in memory (the simulator's regime); the analytic
  /// model uses ContinuousZipf for the paper's N up to 10^12.
  ZipfDistribution(std::uint64_t catalog_size, double exponent);

  std::uint64_t catalog_size() const { return n_; }
  double exponent() const { return s_; }

  /// P(rank = i); requires 1 <= i <= N.
  double pmf(std::uint64_t rank) const;

  /// P(rank <= k) = H_{k,s}/H_{N,s}; ranks above N clamp to 1, rank 0 -> 0.
  double cdf(std::uint64_t rank) const;

  /// Smallest rank r with cdf(r) >= u, for u in [0, 1].
  std::uint64_t inverse_cdf(double u) const;

  /// Normalization constant H_{N,s}.
  double normalizer() const { return table_->at(n_); }

  const numerics::HarmonicTable& table() const { return *table_; }

 private:
  std::uint64_t n_;
  double s_;
  std::shared_ptr<const numerics::HarmonicTable> table_;
};

/// The paper's continuous approximation (Eq. 6), valid for enormous N.
class ContinuousZipf {
 public:
  /// Requires N > 1, s > 0, s != 1 (the paper excludes s = 1; cdf would be
  /// log-form and Eq. 2 degenerates to T = d2 there).
  ContinuousZipf(double catalog_size, double exponent);

  double catalog_size() const { return n_; }
  double exponent() const { return s_; }

  /// F(x) = (x^{1-s} - 1)/(N^{1-s} - 1), clamped to [0, 1]; F(x<=1) = 0.
  double cdf(double x) const;

  /// dF/dx = (1-s)/(N^{1-s}-1) * x^{-s} for x in [1, N].
  double density(double x) const;

  /// x with F(x) = p, p in [0, 1].
  double inverse_cdf(double p) const;

  /// The denominator N^{1-s} - 1 (appears throughout Lemmas 1-2).
  double denominator() const { return denom_; }

 private:
  double n_;
  double s_;
  double denom_;
};

/// Maximum absolute CDF error of the continuous approximation against the
/// exact distribution, scanned over `probe_points` ranks spread
/// logarithmically across 1..N. Test/diagnostic helper for Eq. 6.
double continuous_approximation_error(const ZipfDistribution& exact,
                                      int probe_points = 64);

}  // namespace ccnopt::popularity
