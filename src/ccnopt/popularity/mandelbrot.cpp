#include "ccnopt/popularity/mandelbrot.hpp"

#include <algorithm>
#include <cmath>

namespace ccnopt::popularity {

ZipfMandelbrot::ZipfMandelbrot(std::uint64_t catalog_size, double exponent,
                               double plateau)
    : s_(exponent), q_(plateau) {
  CCNOPT_EXPECTS(catalog_size >= 1);
  CCNOPT_EXPECTS(exponent > 0.0);
  CCNOPT_EXPECTS(plateau >= 0.0);
  prefix_.resize(catalog_size + 1);
  prefix_[0] = 0.0;
  for (std::uint64_t k = 1; k <= catalog_size; ++k) {
    prefix_[k] =
        prefix_[k - 1] + std::pow(static_cast<double>(k) + q_, -s_);
  }
}

double ZipfMandelbrot::pmf(std::uint64_t rank) const {
  CCNOPT_EXPECTS(rank >= 1 && rank <= catalog_size());
  return std::pow(static_cast<double>(rank) + q_, -s_) / prefix_.back();
}

double ZipfMandelbrot::cdf(std::uint64_t rank) const {
  if (rank == 0) return 0.0;
  rank = std::min<std::uint64_t>(rank, catalog_size());
  return prefix_[rank] / prefix_.back();
}

std::vector<double> ZipfMandelbrot::weights() const {
  std::vector<double> out(catalog_size());
  for (std::uint64_t i = 0; i < out.size(); ++i) {
    out[i] = std::pow(static_cast<double>(i + 1) + q_, -s_);
  }
  return out;
}

ContinuousZipfMandelbrot::ContinuousZipfMandelbrot(double catalog_size,
                                                   double exponent,
                                                   double plateau)
    : n_(catalog_size), s_(exponent), q_(plateau) {
  CCNOPT_EXPECTS(catalog_size > 1.0);
  CCNOPT_EXPECTS(exponent > 0.0);
  CCNOPT_EXPECTS(std::abs(exponent - 1.0) > 1e-9);
  CCNOPT_EXPECTS(plateau >= 0.0);
  head_ = std::pow(1.0 + q_, 1.0 - s_);
  denom_ = std::pow(n_ + q_, 1.0 - s_) - head_;
}

double ContinuousZipfMandelbrot::cdf(double x) const {
  if (x <= 1.0) return 0.0;
  if (x >= n_) return 1.0;
  return (std::pow(x + q_, 1.0 - s_) - head_) / denom_;
}

double ContinuousZipfMandelbrot::inverse_cdf(double p) const {
  CCNOPT_EXPECTS(p >= 0.0 && p <= 1.0);
  return std::pow(p * denom_ + head_, 1.0 / (1.0 - s_)) - q_;
}

}  // namespace ccnopt::popularity
