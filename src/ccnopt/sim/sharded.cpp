// The sharded request engine. See sharded.hpp for the exactness argument;
// the pipeline per window of kWindow requests is
//
//   generate  (parallel over shards)  per-router arrival times, extended
//                                     until the window is fully covered
//   select    (sequential, cheap)     per-router cut positions of the
//                                     window's chunk boundaries, by binary
//                                     search on the time value
//   merge     (parallel over chunks)  each chunk k-way-merges its slice of
//                                     the per-router sequences into the
//                                     canonical global order
//   serve     (parallel over shards)  fused content-draw + serve into
//                                     per-shard SoA scratch, traces sampled
//                                     in place
//   record    (parallel over shards)  each shard tallies its own SoA
//                                     results into per-router partial
//                                     accumulators (metrics slots, epoch
//                                     recorder slots, the shard's own topo
//                                     recorder); partials fold in
//                                     router-index order at flush/report
//                                     time, so no global order is needed
//
// Windows truncate at timeline-epoch and warmup boundaries, so the epoch
// recorder's end-of-epoch network snapshots see exactly the sequential
// engine's state, and the phase clock stamps the warmup crossing exactly.
// SimConfig::parallel_record = false runs the identical record bodies in
// shard order on the calling thread — byte-identical by construction —
// which is what bench_throughput_replay times to report record_speedup.
#include "ccnopt/sim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/obs/span.hpp"
#include "ccnopt/obs/trace.hpp"
#include "ccnopt/sim/engine_detail.hpp"

namespace ccnopt::sim {
namespace {

// Requests merged and served per window. Large enough to amortize the
// per-window barriers and keep every worker busy, small enough that the
// per-shard SoA scratch stays cache-resident (~20 bytes per request).
constexpr std::uint64_t kWindow = 32768;

// Compact a router's arrival-time vector once this many consumed entries
// accumulate at its front.
constexpr std::size_t kCompactThreshold = 65536;

// One active router's arrival process: the same seeded clock sub-stream
// the event loop uses, unrolled into an ascending absolute-time vector.
// last_time += exponential() reproduces the loop's `top.time + draw` sums
// bit for bit (both add the draw to the router's previous arrival time).
struct RouterGen {
  explicit RouterGen(std::uint64_t seed) : clock(seed) {}
  Rng clock;
  std::vector<double> times;
  std::size_t head = 0;     // first entry not yet emitted
  std::size_t avail = 0;    // entries past head with time < horizon
  double last_time = 0.0;
};

// Everything one shard owns: its contiguous range of active routers, the
// network scratch its serves write telemetry into, its whole-run tier and
// placement recorder, its trace buffer, and the per-window SoA serve
// results its own record pass reads back.
struct ShardState {
  std::uint32_t lo = 0;  // active-position range [lo, hi)
  std::uint32_t hi = 0;
  CcnNetwork::ShardScratch scratch;
  obs::TopoRecorder topo;     // enabled iff the run records topo
  obs::TraceBuffer traces;    // whole run, ascending request index
  std::vector<std::uint32_t> idx;  // window-relative indices owned
  std::vector<std::uint8_t> tier;
  std::vector<double> latency;
  std::vector<std::uint32_t> hops;
  std::vector<std::uint32_t> served_by;
  std::uint64_t upstream = 0;  // whole-run non-local serves (integer fold)
};

}  // namespace

bool sharded_run_supported(const SimConfig& config, const Workload& workload,
                           const CcnNetwork& network) {
  return config.shards > 1 && !config.interest_aggregation &&
         workload.per_router_streams() &&
         network.data_plane().forwarding ==
             strategy::ForwardingMode::kOwnerTable &&
         !network.config().allow_peer_local_fetch;
}

const char* sharded_unsupported_reason(const SimConfig& config,
                                       const Workload& workload,
                                       const CcnNetwork& network) {
  if (config.shards <= 1) return "shards <= 1";
  if (config.interest_aggregation) {
    return "interest aggregation needs the event loop's completion events";
  }
  if (!workload.per_router_streams()) {
    return "workload streams are globally coupled across routers";
  }
  if (network.data_plane().forwarding !=
      strategy::ForwardingMode::kOwnerTable) {
    return "on-path forwarding strategy mutates caches along the path";
  }
  if (network.config().allow_peer_local_fetch) {
    return "peer-local fetch couples router stores";
  }
  return "run qualifies";
}

SimReport Simulation::run_sharded_impl(ShardExecutor& executor) {
  const obs::ScopedSpan run_span("sim.run");
  trace_.clear();
  timeline_ = config_.timeline_epoch > 0
                  ? obs::Timeline(config_.timeline_epoch, timeline_columns())
                  : obs::Timeline();
  const obs::TraceSampler sampler(
      derive_seed(config_.seed, detail::kTraceSeedIndex),
      config_.trace_sample_k);
  topo_ = obs::TopoRecorder();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
  if (config_.record_topo) {
    links.reserve(network_->graph().links().size());
    for (const topology::Graph::Link& link : network_->graph().links()) {
      links.emplace_back(link.u, link.v);
    }
    topo_ = obs::TopoRecorder(network_->graph().name(),
                              network_->router_count(), links);
  }
  obs::TopoRecorder* const topo = topo_.enabled() ? &topo_ : nullptr;
  // The shared network carries NO recorder while shards serve — placements
  // go to the per-shard recorders in the serve scratch, absorbed into the
  // run recorder at the end. Depth recording mirrors the sequential
  // engines so placement_depth is computed under the same condition.
  network_->set_topo_recorder(nullptr);
  network_->set_record_placement_depth(sampler.enabled());
  std::uint64_t messages = 0;
  {
    const obs::ScopedSpan provision_span("sim.provision");
    messages = network_->provision(config_.coordinated_x);
  }
  MetricsCollector metrics;
  metrics.resize_routers(network_->router_count());
  metrics.record_coordination_messages(messages);
  record_seconds_ = 0.0;

  const obs::ScopedSpan replay_span("sim.replay");
  const double rate = config_.arrival_rate_per_router;
  const std::uint64_t total_requests =
      config_.warmup_requests + config_.measured_requests;

  // Active routers, in router-id order; all positions below are indices
  // into this list ("active positions").
  std::vector<topology::NodeId> actives;
  for (std::size_t r = 0; r < network_->router_count(); ++r) {
    if (workload_->active(r)) {
      actives.push_back(static_cast<topology::NodeId>(r));
    }
  }
  CCNOPT_EXPECTS(!actives.empty());
  const std::size_t active_count = actives.size();

  // Contiguous split of the actives across at most `shards` shards (each
  // shard needs at least one router — more shards than routers cannot
  // help, router-partitioned as the engine is).
  const std::size_t shard_count = std::min(config_.shards, active_count);
  std::vector<ShardState> shards(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards[s].lo = static_cast<std::uint32_t>(active_count * s / shard_count);
    shards[s].hi =
        static_cast<std::uint32_t>(active_count * (s + 1) / shard_count);
    obs::TopoRecorder* shard_topo = nullptr;
    if (config_.record_topo) {
      shards[s].topo = obs::TopoRecorder(network_->graph().name(),
                                         network_->router_count(), links);
      shard_topo = &shards[s].topo;
    }
    shards[s].scratch = network_->make_shard_scratch(shard_topo);
  }

  std::vector<RouterGen> gens;
  gens.reserve(active_count);
  for (const topology::NodeId router : actives) {
    gens.emplace_back(derive_seed(config_.seed, router));
  }

  std::optional<detail::EpochRecorder> recorder;
  if (timeline_.enabled()) {
    recorder.emplace(&timeline_, network_.get(), network_->router_count());
  }

  using Clock = std::chrono::steady_clock;
  const Clock::time_point replay_start = Clock::now();
  Clock::time_point warmup_end = replay_start;

  // Merged order of the current window: win_active[i] = active position of
  // the i-th request. Chunks write disjoint ranges.
  std::vector<std::uint32_t> win_active;
  // Chunk cut positions: cut[p][a] = absolute position in gens[a].times
  // where chunk p starts (cut[chunks] = window end). Chunk boundaries are
  // global-order positions k_p = W * p / chunks.
  const std::size_t chunks = shard_count;
  std::vector<std::vector<std::size_t>> cut(
      chunks + 1, std::vector<std::size_t>(active_count));

  std::uint64_t emitted = 0;
  std::uint64_t upstream = 0;
  while (emitted < total_requests) {
    std::uint64_t window = std::min(kWindow, total_requests - emitted);
    if (recorder) {
      // Epoch-aligned windows: the recorder's end-of-epoch network
      // snapshot then sees exactly the epoch's requests, like the
      // sequential engines' epoch-aligned blocks.
      window = std::min(window, config_.timeline_epoch -
                                    (emitted % config_.timeline_epoch));
    }
    if (emitted < config_.warmup_requests) {
      window = std::min(window, config_.warmup_requests - emitted);
    } else if (emitted == config_.warmup_requests) {
      warmup_end = Clock::now();
    }

    // --- Generate: extend per-router arrival times until the window's
    // requests are all certain. An entry is certain once it lies strictly
    // below the horizon (the smallest per-router frontier time) — every
    // future draw lands at or above it.
    std::uint64_t available = 0;
    for (;;) {
      double horizon = std::numeric_limits<double>::infinity();
      for (const RouterGen& gen : gens) {
        horizon = std::min(horizon, gen.last_time);
      }
      available = 0;
      for (RouterGen& gen : gens) {
        const auto begin = gen.times.begin() + gen.head;
        gen.avail = static_cast<std::size_t>(
            std::lower_bound(begin, gen.times.end(), horizon) - begin);
        available += gen.avail;
      }
      if (available >= window) break;
      const std::size_t grow = std::max<std::size_t>(
          64, (window - available) / active_count + 32);
      executor.run_shards(shard_count, [&](std::size_t s) {
        for (std::uint32_t a = shards[s].lo; a < shards[s].hi; ++a) {
          RouterGen& gen = gens[a];
          for (std::size_t n = 0; n < grow; ++n) {
            gen.last_time += gen.clock.exponential(rate);
            gen.times.push_back(gen.last_time);
          }
        }
      });
    }

    // --- Select: per-router cut positions of each chunk boundary — the
    // k smallest available entries under the total order (time, active
    // position). Binary search on the time value down to adjacent
    // doubles; any remainder is then a tie on one exact value, broken in
    // ascending active-position order (the merge heap's tie-break).
    const auto count_le = [&](double value) {
      std::uint64_t count = 0;
      for (const RouterGen& gen : gens) {
        const auto begin = gen.times.begin() + gen.head;
        count += static_cast<std::uint64_t>(
            std::upper_bound(begin, begin + gen.avail, value) - begin);
      }
      return count;
    };
    for (std::size_t a = 0; a < active_count; ++a) {
      cut[0][a] = gens[a].head;
    }
    for (std::size_t p = 1; p <= chunks; ++p) {
      const std::uint64_t k = window * p / chunks;
      if (k == 0) {  // degenerate tiny windows
        cut[p] = cut[0];
        continue;
      }
      double lo = -1.0;
      double hi = std::numeric_limits<double>::infinity();
      for (const RouterGen& gen : gens) {
        hi = std::min(hi, gen.last_time);
      }
      for (;;) {
        const double mid = lo + (hi - lo) / 2.0;
        if (!(mid > lo && mid < hi)) break;
        const std::uint64_t count = count_le(mid);
        if (count >= k) {
          hi = mid;
          if (count == k) break;
        } else {
          lo = mid;
        }
      }
      std::uint64_t taken = 0;
      for (std::size_t a = 0; a < active_count; ++a) {
        const RouterGen& gen = gens[a];
        const auto begin = gen.times.begin() + gen.head;
        cut[p][a] =
            gen.head + static_cast<std::size_t>(std::upper_bound(
                           begin, begin + gen.avail, lo) -
                       begin);
        taken += cut[p][a] - gen.head;
      }
      std::uint64_t extra = k - taken;
      for (std::size_t a = 0; a < active_count && extra > 0; ++a) {
        const RouterGen& gen = gens[a];
        const auto begin = gen.times.begin() + gen.head;
        const std::size_t up_hi =
            gen.head + static_cast<std::size_t>(std::upper_bound(
                           begin, begin + gen.avail, hi) -
                       begin);
        const std::uint64_t more =
            std::min<std::uint64_t>(extra, up_hi - cut[p][a]);
        cut[p][a] += more;
        extra -= more;
      }
      CCNOPT_ASSERT(extra == 0);
    }

    // --- Merge: each chunk k-way-merges its slice of the per-router
    // sequences into its disjoint range of win_active.
    win_active.resize(window);
    executor.run_shards(chunks, [&](std::size_t p) {
      struct HeapEntry {
        double time;
        std::uint32_t a;
      };
      const auto later = [](const HeapEntry& x, const HeapEntry& y) {
        if (x.time != y.time) return x.time > y.time;
        return x.a > y.a;
      };
      std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(later)>
          heap(later);
      std::vector<std::size_t> pos(active_count);
      for (std::size_t a = 0; a < active_count; ++a) {
        pos[a] = cut[p][a];
        if (pos[a] < cut[p + 1][a]) {
          heap.push(HeapEntry{gens[a].times[pos[a]],
                              static_cast<std::uint32_t>(a)});
        }
      }
      std::uint64_t out = window * p / chunks;
      while (!heap.empty()) {
        const HeapEntry top = heap.top();
        heap.pop();
        win_active[out++] = top.a;
        if (++pos[top.a] < cut[p + 1][top.a]) {
          heap.push(HeapEntry{gens[top.a].times[pos[top.a]], top.a});
        }
      }
      CCNOPT_ASSERT(out == window * (p + 1) / chunks);
    });

    // --- Serve: each shard picks its requests out of the merged order and
    // runs the fused draw + prefetch + serve pipeline into its SoA
    // scratch. Per-router draw order equals the sequential engines' (the
    // global order restricted to one router is that router's order), and
    // the workload streams are per-router, so content values match bit
    // for bit.
    const std::uint64_t base = emitted;
    executor.run_shards(shard_count, [&](std::size_t s) {
      ShardState& shard = shards[s];
      shard.idx.clear();
      for (std::uint64_t i = 0; i < window; ++i) {
        const std::uint32_t a = win_active[i];
        if (a >= shard.lo && a < shard.hi) {
          shard.idx.push_back(static_cast<std::uint32_t>(i));
        }
      }
      shard.tier.clear();
      shard.latency.clear();
      shard.hops.clear();
      shard.served_by.clear();
      if (shard.idx.empty()) return;
      cache::ContentId next_content =
          workload_->next(actives[win_active[shard.idx[0]]]);
      for (std::size_t j = 0; j < shard.idx.size(); ++j) {
        const std::uint32_t i = shard.idx[j];
        const topology::NodeId router = actives[win_active[i]];
        const cache::ContentId content = next_content;
        if (j + 1 < shard.idx.size()) {
          const topology::NodeId next_router =
              actives[win_active[shard.idx[j + 1]]];
          next_content = workload_->next(next_router);
          network_->prefetch(next_router, next_content);
        }
        const ServeResult result =
            network_->serve_sharded(router, content, shard.scratch);
        shard.tier.push_back(static_cast<std::uint8_t>(result.tier));
        shard.latency.push_back(result.latency_ms);
        shard.hops.push_back(result.hops);
        shard.served_by.push_back(
            static_cast<std::uint32_t>(result.served_by));
        const std::uint64_t gindex = base + i;
        if (gindex >= config_.warmup_requests && sampler.enabled() &&
            sampler.should_sample(gindex)) {
          obs::TraceEvent event{
              0, gindex, static_cast<std::uint32_t>(router), content,
              to_string(result.tier), result.hops,
              static_cast<std::uint32_t>(result.served_by), {}, -1,
              result.latency_ms};
          event.path = network_->hop_path(router, result);
          event.placement_depth = result.placement_depth;
          shard.traces.push_back(std::move(event));
        }
      }
    });

    // --- Record: fold the shard link counters first (the epoch recorder's
    // boundary snapshot reads them), then tally every shard's slice of the
    // window into the per-router partial accumulators. No global replay is
    // needed anymore: all double accumulation (metrics Welford slots,
    // epoch-recorder sums, topo latency sums) is per-router, each router
    // is owned by exactly one shard, and each shard walks its SoA results
    // in window order — which restricted to any of its routers is that
    // router's emission order, the canonical accumulation order the serial
    // engines also use. Tier events go to the shard's OWN topo recorder
    // (served_for_peers may cross shards, and integer counters fold
    // exactly at absorb time). Only the epoch-boundary flush in advance()
    // stays serial.
    for (ShardState& shard : shards) {
      network_->fold_shard_scratch(shard.scratch);
    }
    const Clock::time_point record_start = Clock::now();
    detail::EpochRecorder* const epoch = recorder ? &*recorder : nullptr;
    const auto record_shard = [&](std::size_t s) {
      ShardState& shard = shards[s];
      std::uint64_t shard_upstream = 0;
      obs::TopoRecorder* const shard_topo =
          topo != nullptr ? &shard.topo : nullptr;
      for (std::size_t j = 0; j < shard.idx.size(); ++j) {
        const std::uint32_t i = shard.idx[j];
        const topology::NodeId router = actives[win_active[i]];
        ServeResult result;
        result.tier = static_cast<ServeTier>(shard.tier[j]);
        result.latency_ms = shard.latency[j];
        result.hops = shard.hops[j];
        result.served_by = shard.served_by[j];
        if (epoch != nullptr) epoch->accumulate(router, result);
        if (result.tier != ServeTier::kLocal) ++shard_upstream;
        if (base + i < config_.warmup_requests) continue;
        metrics.record(router, result.tier, result.latency_ms, result.hops);
        if (shard_topo != nullptr) {
          shard_topo->on_request(static_cast<std::uint32_t>(router),
                                 static_cast<std::uint32_t>(result.tier),
                                 result.served_by, result.latency_ms,
                                 result.hops);
        }
      }
      shard.upstream += shard_upstream;
    };
    if (config_.parallel_record) {
      executor.run_shards(shard_count, record_shard);
    } else {
      for (std::size_t s = 0; s < shard_count; ++s) record_shard(s);
    }
    record_seconds_ +=
        std::chrono::duration<double>(Clock::now() - record_start).count();
    if (recorder) recorder->advance(window);
    emitted += window;

    // --- Advance and compact the consumed arrival-time prefixes.
    for (std::size_t a = 0; a < active_count; ++a) {
      RouterGen& gen = gens[a];
      gen.head = cut[chunks][a];
      if (gen.head >= kCompactThreshold) {
        gen.times.erase(gen.times.begin(),
                        gen.times.begin() +
                            static_cast<std::ptrdiff_t>(gen.head));
        gen.head = 0;
      }
    }
  }
  CCNOPT_ENSURES(emitted == total_requests);
  if (recorder) recorder->finish();
  for (const ShardState& shard : shards) upstream += shard.upstream;

  // Fold the per-shard tier/placement recorders (integer counters sum
  // exactly under any grouping; the double latency sums are per-router
  // and only the owning shard's recorder carries a non-zero value, so
  // absorbing the others adds a bit-neutral +0.0 — shard index order
  // keeps the fold canonical anyway). Then take the same end-of-run
  // snapshots as the sequential engines; the per-router cache snapshot
  // writes disjoint nodes, so it folds over fixed index-ordered router
  // blocks on the executor.
  if (topo != nullptr) {
    for (ShardState& shard : shards) {
      topo->absorb(shard.topo);
    }
    const std::size_t router_count = network_->router_count();
    constexpr std::size_t kSnapshotBlock = 256;
    const std::size_t snapshot_blocks =
        (router_count + kSnapshotBlock - 1) / kSnapshotBlock;
    executor.run_shards(snapshot_blocks, [&](std::size_t b) {
      const std::size_t lo = b * kSnapshotBlock;
      const std::size_t hi = std::min(router_count, lo + kSnapshotBlock);
      for (std::size_t r = lo; r < hi; ++r) {
        const auto id = static_cast<topology::NodeId>(r);
        const cache::PartitionedStore& store = network_->store(id);
        const cache::CacheStats& local_stats = store.local().stats();
        topo->set_router_cache(
            id, local_stats.evictions, local_stats.insertions, store.size(),
            static_cast<std::uint64_t>(network_->capacity_of(id)));
      }
    });
    topo->add_link_traversals(network_->link_counts());
  }

  // Per-shard trace buffers each ascend in request index; a cursor merge
  // restores the global emission order (indices are unique).
  std::size_t trace_total = 0;
  for (const ShardState& shard : shards) trace_total += shard.traces.size();
  trace_.reserve(trace_total);
  std::vector<std::size_t> trace_pos(shard_count, 0);
  while (trace_.size() < trace_total) {
    std::size_t best = shard_count;
    std::uint64_t best_index = 0;
    for (std::size_t s = 0; s < shard_count; ++s) {
      if (trace_pos[s] >= shards[s].traces.size()) continue;
      const std::uint64_t index =
          shards[s].traces[trace_pos[s]].request_index;
      if (best == shard_count || index < best_index) {
        best = s;
        best_index = index;
      }
    }
    CCNOPT_ASSERT(best < shard_count);
    trace_.push_back(std::move(shards[best].traces[trace_pos[best]]));
    ++trace_pos[best];
  }

  if (config_.warmup_requests == 0) warmup_end = replay_start;
  phase_seconds_.warmup =
      std::chrono::duration<double>(warmup_end - replay_start).count();
  phase_seconds_.measured =
      std::chrono::duration<double>(Clock::now() - warmup_end).count();

  SimReport report = make_report(metrics);
  report.aggregated_requests = 0;
  report.upstream_fetches = upstream;
  detail::flush_run_registry(metrics, report, 0, upstream, trace_.size());
  return report;
}

}  // namespace ccnopt::sim
