#include "ccnopt/sim/network.hpp"

#include <algorithm>
#include <numeric>

#include "ccnopt/cache/reference.hpp"
#include "ccnopt/cache/static_cache.hpp"
#include "ccnopt/common/assert.hpp"
#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/span.hpp"
#include "ccnopt/strategy/registry.hpp"

namespace ccnopt::sim {
namespace {

std::unique_ptr<cache::CachePolicy> make_local_partition(
    LocalStoreMode mode, std::size_t capacity, std::uint64_t seed,
    bool use_reference, cache::IndexSpec index) {
  cache::PolicyKind kind;
  switch (mode) {
    case LocalStoreMode::kStaticTop:
      return cache::StaticCache::make_top(capacity);
    case LocalStoreMode::kLru:
      kind = cache::PolicyKind::kLru;
      break;
    case LocalStoreMode::kLfu:
      kind = cache::PolicyKind::kLfu;
      break;
    case LocalStoreMode::kFifo:
      kind = cache::PolicyKind::kFifo;
      break;
    case LocalStoreMode::kRandom:
      kind = cache::PolicyKind::kRandom;
      break;
    default:
      CCNOPT_ASSERT(false);
      return nullptr;
  }
  // The reference policies are hash/tree-based — they have no dense index
  // to swap out, so the IndexSpec only reaches the flat rewrites.
  return use_reference ? cache::make_reference_policy(kind, capacity, seed)
                       : cache::make_policy(kind, capacity, seed, index);
}

// Interned once per process; handles survive registry reset().
struct NetworkMetricHandles {
  obs::MetricsRegistry::CounterHandle routing_rebuilds;
  obs::MetricsRegistry::CounterHandle provision_epochs;
  obs::MetricsRegistry::CounterHandle provision_messages;

  static const NetworkMetricHandles& get() {
    static const NetworkMetricHandles handles = [] {
      obs::MetricsRegistry& registry = obs::metrics();
      return NetworkMetricHandles{
          registry.counter_handle("sim.network.routing_rebuilds"),
          registry.counter_handle("sim.provision.epochs"),
          registry.counter_handle("sim.provision.messages"),
      };
    }();
    return handles;
  }
};

// splitmix64 sub-stream index of the en-route admission coin flips, kept
// apart from the per-replication (index = i) and per-router derived seeds.
constexpr std::uint64_t kStrategyRngStream = 0xCA11AB1Eu;

}  // namespace

const char* to_string(LocalStoreMode mode) {
  switch (mode) {
    case LocalStoreMode::kStaticTop:
      return "static_top";
    case LocalStoreMode::kLru:
      return "lru";
    case LocalStoreMode::kLfu:
      return "lfu";
    case LocalStoreMode::kFifo:
      return "fifo";
    case LocalStoreMode::kRandom:
      return "random";
  }
  return "unknown";
}

std::vector<topology::NodeId> CcnNetwork::find_participants(
    const topology::Graph& graph, const NetworkConfig& config) {
  std::vector<topology::NodeId> participants;
  for (topology::NodeId id = 0; id < graph.node_count(); ++id) {
    const std::size_t capacity = config.capacity_overrides.empty()
                                     ? config.capacity_c
                                     : config.capacity_overrides[id];
    if (capacity > 0) participants.push_back(id);
  }
  return participants;
}

CcnNetwork::CcnNetwork(topology::Graph graph, NetworkConfig config)
    : graph_(std::move(graph)),
      config_(std::move(config)),
      coordinator_(find_participants(graph_, config_)) {
  CCNOPT_EXPECTS(graph_.node_count() >= 2);
  CCNOPT_EXPECTS(graph_.is_connected());
  CCNOPT_EXPECTS(config_.capacity_overrides.empty() ||
                 config_.capacity_overrides.size() == graph_.node_count());
  CCNOPT_EXPECTS(config_.catalog_size >= 1);
  // Resolve the origin set: explicit multi-origin list, or the single
  // gateway fields.
  if (config_.origins.empty()) {
    origins_.push_back(NetworkConfig::OriginSpec{
        config_.origin_gateway, config_.origin_extra_ms,
        config_.origin_extra_hops});
  } else {
    origins_ = config_.origins;
  }
  for (const NetworkConfig::OriginSpec& origin : origins_) {
    CCNOPT_EXPECTS(origin.gateway < graph_.node_count());
  }
  stores_.resize(graph_.node_count());
  failed_.assign(graph_.node_count(), false);
  // Dense link index (min,max) -> position in graph().links() order, built
  // once; parent_link_ rebuilds consult it, serve() never does.
  const auto n = static_cast<std::uint64_t>(graph_.node_count());
  const auto& links = graph_.links();
  link_index_.reserve(links.size());
  for (std::uint32_t i = 0; i < links.size(); ++i) {
    const std::uint64_t key =
        static_cast<std::uint64_t>(links[i].u) * n + links[i].v;
    link_index_.emplace(key, i);
  }
  link_counts_.assign(links.size(), 0);
  // Bind the strategy once per run: the virtual objects live in bundle_,
  // and serve() only ever reads the POD data_plane_ descriptor.
  Expected<strategy::StrategyBundle> bundle =
      strategy::make_strategy(config_.strategy);
  CCNOPT_EXPECTS(bundle.has_value());
  bundle_ = std::move(bundle).value();
  data_plane_ = bundle_.data_plane();
  if (config_.strategy_insertion_p > 0.0) {
    CCNOPT_EXPECTS(config_.strategy_insertion_p <= 1.0);
    data_plane_.insertion.p = config_.strategy_insertion_p;
  }
  rebuild_routing();
  provision(0);
}

void CcnNetwork::rebuild_routing() {
  const obs::ScopedSpan span("network.rebuild_routing");
  obs::metrics().incr(NetworkMetricHandles::get().routing_rebuilds);
  paths_ = topology::all_pairs_filtered(graph_, failed_);
  if (config_.track_link_load) {
    const auto n = static_cast<std::uint64_t>(graph_.node_count());
    trees_.clear();
    trees_.reserve(graph_.node_count());
    parent_link_.clear();
    parent_link_.reserve(graph_.node_count());
    for (topology::NodeId src = 0; src < graph_.node_count(); ++src) {
      trees_.push_back(topology::dijkstra_filtered(graph_, src, failed_));
      const topology::SsspResult& tree = trees_.back();
      std::vector<std::uint32_t> tree_links(graph_.node_count(), kNoLink);
      for (topology::NodeId v = 0; v < graph_.node_count(); ++v) {
        const topology::NodeId p = tree.parent[v];
        if (p == topology::kNoParent) continue;
        const std::uint64_t key =
            static_cast<std::uint64_t>(std::min(p, v)) * n + std::max(p, v);
        tree_links[v] = link_index_.at(key);
      }
      parent_link_.push_back(std::move(tree_links));
    }
  }
  // On-path forwarding walks toward the origin gateway along its shortest-
  // path tree (parent[u] = next hop from u toward the gateway); owner-table
  // strategies never consult these, so skip the Dijkstra runs for them.
  origin_trees_.clear();
  if (data_plane_.forwarding == strategy::ForwardingMode::kOnPath) {
    origin_trees_.reserve(origins_.size());
    for (const NetworkConfig::OriginSpec& origin : origins_) {
      origin_trees_.push_back(
          topology::dijkstra_filtered(graph_, origin.gateway, failed_));
    }
  }
  // Origin route costs fold d0, the (possibly failure-filtered) shortest
  // path, and the spec's extra cost into one load per request.
  origin_routes_.assign(graph_.node_count() * origins_.size(), OriginRoute{});
  for (topology::NodeId src = 0; src < graph_.node_count(); ++src) {
    for (std::size_t o = 0; o < origins_.size(); ++o) {
      const NetworkConfig::OriginSpec& origin = origins_[o];
      OriginRoute& route = origin_routes_[src * origins_.size() + o];
      if (paths_.latency_ms(src, origin.gateway) >= topology::kUnreachable) {
        continue;  // stays unreachable
      }
      route.latency_ms = config_.access_latency_d0_ms +
                         paths_.latency_ms(src, origin.gateway) +
                         origin.extra_ms;
      route.hops = paths_.hops(src, origin.gateway) + origin.extra_hops;
    }
  }
}

void CcnNetwork::rebuild_owner_table() {
  // The assignment covers a contiguous rank interval; find its bounds and
  // build the offset-indexed owner vector. Everything here is O(pool), so a
  // provision epoch over a 10^7 catalog never touches 10^7 words (the dense
  // rank table this replaces was allocated and re-filled at catalog size).
  owner_first_rank_ = 1;
  owner_by_offset_.clear();
  if (assignment_.owner.empty()) return;
  cache::ContentId lo = UINT64_MAX;
  cache::ContentId hi = 0;
  for (const auto& [content, owner] : assignment_.owner) {
    (void)owner;
    lo = std::min(lo, content);
    hi = std::max(hi, content);
  }
  CCNOPT_ASSERT(hi - lo + 1 == assignment_.owner.size());
  owner_first_rank_ = lo;
  owner_by_offset_.assign(static_cast<std::size_t>(hi - lo + 1), kNoOwner);
  for (const auto& [content, owner] : assignment_.owner) {
    owner_by_offset_[static_cast<std::size_t>(content - lo)] = owner;
  }
}

void CcnNetwork::record_path(topology::NodeId src, topology::NodeId dst) {
  record_path_into(src, dst, link_counts_, total_traversals_);
}

void CcnNetwork::record_path_into(topology::NodeId src, topology::NodeId dst,
                                  std::vector<std::uint64_t>& counts,
                                  std::uint64_t& total) const {
  if (!config_.track_link_load || src == dst) return;
  const topology::SsspResult& tree = trees_[src];
  const std::vector<std::uint32_t>& tree_links = parent_link_[src];
  for (topology::NodeId v = dst; v != src;) {
    const topology::NodeId p = tree.parent[v];
    CCNOPT_ASSERT(p != topology::kNoParent);
    ++counts[tree_links[v]];
    ++total;
    v = p;
  }
}

std::vector<CcnNetwork::LinkLoad> CcnNetwork::link_load() const {
  CCNOPT_EXPECTS(config_.track_link_load);
  std::vector<LinkLoad> loads;
  const auto& links = graph_.links();
  loads.reserve(links.size());
  for (std::size_t i = 0; i < links.size(); ++i) {
    loads.push_back(LinkLoad{links[i].u, links[i].v, link_counts_[i]});
  }
  return loads;
}

std::uint64_t CcnNetwork::max_link_load() const {
  std::uint64_t worst = 0;
  for (const std::uint64_t count : link_counts_) {
    worst = std::max(worst, count);
  }
  return worst;
}

void CcnNetwork::reset_link_load() {
  std::fill(link_counts_.begin(), link_counts_.end(), 0);
  total_traversals_ = 0;
}

std::vector<topology::NodeId> CcnNetwork::alive_participants() const {
  std::vector<topology::NodeId> alive;
  for (const topology::NodeId id : coordinator_.participants()) {
    if (!failed_[id]) alive.push_back(id);
  }
  return alive;
}

void CcnNetwork::set_router_failed(topology::NodeId id, bool failed) {
  CCNOPT_EXPECTS(id < graph_.node_count());
  if (failed) {
    for (const NetworkConfig::OriginSpec& origin : origins_) {
      CCNOPT_EXPECTS(id != origin.gateway);
    }
  }
  if (failed_[id] == failed) return;
  failed_[id] = failed;
  rebuild_routing();
}

bool CcnNetwork::is_failed(topology::NodeId id) const {
  CCNOPT_EXPECTS(id < graph_.node_count());
  return failed_[id];
}

std::size_t CcnNetwork::failed_count() const {
  std::size_t count = 0;
  for (const bool f : failed_) count += f ? 1 : 0;
  return count;
}

std::size_t CcnNetwork::coordinated_contents_lost() const {
  std::size_t lost = 0;
  for (const auto& [content, owner] : assignment_.owner) {
    if (failed_[owner]) ++lost;
  }
  return lost;
}

std::size_t CcnNetwork::capacity_of(topology::NodeId id) const {
  CCNOPT_EXPECTS(id < graph_.node_count());
  return config_.capacity_overrides.empty() ? config_.capacity_c
                                            : config_.capacity_overrides[id];
}

std::uint64_t CcnNetwork::provision(std::size_t coordinated_x) {
  if (!config_.use_legacy_coordinator_path) {
    strategy::PlacementContext context;
    context.graph = &graph_;
    context.routers.reserve(graph_.node_count());
    for (topology::NodeId id = 0; id < graph_.node_count(); ++id) {
      context.routers.push_back(
          strategy::RouterInfo{id, capacity_of(id), !failed_[id]});
    }
    context.alive_participants = alive_participants();
    context.catalog_size = config_.catalog_size;
    context.requested_x = coordinated_x;
    context.seed = config_.seed;

    strategy::PlacementPlan plan = bundle_.placement->provision(context);
    CCNOPT_ASSERT(plan.coordinated_capacity.size() == graph_.node_count());
    CCNOPT_ASSERT(plan.assigned.size() == graph_.node_count());
    provisioned_x_ = plan.provisioned_x;
    assignment_ = std::move(plan.assignment);
    for (topology::NodeId id = 0; id < graph_.node_count(); ++id) {
      const std::size_t capacity = capacity_of(id);
      const std::size_t x = plan.coordinated_capacity[id];
      CCNOPT_ASSERT(x <= capacity);
      stores_[id] = std::make_unique<cache::PartitionedStore>(
          capacity, x,
          make_local_partition(
              config_.local_mode, capacity - x,
              config_.seed + 0x51ED2701ULL * (id + 1),
              config_.use_reference_policies,
              cache::IndexSpec{config_.cache_index_mode, config_.catalog_size}),
          std::move(plan.assigned[id]));
    }
    rebuild_owner_table();
    // Each epoch restarts the admission-coin stream so replications and
    // repeated provisions are reproducible from the config seed alone.
    strategy_rng_ = Rng(derive_seed(config_.seed, kStrategyRngStream));
    const NetworkMetricHandles& handles = NetworkMetricHandles::get();
    obs::metrics().incr(handles.provision_epochs);
    obs::metrics().incr(handles.provision_messages, assignment_.messages);
    return assignment_.messages;
  }
  return provision_legacy(coordinated_x);
}

std::uint64_t CcnNetwork::provision_legacy(std::size_t coordinated_x) {
  // The coordinated pool spans the surviving participants only, so
  // re-provisioning after failures acts as the repair step. The analytical
  // model assumes homogeneous participant capacity; clamp x to the
  // smallest alive participant so the rank ranges line up.
  const std::vector<topology::NodeId> alive = alive_participants();
  CCNOPT_EXPECTS(!alive.empty());
  std::size_t min_capacity = SIZE_MAX;
  for (const topology::NodeId id : alive) {
    min_capacity = std::min(min_capacity, capacity_of(id));
  }
  CCNOPT_EXPECTS(coordinated_x <= min_capacity);
  provisioned_x_ = coordinated_x;

  const cache::ContentId first_coordinated_rank =
      static_cast<cache::ContentId>(min_capacity - coordinated_x) + 1;
  const Coordinator alive_coordinator(alive);
  assignment_ = alive_coordinator.assign(first_coordinated_rank,
                                         coordinated_x);

  std::size_t alive_index = 0;
  for (topology::NodeId id = 0; id < graph_.node_count(); ++id) {
    const std::size_t capacity = capacity_of(id);
    const bool participates = capacity > 0 && !failed_[id];
    const std::size_t x = participates ? coordinated_x : 0;
    std::vector<cache::ContentId> assigned;
    if (participates) {
      assigned = assignment_.per_router[alive_index];
      ++alive_index;
    }
    stores_[id] = std::make_unique<cache::PartitionedStore>(
        capacity, x,
        make_local_partition(
            config_.local_mode, capacity - x,
            config_.seed + 0x51ED2701ULL * (id + 1),
            config_.use_reference_policies,
            cache::IndexSpec{config_.cache_index_mode, config_.catalog_size}),
        std::move(assigned));
  }
  rebuild_owner_table();
  const NetworkMetricHandles& handles = NetworkMetricHandles::get();
  obs::metrics().incr(handles.provision_epochs);
  obs::metrics().incr(handles.provision_messages, assignment_.messages);
  return assignment_.messages;
}

std::uint64_t CcnNetwork::provision_heterogeneous(
    const std::vector<std::size_t>& x) {
  const auto& participants = coordinator_.participants();
  // Explicit per-router quotas bypass the placement strategy; they only
  // make sense under owner-table forwarding.
  CCNOPT_EXPECTS(data_plane_.forwarding ==
                 strategy::ForwardingMode::kOwnerTable);
  CCNOPT_EXPECTS(failed_count() == 0);  // hetero + failures not combined
  CCNOPT_EXPECTS(x.size() == participants.size());
  std::size_t coverage_l = 0;  // L = max_i (c_i - x_i)
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const std::size_t capacity = capacity_of(participants[i]);
    CCNOPT_EXPECTS(x[i] <= capacity);
    coverage_l = std::max(coverage_l, capacity - x[i]);
  }
  provisioned_x_ = 0;  // heterogeneous epochs have no single x

  assignment_ = coordinator_.assign_weighted(
      static_cast<cache::ContentId>(coverage_l) + 1, x);

  std::size_t participant_index = 0;
  for (topology::NodeId id = 0; id < graph_.node_count(); ++id) {
    const std::size_t capacity = capacity_of(id);
    std::size_t coordinated = 0;
    std::vector<cache::ContentId> assigned;
    if (capacity > 0) {
      coordinated = x[participant_index];
      assigned = assignment_.per_router[participant_index];
      ++participant_index;
    }
    stores_[id] = std::make_unique<cache::PartitionedStore>(
        capacity, coordinated,
        make_local_partition(
            config_.local_mode, capacity - coordinated,
            config_.seed + 0x51ED2701ULL * (id + 1),
            config_.use_reference_policies,
            cache::IndexSpec{config_.cache_index_mode, config_.catalog_size}),
        std::move(assigned));
  }
  rebuild_owner_table();
  const NetworkMetricHandles& handles = NetworkMetricHandles::get();
  obs::metrics().incr(handles.provision_epochs);
  obs::metrics().incr(handles.provision_messages, assignment_.messages);
  return assignment_.messages;
}

ServeResult CcnNetwork::serve(topology::NodeId first_hop,
                              cache::ContentId content) {
  CCNOPT_EXPECTS(first_hop < graph_.node_count());
  CCNOPT_EXPECTS(!failed_[first_hop]);
  CCNOPT_EXPECTS(content >= 1 && content <= config_.catalog_size);
  // Strategy dispatch is one predictable enum branch — the owner-table
  // fast path below is byte-for-byte the pre-strategy serve body.
  if (data_plane_.forwarding == strategy::ForwardingMode::kOnPath) {
    return serve_on_path(first_hop, content);
  }
  return serve_owner_table(first_hop, content, link_counts_,
                           total_traversals_, topo_);
}

ServeResult CcnNetwork::serve_owner_table(
    topology::NodeId first_hop, cache::ContentId content,
    std::vector<std::uint64_t>& link_counts, std::uint64_t& total_traversals,
    obs::TopoRecorder* topo) {
  cache::PartitionedStore& own = *stores_[first_hop];

  // Placement telemetry reads the local partition's insertion counter
  // around admit(): a delta means the miss actually seeded a copy here
  // (depth 0). Static local partitions never insert, so they truthfully
  // record nothing.
  const bool telemetry = topo != nullptr || record_depths_;
  std::uint64_t insertions_before = 0;
  if (telemetry) insertions_before = own.local().stats().insertions;

  const bool own_coordinated = own.coordinated_contains(content);
  if (own.admit(content)) {
    return ServeResult{ServeTier::kLocal, config_.access_latency_d0_ms, 0,
                       first_hop, own_coordinated};
  }
  std::int32_t placement_depth = -1;
  if (telemetry && own.local().stats().insertions > insertions_before) {
    placement_depth = 0;
    if (topo != nullptr) topo->on_placement(first_hop, 0);
  }

  // Coordinated placement lookup (the paper's mid tier) — one load from the
  // dense owner table. A failed or unreachable owner means the content is
  // lost until repair.
  const topology::NodeId owner = owner_of(content);
  if (owner != kNoOwner && owner != first_hop && !failed_[owner] &&
      paths_.latency_ms(first_hop, owner) < topology::kUnreachable) {
    record_path_into(first_hop, owner, link_counts, total_traversals);
    ServeResult result{
        ServeTier::kNetwork,
        config_.access_latency_d0_ms + paths_.latency_ms(first_hop, owner),
        paths_.hops(first_hop, owner), owner, false};
    result.placement_depth = placement_depth;
    return result;
  }

  // Optional opportunistic replica lookup in peers' local partitions.
  if (config_.allow_peer_local_fetch) {
    topology::NodeId best_peer = first_hop;
    double best_latency = topology::kUnreachable;
    for (const topology::NodeId peer : coordinator_.participants()) {
      if (peer == first_hop || failed_[peer]) continue;
      if (!stores_[peer]->contains(content)) continue;
      const double latency = paths_.latency_ms(first_hop, peer);
      if (latency < best_latency) {
        best_latency = latency;
        best_peer = peer;
      }
    }
    if (best_peer != first_hop) {
      record_path_into(first_hop, best_peer, link_counts, total_traversals);
      ServeResult result{ServeTier::kNetwork,
                         config_.access_latency_d0_ms + best_latency,
                         paths_.hops(first_hop, best_peer), best_peer, false};
      result.placement_depth = placement_depth;
      return result;
    }
  }

  // Origin: the gateway hosting this content's origin server. It must
  // remain reachable from every alive router. The route cost (d0 + path +
  // origin extra) was folded into one precomputed entry per (router, spec).
  const std::size_t origin_index = content % origins_.size();
  const OriginRoute& route =
      origin_routes_[first_hop * origins_.size() + origin_index];
  CCNOPT_ASSERT(route.latency_ms < topology::kUnreachable);
  const topology::NodeId gateway = origins_[origin_index].gateway;
  record_path_into(first_hop, gateway, link_counts, total_traversals);
  ServeResult result{ServeTier::kOrigin, route.latency_ms, route.hops, gateway,
                     false};
  result.placement_depth = placement_depth;
  return result;
}

CcnNetwork::ShardScratch CcnNetwork::make_shard_scratch(
    obs::TopoRecorder* topo) const {
  ShardScratch scratch;
  scratch.link_counts.assign(graph_.links().size(), 0);
  scratch.topo = topo;
  return scratch;
}

ServeResult CcnNetwork::serve_sharded(topology::NodeId first_hop,
                                      cache::ContentId content,
                                      ShardScratch& scratch) {
  CCNOPT_ASSERT(first_hop < graph_.node_count());
  CCNOPT_ASSERT(!failed_[first_hop]);
  CCNOPT_ASSERT(content >= 1 && content <= config_.catalog_size);
  // The sharded engine only dispatches here under owner-table forwarding
  // without peer-local fetch (sharded_run_supported), where the request
  // mutates nothing but its first-hop store — which this shard owns.
  CCNOPT_ASSERT(data_plane_.forwarding ==
                strategy::ForwardingMode::kOwnerTable);
  CCNOPT_ASSERT(!config_.allow_peer_local_fetch);
  return serve_owner_table(first_hop, content, scratch.link_counts,
                           scratch.total_traversals, scratch.topo);
}

void CcnNetwork::fold_shard_scratch(ShardScratch& scratch) {
  CCNOPT_EXPECTS(scratch.link_counts.size() == link_counts_.size());
  for (std::size_t i = 0; i < link_counts_.size(); ++i) {
    link_counts_[i] += scratch.link_counts[i];
    scratch.link_counts[i] = 0;
  }
  total_traversals_ += scratch.total_traversals;
  scratch.total_traversals = 0;
}

ServeResult CcnNetwork::serve_on_path(topology::NodeId first_hop,
                                      cache::ContentId content) {
  const std::size_t origin_index = content % origins_.size();
  const topology::NodeId gateway = origins_[origin_index].gateway;
  const topology::SsspResult& tree = origin_trees_[origin_index];
  CCNOPT_ASSERT(tree.latency_ms[first_hop] < topology::kUnreachable);

  // Walk first_hop -> gateway along the gateway-rooted shortest-path tree,
  // consulting each en-route store; misses are recorded so the insertion
  // rule can seed copies afterwards. contains() keeps the probes
  // non-mutating — only the hit node and the rule's chosen nodes admit.
  miss_path_.clear();
  topology::NodeId node = first_hop;
  while (true) {
    cache::PartitionedStore& store = *stores_[node];
    if (store.contains(content)) {
      store.admit(content);  // hit: promote recency/frequency state
      ServeResult result;
      if (node == first_hop) {
        result = ServeResult{ServeTier::kLocal, config_.access_latency_d0_ms,
                             0, node, store.coordinated_contains(content)};
      } else {
        const double path_ms =
            tree.latency_ms[first_hop] - tree.latency_ms[node];
        record_path(first_hop, node);
        result = ServeResult{
            ServeTier::kNetwork, config_.access_latency_d0_ms + path_ms,
            static_cast<std::uint32_t>(miss_path_.size()), node, false};
      }
      result.placement_depth = apply_insertion_rule(content);
      return result;
    }
    miss_path_.push_back(node);
    if (node == gateway) break;
    node = tree.parent[node];
    CCNOPT_ASSERT(node != topology::kNoParent);
  }

  // Every en-route store missed: the origin serves, and the whole walked
  // path (first hop through gateway) is the miss path.
  const OriginRoute& route =
      origin_routes_[first_hop * origins_.size() + origin_index];
  CCNOPT_ASSERT(route.latency_ms < topology::kUnreachable);
  record_path(first_hop, gateway);
  ServeResult result{ServeTier::kOrigin, route.latency_ms, route.hops, gateway,
                     false};
  result.placement_depth = apply_insertion_rule(content);
  return result;
}

std::int32_t CcnNetwork::apply_insertion_rule(cache::ContentId content) {
  if (miss_path_.empty()) return -1;
  const strategy::InsertionRule& rule = data_plane_.insertion;
  const bool telemetry = placement_telemetry();
  std::int32_t nearest = -1;
  // Admits at miss_path_[depth]; with telemetry on, the local partition's
  // insertion-counter delta distinguishes an actual new copy from a
  // no-op admit (static partitions, coordinated hits). Depths ascend in
  // every rule, so the first recorded insertion is the nearest one.
  const auto admit_at = [&](std::size_t depth) {
    cache::PartitionedStore& store = *stores_[miss_path_[depth]];
    if (!telemetry) {
      store.admit(content);
      return;
    }
    const std::uint64_t before = store.local().stats().insertions;
    store.admit(content);
    if (store.local().stats().insertions > before) {
      if (nearest < 0) nearest = static_cast<std::int32_t>(depth);
      if (topo_ != nullptr) {
        topo_->on_placement(miss_path_[depth],
                            static_cast<std::uint32_t>(depth));
      }
    }
  };
  switch (rule.kind) {
    case strategy::InsertionKind::kFirstHopOnly:
      admit_at(0);
      break;
    case strategy::InsertionKind::kEveryHop:
      for (std::size_t depth = 0; depth < miss_path_.size(); ++depth) {
        admit_at(depth);
      }
      break;
    case strategy::InsertionKind::kOneHopDown:
      // The serving point is the node (or origin) just past the last miss,
      // so "one hop down" is exactly the last node that missed.
      admit_at(miss_path_.size() - 1);
      break;
    case strategy::InsertionKind::kProbabilistic: {
      double capacity_sum = 0.0;
      if (rule.capacity_weighted) {
        for (const topology::NodeId node : miss_path_) {
          capacity_sum += static_cast<double>(capacity_of(node));
        }
        if (capacity_sum <= 0.0) return -1;  // nothing on the path can cache
      }
      for (std::size_t depth = 0; depth < miss_path_.size(); ++depth) {
        double p = rule.p;
        if (rule.capacity_weighted) {
          // ProbCache-style: weight by the node's share of the path's
          // capacity, so the expected copies per miss path is ~p.
          p *= static_cast<double>(capacity_of(miss_path_[depth])) /
               capacity_sum;
        }
        p = std::min(1.0, std::max(0.0, p));
        if (strategy_rng_.bernoulli(p)) {
          admit_at(depth);
        }
      }
      break;
    }
  }
  return nearest;
}

std::vector<topology::NodeId> CcnNetwork::hop_path(
    topology::NodeId first_hop, const ServeResult& result) const {
  CCNOPT_EXPECTS(first_hop < graph_.node_count());
  std::vector<topology::NodeId> path;
  if (result.tier == ServeTier::kLocal) {
    path.push_back(first_hop);
    return path;
  }
  if (data_plane_.forwarding == strategy::ForwardingMode::kOnPath) {
    // The scratch miss path of the preceding serve() is the walked prefix;
    // a network-tier hit stopped one node past it, an origin-tier result
    // walked through the gateway (= miss_path_.back()).
    path = miss_path_;
    if (result.tier == ServeTier::kNetwork) path.push_back(result.served_by);
    CCNOPT_ASSERT(!path.empty() && path.front() == first_hop);
    return path;
  }
  const topology::NodeId dst = result.served_by;
  if (dst == first_hop) {
    // Origin behind the requester's own gateway: no router-to-router hops.
    path.push_back(first_hop);
    return path;
  }
  if (config_.track_link_load) {
    // Walk the precomputed first_hop-rooted tree from the destination back.
    const topology::SsspResult& tree = trees_[first_hop];
    for (topology::NodeId v = dst; v != first_hop;) {
      path.push_back(v);
      const topology::NodeId parent = tree.parent[v];
      CCNOPT_ASSERT(parent != topology::kNoParent);
      v = parent;
    }
    path.push_back(first_hop);
    std::reverse(path.begin(), path.end());
    return path;
  }
  // No trees without link tracking: run the same Dijkstra those trees come
  // from, so both branches reconstruct identical paths.
  const topology::SsspResult sssp =
      topology::dijkstra_filtered(graph_, first_hop, failed_);
  return topology::extract_path(sssp, first_hop, dst);
}

void CcnNetwork::prefetch(topology::NodeId first_hop,
                          cache::ContentId content) const {
  stores_[first_hop]->prefetch(content);
  const cache::ContentId offset = content - owner_first_rank_;
  if (offset < owner_by_offset_.size()) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&owner_by_offset_[offset]);
#endif
  }
}

const cache::PartitionedStore& CcnNetwork::store(topology::NodeId id) const {
  CCNOPT_EXPECTS(id < stores_.size());
  return *stores_[id];
}

CcnNetwork::CacheTotals CcnNetwork::cache_totals() const {
  CacheTotals totals;
  for (std::size_t id = 0; id < stores_.size(); ++id) {
    const cache::PartitionedStore& partitioned = *stores_[id];
    const cache::CacheStats& local_stats = partitioned.local().stats();
    totals.evictions += local_stats.evictions;
    totals.insertions += local_stats.insertions;
    totals.occupancy += partitioned.size();
    totals.capacity += capacity_of(static_cast<topology::NodeId>(id));
  }
  return totals;
}

}  // namespace ccnopt::sim
