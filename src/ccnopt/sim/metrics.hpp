// Simulation measurement: per-tier counts and latency/hop accumulators,
// reported as the quantities the paper evaluates (origin load, average
// latency, average hop count, coordination messages).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ccnopt/numerics/stats.hpp"
#include "ccnopt/obs/registry.hpp"

namespace ccnopt::sim {

/// Where a request was ultimately served from (the three latency tiers of
/// Figure 2).
enum class ServeTier { kLocal = 0, kNetwork = 1, kOrigin = 2 };

const char* to_string(ServeTier tier);

class MetricsCollector {
 public:
  MetricsCollector();

  void record(ServeTier tier, double latency_ms, std::uint32_t hops);
  void record_coordination_messages(std::uint64_t count) {
    coordination_messages_ += count;
  }
  /// Returns the collector to its freshly constructed state — every
  /// accumulator is cleared, including coordination_messages_ and the
  /// latency histogram.
  void reset();

  std::uint64_t total_requests() const;
  std::uint64_t tier_count(ServeTier tier) const;
  /// Fraction of requests served by `tier`; 0 when nothing recorded.
  double tier_fraction(ServeTier tier) const;
  /// Fraction of requests served by the origin (the paper's "load on
  /// origin").
  double origin_load() const { return tier_fraction(ServeTier::kOrigin); }

  /// Mean end-to-end latency over all recorded requests (ms).
  double mean_latency_ms() const;
  /// Mean latency conditional on the tier — the empirical d0/d1/d2.
  double mean_tier_latency_ms(ServeTier tier) const;
  /// Mean router-side hop count per request.
  double mean_hops() const;

  std::uint64_t coordination_messages() const {
    return coordination_messages_;
  }

  /// Fixed-bucket latency distribution accumulated by record(); merged
  /// into the obs::metrics() registry once per simulation run so the hot
  /// path never touches the registry.
  const obs::Histogram& latency_histogram() const { return latency_hist_; }

  /// Upper bucket bounds (ms) of latency_histogram().
  static std::vector<double> latency_bucket_bounds();

 private:
  numerics::RunningStats latency_;
  numerics::RunningStats hops_;
  numerics::RunningStats tier_latency_[3];
  std::uint64_t tier_counts_[3] = {0, 0, 0};
  std::uint64_t coordination_messages_ = 0;
  obs::Histogram latency_hist_;
};

/// Final report of one simulation run.
struct SimReport {
  std::uint64_t total_requests = 0;
  /// Requests that joined an in-flight fetch instead of issuing their own
  /// (0 unless SimConfig::interest_aggregation).
  std::uint64_t aggregated_requests = 0;
  /// Upstream fetches actually issued (network + origin tiers, after
  /// aggregation).
  std::uint64_t upstream_fetches = 0;
  double local_fraction = 0.0;
  double network_fraction = 0.0;
  double origin_load = 0.0;
  double mean_latency_ms = 0.0;
  double mean_hops = 0.0;
  double mean_local_latency_ms = 0.0;    // empirical d0
  double mean_network_latency_ms = 0.0;  // empirical d1
  double mean_origin_latency_ms = 0.0;   // empirical d2
  std::uint64_t coordination_messages = 0;
};

SimReport make_report(const MetricsCollector& metrics);

std::ostream& operator<<(std::ostream& out, const SimReport& report);

}  // namespace ccnopt::sim
