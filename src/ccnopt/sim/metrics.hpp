// Simulation measurement: per-tier counts and latency/hop accumulators,
// reported as the quantities the paper evaluates (origin load, average
// latency, average hop count, coordination messages).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ccnopt/numerics/stats.hpp"
#include "ccnopt/obs/registry.hpp"

namespace ccnopt::sim {

/// Where a request was ultimately served from (the three latency tiers of
/// Figure 2).
enum class ServeTier { kLocal = 0, kNetwork = 1, kOrigin = 2 };

const char* to_string(ServeTier tier);

/// Accumulates per-request measurements into PER-ROUTER partial
/// accumulators (Welford stats, tier counts, a fixed-point latency
/// histogram) and aggregates them on demand through the deterministic
/// fixed-shape merge tree of numerics::merge_tree. The per-router
/// partials are the canonical accumulation order: every request engine
/// records each router's requests in that router's emission order, and
/// the slot array is always sized to the router count — so the
/// aggregated moments are bit-identical whichever engine ran and however
/// many shards recorded concurrently (shards own disjoint routers, hence
/// disjoint slots).
class MetricsCollector {
 public:
  /// One router slot; single-slot collectors behave like a plain global
  /// accumulator (the router-less record() overload below).
  MetricsCollector();

  /// Resizes the per-router slot array, clearing all request
  /// accumulators (coordination messages are preserved — they are
  /// recorded per run, not per router). Engines call this once before
  /// replay with the network's router count.
  void resize_routers(std::size_t router_count);
  std::size_t router_count() const { return slots_.size(); }

  /// Records one served request against `router`'s slot. Safe to call
  /// concurrently for DISTINCT routers; calls for the same router must
  /// be serialized (the sharded engine's router partition guarantees
  /// this).
  void record(std::size_t router, ServeTier tier, double latency_ms,
              std::uint32_t hops);
  /// Single-slot convenience (router 0) for unit tests and call sites
  /// without a router identity.
  void record(ServeTier tier, double latency_ms, std::uint32_t hops) {
    record(0, tier, latency_ms, hops);
  }
  void record_coordination_messages(std::uint64_t count) {
    coordination_messages_ += count;
  }
  /// Returns the collector to its freshly constructed state — every
  /// router slot is cleared back to a single empty slot, including
  /// coordination_messages_ and the latency histograms.
  void reset();

  std::uint64_t total_requests() const;
  std::uint64_t tier_count(ServeTier tier) const;
  /// Fraction of requests served by `tier`; 0 when nothing recorded.
  double tier_fraction(ServeTier tier) const;
  /// Fraction of requests served by the origin (the paper's "load on
  /// origin").
  double origin_load() const { return tier_fraction(ServeTier::kOrigin); }

  /// Mean end-to-end latency over all recorded requests (ms).
  double mean_latency_ms() const;
  /// Mean latency conditional on the tier — the empirical d0/d1/d2.
  double mean_tier_latency_ms(ServeTier tier) const;
  /// Mean router-side hop count per request.
  double mean_hops() const;

  std::uint64_t coordination_messages() const {
    return coordination_messages_;
  }

  /// Fixed-bucket latency distribution accumulated by record(): the
  /// per-router histograms merged in router-index order (fixed-point
  /// sums, so the merge is exact under any grouping). Merged into the
  /// obs::metrics() registry once per simulation run so the hot path
  /// never touches the registry.
  obs::Histogram latency_histogram() const;

  /// Upper bucket bounds (ms) of latency_histogram().
  static std::vector<double> latency_bucket_bounds();

 private:
  /// One router's partial accumulators. Every double-valued statistic
  /// lives here (never globally) so concurrent shards touch disjoint
  /// memory and the aggregation order is canonical.
  struct RouterSlot {
    numerics::RunningStats latency;
    numerics::RunningStats hops;
    numerics::RunningStats tier_latency[3];
    std::uint64_t tier_counts[3] = {0, 0, 0};
    obs::Histogram latency_hist;
  };

  /// Fixed-shape merge-tree fold of one RunningStats member over the
  /// router slots, in router-index order.
  template <typename Member>
  numerics::RunningStats fold(const Member& member) const;

  std::vector<RouterSlot> slots_;
  std::uint64_t coordination_messages_ = 0;
};

/// Final report of one simulation run.
struct SimReport {
  std::uint64_t total_requests = 0;
  /// Requests that joined an in-flight fetch instead of issuing their own
  /// (0 unless SimConfig::interest_aggregation).
  std::uint64_t aggregated_requests = 0;
  /// Upstream fetches actually issued (network + origin tiers, after
  /// aggregation).
  std::uint64_t upstream_fetches = 0;
  double local_fraction = 0.0;
  double network_fraction = 0.0;
  double origin_load = 0.0;
  double mean_latency_ms = 0.0;
  double mean_hops = 0.0;
  double mean_local_latency_ms = 0.0;    // empirical d0
  double mean_network_latency_ms = 0.0;  // empirical d1
  double mean_origin_latency_ms = 0.0;   // empirical d2
  std::uint64_t coordination_messages = 0;
};

SimReport make_report(const MetricsCollector& metrics);

std::ostream& operator<<(std::ostream& out, const SimReport& report);

}  // namespace ccnopt::sim
