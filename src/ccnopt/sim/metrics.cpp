#include "ccnopt/sim/metrics.hpp"

#include <ostream>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::sim {

const char* to_string(ServeTier tier) {
  switch (tier) {
    case ServeTier::kLocal:
      return "local";
    case ServeTier::kNetwork:
      return "network";
    case ServeTier::kOrigin:
      return "origin";
  }
  return "unknown";
}

std::vector<double> MetricsCollector::latency_bucket_bounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
}

MetricsCollector::MetricsCollector() { resize_routers(1); }

void MetricsCollector::resize_routers(std::size_t router_count) {
  CCNOPT_EXPECTS(router_count >= 1);
  slots_.assign(router_count, RouterSlot{});
  for (RouterSlot& slot : slots_) {
    slot.latency_hist = obs::Histogram(latency_bucket_bounds());
  }
}

void MetricsCollector::record(std::size_t router, ServeTier tier,
                              double latency_ms, std::uint32_t hops) {
  CCNOPT_EXPECTS(latency_ms >= 0.0);
  CCNOPT_EXPECTS(router < slots_.size());
  RouterSlot& slot = slots_[router];
  slot.latency.add(latency_ms);
  slot.hops.add(static_cast<double>(hops));
  const auto index = static_cast<std::size_t>(tier);
  slot.tier_latency[index].add(latency_ms);
  ++slot.tier_counts[index];
  slot.latency_hist.observe(latency_ms);
}

void MetricsCollector::reset() {
  // Back to the freshly constructed state: one empty router slot. The
  // slot assignment clears every per-request accumulator field-wise; a
  // new global field added without a matching line here should fail the
  // regression test in test_sim_metrics.cpp.
  resize_routers(1);
  coordination_messages_ = 0;
}

template <typename Member>
numerics::RunningStats MetricsCollector::fold(const Member& member) const {
  // Materialize the per-router partials in router-index order, then
  // reduce through the fixed-shape merge tree: the tree's grouping
  // depends only on slots_.size(), so the combined moments are
  // bit-identical however many shards filled the slots.
  std::vector<numerics::RunningStats> parts;
  parts.reserve(slots_.size());
  for (const RouterSlot& slot : slots_) parts.push_back(member(slot));
  return numerics::merge_tree(parts);
}

std::uint64_t MetricsCollector::total_requests() const {
  std::uint64_t total = 0;
  for (const RouterSlot& slot : slots_) {
    total += slot.tier_counts[0] + slot.tier_counts[1] + slot.tier_counts[2];
  }
  return total;
}

std::uint64_t MetricsCollector::tier_count(ServeTier tier) const {
  const auto index = static_cast<std::size_t>(tier);
  std::uint64_t total = 0;
  for (const RouterSlot& slot : slots_) total += slot.tier_counts[index];
  return total;
}

double MetricsCollector::tier_fraction(ServeTier tier) const {
  const std::uint64_t total = total_requests();
  if (total == 0) return 0.0;
  return static_cast<double>(tier_count(tier)) / static_cast<double>(total);
}

double MetricsCollector::mean_latency_ms() const {
  const numerics::RunningStats stats =
      fold([](const RouterSlot& slot) { return slot.latency; });
  return stats.count() == 0 ? 0.0 : stats.mean();
}

double MetricsCollector::mean_tier_latency_ms(ServeTier tier) const {
  const auto index = static_cast<std::size_t>(tier);
  const numerics::RunningStats stats = fold(
      [index](const RouterSlot& slot) { return slot.tier_latency[index]; });
  return stats.count() == 0 ? 0.0 : stats.mean();
}

double MetricsCollector::mean_hops() const {
  const numerics::RunningStats stats =
      fold([](const RouterSlot& slot) { return slot.hops; });
  return stats.count() == 0 ? 0.0 : stats.mean();
}

obs::Histogram MetricsCollector::latency_histogram() const {
  obs::Histogram merged(latency_bucket_bounds());
  // Router-index order; the fixed-point sums make any grouping exact,
  // so the order is a convention, not a correctness requirement.
  for (const RouterSlot& slot : slots_) merged.merge(slot.latency_hist);
  return merged;
}

SimReport make_report(const MetricsCollector& metrics) {
  SimReport report;
  report.total_requests = metrics.total_requests();
  report.local_fraction = metrics.tier_fraction(ServeTier::kLocal);
  report.network_fraction = metrics.tier_fraction(ServeTier::kNetwork);
  report.origin_load = metrics.origin_load();
  report.mean_latency_ms = metrics.mean_latency_ms();
  report.mean_hops = metrics.mean_hops();
  report.mean_local_latency_ms =
      metrics.mean_tier_latency_ms(ServeTier::kLocal);
  report.mean_network_latency_ms =
      metrics.mean_tier_latency_ms(ServeTier::kNetwork);
  report.mean_origin_latency_ms =
      metrics.mean_tier_latency_ms(ServeTier::kOrigin);
  report.coordination_messages = metrics.coordination_messages();
  return report;
}

std::ostream& operator<<(std::ostream& out, const SimReport& report) {
  out << "requests=" << report.total_requests
      << " local=" << report.local_fraction
      << " network=" << report.network_fraction
      << " origin=" << report.origin_load
      << " mean_latency_ms=" << report.mean_latency_ms
      << " mean_hops=" << report.mean_hops
      << " coordination_messages=" << report.coordination_messages;
  return out;
}

}  // namespace ccnopt::sim
