#include "ccnopt/sim/metrics.hpp"

#include <ostream>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::sim {

const char* to_string(ServeTier tier) {
  switch (tier) {
    case ServeTier::kLocal:
      return "local";
    case ServeTier::kNetwork:
      return "network";
    case ServeTier::kOrigin:
      return "origin";
  }
  return "unknown";
}

std::vector<double> MetricsCollector::latency_bucket_bounds() {
  return {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0};
}

MetricsCollector::MetricsCollector()
    : latency_hist_(latency_bucket_bounds()) {}

void MetricsCollector::record(ServeTier tier, double latency_ms,
                              std::uint32_t hops) {
  CCNOPT_EXPECTS(latency_ms >= 0.0);
  latency_.add(latency_ms);
  hops_.add(static_cast<double>(hops));
  const auto index = static_cast<std::size_t>(tier);
  tier_latency_[index].add(latency_ms);
  ++tier_counts_[index];
  latency_hist_.observe(latency_ms);
}

void MetricsCollector::reset() {
  // Field-wise so every accumulator is provably covered; a new field added
  // without a matching line here should fail the regression test in
  // test_sim_metrics.cpp.
  latency_ = numerics::RunningStats{};
  hops_ = numerics::RunningStats{};
  for (numerics::RunningStats& stats : tier_latency_) {
    stats = numerics::RunningStats{};
  }
  for (std::uint64_t& count : tier_counts_) count = 0;
  coordination_messages_ = 0;
  latency_hist_.reset();
}

std::uint64_t MetricsCollector::total_requests() const {
  return tier_counts_[0] + tier_counts_[1] + tier_counts_[2];
}

std::uint64_t MetricsCollector::tier_count(ServeTier tier) const {
  return tier_counts_[static_cast<std::size_t>(tier)];
}

double MetricsCollector::tier_fraction(ServeTier tier) const {
  const std::uint64_t total = total_requests();
  if (total == 0) return 0.0;
  return static_cast<double>(tier_count(tier)) / static_cast<double>(total);
}

double MetricsCollector::mean_latency_ms() const {
  return latency_.count() == 0 ? 0.0 : latency_.mean();
}

double MetricsCollector::mean_tier_latency_ms(ServeTier tier) const {
  const auto& stats = tier_latency_[static_cast<std::size_t>(tier)];
  return stats.count() == 0 ? 0.0 : stats.mean();
}

double MetricsCollector::mean_hops() const {
  return hops_.count() == 0 ? 0.0 : hops_.mean();
}

SimReport make_report(const MetricsCollector& metrics) {
  SimReport report;
  report.total_requests = metrics.total_requests();
  report.local_fraction = metrics.tier_fraction(ServeTier::kLocal);
  report.network_fraction = metrics.tier_fraction(ServeTier::kNetwork);
  report.origin_load = metrics.origin_load();
  report.mean_latency_ms = metrics.mean_latency_ms();
  report.mean_hops = metrics.mean_hops();
  report.mean_local_latency_ms =
      metrics.mean_tier_latency_ms(ServeTier::kLocal);
  report.mean_network_latency_ms =
      metrics.mean_tier_latency_ms(ServeTier::kNetwork);
  report.mean_origin_latency_ms =
      metrics.mean_tier_latency_ms(ServeTier::kOrigin);
  report.coordination_messages = metrics.coordination_messages();
  return report;
}

std::ostream& operator<<(std::ostream& out, const SimReport& report) {
  out << "requests=" << report.total_requests
      << " local=" << report.local_fraction
      << " network=" << report.network_fraction
      << " origin=" << report.origin_load
      << " mean_latency_ms=" << report.mean_latency_ms
      << " mean_hops=" << report.mean_hops
      << " coordination_messages=" << report.coordination_messages;
  return out;
}

}  // namespace ccnopt::sim
