// Ties workload, network, metrics and the event queue into one run:
// Poisson request arrivals per router, a warmup phase (cache convergence),
// then a measured phase whose metrics form the SimReport.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ccnopt/obs/timeline.hpp"
#include "ccnopt/obs/topo.hpp"
#include "ccnopt/obs/trace.hpp"
#include "ccnopt/sim/event.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/sim/workload.hpp"

namespace ccnopt::sim {

class ShardExecutor;  // sharded.hpp

struct SimConfig {
  NetworkConfig network;
  /// Per-router coordinated storage x (contents). The provisioning epoch
  /// runs once at simulation start.
  std::size_t coordinated_x = 0;
  /// Zipf exponent of the default IRM workload (ignored when a custom
  /// workload is installed).
  double zipf_s = 0.8;
  std::uint64_t warmup_requests = 0;
  std::uint64_t measured_requests = 100000;
  /// Poisson arrival rate per router, requests per millisecond.
  double arrival_rate_per_router = 1.0;
  /// CCN Pending Interest Table semantics: while a router's fetch for a
  /// content is in flight, further local requests for it join the pending
  /// interest instead of issuing their own upstream fetch, and complete
  /// together when the data arrives. The paper's model has no notion of
  /// in-flight time, so this is off by default;
  /// bench_ablation_aggregation measures what it saves.
  bool interest_aggregation = false;
  /// Request-engine batching: requests are drawn from the arrival processes
  /// in blocks of this many, then served in a tight loop with the next
  /// request's cache state prefetched one iteration ahead, then recorded
  /// into metrics/traces in emission order. Produces bit-identical reports,
  /// traces and metric exports to the pure event loop (the only event kind
  /// without aggregation is an arrival, and the block replays the queue's
  /// exact (time, seq) pop order). 0 forces the event loop; interest
  /// aggregation always uses the event loop (it needs completion events).
  std::uint64_t batch_size = 256;
  /// Sampler implementation for the default Zipf workload: kAuto keeps the
  /// alias table at small catalogs and switches to the constant-memory
  /// rejection-inversion sampler at web-scale catalogs.
  popularity::SamplerKind sampler_kind = popularity::SamplerKind::kAuto;
  /// Sharded request engine: when > 1 (and the run qualifies — see
  /// sharded_run_supported in sharded.hpp), the request stream is
  /// partitioned by first-hop router across this many shards, served
  /// against the one shared network, and folded back in canonical order.
  /// Every output (report, metrics, timeline, topo, traces) is
  /// byte-identical to the single-thread engines at any shard count; an
  /// attached ShardExecutor (set_shard_executor) supplies the worker
  /// threads, otherwise the shards run serially on the calling thread.
  /// Runs that do not qualify fall back to the single-thread engines
  /// (with a one-line CCNOPT_LOG(kWarn) naming the disqualifier, so
  /// bench runs cannot silently measure the event loop).
  std::size_t shards = 1;
  /// Sharded engine only: run the per-window record pass (metrics,
  /// timeline partials, topo tier counters) shard-parallel on the
  /// executor. The accumulators are per-router partials folded in
  /// router-index order, so the serial walk (false) produces
  /// byte-identical output — the knob exists to time the record pass
  /// serial vs parallel (bench_throughput_replay's record_speedup) and
  /// to A/B the two in test_sim_record_parallel.
  bool parallel_record = true;
  std::uint64_t seed = 42;
  /// Time-resolved telemetry: when > 0, the run accumulates an
  /// obs::Timeline with one row per `timeline_epoch` emitted requests
  /// (warmup included, so convergence is visible). Epoch boundaries are
  /// request indices — never wall clock — and every column is a pure
  /// function of seeds and inputs, so the timeline is byte-identical for
  /// any thread count. See timeline_columns() for the column roster.
  /// 0 disables timeline accumulation.
  std::uint64_t timeline_epoch = 0;
  /// Deterministic request tracing: every k-th request (1-in-k sampling
  /// keyed off the run seed) is recorded into traces(). 0 disables
  /// tracing; 1 traces every measured request. The sampled set is a pure
  /// function of (seed, request index), so traces are bit-identical across
  /// thread counts. With interest_aggregation, requests that join an
  /// in-flight fetch are not traced (only the initiating fetch is).
  std::uint64_t trace_sample_k = 0;
  /// Topology-resolved telemetry: when true, the run accumulates an
  /// obs::TopoRecorder (per-router tier/latency/placement counters,
  /// per-link traversal loads, the placement-depth histogram) exposed via
  /// topo(). Forces network.track_link_load on so the link counters are
  /// live. Tier counters cover the measured phase only (they reconcile
  /// exactly with the run's SimReport); placements and link loads cover
  /// the whole run. With interest_aggregation, requests that join an
  /// in-flight fetch are not topo-recorded (same rule as traces). Off by
  /// default — the serve path then pays a single null-pointer branch.
  bool record_topo = false;
};

class Simulation {
 public:
  /// Builds the network and a default ZipfWorkload.
  Simulation(topology::Graph graph, SimConfig config);

  /// Replaces the workload (e.g. CyclicWorkload for the motivating
  /// example). Must be called before run(); the workload must cover
  /// router_count() routers and a catalog within the network's.
  void set_workload(std::unique_ptr<Workload> workload);

  /// Provisions coordination, replays warmup + measured requests, returns
  /// the measured-phase report (coordination messages included).
  SimReport run();

  /// Attaches the executor that runs shard bodies when config().shards > 1
  /// (e.g. runtime::ShardScheduler); nullptr (the default) runs the shards
  /// serially on the calling thread. Not owned; must outlive run().
  void set_shard_executor(ShardExecutor* executor) {
    shard_executor_ = executor;
  }

  /// Wall-clock split of the last run(): time spent emitting warmup
  /// requests vs measured requests (benchmarks report the two phases'
  /// throughput separately). Zeroes before the first run.
  struct PhaseSeconds {
    double warmup = 0.0;
    double measured = 0.0;
  };
  PhaseSeconds last_phase_seconds() const { return phase_seconds_; }

  /// Wall-clock seconds the last run() spent in the record pass (summed
  /// over windows). 0 for the single-thread engines, whose record work
  /// is not separately clocked.
  double last_record_seconds() const { return record_seconds_; }

  const CcnNetwork& network() const { return *network_; }
  CcnNetwork& network() { return *network_; }

  /// Sampled request traces of the last run() (empty when
  /// trace_sample_k == 0), in request emission order.
  const obs::TraceBuffer& traces() const { return trace_; }

  /// Per-epoch telemetry of the last run() (disabled/empty when
  /// timeline_epoch == 0), in epoch order. Covers warmup + measured
  /// requests; byte-identical for any thread count.
  const obs::Timeline& timeline() const { return timeline_; }

  /// Topology-resolved telemetry of the last run() (disabled/empty unless
  /// record_topo); byte-identical for any thread count.
  const obs::TopoRecorder& topo() const { return topo_; }

 private:
  /// The sharded request engine (sharded.cpp); reached from run() when
  /// config().shards > 1 and the run qualifies.
  SimReport run_sharded_impl(ShardExecutor& executor);

  SimConfig config_;
  std::unique_ptr<CcnNetwork> network_;
  std::unique_ptr<Workload> workload_;
  ShardExecutor* shard_executor_ = nullptr;
  PhaseSeconds phase_seconds_;
  double record_seconds_ = 0.0;
  obs::TraceBuffer trace_;
  obs::Timeline timeline_;
  obs::TopoRecorder topo_;
};

/// The fixed column roster of simulation timelines, in column order:
/// requests, local, network, origin, aggregated, latency_ms_sum, hops_sum,
/// local_latency_ms_sum, network_latency_ms_sum, origin_latency_ms_sum,
/// evictions, insertions, occupancy, link_traversals, max_link_load.
/// All columns are per-epoch deltas except `occupancy` and `max_link_load`,
/// which are end-of-epoch gauges. Link columns are 0 when
/// NetworkConfig::track_link_load is off.
const std::vector<std::string>& timeline_columns();

}  // namespace ccnopt::sim
