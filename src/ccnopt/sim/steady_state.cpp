#include "ccnopt/sim/steady_state.hpp"

#include <algorithm>
#include <utility>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::sim {
namespace {

double safe_div(double numerator, double denominator) {
  return denominator == 0.0 ? 0.0 : numerator / denominator;
}

}  // namespace

SimReport report_from_timeline(const obs::Timeline& timeline,
                               std::size_t from_epoch,
                               std::uint64_t coordination_messages) {
  const auto column = [&timeline](const char* name) {
    const std::size_t index = timeline.column_index(name);
    CCNOPT_EXPECTS(index != obs::Timeline::npos);
    return index;
  };
  const double local = timeline.column_sum(column("local"), from_epoch);
  const double network = timeline.column_sum(column("network"), from_epoch);
  const double origin = timeline.column_sum(column("origin"), from_epoch);
  const double served = local + network + origin;

  SimReport report;
  report.total_requests = static_cast<std::uint64_t>(served);
  report.aggregated_requests = static_cast<std::uint64_t>(
      timeline.column_sum(column("aggregated"), from_epoch));
  report.upstream_fetches = static_cast<std::uint64_t>(network + origin);
  report.local_fraction = safe_div(local, served);
  report.network_fraction = safe_div(network, served);
  report.origin_load = safe_div(origin, served);
  report.mean_latency_ms =
      safe_div(timeline.column_sum(column("latency_ms_sum"), from_epoch),
               served);
  report.mean_hops =
      safe_div(timeline.column_sum(column("hops_sum"), from_epoch), served);
  report.mean_local_latency_ms = safe_div(
      timeline.column_sum(column("local_latency_ms_sum"), from_epoch), local);
  report.mean_network_latency_ms = safe_div(
      timeline.column_sum(column("network_latency_ms_sum"), from_epoch),
      network);
  report.mean_origin_latency_ms = safe_div(
      timeline.column_sum(column("origin_latency_ms_sum"), from_epoch),
      origin);
  report.coordination_messages = coordination_messages;
  return report;
}

SteadyStateRun run_to_steady_state(topology::Graph graph, SimConfig config,
                                   const obs::SteadyStateOptions& options) {
  // The detector decides the warmup: fold any configured warmup into one
  // measured budget and let every request produce timeline rows.
  config.measured_requests += config.warmup_requests;
  config.warmup_requests = 0;
  CCNOPT_EXPECTS(config.measured_requests > 0);
  if (config.timeline_epoch == 0) {
    config.timeline_epoch = std::max<std::uint64_t>(
        config.measured_requests / 64, 1);
  }

  Simulation simulation(std::move(graph), std::move(config));
  const SimReport full = simulation.run();
  const obs::Timeline& timeline = simulation.timeline();

  SteadyStateRun result;
  result.full_report = full;
  result.timeline = timeline;
  result.topo = simulation.topo();

  // Convergence of the per-epoch origin load (the paper's headline
  // steady-state metric; caches filling up show as a falling series).
  const std::size_t origin_col = timeline.column_index("origin");
  const std::size_t requests_col = timeline.column_index("requests");
  CCNOPT_EXPECTS(origin_col != obs::Timeline::npos);
  CCNOPT_EXPECTS(requests_col != obs::Timeline::npos);
  std::vector<double> origin_load;
  origin_load.reserve(timeline.epochs().size());
  for (const obs::TimelineEpoch& row : timeline.epochs()) {
    origin_load.push_back(
        safe_div(row.values[origin_col], row.values[requests_col]));
  }
  result.steady = obs::detect_steady_state(origin_load, options);
  result.measured_from_epoch =
      result.steady.converged ? result.steady.epoch : origin_load.size() / 2;

  for (const obs::TimelineEpoch& row : timeline.epochs()) {
    if (row.epoch >= result.measured_from_epoch) break;
    result.steady_state_requests +=
        static_cast<std::uint64_t>(row.values[requests_col]);
  }
  result.report = report_from_timeline(timeline, result.measured_from_epoch,
                                       full.coordination_messages);
  return result;
}

}  // namespace ccnopt::sim
