// Request workloads. Each router has an attached client population that
// emits content requests; ZipfWorkload is the Independent Reference Model
// stream of Section III-A, CyclicWorkload replays a fixed pattern (the
// motivating example's {a, a, b} flows).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccnopt/cache/policy.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/popularity/sampler.hpp"

namespace ccnopt::sim {

/// Per-router request source; `next(router)` returns the rank requested by
/// that router's clients.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual cache::ContentId next(std::size_t router_index) = 0;
  virtual std::uint64_t catalog_size() const = 0;
  /// False for routers with no attached clients (they route and cache but
  /// never originate requests).
  virtual bool active(std::size_t) const { return true; }
  /// True when each router's request sequence depends only on how many
  /// times next() was called FOR THAT ROUTER — never on the global
  /// interleaving across routers. The sharded engine requires this to call
  /// next() from concurrent shards (each owning disjoint routers) and still
  /// reproduce the sequential streams bit for bit. Workloads whose drift
  /// state cannot be derived from per-router positions (and anything else
  /// with cross-router mutable state) must return false.
  virtual bool per_router_streams() const { return false; }
};

/// IRM: every router draws i.i.d. Zipf(s, N) ranks from its own seeded
/// stream (so event interleaving does not perturb per-router sequences).
/// `kind` selects the sampler implementation: the default kAuto keeps the
/// alias table at small catalogs (identical streams to every historical
/// run) and switches to the constant-memory rejection-inversion sampler at
/// web-scale catalogs (popularity/sampler.hpp).
class ZipfWorkload final : public Workload {
 public:
  ZipfWorkload(std::size_t router_count, std::uint64_t catalog_size,
               double exponent, std::uint64_t seed,
               popularity::SamplerKind kind = popularity::SamplerKind::kAuto);

  cache::ContentId next(std::size_t router_index) override;
  std::uint64_t catalog_size() const override { return catalog_size_; }
  /// IRM streams are seeded per router and never consult global state, so
  /// shards may interleave routers freely.
  bool per_router_streams() const override { return true; }

 private:
  /// Draws per sample_block() refill. Refill boundaries depend only on the
  /// per-router call count, so buffering never changes the emitted stream.
  static constexpr std::size_t kDrawBlock = 256;

  struct DrawBuffer {
    std::vector<std::uint64_t> draws;  // sized kDrawBlock on first refill
    std::size_t pos = 0;
    std::size_t filled = 0;
  };

  std::uint64_t catalog_size_;
  std::shared_ptr<popularity::RankSampler> sampler_;  // shared, stateless
  std::vector<Rng> streams_;
  std::vector<DrawBuffer> buffers_;
};

/// Zipf IRM whose exponent drifts through a schedule of phases — the
/// non-stationary workload the adaptive controller (model/adaptive.hpp) is
/// built against. Each router derives the phase from ITS OWN stream
/// position scaled by the router count: router r's k-th draw (0-based)
/// uses the phase whose start_request satisfies k * router_count >=
/// start_request. With one router this is exactly the global-count
/// schedule; with many, every router crosses each phase boundary within
/// router_count requests of the global schedule while depending only on
/// per-router state — which is what lets the sharded engine draw from
/// concurrent shards (per_router_streams() below) and still replay the
/// sequential streams bit for bit.
class DriftingZipfWorkload final : public Workload {
 public:
  struct Phase {
    std::uint64_t start_request = 0;  ///< first global request index of the phase
    double exponent = 0.8;
  };

  /// Phases must be non-empty, start at request 0, be strictly increasing
  /// in start_request, and carry exponents > 0. All phase samplers are
  /// built here (not lazily) so next() is safe from concurrent shards.
  DriftingZipfWorkload(std::size_t router_count, std::uint64_t catalog_size,
                       std::vector<Phase> schedule, std::uint64_t seed);

  cache::ContentId next(std::size_t router_index) override;
  std::uint64_t catalog_size() const override { return catalog_size_; }
  /// Phase state is per-router (derived from the router's own draw
  /// count), so shards may interleave routers freely.
  bool per_router_streams() const override { return true; }

  /// Exponent of the most advanced router's current phase (equals the
  /// global-schedule phase for single-router workloads). Call between
  /// runs, not while shards are drawing.
  double current_exponent() const;
  std::uint64_t requests_emitted() const;

 private:
  std::uint64_t catalog_size_;
  std::vector<Phase> schedule_;
  std::vector<std::shared_ptr<popularity::RankSampler>> samplers_;
  std::vector<Rng> streams_;
  // Per-router draw counts and phase cursors; next(r) touches only
  // index r of each.
  std::vector<std::uint64_t> counts_;
  std::vector<std::size_t> phase_;
};

/// Zipf IRM with catalog churn: popularity ranks slide through the content
/// id space, modeling new contents displacing old ones (news cycles, VoD
/// releases). Rank r maps to id ((base + r - 1) mod catalog) + 1. Each
/// router derives the base from its own stream position scaled by the
/// router count — router r's k-th draw (0-based) uses base
/// (k * router_count) / drift_interval — so the base advances by one per
/// `drift_interval` requests of estimated global progress while depending
/// only on per-router state (per_router_streams() below, the sharded
/// engine's requirement). With one router this is exactly the old
/// global-count rule. After `active_window * drift_interval` requests the
/// popular set has fully turned over. The paper's steady-state
/// provisioning assumes no churn; bench_ablation_churn measures what that
/// assumption costs.
class SlidingZipfWorkload final : public Workload {
 public:
  /// Requires active_window <= catalog_size, drift_interval >= 1.
  SlidingZipfWorkload(std::size_t router_count, std::uint64_t catalog_size,
                      double exponent, std::uint64_t active_window,
                      std::uint64_t drift_interval, std::uint64_t seed);

  cache::ContentId next(std::size_t router_index) override;
  std::uint64_t catalog_size() const override { return catalog_size_; }
  /// Base state is per-router (derived from the router's own draw
  /// count), so shards may interleave routers freely.
  bool per_router_streams() const override { return true; }

  /// Global-progress view of the slide: the base implied by the total
  /// draw count across routers (the base of the last draw, for
  /// single-router workloads). Call between runs, not while shards are
  /// drawing.
  std::uint64_t base_offset() const;

 private:
  std::uint64_t catalog_size_;
  std::uint64_t drift_interval_;
  std::shared_ptr<popularity::RankSampler> sampler_;  // Zipf(active_window)
  std::vector<Rng> streams_;
  std::vector<std::uint64_t> counts_;  // per-router draw counts
};

/// Replays a fixed cyclic pattern per router; routers with an empty pattern
/// never request (the motivating example's R0).
class CyclicWorkload final : public Workload {
 public:
  explicit CyclicWorkload(std::vector<std::vector<cache::ContentId>> patterns);

  cache::ContentId next(std::size_t router_index) override;
  std::uint64_t catalog_size() const override { return max_id_; }

  bool active(std::size_t router_index) const override {
    return !patterns_[router_index].empty();
  }
  bool per_router_streams() const override { return true; }

 private:
  std::vector<std::vector<cache::ContentId>> patterns_;
  std::vector<std::size_t> cursor_;
  std::uint64_t max_id_ = 0;
};

}  // namespace ccnopt::sim
