// Compatibility shim: the Coordinator moved to the strategy layer
// (strategy/coordinator.hpp) so placement strategies can plan epochs
// without depending on the data plane. Existing sim-side includes and the
// ccnopt::sim::Coordinator spelling keep working through this alias.
#pragma once

#include "ccnopt/strategy/coordinator.hpp"

namespace ccnopt::sim {

using Coordinator = strategy::Coordinator;

}  // namespace ccnopt::sim
