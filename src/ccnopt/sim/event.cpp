#include "ccnopt/sim/event.hpp"

#include <utility>

namespace ccnopt::sim {

void EventQueue::schedule_at(SimTime at, Action action) {
  CCNOPT_EXPECTS(at >= now_);
  CCNOPT_EXPECTS(action != nullptr);
  heap_.push(Entry{at, next_seq_++, std::move(action)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is the
  // standard idiom-free alternative: copy the action handle (cheap —
  // std::function) then pop.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.time;
  ++dispatched_;
  entry.action();
  return true;
}

void EventQueue::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace ccnopt::sim
