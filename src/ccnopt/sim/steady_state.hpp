// Detected-convergence simulation runs: instead of guessing a hard-coded
// warmup_requests, run the whole request budget with a timeline enabled,
// find the first epoch where the per-epoch origin load stabilizes
// (obs::detect_steady_state), and rebuild the report from the
// post-convergence epochs only. Used by the benches and the strategy arena
// so "steady state" is measured, not asserted.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ccnopt/obs/timeline.hpp"
#include "ccnopt/sim/simulation.hpp"

namespace ccnopt::sim {

/// Rebuilds a SimReport from the epoch sums of `timeline` restricted to
/// epochs >= from_epoch (all replications): tier counts and fractions,
/// mean/per-tier latencies, mean hops, aggregated requests and upstream
/// fetches all come from the timeline columns; coordination_messages is
/// passed through (the timeline does not track it). Requires a timeline
/// with the sim::timeline_columns() roster.
SimReport report_from_timeline(const obs::Timeline& timeline,
                               std::size_t from_epoch,
                               std::uint64_t coordination_messages = 0);

struct SteadyStateRun {
  /// Report over the post-convergence epochs only (the detected measured
  /// phase). Falls back to the second half of the run when the detector
  /// does not converge.
  SimReport report;
  /// Report over every epoch (the whole request budget), for comparison.
  SimReport full_report;
  /// The detector's verdict on the per-epoch origin-load series.
  obs::SteadyStateResult steady;
  /// First epoch index of the measured phase actually used for `report`
  /// (steady.epoch when converged, half the epochs otherwise).
  std::size_t measured_from_epoch = 0;
  /// Requests discarded as warmup (those before measured_from_epoch) — the
  /// detected replacement for a hard-coded warmup_requests.
  std::uint64_t steady_state_requests = 0;
  /// The full run timeline (epoch size = the config's timeline_epoch).
  obs::Timeline timeline;
  /// Topology-resolved telemetry of the run (disabled/empty unless
  /// config.record_topo). Detection folds the warmup into the measured
  /// budget, so the recorder covers every request of the run — including
  /// the pre-convergence epochs that `report` discards.
  obs::TopoRecorder topo;
};

/// Runs `config`'s whole request budget (warmup_requests is folded into the
/// measured budget and zeroed — the detector decides what warmup was) with
/// a timeline of `config.timeline_epoch` requests per epoch (defaulted to
/// total/64, min 1, when 0), then detects convergence of the per-epoch
/// origin load and rebuilds the steady-state report. Deterministic: every
/// field of the result is a pure function of (graph, config, options).
SteadyStateRun run_to_steady_state(
    topology::Graph graph, SimConfig config,
    const obs::SteadyStateOptions& options = {});

}  // namespace ccnopt::sim
