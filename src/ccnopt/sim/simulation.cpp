#include "ccnopt/sim/simulation.hpp"

#include <vector>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/random.hpp"

namespace ccnopt::sim {

Simulation::Simulation(topology::Graph graph, SimConfig config)
    : config_(std::move(config)) {
  network_ = std::make_unique<CcnNetwork>(std::move(graph), config_.network);
  workload_ = std::make_unique<ZipfWorkload>(
      network_->router_count(), config_.network.catalog_size, config_.zipf_s,
      config_.seed);
}

void Simulation::set_workload(std::unique_ptr<Workload> workload) {
  CCNOPT_EXPECTS(workload != nullptr);
  CCNOPT_EXPECTS(workload->catalog_size() <= config_.network.catalog_size);
  workload_ = std::move(workload);
}

SimReport Simulation::run() {
  CCNOPT_EXPECTS(config_.arrival_rate_per_router > 0.0);
  const std::uint64_t messages = network_->provision(config_.coordinated_x);

  MetricsCollector metrics;
  metrics.record_coordination_messages(messages);

  EventQueue queue;
  const std::uint64_t total_requests =
      config_.warmup_requests + config_.measured_requests;
  std::uint64_t emitted = 0;
  std::uint64_t aggregated = 0;
  std::uint64_t upstream = 0;

  // Per-router arrival processes with independent seeded clocks, each the
  // router's splitmix64 sub-stream of the run seed.
  std::vector<Rng> clocks;
  clocks.reserve(network_->router_count());
  for (std::size_t i = 0; i < network_->router_count(); ++i) {
    clocks.emplace_back(derive_seed(config_.seed, i));
  }

  // Pending Interest Table (per router x content): requests arriving while
  // a fetch is in flight join it and complete at its completion event.
  // A joiner's latency is the remaining flight time — strictly less than a
  // fresh fetch would have cost it.
  struct PendingInterest {
    std::vector<std::pair<SimTime, bool>> joiners;  // (arrival, measured?)
  };
  std::unordered_map<std::uint64_t, PendingInterest> pit;
  const std::uint64_t router_count = network_->router_count();
  const auto pit_key = [router_count](std::size_t router,
                                      cache::ContentId content) {
    return content * router_count + router;
  };

  // One self-rescheduling arrival chain per active router.
  std::function<void(std::size_t)> arrival = [&](std::size_t router) {
    if (emitted >= total_requests) return;
    const bool measured = emitted >= config_.warmup_requests;
    ++emitted;
    const cache::ContentId content = workload_->next(router);

    if (!config_.interest_aggregation) {
      const ServeResult result =
          network_->serve(static_cast<topology::NodeId>(router), content);
      if (result.tier != ServeTier::kLocal) ++upstream;
      if (measured) {
        metrics.record(result.tier, result.latency_ms, result.hops);
      }
    } else {
      const std::uint64_t key = pit_key(router, content);
      const auto it = pit.find(key);
      if (it != pit.end()) {
        ++aggregated;
        it->second.joiners.emplace_back(queue.now(), measured);
      } else {
        const ServeResult result =
            network_->serve(static_cast<topology::NodeId>(router), content);
        if (result.tier == ServeTier::kLocal) {
          if (measured) {
            metrics.record(result.tier, result.latency_ms, result.hops);
          }
        } else {
          ++upstream;
          pit.emplace(key, PendingInterest{});
          queue.schedule_after(
              result.latency_ms, [&metrics, &pit, &queue, key, result,
                                  measured] {
                if (measured) {
                  metrics.record(result.tier, result.latency_ms, result.hops);
                }
                auto node = pit.extract(key);
                CCNOPT_ASSERT(!node.empty());
                for (const auto& [joined_at, joiner_measured] :
                     node.mapped().joiners) {
                  if (joiner_measured) {
                    metrics.record(result.tier, queue.now() - joined_at,
                                   result.hops);
                  }
                }
              });
        }
      }
    }
    queue.schedule_after(
        clocks[router].exponential(config_.arrival_rate_per_router),
        [&arrival, router] { arrival(router); });
  };

  bool any_active = false;
  for (std::size_t router = 0; router < network_->router_count(); ++router) {
    if (!workload_->active(router)) continue;
    any_active = true;
    queue.schedule_after(
        clocks[router].exponential(config_.arrival_rate_per_router),
        [&arrival, router] { arrival(router); });
  }
  CCNOPT_EXPECTS(any_active);

  queue.run();
  CCNOPT_ENSURES(emitted == total_requests);
  CCNOPT_ENSURES(pit.empty());
  SimReport report = make_report(metrics);
  report.aggregated_requests = aggregated;
  report.upstream_fetches = upstream;
  return report;
}

}  // namespace ccnopt::sim
