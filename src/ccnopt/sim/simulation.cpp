#include "ccnopt/sim/simulation.hpp"

#include <chrono>
#include <optional>
#include <queue>
#include <vector>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/logging.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/span.hpp"
#include "ccnopt/sim/engine_detail.hpp"
#include "ccnopt/sim/sharded.hpp"

namespace ccnopt::sim {

using detail::EpochRecorder;
using detail::kTraceSeedIndex;

const std::vector<std::string>& timeline_columns() {
  static const std::vector<std::string> columns = {
      "requests",
      "local",
      "network",
      "origin",
      "aggregated",
      "latency_ms_sum",
      "hops_sum",
      "local_latency_ms_sum",
      "network_latency_ms_sum",
      "origin_latency_ms_sum",
      "evictions",
      "insertions",
      "occupancy",
      "link_traversals",
      "max_link_load",
  };
  return columns;
}

Simulation::Simulation(topology::Graph graph, SimConfig config)
    : config_(std::move(config)) {
  // The topo recorder exports per-link loads, so its runs keep the link
  // counters live. (Tracking never changes serve outcomes, only counters.)
  if (config_.record_topo) config_.network.track_link_load = true;
  network_ = std::make_unique<CcnNetwork>(std::move(graph), config_.network);
  workload_ = std::make_unique<ZipfWorkload>(
      network_->router_count(), config_.network.catalog_size, config_.zipf_s,
      config_.seed, config_.sampler_kind);
}

void Simulation::set_workload(std::unique_ptr<Workload> workload) {
  CCNOPT_EXPECTS(workload != nullptr);
  CCNOPT_EXPECTS(workload->catalog_size() <= config_.network.catalog_size);
  workload_ = std::move(workload);
}

SimReport Simulation::run() {
  CCNOPT_EXPECTS(config_.arrival_rate_per_router > 0.0);
  // Sharded engine dispatch: qualifying runs partition the stream by
  // first-hop router and serve shards concurrently (bit-identical outputs
  // at any shard count); without an attached executor the shards run
  // serially, which keeps the engine testable single-threaded.
  if (config_.shards > 1) {
    if (sharded_run_supported(config_, *workload_, *network_)) {
      if (shard_executor_ != nullptr) {
        return run_sharded_impl(*shard_executor_);
      }
      SerialShardExecutor serial;
      return run_sharded_impl(serial);
    }
    // The fallback is bit-identical by contract, but far slower — never
    // let a bench measure the event loop thinking it measured shards.
    CCNOPT_LOG(kWarn) << "sharded engine: shards=" << config_.shards
                      << " requested but the run does not qualify ("
                      << sharded_unsupported_reason(config_, *workload_,
                                                    *network_)
                      << "); falling back to the single-thread engine";
  }
  record_seconds_ = 0.0;
  const obs::ScopedSpan run_span("sim.run");
  trace_.clear();
  timeline_ = config_.timeline_epoch > 0
                  ? obs::Timeline(config_.timeline_epoch, timeline_columns())
                  : obs::Timeline();
  const obs::TraceSampler sampler(derive_seed(config_.seed, kTraceSeedIndex),
                                  config_.trace_sample_k);
  // Topology-resolved flight recorder: run-local like the timeline's
  // EpochRecorder, merged in replication order by the runner.
  topo_ = obs::TopoRecorder();
  if (config_.record_topo) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
    links.reserve(network_->graph().links().size());
    for (const topology::Graph::Link& link : network_->graph().links()) {
      links.emplace_back(link.u, link.v);
    }
    topo_ = obs::TopoRecorder(network_->graph().name(),
                              network_->router_count(), std::move(links));
  }
  obs::TopoRecorder* const topo = topo_.enabled() ? &topo_ : nullptr;
  network_->set_topo_recorder(topo);
  // Sampled traces record the placement depth even when topo is off.
  network_->set_record_placement_depth(sampler.enabled());
  std::uint64_t messages = 0;
  {
    const obs::ScopedSpan provision_span("sim.provision");
    messages = network_->provision(config_.coordinated_x);
  }

  MetricsCollector metrics;
  metrics.resize_routers(network_->router_count());
  metrics.record_coordination_messages(messages);

  const obs::ScopedSpan replay_span("sim.replay");
  EventQueue queue;
  const std::uint64_t total_requests =
      config_.warmup_requests + config_.measured_requests;
  std::uint64_t emitted = 0;
  std::uint64_t aggregated = 0;
  std::uint64_t upstream = 0;

  // Per-router arrival processes with independent seeded clocks, each the
  // router's splitmix64 sub-stream of the run seed.
  std::vector<Rng> clocks;
  clocks.reserve(network_->router_count());
  for (std::size_t i = 0; i < network_->router_count(); ++i) {
    clocks.emplace_back(derive_seed(config_.seed, i));
  }

  // Per-epoch telemetry (timeline_epoch > 0): one recorder call per emitted
  // request, in emission order, from both engines.
  std::optional<EpochRecorder> recorder;
  if (timeline_.enabled()) {
    recorder.emplace(&timeline_, network_.get(), network_->router_count());
  }

  // Records one sampled request; the decision is pure in (seed, index).
  // Must run straight after the serve() that produced `result` — the hop
  // path reads the network's in-flight routing scratch.
  const auto maybe_trace = [&](std::uint64_t index, std::size_t router,
                               cache::ContentId content,
                               const ServeResult& result) {
    if (!sampler.enabled() || !sampler.should_sample(index)) return;
    obs::TraceEvent event{
        0, index, static_cast<std::uint32_t>(router), content,
        to_string(result.tier), result.hops,
        static_cast<std::uint32_t>(result.served_by), {}, -1,
        result.latency_ms};
    event.path =
        network_->hop_path(static_cast<topology::NodeId>(router), result);
    event.placement_depth = result.placement_depth;
    trace_.push_back(std::move(event));
  };

  // One topo-recorder tick per measured request, in emission order; the
  // tier codes are shared with obs by construction.
  static_assert(static_cast<std::uint32_t>(ServeTier::kLocal) ==
                obs::kTopoTierLocal);
  static_assert(static_cast<std::uint32_t>(ServeTier::kNetwork) ==
                obs::kTopoTierNetwork);
  static_assert(static_cast<std::uint32_t>(ServeTier::kOrigin) ==
                obs::kTopoTierOrigin);
  const auto topo_record = [topo](std::size_t router,
                                  const ServeResult& result) {
    topo->on_request(static_cast<std::uint32_t>(router),
                     static_cast<std::uint32_t>(result.tier),
                     static_cast<std::uint32_t>(result.served_by),
                     result.latency_ms, result.hops);
  };

  // End-of-run snapshot of cache state and link loads into the recorder
  // (whole-run totals; they reconcile with cache_totals()/link_counts()).
  const auto finalize_topo = [&] {
    if (topo == nullptr) return;
    for (topology::NodeId id = 0; id < network_->router_count(); ++id) {
      const cache::PartitionedStore& store = network_->store(id);
      const cache::CacheStats& local_stats = store.local().stats();
      topo->set_router_cache(
          id, local_stats.evictions, local_stats.insertions, store.size(),
          static_cast<std::uint64_t>(network_->capacity_of(id)));
    }
    topo->add_link_traversals(network_->link_counts());
  };

  // Phase wall-clock: the batched engine aligns block ends to the warmup
  // boundary (truncation never changes the merge order) so the split is
  // exact; the event loop stamps at the first measured emission.
  using Clock = std::chrono::steady_clock;
  const Clock::time_point replay_start = Clock::now();
  Clock::time_point warmup_end = replay_start;
  const auto finish_phase_clock = [&] {
    if (config_.warmup_requests == 0) warmup_end = replay_start;
    phase_seconds_.warmup =
        std::chrono::duration<double>(warmup_end - replay_start).count();
    phase_seconds_.measured =
        std::chrono::duration<double>(Clock::now() - warmup_end).count();
  };

  const bool batched =
      !config_.interest_aggregation && config_.batch_size > 0;
  if (batched) {
    // Batched request engine. Without aggregation the event queue only ever
    // holds arrival events, one per active router, each rescheduling itself
    // on pop — so the queue's behaviour is replayed exactly by a k-way
    // merge on (time, seq): initial seqs in router scheduling order, then a
    // global counter incremented at each pop, just as EventQueue stamps
    // schedule_after() calls. Per-router clocks and workload streams are
    // touched in identical order to the event loop, so every stream,
    // report, trace and metric export is bit-identical to batch_size = 0.
    struct NextArrival {
      SimTime time;
      std::uint64_t seq;
      std::uint32_t router;
    };
    const auto later = [](const NextArrival& a, const NextArrival& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    };
    std::priority_queue<NextArrival, std::vector<NextArrival>, decltype(later)>
        heap(later);
    std::uint64_t seq_counter = 0;
    bool any_active = false;
    for (std::size_t router = 0; router < network_->router_count(); ++router) {
      if (!workload_->active(router)) continue;
      any_active = true;
      heap.push(NextArrival{
          clocks[router].exponential(config_.arrival_rate_per_router),
          seq_counter++, static_cast<std::uint32_t>(router)});
    }
    CCNOPT_EXPECTS(any_active);

    struct BlockEntry {
      std::uint64_t index;  // global emission index
      cache::ContentId content;
      std::uint32_t router;
    };
    const std::size_t batch = static_cast<std::size_t>(config_.batch_size);
    std::vector<BlockEntry> block;
    block.reserve(batch);
    std::vector<ServeResult> results(batch);
    while (emitted < total_requests) {
      // Generation pass: resolve the next block of (router, content) pairs
      // by replaying the queue's exact pop order.
      block.clear();
      std::uint64_t want = std::min<std::uint64_t>(
          config_.batch_size, total_requests - emitted);
      if (recorder) {
        // Align block ends to timeline epoch boundaries so the recorder's
        // end-of-epoch network-state snapshot (evictions, occupancy, link
        // counters) sees exactly the requests of the epoch — the same state
        // the event loop observes at that boundary. Truncating a block
        // never changes the merge order, so the request streams (and thus
        // every other output) stay bit-identical to full-size blocks.
        const std::uint64_t to_boundary =
            config_.timeline_epoch - (emitted % config_.timeline_epoch);
        want = std::min(want, to_boundary);
      }
      if (emitted < config_.warmup_requests) {
        // Align to the warmup boundary too, so the phase clock stamps it
        // exactly (truncation keeps outputs bit-identical, as above).
        want = std::min(want, config_.warmup_requests - emitted);
      } else if (emitted == config_.warmup_requests) {
        warmup_end = Clock::now();
      }
      for (std::uint64_t i = 0; i < want; ++i) {
        const NextArrival top = heap.top();
        heap.pop();
        const std::uint64_t request_index = emitted;
        ++emitted;
        block.push_back(
            BlockEntry{request_index, workload_->next(top.router), top.router});
        heap.push(NextArrival{
            top.time +
                clocks[top.router].exponential(config_.arrival_rate_per_router),
            seq_counter++, top.router});
      }
      // Serve pass: tight loop over resolved pairs, the next request's
      // membership-index and owner-table state prefetched one iteration
      // ahead so the lookups land in cache. Sampled traces are captured
      // here, right after their serve(), while the hop-path scratch is
      // still this request's — the pass iterates in emission order, so the
      // trace buffer is identical to recording in the metrics pass.
      for (std::size_t i = 0; i < block.size(); ++i) {
        if (i + 1 < block.size()) {
          network_->prefetch(block[i + 1].router, block[i + 1].content);
        }
        results[i] = network_->serve(block[i].router, block[i].content);
        if (results[i].tier != ServeTier::kLocal) ++upstream;
        if (block[i].index >= config_.warmup_requests) {
          maybe_trace(block[i].index, block[i].router, block[i].content,
                      results[i]);
        }
      }
      // Metrics pass, once per block, in emission order. All double
      // accumulation goes into per-router partials, and emission order
      // restricted to one router is that router's own order — so the
      // partials (and everything folded from them) are bit-identical to
      // the event loop's.
      for (std::size_t i = 0; i < block.size(); ++i) {
        if (recorder) recorder->accumulate(block[i].router, results[i]);
        if (block[i].index < config_.warmup_requests) continue;
        metrics.record(block[i].router, results[i].tier,
                       results[i].latency_ms, results[i].hops);
        if (topo != nullptr) topo_record(block[i].router, results[i]);
      }
      // Blocks are epoch-aligned, so a boundary can only land here.
      if (recorder) recorder->advance(block.size());
    }
    CCNOPT_ENSURES(emitted == total_requests);
    if (recorder) recorder->finish();
    finalize_topo();
    finish_phase_clock();
    SimReport report = make_report(metrics);
    report.aggregated_requests = 0;
    report.upstream_fetches = upstream;
    detail::flush_run_registry(metrics, report, 0, upstream, trace_.size());
    return report;
  }

  // Pending Interest Table (per router x content): requests arriving while
  // a fetch is in flight join it and complete at its completion event.
  // A joiner's latency is the remaining flight time — strictly less than a
  // fresh fetch would have cost it.
  struct PendingInterest {
    std::vector<std::pair<SimTime, bool>> joiners;  // (arrival, measured?)
  };
  std::unordered_map<std::uint64_t, PendingInterest> pit;
  const std::uint64_t router_count = network_->router_count();
  const auto pit_key = [router_count](std::size_t router,
                                      cache::ContentId content) {
    return content * router_count + router;
  };

  // One self-rescheduling arrival chain per active router.
  std::function<void(std::size_t)> arrival = [&](std::size_t router) {
    if (emitted >= total_requests) return;
    const std::uint64_t request_index = emitted;
    const bool measured = emitted >= config_.warmup_requests;
    if (request_index == config_.warmup_requests) warmup_end = Clock::now();
    ++emitted;
    const cache::ContentId content = workload_->next(router);

    if (!config_.interest_aggregation) {
      const ServeResult result =
          network_->serve(static_cast<topology::NodeId>(router), content);
      if (result.tier != ServeTier::kLocal) ++upstream;
      if (recorder) {
        recorder->accumulate(router, result);
        recorder->advance(1);
      }
      if (measured) {
        metrics.record(router, result.tier, result.latency_ms, result.hops);
        if (topo != nullptr) topo_record(router, result);
        maybe_trace(request_index, router, content, result);
      }
    } else {
      const std::uint64_t key = pit_key(router, content);
      const auto it = pit.find(key);
      if (it != pit.end()) {
        ++aggregated;
        if (recorder) {
          recorder->on_aggregated();
          recorder->advance(1);
        }
        it->second.joiners.emplace_back(queue.now(), measured);
      } else {
        const ServeResult result =
            network_->serve(static_cast<topology::NodeId>(router), content);
        if (recorder) {
          recorder->accumulate(router, result);
          recorder->advance(1);
        }
        if (measured && topo != nullptr) topo_record(router, result);
        if (result.tier == ServeTier::kLocal) {
          if (measured) {
            metrics.record(router, result.tier, result.latency_ms,
                           result.hops);
            maybe_trace(request_index, router, content, result);
          }
        } else {
          ++upstream;
          if (measured) {
            maybe_trace(request_index, router, content, result);
          }
          pit.emplace(key, PendingInterest{});
          queue.schedule_after(
              result.latency_ms, [&metrics, &pit, &queue, key, result,
                                  measured, router] {
                if (measured) {
                  metrics.record(router, result.tier, result.latency_ms,
                                 result.hops);
                }
                auto node = pit.extract(key);
                CCNOPT_ASSERT(!node.empty());
                for (const auto& [joined_at, joiner_measured] :
                     node.mapped().joiners) {
                  if (joiner_measured) {
                    metrics.record(router, result.tier,
                                   queue.now() - joined_at, result.hops);
                  }
                }
              });
        }
      }
    }
    queue.schedule_after(
        clocks[router].exponential(config_.arrival_rate_per_router),
        [&arrival, router] { arrival(router); });
  };

  bool any_active = false;
  for (std::size_t router = 0; router < network_->router_count(); ++router) {
    if (!workload_->active(router)) continue;
    any_active = true;
    queue.schedule_after(
        clocks[router].exponential(config_.arrival_rate_per_router),
        [&arrival, router] { arrival(router); });
  }
  CCNOPT_EXPECTS(any_active);

  queue.run();
  CCNOPT_ENSURES(emitted == total_requests);
  CCNOPT_ENSURES(pit.empty());
  if (recorder) recorder->finish();
  finalize_topo();
  finish_phase_clock();
  SimReport report = make_report(metrics);
  report.aggregated_requests = aggregated;
  report.upstream_fetches = upstream;
  detail::flush_run_registry(metrics, report, aggregated, upstream,
                             trace_.size());
  return report;
}

}  // namespace ccnopt::sim
