#include "ccnopt/sim/simulation.hpp"

#include <optional>
#include <queue>
#include <vector>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/span.hpp"

namespace ccnopt::sim {
namespace {

// Sub-stream index of the run seed reserved for the trace sampler, far
// outside the per-router clock indices [0, router_count).
constexpr std::uint64_t kTraceSeedIndex = 0x7ace5eedULL;

// Interned handles into obs::metrics(), resolved once per process. Handles
// survive registry reset(), so the static cache stays valid across runs.
struct RunMetricHandles {
  obs::MetricsRegistry::CounterHandle runs;
  obs::MetricsRegistry::CounterHandle requests_measured;
  obs::MetricsRegistry::CounterHandle requests_local;
  obs::MetricsRegistry::CounterHandle requests_network;
  obs::MetricsRegistry::CounterHandle requests_origin;
  obs::MetricsRegistry::CounterHandle requests_aggregated;
  obs::MetricsRegistry::CounterHandle upstream_fetches;
  obs::MetricsRegistry::CounterHandle coordination_messages;
  obs::MetricsRegistry::CounterHandle trace_sampled;
  obs::MetricsRegistry::HistogramHandle latency_ms;

  static const RunMetricHandles& get() {
    static const RunMetricHandles handles = [] {
      obs::MetricsRegistry& registry = obs::metrics();
      return RunMetricHandles{
          registry.counter_handle("sim.runs"),
          registry.counter_handle("sim.requests.measured"),
          registry.counter_handle("sim.requests.local"),
          registry.counter_handle("sim.requests.network"),
          registry.counter_handle("sim.requests.origin"),
          registry.counter_handle("sim.requests.aggregated"),
          registry.counter_handle("sim.upstream_fetches"),
          registry.counter_handle("sim.coordination_messages"),
          registry.counter_handle("sim.trace.sampled"),
          registry.histogram_handle("sim.latency_ms",
                                    MetricsCollector::latency_bucket_bounds()),
      };
    }();
    return handles;
  }
};

// Accumulates one timeline row per `epoch_requests` emitted requests.
// Fed exclusively from run-local state (per-epoch tallies plus the run's
// own CcnNetwork counters) — never from the process-global obs::metrics()
// registry, which parallel replications share and mutate concurrently.
// Both request engines call on_request()/on_aggregated() once per emitted
// request in emission order, so rows are identical whichever engine ran.
class EpochRecorder {
 public:
  EpochRecorder(obs::Timeline* timeline, const CcnNetwork* network)
      : timeline_(timeline),
        network_(network),
        epoch_requests_(timeline->epoch_requests()) {}

  /// One request whose serve outcome is known at emission.
  void on_request(const ServeResult& result) {
    ++requests_;
    ++tier_counts_[static_cast<std::size_t>(result.tier)];
    latency_ms_sum_ += result.latency_ms;
    hops_sum_ += static_cast<double>(result.hops);
    tier_latency_ms_sum_[static_cast<std::size_t>(result.tier)] +=
        result.latency_ms;
    maybe_flush();
  }

  /// One request that joined an in-flight fetch (interest aggregation):
  /// counted in the `requests` and `aggregated` columns at emission; its
  /// tier/latency resolve at the completion event and are not re-binned.
  void on_aggregated() {
    ++requests_;
    ++aggregated_;
    maybe_flush();
  }

  /// Emits the final partial epoch, if any requests are pending in it.
  void finish() {
    if (requests_ > 0) flush();
  }

 private:
  void maybe_flush() {
    ++emitted_;
    if (emitted_ % epoch_requests_ == 0) flush();
  }

  void flush() {
    const CcnNetwork::CacheTotals totals = network_->cache_totals();
    const std::uint64_t traversals = network_->total_link_traversals();
    std::vector<double> values;
    values.reserve(15);
    values.push_back(static_cast<double>(requests_));
    values.push_back(static_cast<double>(tier_counts_[0]));
    values.push_back(static_cast<double>(tier_counts_[1]));
    values.push_back(static_cast<double>(tier_counts_[2]));
    values.push_back(static_cast<double>(aggregated_));
    values.push_back(latency_ms_sum_);
    values.push_back(hops_sum_);
    values.push_back(tier_latency_ms_sum_[0]);
    values.push_back(tier_latency_ms_sum_[1]);
    values.push_back(tier_latency_ms_sum_[2]);
    values.push_back(static_cast<double>(totals.evictions - prev_evictions_));
    values.push_back(
        static_cast<double>(totals.insertions - prev_insertions_));
    values.push_back(static_cast<double>(totals.occupancy));
    values.push_back(static_cast<double>(traversals - prev_traversals_));
    values.push_back(static_cast<double>(network_->max_link_load()));
    timeline_->push_epoch(emitted_ - requests_, emitted_ - 1,
                          std::move(values));
    prev_evictions_ = totals.evictions;
    prev_insertions_ = totals.insertions;
    prev_traversals_ = traversals;
    requests_ = 0;
    aggregated_ = 0;
    latency_ms_sum_ = 0.0;
    hops_sum_ = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      tier_counts_[i] = 0;
      tier_latency_ms_sum_[i] = 0.0;
    }
  }

  obs::Timeline* timeline_;
  const CcnNetwork* network_;
  std::uint64_t epoch_requests_;
  std::uint64_t emitted_ = 0;
  // Current-epoch tallies, cleared at every flush.
  std::uint64_t requests_ = 0;
  std::uint64_t aggregated_ = 0;
  std::uint64_t tier_counts_[3] = {0, 0, 0};
  double latency_ms_sum_ = 0.0;
  double hops_sum_ = 0.0;
  double tier_latency_ms_sum_[3] = {0.0, 0.0, 0.0};
  // Cumulative network counters at the previous epoch boundary, for deltas.
  std::uint64_t prev_evictions_ = 0;
  std::uint64_t prev_insertions_ = 0;
  std::uint64_t prev_traversals_ = 0;
};

}  // namespace

const std::vector<std::string>& timeline_columns() {
  static const std::vector<std::string> columns = {
      "requests",
      "local",
      "network",
      "origin",
      "aggregated",
      "latency_ms_sum",
      "hops_sum",
      "local_latency_ms_sum",
      "network_latency_ms_sum",
      "origin_latency_ms_sum",
      "evictions",
      "insertions",
      "occupancy",
      "link_traversals",
      "max_link_load",
  };
  return columns;
}

Simulation::Simulation(topology::Graph graph, SimConfig config)
    : config_(std::move(config)) {
  // The topo recorder exports per-link loads, so its runs keep the link
  // counters live. (Tracking never changes serve outcomes, only counters.)
  if (config_.record_topo) config_.network.track_link_load = true;
  network_ = std::make_unique<CcnNetwork>(std::move(graph), config_.network);
  workload_ = std::make_unique<ZipfWorkload>(
      network_->router_count(), config_.network.catalog_size, config_.zipf_s,
      config_.seed, config_.sampler_kind);
}

void Simulation::set_workload(std::unique_ptr<Workload> workload) {
  CCNOPT_EXPECTS(workload != nullptr);
  CCNOPT_EXPECTS(workload->catalog_size() <= config_.network.catalog_size);
  workload_ = std::move(workload);
}

SimReport Simulation::run() {
  CCNOPT_EXPECTS(config_.arrival_rate_per_router > 0.0);
  const obs::ScopedSpan run_span("sim.run");
  trace_.clear();
  timeline_ = config_.timeline_epoch > 0
                  ? obs::Timeline(config_.timeline_epoch, timeline_columns())
                  : obs::Timeline();
  const obs::TraceSampler sampler(derive_seed(config_.seed, kTraceSeedIndex),
                                  config_.trace_sample_k);
  // Topology-resolved flight recorder: run-local like the timeline's
  // EpochRecorder, merged in replication order by the runner.
  topo_ = obs::TopoRecorder();
  if (config_.record_topo) {
    std::vector<std::pair<std::uint32_t, std::uint32_t>> links;
    links.reserve(network_->graph().links().size());
    for (const topology::Graph::Link& link : network_->graph().links()) {
      links.emplace_back(link.u, link.v);
    }
    topo_ = obs::TopoRecorder(network_->graph().name(),
                              network_->router_count(), std::move(links));
  }
  obs::TopoRecorder* const topo = topo_.enabled() ? &topo_ : nullptr;
  network_->set_topo_recorder(topo);
  // Sampled traces record the placement depth even when topo is off.
  network_->set_record_placement_depth(sampler.enabled());
  std::uint64_t messages = 0;
  {
    const obs::ScopedSpan provision_span("sim.provision");
    messages = network_->provision(config_.coordinated_x);
  }

  MetricsCollector metrics;
  metrics.record_coordination_messages(messages);

  const obs::ScopedSpan replay_span("sim.replay");
  EventQueue queue;
  const std::uint64_t total_requests =
      config_.warmup_requests + config_.measured_requests;
  std::uint64_t emitted = 0;
  std::uint64_t aggregated = 0;
  std::uint64_t upstream = 0;

  // Per-router arrival processes with independent seeded clocks, each the
  // router's splitmix64 sub-stream of the run seed.
  std::vector<Rng> clocks;
  clocks.reserve(network_->router_count());
  for (std::size_t i = 0; i < network_->router_count(); ++i) {
    clocks.emplace_back(derive_seed(config_.seed, i));
  }

  // Per-epoch telemetry (timeline_epoch > 0): one recorder call per emitted
  // request, in emission order, from both engines.
  std::optional<EpochRecorder> recorder;
  if (timeline_.enabled()) recorder.emplace(&timeline_, network_.get());

  // Records one sampled request; the decision is pure in (seed, index).
  // Must run straight after the serve() that produced `result` — the hop
  // path reads the network's in-flight routing scratch.
  const auto maybe_trace = [&](std::uint64_t index, std::size_t router,
                               cache::ContentId content,
                               const ServeResult& result) {
    if (!sampler.enabled() || !sampler.should_sample(index)) return;
    obs::TraceEvent event{
        0, index, static_cast<std::uint32_t>(router), content,
        to_string(result.tier), result.hops,
        static_cast<std::uint32_t>(result.served_by), {}, -1,
        result.latency_ms};
    event.path =
        network_->hop_path(static_cast<topology::NodeId>(router), result);
    event.placement_depth = result.placement_depth;
    trace_.push_back(std::move(event));
  };

  // One topo-recorder tick per measured request, in emission order; the
  // tier codes are shared with obs by construction.
  static_assert(static_cast<std::uint32_t>(ServeTier::kLocal) ==
                obs::kTopoTierLocal);
  static_assert(static_cast<std::uint32_t>(ServeTier::kNetwork) ==
                obs::kTopoTierNetwork);
  static_assert(static_cast<std::uint32_t>(ServeTier::kOrigin) ==
                obs::kTopoTierOrigin);
  const auto topo_record = [topo](std::size_t router,
                                  const ServeResult& result) {
    topo->on_request(static_cast<std::uint32_t>(router),
                     static_cast<std::uint32_t>(result.tier),
                     static_cast<std::uint32_t>(result.served_by),
                     result.latency_ms, result.hops);
  };

  // End-of-run snapshot of cache state and link loads into the recorder
  // (whole-run totals; they reconcile with cache_totals()/link_counts()).
  const auto finalize_topo = [&] {
    if (topo == nullptr) return;
    for (topology::NodeId id = 0; id < network_->router_count(); ++id) {
      const cache::PartitionedStore& store = network_->store(id);
      const cache::CacheStats& local_stats = store.local().stats();
      topo->set_router_cache(
          id, local_stats.evictions, local_stats.insertions, store.size(),
          static_cast<std::uint64_t>(network_->capacity_of(id)));
    }
    topo->add_link_traversals(network_->link_counts());
  };

  // One registry flush per run: integer sums and a fixed-point histogram
  // merge, so totals are exact and order-independent no matter which
  // thread (or how many) ran the replications.
  const auto flush_registry = [this](const MetricsCollector& collected,
                                     const SimReport& report,
                                     std::uint64_t aggregated_count,
                                     std::uint64_t upstream_count) {
    obs::MetricsRegistry& registry = obs::metrics();
    const RunMetricHandles& handles = RunMetricHandles::get();
    registry.incr(handles.runs);
    registry.incr(handles.requests_measured, report.total_requests);
    registry.incr(handles.requests_local,
                  collected.tier_count(ServeTier::kLocal));
    registry.incr(handles.requests_network,
                  collected.tier_count(ServeTier::kNetwork));
    registry.incr(handles.requests_origin,
                  collected.tier_count(ServeTier::kOrigin));
    registry.incr(handles.requests_aggregated, aggregated_count);
    registry.incr(handles.upstream_fetches, upstream_count);
    registry.incr(handles.coordination_messages, report.coordination_messages);
    registry.incr(handles.trace_sampled, trace_.size());
    registry.merge_histogram(handles.latency_ms,
                             collected.latency_histogram());
  };

  const bool batched =
      !config_.interest_aggregation && config_.batch_size > 0;
  if (batched) {
    // Batched request engine. Without aggregation the event queue only ever
    // holds arrival events, one per active router, each rescheduling itself
    // on pop — so the queue's behaviour is replayed exactly by a k-way
    // merge on (time, seq): initial seqs in router scheduling order, then a
    // global counter incremented at each pop, just as EventQueue stamps
    // schedule_after() calls. Per-router clocks and workload streams are
    // touched in identical order to the event loop, so every stream,
    // report, trace and metric export is bit-identical to batch_size = 0.
    struct NextArrival {
      SimTime time;
      std::uint64_t seq;
      std::uint32_t router;
    };
    const auto later = [](const NextArrival& a, const NextArrival& b) {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    };
    std::priority_queue<NextArrival, std::vector<NextArrival>, decltype(later)>
        heap(later);
    std::uint64_t seq_counter = 0;
    bool any_active = false;
    for (std::size_t router = 0; router < network_->router_count(); ++router) {
      if (!workload_->active(router)) continue;
      any_active = true;
      heap.push(NextArrival{
          clocks[router].exponential(config_.arrival_rate_per_router),
          seq_counter++, static_cast<std::uint32_t>(router)});
    }
    CCNOPT_EXPECTS(any_active);

    struct BlockEntry {
      std::uint64_t index;  // global emission index
      cache::ContentId content;
      std::uint32_t router;
    };
    const std::size_t batch = static_cast<std::size_t>(config_.batch_size);
    std::vector<BlockEntry> block;
    block.reserve(batch);
    std::vector<ServeResult> results(batch);
    while (emitted < total_requests) {
      // Generation pass: resolve the next block of (router, content) pairs
      // by replaying the queue's exact pop order.
      block.clear();
      std::uint64_t want = std::min<std::uint64_t>(
          config_.batch_size, total_requests - emitted);
      if (recorder) {
        // Align block ends to timeline epoch boundaries so the recorder's
        // end-of-epoch network-state snapshot (evictions, occupancy, link
        // counters) sees exactly the requests of the epoch — the same state
        // the event loop observes at that boundary. Truncating a block
        // never changes the merge order, so the request streams (and thus
        // every other output) stay bit-identical to full-size blocks.
        const std::uint64_t to_boundary =
            config_.timeline_epoch - (emitted % config_.timeline_epoch);
        want = std::min(want, to_boundary);
      }
      for (std::uint64_t i = 0; i < want; ++i) {
        const NextArrival top = heap.top();
        heap.pop();
        const std::uint64_t request_index = emitted;
        ++emitted;
        block.push_back(
            BlockEntry{request_index, workload_->next(top.router), top.router});
        heap.push(NextArrival{
            top.time +
                clocks[top.router].exponential(config_.arrival_rate_per_router),
            seq_counter++, top.router});
      }
      // Serve pass: tight loop over resolved pairs, the next request's
      // membership-index and owner-table state prefetched one iteration
      // ahead so the lookups land in cache. Sampled traces are captured
      // here, right after their serve(), while the hop-path scratch is
      // still this request's — the pass iterates in emission order, so the
      // trace buffer is identical to recording in the metrics pass.
      for (std::size_t i = 0; i < block.size(); ++i) {
        if (i + 1 < block.size()) {
          network_->prefetch(block[i + 1].router, block[i + 1].content);
        }
        results[i] = network_->serve(block[i].router, block[i].content);
        if (results[i].tier != ServeTier::kLocal) ++upstream;
        if (block[i].index >= config_.warmup_requests) {
          maybe_trace(block[i].index, block[i].router, block[i].content,
                      results[i]);
        }
      }
      // Metrics pass, once per block, in emission order (the same order
      // the event loop records in, so RunningStats accumulation is
      // bit-identical).
      for (std::size_t i = 0; i < block.size(); ++i) {
        if (recorder) recorder->on_request(results[i]);
        if (block[i].index < config_.warmup_requests) continue;
        metrics.record(results[i].tier, results[i].latency_ms,
                       results[i].hops);
        if (topo != nullptr) topo_record(block[i].router, results[i]);
      }
    }
    CCNOPT_ENSURES(emitted == total_requests);
    if (recorder) recorder->finish();
    finalize_topo();
    SimReport report = make_report(metrics);
    report.aggregated_requests = 0;
    report.upstream_fetches = upstream;
    flush_registry(metrics, report, 0, upstream);
    return report;
  }

  // Pending Interest Table (per router x content): requests arriving while
  // a fetch is in flight join it and complete at its completion event.
  // A joiner's latency is the remaining flight time — strictly less than a
  // fresh fetch would have cost it.
  struct PendingInterest {
    std::vector<std::pair<SimTime, bool>> joiners;  // (arrival, measured?)
  };
  std::unordered_map<std::uint64_t, PendingInterest> pit;
  const std::uint64_t router_count = network_->router_count();
  const auto pit_key = [router_count](std::size_t router,
                                      cache::ContentId content) {
    return content * router_count + router;
  };

  // One self-rescheduling arrival chain per active router.
  std::function<void(std::size_t)> arrival = [&](std::size_t router) {
    if (emitted >= total_requests) return;
    const std::uint64_t request_index = emitted;
    const bool measured = emitted >= config_.warmup_requests;
    ++emitted;
    const cache::ContentId content = workload_->next(router);

    if (!config_.interest_aggregation) {
      const ServeResult result =
          network_->serve(static_cast<topology::NodeId>(router), content);
      if (result.tier != ServeTier::kLocal) ++upstream;
      if (recorder) recorder->on_request(result);
      if (measured) {
        metrics.record(result.tier, result.latency_ms, result.hops);
        if (topo != nullptr) topo_record(router, result);
        maybe_trace(request_index, router, content, result);
      }
    } else {
      const std::uint64_t key = pit_key(router, content);
      const auto it = pit.find(key);
      if (it != pit.end()) {
        ++aggregated;
        if (recorder) recorder->on_aggregated();
        it->second.joiners.emplace_back(queue.now(), measured);
      } else {
        const ServeResult result =
            network_->serve(static_cast<topology::NodeId>(router), content);
        if (recorder) recorder->on_request(result);
        if (measured && topo != nullptr) topo_record(router, result);
        if (result.tier == ServeTier::kLocal) {
          if (measured) {
            metrics.record(result.tier, result.latency_ms, result.hops);
            maybe_trace(request_index, router, content, result);
          }
        } else {
          ++upstream;
          if (measured) {
            maybe_trace(request_index, router, content, result);
          }
          pit.emplace(key, PendingInterest{});
          queue.schedule_after(
              result.latency_ms, [&metrics, &pit, &queue, key, result,
                                  measured] {
                if (measured) {
                  metrics.record(result.tier, result.latency_ms, result.hops);
                }
                auto node = pit.extract(key);
                CCNOPT_ASSERT(!node.empty());
                for (const auto& [joined_at, joiner_measured] :
                     node.mapped().joiners) {
                  if (joiner_measured) {
                    metrics.record(result.tier, queue.now() - joined_at,
                                   result.hops);
                  }
                }
              });
        }
      }
    }
    queue.schedule_after(
        clocks[router].exponential(config_.arrival_rate_per_router),
        [&arrival, router] { arrival(router); });
  };

  bool any_active = false;
  for (std::size_t router = 0; router < network_->router_count(); ++router) {
    if (!workload_->active(router)) continue;
    any_active = true;
    queue.schedule_after(
        clocks[router].exponential(config_.arrival_rate_per_router),
        [&arrival, router] { arrival(router); });
  }
  CCNOPT_EXPECTS(any_active);

  queue.run();
  CCNOPT_ENSURES(emitted == total_requests);
  CCNOPT_ENSURES(pit.empty());
  if (recorder) recorder->finish();
  finalize_topo();
  SimReport report = make_report(metrics);
  report.aggregated_requests = aggregated;
  report.upstream_fetches = upstream;
  flush_registry(metrics, report, aggregated, upstream);
  return report;
}

}  // namespace ccnopt::sim
