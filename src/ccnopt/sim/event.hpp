// Deterministic discrete-event scheduler. Events fire in (time, sequence)
// order; ties on time resolve by scheduling order, so runs are reproducible
// bit-for-bit from the workload seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::sim {

using SimTime = double;  // milliseconds of simulated time

class EventQueue {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

  /// Schedules `action` at absolute time `at` (>= now()).
  void schedule_at(SimTime at, Action action);

  /// Schedules `action` `delay` (>= 0) after now().
  void schedule_after(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains or `max_events` have fired.
  void run(std::uint64_t max_events = UINT64_MAX);

  /// Drops all pending events (used by simulation teardown between epochs).
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

}  // namespace ccnopt::sim
