#include "ccnopt/sim/workload.hpp"

#include <algorithm>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/popularity/zipf.hpp"

namespace ccnopt::sim {

// Every request the simulator emits goes through one sampler draw; pin the
// hot-path workloads to O(1) samplers (alias below the auto threshold,
// rejection-inversion above it).
static_assert(popularity::AliasSampler::kConstantTimeSample,
              "simulator workloads require a constant-time rank sampler");
static_assert(popularity::ZipfRejectionSampler::kConstantTimeSample,
              "simulator workloads require a constant-time rank sampler");

ZipfWorkload::ZipfWorkload(std::size_t router_count,
                           std::uint64_t catalog_size, double exponent,
                           std::uint64_t seed, popularity::SamplerKind kind)
    : catalog_size_(catalog_size) {
  CCNOPT_EXPECTS(router_count >= 1);
  CCNOPT_EXPECTS(catalog_size >= 1);
  sampler_ = popularity::make_zipf_sampler(catalog_size, exponent, kind);
  streams_.reserve(router_count);
  for (std::size_t i = 0; i < router_count; ++i) {
    streams_.emplace_back(seed + 0x9E3779B97F4A7C15ULL * (i + 1));
  }
  buffers_.resize(router_count);
}

cache::ContentId ZipfWorkload::next(std::size_t router_index) {
  CCNOPT_EXPECTS(router_index < streams_.size());
  // Refill in blocks: sample_block() consumes the stream exactly as
  // kDrawBlock successive sample() calls would, and the refill boundary is
  // a pure function of this router's call count — so every engine (event
  // loop, batched, sharded) sees the identical per-router sequence while
  // paying the virtual sampler dispatch once per block.
  DrawBuffer& buf = buffers_[router_index];
  if (buf.pos == buf.filled) {
    if (buf.draws.empty()) buf.draws.resize(kDrawBlock);
    sampler_->sample_block(streams_[router_index], buf.draws.data(),
                           kDrawBlock);
    buf.filled = kDrawBlock;
    buf.pos = 0;
  }
  return buf.draws[buf.pos++];
}

DriftingZipfWorkload::DriftingZipfWorkload(std::size_t router_count,
                                           std::uint64_t catalog_size,
                                           std::vector<Phase> schedule,
                                           std::uint64_t seed)
    : catalog_size_(catalog_size), schedule_(std::move(schedule)) {
  CCNOPT_EXPECTS(router_count >= 1);
  CCNOPT_EXPECTS(catalog_size >= 1);
  CCNOPT_EXPECTS(!schedule_.empty());
  CCNOPT_EXPECTS(schedule_.front().start_request == 0);
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    CCNOPT_EXPECTS(schedule_[i].exponent > 0.0);
    if (i > 0) {
      CCNOPT_EXPECTS(schedule_[i].start_request >
                     schedule_[i - 1].start_request);
    }
  }
  // Build every phase sampler up front: next() may run from concurrent
  // shards, so it must never mutate shared state.
  samplers_.reserve(schedule_.size());
  for (const Phase& phase : schedule_) {
    samplers_.push_back(
        popularity::make_zipf_sampler(catalog_size, phase.exponent));
  }
  streams_.reserve(router_count);
  for (std::size_t i = 0; i < router_count; ++i) {
    streams_.emplace_back(seed + 0x9E3779B97F4A7C15ULL * (i + 1));
  }
  counts_.assign(router_count, 0);
  phase_.assign(router_count, 0);
}

double DriftingZipfWorkload::current_exponent() const {
  std::size_t phase = 0;
  for (const std::size_t p : phase_) phase = std::max(phase, p);
  return schedule_[phase].exponent;
}

std::uint64_t DriftingZipfWorkload::requests_emitted() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : counts_) total += count;
  return total;
}

cache::ContentId DriftingZipfWorkload::next(std::size_t router_index) {
  CCNOPT_EXPECTS(router_index < streams_.size());
  // Phase from this router's own position: its k-th draw estimates the
  // global request index as k * router_count (exactly k for one router).
  const std::uint64_t scaled = counts_[router_index] * streams_.size();
  std::size_t& phase = phase_[router_index];
  while (phase + 1 < schedule_.size() &&
         scaled >= schedule_[phase + 1].start_request) {
    ++phase;
  }
  ++counts_[router_index];
  return samplers_[phase]->sample(streams_[router_index]);
}

SlidingZipfWorkload::SlidingZipfWorkload(std::size_t router_count,
                                         std::uint64_t catalog_size,
                                         double exponent,
                                         std::uint64_t active_window,
                                         std::uint64_t drift_interval,
                                         std::uint64_t seed)
    : catalog_size_(catalog_size), drift_interval_(drift_interval) {
  CCNOPT_EXPECTS(router_count >= 1);
  CCNOPT_EXPECTS(active_window >= 1 && active_window <= catalog_size);
  CCNOPT_EXPECTS(drift_interval >= 1);
  sampler_ = popularity::make_zipf_sampler(active_window, exponent);
  streams_.reserve(router_count);
  for (std::size_t i = 0; i < router_count; ++i) {
    streams_.emplace_back(seed + 0x9E3779B97F4A7C15ULL * (i + 1));
  }
  counts_.assign(router_count, 0);
}

std::uint64_t SlidingZipfWorkload::base_offset() const {
  std::uint64_t total = 0;
  for (const std::uint64_t count : counts_) total += count;
  return total == 0 ? 0 : (total - 1) / drift_interval_;
}

cache::ContentId SlidingZipfWorkload::next(std::size_t router_index) {
  CCNOPT_EXPECTS(router_index < streams_.size());
  // Base from this router's own position: its k-th draw estimates the
  // global request index as k * router_count (exactly k for one router).
  const std::uint64_t base =
      counts_[router_index] * streams_.size() / drift_interval_;
  ++counts_[router_index];
  const std::uint64_t rank = sampler_->sample(streams_[router_index]);
  return (base + rank - 1) % catalog_size_ + 1;
}

CyclicWorkload::CyclicWorkload(
    std::vector<std::vector<cache::ContentId>> patterns)
    : patterns_(std::move(patterns)), cursor_(patterns_.size(), 0) {
  for (const auto& pattern : patterns_) {
    for (const cache::ContentId id : pattern) {
      CCNOPT_EXPECTS(id >= 1);
      max_id_ = std::max(max_id_, id);
    }
  }
}

cache::ContentId CyclicWorkload::next(std::size_t router_index) {
  CCNOPT_EXPECTS(router_index < patterns_.size());
  const auto& pattern = patterns_[router_index];
  CCNOPT_EXPECTS(!pattern.empty());
  const cache::ContentId id = pattern[cursor_[router_index]];
  cursor_[router_index] = (cursor_[router_index] + 1) % pattern.size();
  return id;
}

}  // namespace ccnopt::sim
