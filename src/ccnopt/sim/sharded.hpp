// Sharded request engine: one simulation run partitioned by first-hop
// router across worker shards, bit-identical to the single-thread engines.
//
// Why router partitioning is exact (not approximate): under owner-table
// forwarding without peer-local fetch, serving a request at router r
// mutates ONLY r's own store (plus link counters, which are diverted into
// per-shard scratch and summed back — see CcnNetwork::serve_sharded). A
// request's outcome is therefore a pure function of the prior request
// subsequence at its own router, so shards owning disjoint routers can
// serve concurrently against the one shared network and reproduce the
// sequential cache-state trajectory exactly. The per-router arrival clocks
// and workload streams are independently seeded sub-streams, so each
// shard also generates its routers' arrival times and content draws
// without seeing the global interleaving.
//
// The canonical global order is recovered, not simulated: each router's
// arrival times ascend, so the event loop's pop order is the k-way merge
// of the per-router sequences. The engine merges them window by window
// (windows truncate at timeline-epoch and warmup boundaries, which never
// changes merge order), serves each window's requests shard-parallel into
// per-shard structure-of-arrays scratch, then records each window
// shard-parallel as well: every floating-point accumulation (Welford
// stats, timeline epoch sums, topo latency sums) lives in PER-ROUTER
// partials, each written by exactly one shard in that router's own
// emission order, and folded in router-index order through a fixed-shape
// merge tree (numerics::merge_tree) whose grouping depends only on the
// router count. The serial engines accumulate into the identical
// per-router partials and fold them identically, so reports, timelines,
// topo exports, traces and metric exports are bit-identical at any shard
// count — including shard count one. Integer counters (tier counts,
// histograms' fixed-point sums, link traversals) are exact under any
// order. Only the per-window epoch-boundary flush, the trace-buffer
// cursor merge, and final export remain serial.
//
// Tie-breaking caveat: the event loop breaks equal-time events by global
// scheduling sequence, the merge by router index. The two differ only
// when two DIFFERENT routers' clocks collide on the exact same double —
// measure-zero for sums of continuous draws, and enforced empirically by
// test_sim_shard_determinism across all Table II topologies.
#pragma once

#include <cstddef>
#include <functional>

#include "ccnopt/sim/simulation.hpp"

namespace ccnopt::sim {

/// Runs the bodies of one parallel region. The sharded engine issues a
/// sequence of regions (generate, merge, serve); each run_shards() call is
/// a barrier: it returns only after every body completed, and every write
/// a body made happens-before the caller's next statement. Implementations
/// may run bodies concurrently (runtime::ShardScheduler) or inline.
class ShardExecutor {
 public:
  virtual ~ShardExecutor() = default;
  /// Invokes body(0) ... body(count - 1), each exactly once, possibly
  /// concurrently; propagates the first body exception after all complete.
  virtual void run_shards(std::size_t count,
                          const std::function<void(std::size_t)>& body) = 0;
};

/// Runs the bodies one after another on the calling thread — the fallback
/// when no executor is attached, and the single-threaded reference the
/// A/B suite compares the pooled scheduler against.
class SerialShardExecutor final : public ShardExecutor {
 public:
  void run_shards(std::size_t count,
                  const std::function<void(std::size_t)>& body) override {
    for (std::size_t shard = 0; shard < count; ++shard) body(shard);
  }
};

/// True when the run qualifies for the sharded engine: more than one shard
/// requested, no interest aggregation (completion events need the event
/// loop), per-router workload streams (the shards draw without seeing the
/// global interleaving), and owner-table forwarding without peer-local
/// fetch (the router-exclusive mutation argument above). Non-qualifying
/// runs fall back to the single-thread engines — same outputs, by the
/// bit-identity contract.
bool sharded_run_supported(const SimConfig& config, const Workload& workload,
                           const CcnNetwork& network);

/// Human-readable disqualifier for a run with shards > 1 that
/// sharded_run_supported() rejected — logged by Simulation::run() so a
/// silent fallback can never masquerade as a sharded measurement.
/// Returns "run qualifies" when nothing disqualifies it.
const char* sharded_unsupported_reason(const SimConfig& config,
                                       const Workload& workload,
                                       const CcnNetwork& network);

}  // namespace ccnopt::sim
