// Internals shared by Simulation's request engines (the event loop and the
// batched engine in simulation.cpp, the sharded engine in sharded.cpp):
// interned registry handles, the timeline epoch recorder, and the
// end-of-run registry flush. Implementation detail — not installed, not
// part of the sim API.
#pragma once

#include <cstdint>
#include <vector>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/timeline.hpp"
#include "ccnopt/sim/metrics.hpp"
#include "ccnopt/sim/network.hpp"

namespace ccnopt::sim::detail {

// Sub-stream index of the run seed reserved for the trace sampler, far
// outside the per-router clock indices [0, router_count).
inline constexpr std::uint64_t kTraceSeedIndex = 0x7ace5eedULL;

// Interned handles into obs::metrics(), resolved once per process. Handles
// survive registry reset(), so the static cache stays valid across runs.
struct RunMetricHandles {
  obs::MetricsRegistry::CounterHandle runs;
  obs::MetricsRegistry::CounterHandle requests_measured;
  obs::MetricsRegistry::CounterHandle requests_local;
  obs::MetricsRegistry::CounterHandle requests_network;
  obs::MetricsRegistry::CounterHandle requests_origin;
  obs::MetricsRegistry::CounterHandle requests_aggregated;
  obs::MetricsRegistry::CounterHandle upstream_fetches;
  obs::MetricsRegistry::CounterHandle coordination_messages;
  obs::MetricsRegistry::CounterHandle trace_sampled;
  obs::MetricsRegistry::HistogramHandle latency_ms;

  static const RunMetricHandles& get() {
    static const RunMetricHandles handles = [] {
      obs::MetricsRegistry& registry = obs::metrics();
      return RunMetricHandles{
          registry.counter_handle("sim.runs"),
          registry.counter_handle("sim.requests.measured"),
          registry.counter_handle("sim.requests.local"),
          registry.counter_handle("sim.requests.network"),
          registry.counter_handle("sim.requests.origin"),
          registry.counter_handle("sim.requests.aggregated"),
          registry.counter_handle("sim.upstream_fetches"),
          registry.counter_handle("sim.coordination_messages"),
          registry.counter_handle("sim.trace.sampled"),
          registry.histogram_handle("sim.latency_ms",
                                    MetricsCollector::latency_bucket_bounds()),
      };
    }();
    return handles;
  }
};

// Accumulates one timeline row per `epoch_requests` emitted requests.
// Fed exclusively from run-local state (per-epoch tallies plus the run's
// own CcnNetwork counters) — never from the process-global obs::metrics()
// registry, which parallel replications share and mutate concurrently.
//
// The per-epoch tallies are PER-ROUTER partials: accumulate() may be
// called concurrently for disjoint routers (the sharded engine's record
// pass), and a flush sums the partials in router-index order — the
// canonical accumulation order shared by every engine. The serial
// engines call accumulate() per request in emission order, which
// restricted to one router is that router's own order, so partials (and
// therefore rows) are bit-identical whichever engine ran. Engines align
// their processing blocks/windows to epoch boundaries and drive
// advance() serially, so the end-of-epoch network snapshot always sees
// exactly the epoch's requests.
class EpochRecorder {
 public:
  EpochRecorder(obs::Timeline* timeline, const CcnNetwork* network,
                std::size_t router_count)
      : timeline_(timeline),
        network_(network),
        epoch_requests_(timeline->epoch_requests()),
        slots_(router_count) {}

  /// Tallies one request whose serve outcome is known at emission into
  /// its first-hop router's partial. Thread-safe for DISTINCT routers;
  /// does not advance the epoch clock — pair with advance().
  void accumulate(std::size_t router, const ServeResult& result) {
    RouterSlot& slot = slots_[router];
    ++slot.requests;
    ++slot.tier_counts[static_cast<std::size_t>(result.tier)];
    slot.latency_ms_sum += result.latency_ms;
    slot.hops_sum += static_cast<double>(result.hops);
    slot.tier_latency_ms_sum[static_cast<std::size_t>(result.tier)] +=
        result.latency_ms;
  }

  /// One request that joined an in-flight fetch (interest aggregation):
  /// counted in the `requests` and `aggregated` columns at emission; its
  /// tier/latency resolve at the completion event and are not re-binned.
  /// Event-loop only (aggregation never runs sharded), hence serial.
  void on_aggregated() { ++aggregated_; }

  /// Advances the epoch clock by `n` emitted requests and flushes a row
  /// when that lands exactly on an epoch boundary. Serial; callers keep
  /// blocks/windows epoch-aligned so a boundary can only be hit at n's
  /// end (the event loop advances one request at a time).
  void advance(std::uint64_t n) {
    emitted_ += n;
    if (n > 0 && emitted_ % epoch_requests_ == 0) flush();
  }

  /// Emits the final partial epoch, if any requests are pending in it.
  void finish() {
    if (emitted_ > flushed_) flush();
  }

 private:
  struct RouterSlot {
    std::uint64_t requests = 0;
    std::uint64_t tier_counts[3] = {0, 0, 0};
    double latency_ms_sum = 0.0;
    double hops_sum = 0.0;
    double tier_latency_ms_sum[3] = {0.0, 0.0, 0.0};
  };

  void flush() {
    const CcnNetwork::CacheTotals totals = network_->cache_totals();
    const std::uint64_t traversals = network_->total_link_traversals();
    // Sum the per-router partials in router-index order — the fixed
    // grouping every engine reproduces.
    std::uint64_t requests = aggregated_;
    std::uint64_t tier_counts[3] = {0, 0, 0};
    double latency_ms_sum = 0.0;
    double hops_sum = 0.0;
    double tier_latency_ms_sum[3] = {0.0, 0.0, 0.0};
    for (const RouterSlot& slot : slots_) {
      requests += slot.requests;
      latency_ms_sum += slot.latency_ms_sum;
      hops_sum += slot.hops_sum;
      for (std::size_t i = 0; i < 3; ++i) {
        tier_counts[i] += slot.tier_counts[i];
        tier_latency_ms_sum[i] += slot.tier_latency_ms_sum[i];
      }
    }
    CCNOPT_ASSERT(requests == emitted_ - flushed_);
    std::vector<double> values;
    values.reserve(15);
    values.push_back(static_cast<double>(requests));
    values.push_back(static_cast<double>(tier_counts[0]));
    values.push_back(static_cast<double>(tier_counts[1]));
    values.push_back(static_cast<double>(tier_counts[2]));
    values.push_back(static_cast<double>(aggregated_));
    values.push_back(latency_ms_sum);
    values.push_back(hops_sum);
    values.push_back(tier_latency_ms_sum[0]);
    values.push_back(tier_latency_ms_sum[1]);
    values.push_back(tier_latency_ms_sum[2]);
    values.push_back(static_cast<double>(totals.evictions - prev_evictions_));
    values.push_back(
        static_cast<double>(totals.insertions - prev_insertions_));
    values.push_back(static_cast<double>(totals.occupancy));
    values.push_back(static_cast<double>(traversals - prev_traversals_));
    values.push_back(static_cast<double>(network_->max_link_load()));
    timeline_->push_epoch(flushed_, emitted_ - 1, std::move(values));
    prev_evictions_ = totals.evictions;
    prev_insertions_ = totals.insertions;
    prev_traversals_ = traversals;
    flushed_ = emitted_;
    aggregated_ = 0;
    for (RouterSlot& slot : slots_) slot = RouterSlot{};
  }

  obs::Timeline* timeline_;
  const CcnNetwork* network_;
  std::uint64_t epoch_requests_;
  std::uint64_t emitted_ = 0;
  std::uint64_t flushed_ = 0;  // emitted_ at the last flush
  // Current-epoch per-router tallies, cleared at every flush.
  std::vector<RouterSlot> slots_;
  std::uint64_t aggregated_ = 0;
  // Cumulative network counters at the previous epoch boundary, for deltas.
  std::uint64_t prev_evictions_ = 0;
  std::uint64_t prev_insertions_ = 0;
  std::uint64_t prev_traversals_ = 0;
};

// One registry flush per run: integer sums and a fixed-point histogram
// merge, so totals are exact and order-independent no matter which
// thread (or how many) ran the replications.
inline void flush_run_registry(const MetricsCollector& collected,
                               const SimReport& report,
                               std::uint64_t aggregated_count,
                               std::uint64_t upstream_count,
                               std::size_t trace_count) {
  obs::MetricsRegistry& registry = obs::metrics();
  const RunMetricHandles& handles = RunMetricHandles::get();
  registry.incr(handles.runs);
  registry.incr(handles.requests_measured, report.total_requests);
  registry.incr(handles.requests_local,
                collected.tier_count(ServeTier::kLocal));
  registry.incr(handles.requests_network,
                collected.tier_count(ServeTier::kNetwork));
  registry.incr(handles.requests_origin,
                collected.tier_count(ServeTier::kOrigin));
  registry.incr(handles.requests_aggregated, aggregated_count);
  registry.incr(handles.upstream_fetches, upstream_count);
  registry.incr(handles.coordination_messages, report.coordination_messages);
  registry.incr(handles.trace_sampled, trace_count);
  registry.merge_histogram(handles.latency_ms, collected.latency_histogram());
}

}  // namespace ccnopt::sim::detail
