// Internals shared by Simulation's request engines (the event loop and the
// batched engine in simulation.cpp, the sharded engine in sharded.cpp):
// interned registry handles, the timeline epoch recorder, and the
// end-of-run registry flush. Implementation detail — not installed, not
// part of the sim API.
#pragma once

#include <cstdint>
#include <vector>

#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/timeline.hpp"
#include "ccnopt/sim/metrics.hpp"
#include "ccnopt/sim/network.hpp"

namespace ccnopt::sim::detail {

// Sub-stream index of the run seed reserved for the trace sampler, far
// outside the per-router clock indices [0, router_count).
inline constexpr std::uint64_t kTraceSeedIndex = 0x7ace5eedULL;

// Interned handles into obs::metrics(), resolved once per process. Handles
// survive registry reset(), so the static cache stays valid across runs.
struct RunMetricHandles {
  obs::MetricsRegistry::CounterHandle runs;
  obs::MetricsRegistry::CounterHandle requests_measured;
  obs::MetricsRegistry::CounterHandle requests_local;
  obs::MetricsRegistry::CounterHandle requests_network;
  obs::MetricsRegistry::CounterHandle requests_origin;
  obs::MetricsRegistry::CounterHandle requests_aggregated;
  obs::MetricsRegistry::CounterHandle upstream_fetches;
  obs::MetricsRegistry::CounterHandle coordination_messages;
  obs::MetricsRegistry::CounterHandle trace_sampled;
  obs::MetricsRegistry::HistogramHandle latency_ms;

  static const RunMetricHandles& get() {
    static const RunMetricHandles handles = [] {
      obs::MetricsRegistry& registry = obs::metrics();
      return RunMetricHandles{
          registry.counter_handle("sim.runs"),
          registry.counter_handle("sim.requests.measured"),
          registry.counter_handle("sim.requests.local"),
          registry.counter_handle("sim.requests.network"),
          registry.counter_handle("sim.requests.origin"),
          registry.counter_handle("sim.requests.aggregated"),
          registry.counter_handle("sim.upstream_fetches"),
          registry.counter_handle("sim.coordination_messages"),
          registry.counter_handle("sim.trace.sampled"),
          registry.histogram_handle("sim.latency_ms",
                                    MetricsCollector::latency_bucket_bounds()),
      };
    }();
    return handles;
  }
};

// Accumulates one timeline row per `epoch_requests` emitted requests.
// Fed exclusively from run-local state (per-epoch tallies plus the run's
// own CcnNetwork counters) — never from the process-global obs::metrics()
// registry, which parallel replications share and mutate concurrently.
// Every request engine calls on_request()/on_aggregated() once per emitted
// request in emission order, and aligns its processing blocks to epoch
// boundaries, so rows are identical whichever engine ran.
class EpochRecorder {
 public:
  EpochRecorder(obs::Timeline* timeline, const CcnNetwork* network)
      : timeline_(timeline),
        network_(network),
        epoch_requests_(timeline->epoch_requests()) {}

  /// One request whose serve outcome is known at emission.
  void on_request(const ServeResult& result) {
    ++requests_;
    ++tier_counts_[static_cast<std::size_t>(result.tier)];
    latency_ms_sum_ += result.latency_ms;
    hops_sum_ += static_cast<double>(result.hops);
    tier_latency_ms_sum_[static_cast<std::size_t>(result.tier)] +=
        result.latency_ms;
    maybe_flush();
  }

  /// One request that joined an in-flight fetch (interest aggregation):
  /// counted in the `requests` and `aggregated` columns at emission; its
  /// tier/latency resolve at the completion event and are not re-binned.
  void on_aggregated() {
    ++requests_;
    ++aggregated_;
    maybe_flush();
  }

  /// Emits the final partial epoch, if any requests are pending in it.
  void finish() {
    if (requests_ > 0) flush();
  }

 private:
  void maybe_flush() {
    ++emitted_;
    if (emitted_ % epoch_requests_ == 0) flush();
  }

  void flush() {
    const CcnNetwork::CacheTotals totals = network_->cache_totals();
    const std::uint64_t traversals = network_->total_link_traversals();
    std::vector<double> values;
    values.reserve(15);
    values.push_back(static_cast<double>(requests_));
    values.push_back(static_cast<double>(tier_counts_[0]));
    values.push_back(static_cast<double>(tier_counts_[1]));
    values.push_back(static_cast<double>(tier_counts_[2]));
    values.push_back(static_cast<double>(aggregated_));
    values.push_back(latency_ms_sum_);
    values.push_back(hops_sum_);
    values.push_back(tier_latency_ms_sum_[0]);
    values.push_back(tier_latency_ms_sum_[1]);
    values.push_back(tier_latency_ms_sum_[2]);
    values.push_back(static_cast<double>(totals.evictions - prev_evictions_));
    values.push_back(
        static_cast<double>(totals.insertions - prev_insertions_));
    values.push_back(static_cast<double>(totals.occupancy));
    values.push_back(static_cast<double>(traversals - prev_traversals_));
    values.push_back(static_cast<double>(network_->max_link_load()));
    timeline_->push_epoch(emitted_ - requests_, emitted_ - 1,
                          std::move(values));
    prev_evictions_ = totals.evictions;
    prev_insertions_ = totals.insertions;
    prev_traversals_ = traversals;
    requests_ = 0;
    aggregated_ = 0;
    latency_ms_sum_ = 0.0;
    hops_sum_ = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      tier_counts_[i] = 0;
      tier_latency_ms_sum_[i] = 0.0;
    }
  }

  obs::Timeline* timeline_;
  const CcnNetwork* network_;
  std::uint64_t epoch_requests_;
  std::uint64_t emitted_ = 0;
  // Current-epoch tallies, cleared at every flush.
  std::uint64_t requests_ = 0;
  std::uint64_t aggregated_ = 0;
  std::uint64_t tier_counts_[3] = {0, 0, 0};
  double latency_ms_sum_ = 0.0;
  double hops_sum_ = 0.0;
  double tier_latency_ms_sum_[3] = {0.0, 0.0, 0.0};
  // Cumulative network counters at the previous epoch boundary, for deltas.
  std::uint64_t prev_evictions_ = 0;
  std::uint64_t prev_insertions_ = 0;
  std::uint64_t prev_traversals_ = 0;
};

// One registry flush per run: integer sums and a fixed-point histogram
// merge, so totals are exact and order-independent no matter which
// thread (or how many) ran the replications.
inline void flush_run_registry(const MetricsCollector& collected,
                               const SimReport& report,
                               std::uint64_t aggregated_count,
                               std::uint64_t upstream_count,
                               std::size_t trace_count) {
  obs::MetricsRegistry& registry = obs::metrics();
  const RunMetricHandles& handles = RunMetricHandles::get();
  registry.incr(handles.runs);
  registry.incr(handles.requests_measured, report.total_requests);
  registry.incr(handles.requests_local,
                collected.tier_count(ServeTier::kLocal));
  registry.incr(handles.requests_network,
                collected.tier_count(ServeTier::kNetwork));
  registry.incr(handles.requests_origin,
                collected.tier_count(ServeTier::kOrigin));
  registry.incr(handles.requests_aggregated, aggregated_count);
  registry.incr(handles.upstream_fetches, upstream_count);
  registry.incr(handles.coordination_messages, report.coordination_messages);
  registry.incr(handles.trace_sampled, trace_count);
  registry.merge_histogram(handles.latency_ms, collected.latency_histogram());
}

}  // namespace ccnopt::sim::detail
