// The CCN data plane: routers with partitioned content stores on a real
// topology, an origin behind a gateway router, and the three-tier serve
// path of Figure 2 (own store -> coordinated peer -> origin).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "ccnopt/cache/partitioned.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/obs/topo.hpp"
#include "ccnopt/sim/coordinator.hpp"
#include "ccnopt/sim/metrics.hpp"
#include "ccnopt/strategy/strategy.hpp"
#include "ccnopt/topology/graph.hpp"
#include "ccnopt/topology/shortest_paths.hpp"

namespace ccnopt::sim {

enum class LocalStoreMode { kStaticTop, kLru, kLfu, kFifo, kRandom };

const char* to_string(LocalStoreMode mode);

struct NetworkConfig {
  std::uint64_t catalog_size = 10000;
  /// Uniform per-router capacity; `capacity_overrides` (indexed by node id,
  /// same length as the node count) replaces it when non-empty. Routers
  /// with zero capacity route but do not cache (R0 in Section II).
  std::size_t capacity_c = 100;
  std::vector<std::size_t> capacity_overrides;
  LocalStoreMode local_mode = LocalStoreMode::kStaticTop;
  /// d0: client <-> first-hop router access latency.
  double access_latency_d0_ms = 1.0;
  /// The origin hangs off this router...
  topology::NodeId origin_gateway = 0;
  /// ...at this extra latency / hop distance.
  double origin_extra_ms = 50.0;
  std::uint32_t origin_extra_hops = 1;
  /// When true, a miss may be served by the nearest peer whose *local*
  /// partition holds the content (opportunistic replica lookup); the
  /// paper's model only consults the coordinator's assignment, so this is
  /// off by default and exercised by the policy ablation.
  bool allow_peer_local_fetch = false;
  /// When true, every network/origin fetch walks its shortest path and
  /// increments per-link traversal counters (link_load()); carriers read
  /// this as link utilization. Off by default (costs one tree walk per
  /// non-local request).
  bool track_link_load = false;
  /// Multiple origin attachment points: content -> origins[content mod k].
  /// Non-empty overrides the single origin_gateway/extra fields ("O is an
  /// abstraction of multiple origin servers", Section III-A).
  struct OriginSpec {
    topology::NodeId gateway = 0;
    double extra_ms = 50.0;
    std::uint32_t extra_hops = 1;
  };
  std::vector<OriginSpec> origins;
  /// When true, dynamic local partitions use the retained node-based
  /// reference policies (cache/reference.hpp) instead of the flat intrusive
  /// rewrites. The two sides are contractually byte-identical — this switch
  /// exists so A/B tests can prove it on whole simulations; never enable it
  /// for performance runs.
  bool use_reference_policies = false;
  /// Membership-index selection for the flat local partitions: kAuto keeps
  /// the dense array for small catalogs and switches to the O(capacity)
  /// robin-hood index when catalog_size dwarfs the per-router capacity
  /// (see cache/content_index.hpp for the exact rule). Forcing kDense at
  /// web-scale catalogs allocates O(catalog) words per router.
  cache::IndexMode cache_index_mode = cache::IndexMode::kAuto;
  /// Registered caching-strategy name (strategy/registry.hpp) that decides
  /// both placement (what provision() puts where) and forwarding (how
  /// serve() locates non-local copies). The default is the paper's scheme.
  std::string strategy = "coordinated-split";
  /// Overrides the strategy's probabilistic-insertion base p when > 0
  /// (only meaningful for on-path strategies with kProbabilistic rules).
  double strategy_insertion_p = 0.0;
  /// When true, provision() runs the retained pre-strategy coordinator code
  /// path instead of dispatching through the bound PlacementStrategy. The
  /// two are contractually byte-identical for `strategy = default`; this
  /// switch exists so A/B tests can prove it on whole simulations.
  bool use_legacy_coordinator_path = false;
  std::uint64_t seed = 42;
};

struct ServeResult {
  ServeTier tier = ServeTier::kLocal;
  double latency_ms = 0.0;
  std::uint32_t hops = 0;
  topology::NodeId served_by = 0;
  /// True when the hit came from the router's own coordinated partition —
  /// Eq. 2 charges those d1 while the physical path is d0; the
  /// model-vs-simulation bench uses this to reconcile the two accountings.
  bool own_coordinated_hit = false;
  /// Hop distance from the requesting router of the copy the insertion
  /// rule placed nearest to it while serving this request (0 = at the
  /// first hop itself); -1 when no copy was placed. Only computed when a
  /// topo recorder is attached or placement-depth recording is on
  /// (set_record_placement_depth) — the hot path stays branch-free
  /// otherwise.
  std::int32_t placement_depth = -1;
};

class CcnNetwork {
 public:
  /// Requires a connected graph with at least 2 nodes and at least one
  /// router of non-zero capacity.
  CcnNetwork(topology::Graph graph, NetworkConfig config);

  const topology::Graph& graph() const { return graph_; }
  const NetworkConfig& config() const { return config_; }
  std::size_t router_count() const { return graph_.node_count(); }
  const std::vector<topology::NodeId>& participants() const {
    return coordinator_.participants();
  }

  /// (Re)provisions all stores for a coordination amount `x` per router
  /// (clamped to each router's capacity): local partitions are rebuilt in
  /// `local_mode`, the coordinated partitions receive the epoch assignment
  /// of ranks c_min - x + 1 ... Returns the epoch's coordination message
  /// count (0 when x = 0).
  std::uint64_t provision(std::size_t coordinated_x);

  /// Heterogeneous epoch (model/heterogeneous.hpp semantics): participant
  /// i coordinates x[i] <= capacity, keeps the top capacity - x[i] ranks
  /// locally, and the pool of sum(x) contents covers the ranks immediately
  /// after the network-wide local coverage L = max_i (c_i - x_i). x is
  /// indexed by participant order (participants()). Returns the epoch's
  /// message count.
  std::uint64_t provision_heterogeneous(const std::vector<std::size_t>& x);

  /// Serves one request arriving at `first_hop`; mutates dynamic local
  /// partitions (miss-path admission).
  ServeResult serve(topology::NodeId first_hop, cache::ContentId content);

  /// Hints the serve()-path state of an upcoming request into cache: the
  /// first-hop store's membership index and the coordinated-owner interval
  /// entry. Issued by the batched request engine one request ahead; never
  /// mutates, never required for correctness.
  void prefetch(topology::NodeId first_hop, cache::ContentId content) const;

  // --- Sharded serving ------------------------------------------------------
  // Under owner-table forwarding a request's only mutation is its first-hop
  // store, so shards owning disjoint first-hop routers may serve
  // concurrently against ONE shared network — provided each shard writes
  // its link traversals and placement telemetry into private scratch
  // instead of the shared members. serve_sharded() is exactly serve()'s
  // owner-table body with the counter sinks swapped; fold_shard_scratch()
  // adds the scratch back into the shared counters (integer sums, so any
  // fold order reproduces the sequential counts bit for bit).

  struct ShardScratch {
    std::vector<std::uint64_t> link_counts;  // graph().links() order
    std::uint64_t total_traversals = 0;
    /// Per-shard placement recorder (may be null); the engine folds it into
    /// the run recorder with obs::TopoRecorder::absorb.
    obs::TopoRecorder* topo = nullptr;
  };

  /// Scratch with zeroed link counters sized for this graph.
  ShardScratch make_shard_scratch(obs::TopoRecorder* topo) const;

  /// serve() restricted to owner-table forwarding, with link/placement
  /// telemetry diverted into `scratch`. Requires
  /// data_plane().forwarding == kOwnerTable and no peer-local fetch; the
  /// caller (the sharded engine) guarantees no two concurrent calls share a
  /// first_hop router.
  ServeResult serve_sharded(topology::NodeId first_hop,
                            cache::ContentId content, ShardScratch& scratch);

  /// Adds `scratch`'s link counters into the shared ones and zeroes them
  /// (the topo recorder is left for the caller to absorb).
  void fold_shard_scratch(ShardScratch& scratch);

  /// Store of one router; precondition: id < router_count().
  const cache::PartitionedStore& store(topology::NodeId id) const;

  /// Aggregate cache state over every router's store: summed local-partition
  /// eviction/insertion counters (the coordinated partitions never evict —
  /// they change only at provision epochs) plus current total occupancy and
  /// capacity, coordinated contents included. O(router_count); read by the
  /// timeline epoch recorder at every epoch boundary, and a pure function of
  /// the request history, so timeline rows stay thread-count invariant.
  struct CacheTotals {
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
    std::uint64_t occupancy = 0;
    std::uint64_t capacity = 0;
  };
  CacheTotals cache_totals() const;

  std::size_t capacity_of(topology::NodeId id) const;
  std::size_t provisioned_x() const { return provisioned_x_; }

  /// The bound strategy (resolved from config().strategy at construction).
  const strategy::StrategyBundle& strategy_bundle() const { return bundle_; }
  /// The cached per-request descriptor serve() branches on — two enums and
  /// two scalars, never a virtual call (see strategy/strategy.hpp).
  const strategy::DataPlane& data_plane() const { return data_plane_; }

  // --- Failure injection ---------------------------------------------------
  // A failed router neither serves nor forwards: paths are recomputed over
  // the surviving subgraph, its coordinated contents become unreachable
  // (requests for them fall through to the origin), and requests cannot
  // originate at it. The origin gateway must stay alive. Re-provisioning
  // after failures ("repair") redistributes the coordinated pool over the
  // surviving participants only.

  /// Marks `id` failed/recovered and recomputes routing. Precondition:
  /// the origin gateway stays alive.
  void set_router_failed(topology::NodeId id, bool failed);
  bool is_failed(topology::NodeId id) const;
  std::size_t failed_count() const;

  /// Coordinated contents currently owned by failed routers (unreachable
  /// until repair re-provisions).
  std::size_t coordinated_contents_lost() const;

  // --- Link load (requires config.track_link_load) -------------------------

  struct LinkLoad {
    topology::NodeId u = 0;  ///< u < v
    topology::NodeId v = 0;
    std::uint64_t traversals = 0;
  };
  /// Per-link traversal counts accumulated by serve(); zero-traffic links
  /// included. Precondition: tracking enabled.
  std::vector<LinkLoad> link_load() const;
  /// The dense traversal counters behind link_load(), in graph().links()
  /// order (all zero when tracking is off). The topo recorder snapshots
  /// these at the end of a run.
  const std::vector<std::uint64_t>& link_counts() const {
    return link_counts_;
  }
  /// Largest per-link count (0 when nothing recorded).
  std::uint64_t max_link_load() const;
  std::uint64_t total_link_traversals() const { return total_traversals_; }
  void reset_link_load();

  // --- Topology-resolved telemetry -----------------------------------------

  /// Attaches a run-local flight recorder: serve() reports every copy the
  /// insertion rule actually admits (obs::TopoRecorder::on_placement) and
  /// computes ServeResult::placement_depth. nullptr detaches; detached (the
  /// default) costs one predictable branch per serve.
  void set_topo_recorder(obs::TopoRecorder* recorder) { topo_ = recorder; }
  /// Computes ServeResult::placement_depth even without a recorder (the
  /// trace sampler wants depths when topo recording is off).
  void set_record_placement_depth(bool on) { record_depths_ = on; }

  /// Reconstructs the router-id delivery path of the result that the
  /// immediately preceding serve() returned: {first_hop} for local hits,
  /// first hop through the serving router otherwise (through the origin
  /// gateway for origin-tier results — the origin itself is not a router).
  /// Must be called before the next serve() (on-path forwarding reuses the
  /// internal miss-path scratch). Deterministic: pure in the routing state.
  std::vector<topology::NodeId> hop_path(topology::NodeId first_hop,
                                         const ServeResult& result) const;

 private:
  static constexpr topology::NodeId kNoOwner = 0xFFFFFFFFu;
  static constexpr std::uint32_t kNoLink = 0xFFFFFFFFu;

  /// Precomputed end-to-end origin route: d0 + shortest path + origin extra,
  /// one entry per (router, origin spec). kUnreachable when disconnected.
  struct OriginRoute {
    double latency_ms = topology::kUnreachable;
    std::uint32_t hops = topology::kUnreachableHops;
  };

  topology::Graph graph_;
  NetworkConfig config_;
  std::vector<NetworkConfig::OriginSpec> origins_;  // resolved, never empty
  topology::AllPairs paths_;
  Coordinator coordinator_;
  Coordinator::Assignment assignment_;
  std::vector<std::unique_ptr<cache::PartitionedStore>> stores_;
  std::size_t provisioned_x_ = 0;
  std::vector<bool> failed_;

  // Flat serve()-path tables, so the hot path never probes a hash map.
  // Coordinated placement is always a contiguous popularity-rank interval
  // (coordinator.hpp deals ranks round-robin from a first rank), so the
  // owner lookup is an interval test plus one indexed load — O(pool)
  // memory instead of the O(catalog) dense rank table this replaces.
  // Rebuilt on every provision. origin_routes_ maps (router, origin spec)
  // -> total route cost, rebuilt with routing.
  cache::ContentId owner_first_rank_ = 1;
  std::vector<topology::NodeId> owner_by_offset_;  // size = coordinated pool
  std::vector<OriginRoute> origin_routes_;     // router * |origins| + spec

  // Strategy binding (per-run, never per-request): the bundle holds the
  // virtual strategy objects, data_plane_ the POD descriptor serve() reads.
  strategy::StrategyBundle bundle_;
  strategy::DataPlane data_plane_;
  // On-path forwarding state: per-origin shortest-path trees rooted at the
  // gateway (parent[u] = next hop from u toward the gateway; rebuilt with
  // routing), the scratch miss path of the in-flight request, and the
  // admission-coin stream (reseeded every provision epoch).
  std::vector<topology::SsspResult> origin_trees_;
  std::vector<topology::NodeId> miss_path_;
  Rng strategy_rng_{0};

  // Run-local telemetry hooks (see set_topo_recorder); never owned here.
  obs::TopoRecorder* topo_ = nullptr;
  bool record_depths_ = false;

  topology::NodeId owner_of(cache::ContentId content) const {
    // Unsigned wrap makes ranks below the interval fail the bound too.
    const cache::ContentId offset = content - owner_first_rank_;
    return offset < owner_by_offset_.size() ? owner_by_offset_[offset]
                                            : kNoOwner;
  }

  static std::vector<topology::NodeId> find_participants(
      const topology::Graph& graph, const NetworkConfig& config);
  std::vector<topology::NodeId> alive_participants() const;
  void rebuild_routing();
  void rebuild_owner_table();
  void record_path(topology::NodeId src, topology::NodeId dst);
  /// record_path with explicit counter sinks — the shared body behind both
  /// the sequential and the sharded serve paths. Const: mutates only the
  /// passed counters.
  void record_path_into(topology::NodeId src, topology::NodeId dst,
                        std::vector<std::uint64_t>& counts,
                        std::uint64_t& total) const;
  /// The owner-table serve body with parameterized telemetry sinks:
  /// serve() passes the shared members, serve_sharded() a shard's scratch.
  ServeResult serve_owner_table(topology::NodeId first_hop,
                                cache::ContentId content,
                                std::vector<std::uint64_t>& link_counts,
                                std::uint64_t& total_traversals,
                                obs::TopoRecorder* topo);

  /// The retained pre-strategy provision body (the byte-identity oracle for
  /// CoordinatedSplitPlacement); reached via use_legacy_coordinator_path.
  std::uint64_t provision_legacy(std::size_t coordinated_x);
  /// serve() body for kOnPath forwarding: walk the shortest path toward the
  /// content's origin gateway checking each en-route store, then seed
  /// copies along the recorded miss path per the insertion rule.
  ServeResult serve_on_path(topology::NodeId first_hop,
                            cache::ContentId content);
  /// Seeds copies along miss_path_ per the insertion rule; returns the
  /// depth (miss_path_ index) of the copy admitted nearest the requester,
  /// -1 when none was (only computed under placement_telemetry()).
  std::int32_t apply_insertion_rule(cache::ContentId content);

  /// True when serve() must account placements (recorder attached or
  /// explicit depth recording) — one branch on the disabled hot path.
  bool placement_telemetry() const {
    return topo_ != nullptr || record_depths_;
  }

  // Link-load state: per-source shortest-path trees (kept in sync with
  // failures), the dense link index of each tree edge (parent_link_[src][v]
  // = index of link (v, parent(v)) in graph().links() order), and per-link
  // traversal counters in that same dense order.
  std::vector<topology::SsspResult> trees_;
  std::vector<std::vector<std::uint32_t>> parent_link_;
  std::vector<std::uint64_t> link_counts_;
  std::uint64_t total_traversals_ = 0;
  // (min,max) node pair -> dense link index, built once at construction and
  // consulted only when rebuilding parent_link_ (never per request).
  std::unordered_map<std::uint64_t, std::uint32_t> link_index_;
};

}  // namespace ccnopt::sim
