#include "ccnopt/obs/export.hpp"

#include <charconv>
#include <cmath>
#include <ostream>

namespace ccnopt::obs {
namespace {

std::string indent_of(int indent) { return std::string(static_cast<std::size_t>(indent), ' '); }

void write_number_map_json(std::ostream& out,
                           const std::map<std::string, std::uint64_t>& values,
                           int indent) {
  const std::string pad = indent_of(indent);
  out << "{";
  bool first = true;
  for (const auto& [name, value] : values) {
    out << (first ? "\n" : ",\n") << pad << "  \"" << json_escape(name)
        << "\": " << value;
    first = false;
  }
  out << (first ? "" : "\n" + pad) << "}";
}

void write_double_map_json(std::ostream& out,
                           const std::map<std::string, double>& values,
                           int indent) {
  const std::string pad = indent_of(indent);
  out << "{";
  bool first = true;
  for (const auto& [name, value] : values) {
    out << (first ? "\n" : ",\n") << pad << "  \"" << json_escape(name)
        << "\": " << json_number(value);
    first = false;
  }
  out << (first ? "" : "\n" + pad) << "}";
}

void write_histogram_json(std::ostream& out, const Histogram& hist) {
  out << "{\"bounds\": [";
  for (std::size_t i = 0; i < hist.bounds().size(); ++i) {
    out << (i == 0 ? "" : ", ") << json_number(hist.bounds()[i]);
  }
  out << "], \"counts\": [";
  for (std::size_t i = 0; i < hist.counts().size(); ++i) {
    out << (i == 0 ? "" : ", ") << hist.counts()[i];
  }
  out << "], \"count\": " << hist.count()
      << ", \"sum\": " << json_number(hist.sum())
      << ", \"min\": " << json_number(hist.min())
      << ", \"max\": " << json_number(hist.max()) << "}";
}

void csv_row(std::ostream& out, const std::string& section,
             const std::string& type, const std::string& name,
             const std::string& key, const std::string& value) {
  out << section << "," << type << "," << name << "," << key << "," << value
      << "\n";
}

}  // namespace

std::string json_escape(std::string_view text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          escaped += "\\u00";
          escaped += hex[(c >> 4) & 0xF];
          escaped += hex[c & 0xF];
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buffer[64];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  std::string text(buffer, result.ptr);
  // to_chars may emit bare "1e+30"-style exponents, which are valid JSON;
  // integral values come out without a decimal point ("5"), also valid.
  return text;
}

void write_registry_json(std::ostream& out, const RegistrySnapshot& snap,
                         int indent) {
  const std::string pad = indent_of(indent);
  out << "{\n" << pad << "  \"counters\": ";
  write_number_map_json(out, snap.counters, indent + 2);
  out << ",\n" << pad << "  \"gauges\": ";
  write_double_map_json(out, snap.gauges, indent + 2);
  out << ",\n" << pad << "  \"histograms\": {";
  bool first = true;
  for (const auto& [name, hist] : snap.histograms) {
    out << (first ? "\n" : ",\n") << pad << "    \"" << json_escape(name)
        << "\": ";
    write_histogram_json(out, hist);
    first = false;
  }
  out << (first ? "" : "\n" + pad + "  ") << "}\n" << pad << "}";
}

void write_registry_csv(std::ostream& out, const std::string& section,
                        const RegistrySnapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    csv_row(out, section, "counter", name, "", std::to_string(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    csv_row(out, section, "gauge", name, "", json_number(value));
  }
  for (const auto& [name, hist] : snap.histograms) {
    for (std::size_t i = 0; i < hist.counts().size(); ++i) {
      const std::string key =
          i < hist.bounds().size() ? "le_" + json_number(hist.bounds()[i])
                                   : "le_inf";
      csv_row(out, section, "histogram", name, key,
              std::to_string(hist.counts()[i]));
    }
    csv_row(out, section, "histogram", name, "count",
            std::to_string(hist.count()));
    csv_row(out, section, "histogram", name, "sum", json_number(hist.sum()));
    csv_row(out, section, "histogram", name, "min", json_number(hist.min()));
    csv_row(out, section, "histogram", name, "max", json_number(hist.max()));
  }
}

void write_spans_json(std::ostream& out,
                      const std::vector<SpanAggregate>& spans, int indent) {
  const std::string pad = indent_of(indent);
  out << "[";
  bool first = true;
  for (const SpanAggregate& span : spans) {
    out << (first ? "\n" : ",\n") << pad << "  {\"path\": \""
        << json_escape(span.path) << "\", \"count\": " << span.count
        << ", \"wall_ms\": "
        << json_number(static_cast<double>(span.wall_ns) / 1e6)
        << ", \"cpu_ms\": "
        << json_number(static_cast<double>(span.cpu_ns) / 1e6) << "}";
    first = false;
  }
  out << (first ? "" : "\n" + pad) << "]";
}

void write_spans_csv(std::ostream& out,
                     const std::vector<SpanAggregate>& spans) {
  for (const SpanAggregate& span : spans) {
    csv_row(out, "spans", "span", span.path, "count",
            std::to_string(span.count));
    csv_row(out, "spans", "span", span.path, "wall_ms",
            json_number(static_cast<double>(span.wall_ns) / 1e6));
    csv_row(out, "spans", "span", span.path, "cpu_ms",
            json_number(static_cast<double>(span.cpu_ns) / 1e6));
  }
}

void write_trace_events_json(std::ostream& out,
                             const std::vector<SpanEvent>& events,
                             std::uint64_t dropped_events) {
  out << "{\n";
  out << "  \"schema\": \"ccnopt-spans-v1\",\n";
  out << "  \"displayTimeUnit\": \"ms\",\n";
  out << "  \"dropped_events\": " << dropped_events << ",\n";
  out << "  \"traceEvents\": [\n";
  // Process-name metadata row so Perfetto labels the track sensibly.
  out << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
         "\"args\": {\"name\": \"ccnopt\"}}";
  for (const SpanEvent& event : events) {
    const std::size_t slash = event.path.rfind('/');
    const std::string_view name =
        slash == std::string::npos
            ? std::string_view(event.path)
            : std::string_view(event.path).substr(slash + 1);
    out << ",\n    {\"name\": \"" << json_escape(name)
        << "\", \"cat\": \"span\", \"ph\": \"X\", \"ts\": "
        << json_number(static_cast<double>(event.ts_ns) / 1e3)
        << ", \"dur\": "
        << json_number(static_cast<double>(event.dur_ns) / 1e3)
        << ", \"pid\": 0, \"tid\": " << event.tid << ", \"args\": {\"path\": \""
        << json_escape(event.path) << "\"}}";
  }
  out << "\n  ]\n";
  out << "}\n";
}

void export_snapshot(std::ostream& out, const ExportOptions& options) {
  if (options.format == ExportFormat::kJson) {
    out << "{\n  \"schema\": \"ccnopt-obs-v1\"";
    if (options.include_metrics) {
      out << ",\n  \"metrics\": ";
      write_registry_json(out, metrics().snapshot(), 2);
    }
    if (options.include_perf) {
      out << ",\n  \"perf\": ";
      write_registry_json(out, perf().snapshot(), 2);
    }
    if (options.include_spans) {
      out << ",\n  \"spans\": ";
      write_spans_json(out, SpanProfiler::instance().snapshot(), 2);
    }
    out << "\n}\n";
    return;
  }
  out << "section,type,name,key,value\n";
  if (options.include_metrics) {
    write_registry_csv(out, "metrics", metrics().snapshot());
  }
  if (options.include_perf) {
    write_registry_csv(out, "perf", perf().snapshot());
  }
  if (options.include_spans) {
    write_spans_csv(out, SpanProfiler::instance().snapshot());
  }
}

}  // namespace ccnopt::obs
