// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Recording is sharded per thread: each (thread, registry) pair owns a
// private shard guarded by its own mutex, so ThreadPool workers never
// contend with each other — only a snapshot() briefly locks the shards one
// by one to merge them. Merges are exact and order-independent by
// construction: counters and bucket counts are integer sums, min/max are
// order-free, and histogram value sums accumulate in fixed point (integer
// micro-units) instead of floating point, so a merged snapshot is
// bit-identical no matter how work was distributed across threads. That
// property is what lets `--metrics-out` promise byte-identical output for
// any --threads value.
//
// Hot paths intern their metric names once and record through handles:
// CounterHandle / HistogramHandle resolve the name to a dense id at
// registration, so per-event recording is an array index update — no
// string hashing, no map probe. String keys exist only at registration and
// export; a handle-recorded metric is indistinguishable from a
// string-recorded one in snapshots. Handles survive reset(): reset clears
// every recorded value but keeps the interned id tables, so statically
// cached handles stay valid for the life of the registry.
//
// Two process-wide instances exist with distinct determinism contracts:
//   obs::metrics() — the deterministic domain. Everything recorded here
//     must be a pure function of seeds and inputs (request counts, tier
//     splits, solver iterations). Exported by `--metrics-out`.
//   obs::perf()    — the performance domain. Scheduling- and timing-
//     dependent values (queue depths, task counts per pool). Exported by
//     `--profile-out`, never mixed into deterministic output.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ccnopt::obs {

/// Fixed-bucket histogram value type, usable standalone (e.g. accumulated
/// locally in a hot loop and merged into a registry once per run).
///
/// Bucket i counts observations v <= bounds[i]; one implicit overflow
/// bucket follows the last bound. The running sum is kept in fixed point
/// (micro-units, i.e. 1e-6 resolution) so that merging histograms is exact
/// integer arithmetic: any grouping of the same observations produces the
/// same sum bit-for-bit.
class Histogram {
 public:
  Histogram() = default;
  /// Requires non-empty, strictly ascending bounds.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);
  /// Adds `other`'s observations; bounds must match (or this histogram
  /// must be default-constructed, in which case it adopts them).
  void merge(const Histogram& other);
  /// Zeroes all observations, keeping the bucket bounds.
  void reset();

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size bounds().size() + 1 (last = overflow).
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  /// Sum of observations at 1e-6 resolution (exact across merges).
  double sum() const { return static_cast<double>(sum_fp_) / kSumScale; }
  /// Smallest / largest observation; 0 when empty.
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  static constexpr double kSumScale = 1e6;

  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::int64_t sum_fp_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One merged view of a registry. Maps are ordered so exports are stable.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> histograms;
};

class MetricsRegistry {
 public:
  /// Pre-resolved counter identity: the name was interned at creation, so
  /// incr(handle) touches only this thread's slot array. Default-constructed
  /// handles are invalid; copy freely (it is two words).
  class CounterHandle {
   public:
    CounterHandle() = default;
    bool valid() const { return registry_ != nullptr; }

   private:
    friend class MetricsRegistry;
    CounterHandle(MetricsRegistry* registry, std::uint32_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    std::uint32_t id_ = 0;
  };

  /// Pre-resolved histogram identity; bounds are fixed at creation.
  class HistogramHandle {
   public:
    HistogramHandle() = default;
    bool valid() const { return registry_ != nullptr; }

   private:
    friend class MetricsRegistry;
    HistogramHandle(MetricsRegistry* registry, std::uint32_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    std::uint32_t id_ = 0;
  };

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter in this thread's shard.
  void incr(const std::string& name, std::uint64_t delta = 1);

  /// Interns `name` and returns its handle (idempotent: the same name
  /// always yields an equivalent handle). The counter appears in snapshots
  /// once incremented (delta 0 counts as touched, matching string incr).
  CounterHandle counter_handle(const std::string& name);

  /// Adds `delta` to the handle's counter — no string hashing; the handle
  /// must come from this registry.
  void incr(CounterHandle handle, std::uint64_t delta = 1);

  /// Sets a gauge (registry-global, last write wins). Gauges are not
  /// sharded; deterministic exports should only set them from code that
  /// runs at a deterministic point (e.g. the reducing thread).
  void set_gauge(const std::string& name, double value);

  /// Registers a histogram's bucket bounds. Idempotent; re-defining with
  /// different bounds is a contract violation. Must precede observe().
  void define_histogram(const std::string& name, std::vector<double> bounds);

  /// Records one observation into the named (defined) histogram.
  void observe(const std::string& name, double value);

  /// Interns a histogram with fixed bounds and returns its handle.
  /// Idempotent for matching bounds; differing bounds are a contract
  /// violation. The histogram appears in snapshots once observed into or
  /// merged (unlike define_histogram it is not pre-seeded, so a reset()
  /// hides it again until the next record).
  HistogramHandle histogram_handle(const std::string& name,
                                   std::vector<double> bounds);

  /// Records one observation through a pre-resolved handle.
  void observe(HistogramHandle handle, double value);

  /// Merges a locally accumulated histogram into the registry; defines the
  /// name with `h`'s bounds on first use.
  void merge_histogram(const std::string& name, const Histogram& h);

  /// Merges a locally accumulated histogram through a pre-resolved handle;
  /// `h`'s bounds must match the handle's registration.
  void merge_histogram(HistogramHandle handle, const Histogram& h);

  /// Merged view across all shards. Defined-but-unobserved histograms
  /// appear with zero counts so the export schema is run-independent.
  RegistrySnapshot snapshot() const;

  /// Clears all recorded counters, gauges, observations, and string-keyed
  /// histogram definitions. Interned handle tables persist: existing
  /// CounterHandle/HistogramHandle values remain usable and simply start
  /// from zero again.
  void reset();

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, Histogram> histograms;
    // Interned-id-indexed slots; `counter_used` marks ids touched since the
    // last reset so snapshots list exactly the recorded names.
    std::vector<std::uint64_t> counter_slots;
    std::vector<std::uint8_t> counter_used;
    std::vector<Histogram> histogram_slots;  // empty bounds = untouched
  };

  Shard& local_shard() const;
  std::vector<double> bounds_for(const std::string& name) const;

  const std::uint64_t id_;  // keys the thread-local shard cache
  mutable std::mutex mutex_;  // guards shards_ list, gauges_, bounds_, interns
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::vector<double>> histogram_bounds_;
  // Interned handle tables (append-only; survive reset()).
  std::vector<std::string> counter_names_;
  std::unordered_map<std::string, std::uint32_t> counter_ids_;
  std::vector<std::string> histogram_names_;
  std::vector<std::vector<double>> histogram_handle_bounds_;
  std::unordered_map<std::string, std::uint32_t> histogram_ids_;
};

/// The deterministic-domain registry (seed-determined quantities only).
MetricsRegistry& metrics();

/// The performance-domain registry (timing/scheduling-dependent values).
MetricsRegistry& perf();

}  // namespace ccnopt::obs
