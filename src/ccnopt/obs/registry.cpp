#include "ccnopt/obs/registry.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::obs {
namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1);
}

// Per-thread shard cache, keyed by registry id (not address, so a registry
// allocated at a reused address never inherits a stale shard).
thread_local std::unordered_map<std::uint64_t, void*> t_shards;

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  CCNOPT_EXPECTS(!bounds_.empty());
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    CCNOPT_EXPECTS(bounds_[i - 1] < bounds_[i]);
  }
}

void Histogram::observe(double value) {
  CCNOPT_EXPECTS(!bounds_.empty());
  CCNOPT_EXPECTS(std::isfinite(value));
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_fp_ += std::llround(value * kSumScale);
}

void Histogram::merge(const Histogram& other) {
  if (bounds_.empty()) {
    *this = other;
    return;
  }
  CCNOPT_EXPECTS(bounds_ == other.bounds_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_fp_ += other.sum_fp_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_fp_ = 0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry::MetricsRegistry() : id_(next_registry_id()) {}

MetricsRegistry::Shard& MetricsRegistry::local_shard() const {
  const auto it = t_shards.find(id_);
  if (it != t_shards.end()) return *static_cast<Shard*>(it->second);
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::move(shard));
  }
  t_shards.emplace(id_, raw);
  return *raw;
}

void MetricsRegistry::incr(const std::string& name, std::uint64_t delta) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counters[name] += delta;
}

MetricsRegistry::CounterHandle MetricsRegistry::counter_handle(
    const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return CounterHandle(this, it->second);
  const auto id = static_cast<std::uint32_t>(counter_names_.size());
  counter_names_.push_back(name);
  counter_ids_.emplace(name, id);
  return CounterHandle(this, id);
}

void MetricsRegistry::incr(CounterHandle handle, std::uint64_t delta) {
  CCNOPT_EXPECTS(handle.registry_ == this);
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (handle.id_ >= shard.counter_slots.size()) {
    shard.counter_slots.resize(handle.id_ + 1, 0);
    shard.counter_used.resize(handle.id_ + 1, 0);
  }
  shard.counter_used[handle.id_] = 1;
  shard.counter_slots[handle.id_] += delta;
}

void MetricsRegistry::set_gauge(const std::string& name, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void MetricsRegistry::define_histogram(const std::string& name,
                                       std::vector<double> bounds) {
  CCNOPT_EXPECTS(!bounds.empty());
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histogram_bounds_.find(name);
  if (it != histogram_bounds_.end()) {
    CCNOPT_EXPECTS(it->second == bounds);
    return;
  }
  histogram_bounds_.emplace(name, std::move(bounds));
}

std::vector<double> MetricsRegistry::bounds_for(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histogram_bounds_.find(name);
  CCNOPT_EXPECTS(it != histogram_bounds_.end());
  return it->second;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  Shard& shard = local_shard();
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.histograms.find(name);
    if (it != shard.histograms.end()) {
      it->second.observe(value);
      return;
    }
  }
  // First observation of this name on this thread: fetch the bounds (never
  // while holding the shard mutex — lock order is registry before shard).
  Histogram fresh(bounds_for(name));
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.histograms.emplace(name, std::move(fresh)).first->second.observe(value);
}

MetricsRegistry::HistogramHandle MetricsRegistry::histogram_handle(
    const std::string& name, std::vector<double> bounds) {
  CCNOPT_EXPECTS(!bounds.empty());
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histogram_ids_.find(name);
  if (it != histogram_ids_.end()) {
    CCNOPT_EXPECTS(histogram_handle_bounds_[it->second] == bounds);
    return HistogramHandle(this, it->second);
  }
  const auto id = static_cast<std::uint32_t>(histogram_names_.size());
  histogram_names_.push_back(name);
  histogram_handle_bounds_.push_back(std::move(bounds));
  histogram_ids_.emplace(name, id);
  return HistogramHandle(this, id);
}

void MetricsRegistry::observe(HistogramHandle handle, double value) {
  CCNOPT_EXPECTS(handle.registry_ == this);
  Shard& shard = local_shard();
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (handle.id_ < shard.histogram_slots.size() &&
        !shard.histogram_slots[handle.id_].bounds().empty()) {
      shard.histogram_slots[handle.id_].observe(value);
      return;
    }
  }
  // First observation on this thread: fetch the registered bounds (never
  // while holding the shard mutex — lock order is registry before shard).
  Histogram fresh;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fresh = Histogram(histogram_handle_bounds_[handle.id_]);
  }
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (handle.id_ >= shard.histogram_slots.size()) {
    shard.histogram_slots.resize(handle.id_ + 1);
  }
  Histogram& slot = shard.histogram_slots[handle.id_];
  if (slot.bounds().empty()) slot = std::move(fresh);
  slot.observe(value);
}

void MetricsRegistry::merge_histogram(HistogramHandle handle,
                                      const Histogram& h) {
  CCNOPT_EXPECTS(handle.registry_ == this);
  CCNOPT_EXPECTS(!h.bounds().empty());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    CCNOPT_EXPECTS(histogram_handle_bounds_[handle.id_] == h.bounds());
  }
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  if (handle.id_ >= shard.histogram_slots.size()) {
    shard.histogram_slots.resize(handle.id_ + 1);
  }
  shard.histogram_slots[handle.id_].merge(h);
}

void MetricsRegistry::merge_histogram(const std::string& name,
                                      const Histogram& h) {
  CCNOPT_EXPECTS(!h.bounds().empty());
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = histogram_bounds_.find(name);
    if (it == histogram_bounds_.end()) {
      histogram_bounds_.emplace(name, h.bounds());
    } else {
      CCNOPT_EXPECTS(it->second == h.bounds());
    }
  }
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  shard.histograms[name].merge(h);
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  snap.gauges = gauges_;
  for (const auto& [name, bounds] : histogram_bounds_) {
    snap.histograms.emplace(name, Histogram(bounds));
  }
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    for (const auto& [name, value] : shard->counters) {
      snap.counters[name] += value;
    }
    for (const auto& [name, hist] : shard->histograms) {
      snap.histograms[name].merge(hist);
    }
    for (std::size_t id = 0; id < shard->counter_slots.size(); ++id) {
      if (shard->counter_used[id]) {
        snap.counters[counter_names_[id]] += shard->counter_slots[id];
      }
    }
    for (std::size_t id = 0; id < shard->histogram_slots.size(); ++id) {
      const Histogram& hist = shard->histogram_slots[id];
      if (!hist.bounds().empty()) {
        snap.histograms[histogram_names_[id]].merge(hist);
      }
    }
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->counters.clear();
    shard->histograms.clear();
    // Interned slots are zeroed, not discarded: outstanding handles stay
    // valid (their names reappear in snapshots on the next record).
    std::fill(shard->counter_slots.begin(), shard->counter_slots.end(), 0);
    std::fill(shard->counter_used.begin(), shard->counter_used.end(),
              std::uint8_t{0});
    shard->histogram_slots.clear();
  }
  gauges_.clear();
  histogram_bounds_.clear();
}

MetricsRegistry& metrics() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

MetricsRegistry& perf() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace ccnopt::obs
