#include "ccnopt/obs/topo.hpp"

#include <algorithm>
#include <ostream>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/obs/export.hpp"

namespace ccnopt::obs {

TopoRecorder::TopoRecorder(
    std::string topology, std::size_t router_count,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> links)
    : topology_(std::move(topology)), replications_(1) {
  CCNOPT_EXPECTS(router_count >= 1);
  nodes_.resize(router_count);
  links_.reserve(links.size());
  for (const auto& [u, v] : links) {
    CCNOPT_EXPECTS(u < v);
    CCNOPT_EXPECTS(v < router_count);
    links_.push_back(TopoLinkStats{u, v, 0});
  }
}

void TopoRecorder::on_request(std::uint32_t first_hop, std::uint32_t tier,
                              std::uint32_t served_by, double latency_ms,
                              std::uint32_t hops) {
  CCNOPT_ASSERT(first_hop < nodes_.size());
  CCNOPT_ASSERT(served_by < nodes_.size());
  TopoNodeStats& node = nodes_[first_hop];
  ++node.requests;
  node.latency_ms_sum += latency_ms;
  node.hops_sum += hops;
  switch (tier) {
    case kTopoTierLocal:
      ++node.local;
      break;
    case kTopoTierNetwork:
      ++node.network;
      ++nodes_[served_by].served_for_peers;
      break;
    case kTopoTierOrigin:
      ++node.origin;
      break;
    default:
      CCNOPT_ASSERT(false);
  }
}

void TopoRecorder::on_placement(std::uint32_t node, std::uint32_t depth) {
  CCNOPT_ASSERT(node < nodes_.size());
  ++nodes_[node].placements;
  if (depth >= placement_depths_.size()) {
    placement_depths_.resize(depth + 1, 0);
  }
  ++placement_depths_[depth];
}

void TopoRecorder::set_router_cache(std::uint32_t id, std::uint64_t evictions,
                                    std::uint64_t insertions,
                                    std::uint64_t occupancy,
                                    std::uint64_t capacity) {
  CCNOPT_EXPECTS(id < nodes_.size());
  nodes_[id].evictions = evictions;
  nodes_[id].insertions = insertions;
  nodes_[id].occupancy = occupancy;
  nodes_[id].capacity = capacity;
}

void TopoRecorder::add_link_traversals(
    const std::vector<std::uint64_t>& counts) {
  CCNOPT_EXPECTS(counts.size() == links_.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    links_[i].traversals += counts[i];
  }
}

void TopoRecorder::merge(const TopoRecorder& other) {
  if (!other.enabled()) return;
  if (!enabled()) {
    *this = other;
    return;
  }
  replications_ += other.replications_;
  absorb(other);
}

void TopoRecorder::absorb(const TopoRecorder& other) {
  if (!other.enabled()) return;
  CCNOPT_EXPECTS(enabled());
  CCNOPT_EXPECTS(other.topology_ == topology_);
  CCNOPT_EXPECTS(other.nodes_.size() == nodes_.size());
  CCNOPT_EXPECTS(other.links_.size() == links_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    TopoNodeStats& mine = nodes_[i];
    const TopoNodeStats& theirs = other.nodes_[i];
    mine.requests += theirs.requests;
    mine.local += theirs.local;
    mine.network += theirs.network;
    mine.origin += theirs.origin;
    mine.served_for_peers += theirs.served_for_peers;
    mine.placements += theirs.placements;
    mine.latency_ms_sum += theirs.latency_ms_sum;
    mine.hops_sum += theirs.hops_sum;
    mine.evictions += theirs.evictions;
    mine.insertions += theirs.insertions;
    mine.occupancy += theirs.occupancy;
    mine.capacity += theirs.capacity;
  }
  for (std::size_t i = 0; i < links_.size(); ++i) {
    CCNOPT_EXPECTS(other.links_[i].u == links_[i].u);
    CCNOPT_EXPECTS(other.links_[i].v == links_[i].v);
    links_[i].traversals += other.links_[i].traversals;
  }
  if (other.placement_depths_.size() > placement_depths_.size()) {
    placement_depths_.resize(other.placement_depths_.size(), 0);
  }
  for (std::size_t d = 0; d < other.placement_depths_.size(); ++d) {
    placement_depths_[d] += other.placement_depths_[d];
  }
}

std::uint64_t TopoRecorder::total_requests() const {
  std::uint64_t total = 0;
  for (const TopoNodeStats& node : nodes_) total += node.requests;
  return total;
}

std::uint64_t TopoRecorder::total_placements() const {
  std::uint64_t total = 0;
  for (const TopoNodeStats& node : nodes_) total += node.placements;
  return total;
}

std::uint64_t TopoRecorder::total_link_traversals() const {
  std::uint64_t total = 0;
  for (const TopoLinkStats& link : links_) total += link.traversals;
  return total;
}

std::uint64_t TopoRecorder::max_link_load() const {
  std::uint64_t worst = 0;
  for (const TopoLinkStats& link : links_) {
    worst = std::max(worst, link.traversals);
  }
  return worst;
}

double TopoRecorder::mean_placement_depth() const {
  std::uint64_t count = 0;
  std::uint64_t depth_sum = 0;
  for (std::size_t d = 0; d < placement_depths_.size(); ++d) {
    count += placement_depths_[d];
    depth_sum += placement_depths_[d] * d;
  }
  return count == 0 ? 0.0
                    : static_cast<double>(depth_sum) /
                          static_cast<double>(count);
}

void write_topo_json(std::ostream& out, const TopoRecorder& topo) {
  out << "{\n  \"schema\": \"ccnopt-topo-v1\",\n  \"topology\": \""
      << json_escape(topo.topology()) << "\",\n  \"routers\": "
      << topo.nodes().size() << ",\n  \"links\": " << topo.links().size()
      << ",\n  \"replications\": " << topo.replications()
      << ",\n  \"placement_depths\": [";
  const std::vector<std::uint64_t>& depths = topo.placement_depths();
  for (std::size_t d = 0; d < depths.size(); ++d) {
    out << (d ? ", " : "") << depths[d];
  }
  out << "],\n  \"nodes\": [";
  bool first = true;
  for (std::size_t id = 0; id < topo.nodes().size(); ++id) {
    const TopoNodeStats& node = topo.nodes()[id];
    out << (first ? "\n" : ",\n") << "    {\"id\": " << id
        << ", \"requests\": " << node.requests
        << ", \"local\": " << node.local << ", \"network\": " << node.network
        << ", \"origin\": " << node.origin
        << ", \"misses\": " << node.requests - node.local
        << ", \"served_for_peers\": " << node.served_for_peers
        << ", \"placements\": " << node.placements
        << ", \"latency_ms_sum\": " << json_number(node.latency_ms_sum)
        << ", \"hops_sum\": " << node.hops_sum
        << ", \"evictions\": " << node.evictions
        << ", \"insertions\": " << node.insertions
        << ", \"occupancy\": " << node.occupancy
        << ", \"capacity\": " << node.capacity << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "],\n  \"edges\": [";
  first = true;
  for (const TopoLinkStats& link : topo.links()) {
    out << (first ? "\n" : ",\n") << "    {\"u\": " << link.u
        << ", \"v\": " << link.v << ", \"traversals\": " << link.traversals
        << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
}

void write_topo_csv(std::ostream& out, const TopoRecorder& topo) {
  out << "kind,id,u,v,requests,local,network,origin,misses,"
         "served_for_peers,placements,latency_ms_sum,hops_sum,evictions,"
         "insertions,occupancy,capacity,traversals,count\n";
  for (std::size_t id = 0; id < topo.nodes().size(); ++id) {
    const TopoNodeStats& node = topo.nodes()[id];
    out << "node," << id << ",,," << node.requests << "," << node.local << ","
        << node.network << "," << node.origin << ","
        << node.requests - node.local << "," << node.served_for_peers << ","
        << node.placements << "," << json_number(node.latency_ms_sum) << ","
        << node.hops_sum << "," << node.evictions << "," << node.insertions
        << "," << node.occupancy << "," << node.capacity << ",,\n";
  }
  for (const TopoLinkStats& link : topo.links()) {
    out << "edge,," << link.u << "," << link.v
        << ",,,,,,,,,,,,,," << link.traversals << ",\n";
  }
  const std::vector<std::uint64_t>& depths = topo.placement_depths();
  for (std::size_t d = 0; d < depths.size(); ++d) {
    out << "depth," << d << ",,,,,,,,,,,,,,,,," << depths[d] << "\n";
  }
}

}  // namespace ccnopt::obs
