#include "ccnopt/obs/trace.hpp"

#include <ostream>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/obs/export.hpp"

namespace ccnopt::obs {

bool TraceSampler::should_sample(std::uint64_t request_index) const {
  CCNOPT_EXPECTS(enabled());
  if (every_k_ == 1) return true;
  return derive_seed(seed_, request_index) % every_k_ == 0;
}

void write_traces_json(std::ostream& out, const TraceBuffer& traces) {
  out << "{\n  \"schema\": \"ccnopt-trace-v2\",\n  \"events\": [";
  bool first = true;
  for (const TraceEvent& event : traces) {
    out << (first ? "\n" : ",\n") << "    {\"replication\": "
        << event.replication << ", \"request\": " << event.request_index
        << ", \"router\": " << event.router
        << ", \"content\": " << event.content << ", \"tier\": \""
        << json_escape(event.tier) << "\", \"hops\": " << event.hops
        << ", \"served_by\": " << event.served_by << ", \"path\": [";
    for (std::size_t i = 0; i < event.path.size(); ++i) {
      out << (i ? ", " : "") << event.path[i];
    }
    out << "], \"placement_depth\": " << event.placement_depth
        << ", \"latency_ms\": " << json_number(event.latency_ms) << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
}

void write_traces_csv(std::ostream& out, const TraceBuffer& traces) {
  out << "replication,request,router,content,tier,hops,served_by,path,"
         "placement_depth,latency_ms\n";
  for (const TraceEvent& event : traces) {
    out << event.replication << "," << event.request_index << ","
        << event.router << "," << event.content << "," << event.tier << ","
        << event.hops << "," << event.served_by << ",";
    for (std::size_t i = 0; i < event.path.size(); ++i) {
      out << (i ? "|" : "") << event.path[i];
    }
    out << "," << event.placement_depth << ","
        << json_number(event.latency_ms) << "\n";
  }
}

}  // namespace ccnopt::obs
