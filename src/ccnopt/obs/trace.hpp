// Request tracing with deterministic 1-in-k sampling.
//
// The sampling decision for request i is a pure function of (seed, i) —
// one O(1) splitmix64 draw via derive_seed — so the set of sampled
// requests is fixed by the seed alone: the same requests are traced
// whether the run executes on 1 thread or 8, and trace files diff cleanly
// across runs. Buffers are collected per simulation (single-threaded) and
// concatenated in replication order by the runner, so serialized traces
// are byte-identical for any thread count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ccnopt::obs {

/// One sampled request: where it entered, what it asked for, and how the
/// three-tier serve path resolved it.
struct TraceEvent {
  std::uint32_t replication = 0;   // 0 for single runs
  std::uint64_t request_index = 0;  // global emission index within the run
  std::uint32_t router = 0;         // first-hop router
  std::uint64_t content = 0;
  std::string tier;                 // "local" | "network" | "origin"
  std::uint32_t hops = 0;
  std::uint32_t served_by = 0;      // serving router (gateway for origin)
  /// Router ids of the delivery path, first hop through the serving router
  /// (through the origin gateway for origin-tier requests); {router} for
  /// local hits. Empty when the producer does not capture paths.
  std::vector<std::uint32_t> path;
  /// Hop distance from the requesting router of the copy the insertion
  /// rule placed nearest to it on this request (0 = at the first hop
  /// itself); -1 when no copy was placed.
  std::int32_t placement_depth = -1;
  double latency_ms = 0.0;
};

using TraceBuffer = std::vector<TraceEvent>;

/// Deterministic 1-in-k sampler. k = 0 disables sampling; k = 1 samples
/// every request.
class TraceSampler {
 public:
  TraceSampler() = default;
  TraceSampler(std::uint64_t seed, std::uint64_t every_k)
      : seed_(seed), every_k_(every_k) {}

  bool enabled() const { return every_k_ > 0; }

  /// True when request `request_index` is in the sample. Pure in
  /// (seed, request_index): independent of threads, time, and call order.
  bool should_sample(std::uint64_t request_index) const;

 private:
  std::uint64_t seed_ = 0;
  std::uint64_t every_k_ = 0;
};

/// JSON: {"schema":"ccnopt-trace-v2","events":[...]}. v2 added the
/// `path` node-id array and the `placement_depth` field to every event.
void write_traces_json(std::ostream& out, const TraceBuffer& traces);

/// CSV with a fixed header row; one line per event. The path renders as
/// '|'-separated node ids ("0|3|7").
void write_traces_csv(std::ostream& out, const TraceBuffer& traces);

}  // namespace ccnopt::obs
