// Phase profiler: RAII ScopedSpan timers with per-thread parent/child
// nesting, aggregated per label path.
//
// Spans opened on the same thread nest: a span opened while another is
// active records under "parent/child". Nesting is per-thread by design —
// a span opened on a ThreadPool worker starts a fresh root there (cross-
// thread parentage would need timestamps or ids that break determinism).
//
// Aggregation is sharded per thread like the metrics registry, so workers
// record without contending; snapshot() merges counts and wall/CPU totals
// per path. Wall and CPU times are inherently nondeterministic, so span
// data belongs to the performance domain: it is exported by
// `--profile-out` and bench JSON, never by `--metrics-out`.
#pragma once

#include <atomic>
#include <cstdint>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ccnopt::obs {

/// Aggregated totals for one label path.
struct SpanAggregate {
  std::string path;  // "parent/child/..." (single label for roots)
  std::uint64_t count = 0;
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;
};

/// One closed span occurrence, for timeline (Perfetto) export. Only
/// recorded while event recording is enabled — aggregates alone cannot
/// reconstruct when each phase ran.
struct SpanEvent {
  std::string path;
  /// Recording thread, as the profiler's shard index (stable per thread).
  std::uint32_t tid = 0;
  /// Start time relative to the profiler's construction, steady clock.
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
};

class ScopedSpan;

class SpanProfiler {
 public:
  static SpanProfiler& instance();

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// Merged per-path aggregates across all threads, sorted by path.
  std::vector<SpanAggregate> snapshot() const;

  /// Opt-in per-occurrence event recording (off by default: aggregates are
  /// cheap and unbounded runs must not grow memory). While enabled, every
  /// span close also appends a SpanEvent to its thread's bounded buffer
  /// (kMaxEventsPerShard; overflow counts into dropped_events()). Enabled
  /// by the CLI when a Perfetto export was requested.
  void set_event_recording(bool enabled);
  bool event_recording() const;

  /// All recorded events merged across threads, sorted by
  /// (ts_ns, tid, path) — chronological, ties broken deterministically.
  std::vector<SpanEvent> events() const;

  /// Events discarded because a shard's buffer was full.
  std::uint64_t dropped_events() const;

  /// Drops all aggregates and recorded events (open spans still record on
  /// close).
  void reset();

  /// Per-thread event-buffer bound: deep enough for every phase span of a
  /// full bench run, small enough (~a few MB) to never matter.
  static constexpr std::size_t kMaxEventsPerShard = 1u << 16;

 private:
  friend class ScopedSpan;

  struct Cell {
    std::uint64_t count = 0;
    std::int64_t wall_ns = 0;
    std::int64_t cpu_ns = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, Cell> cells;
    std::uint32_t index = 0;
    std::vector<SpanEvent> events;
    std::uint64_t dropped_events = 0;
  };

  SpanProfiler();
  Shard& local_shard() const;
  void record(const std::string& path,
              std::chrono::steady_clock::time_point wall_start,
              std::int64_t wall_ns, std::int64_t cpu_ns);

  mutable std::mutex mutex_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> events_enabled_{false};
  /// Zero point of SpanEvent::ts_ns (profiler construction).
  std::chrono::steady_clock::time_point epoch_;
};

/// Times a scope and records it under the active span path on this thread.
/// Labels should be short dotted identifiers ("sim.replay") and must not
/// contain '/', which joins path segments.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view label);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  const std::string& path() const { return path_; }

  /// Innermost open span on the calling thread, or nullptr.
  static const ScopedSpan* current();

 private:
  std::string path_;
  ScopedSpan* parent_;
  std::chrono::steady_clock::time_point wall_start_;
  std::int64_t cpu_start_ns_;
};

}  // namespace ccnopt::obs
