// Phase profiler: RAII ScopedSpan timers with per-thread parent/child
// nesting, aggregated per label path.
//
// Spans opened on the same thread nest: a span opened while another is
// active records under "parent/child". Nesting is per-thread by design —
// a span opened on a ThreadPool worker starts a fresh root there (cross-
// thread parentage would need timestamps or ids that break determinism).
//
// Aggregation is sharded per thread like the metrics registry, so workers
// record without contending; snapshot() merges counts and wall/CPU totals
// per path. Wall and CPU times are inherently nondeterministic, so span
// data belongs to the performance domain: it is exported by
// `--profile-out` and bench JSON, never by `--metrics-out`.
#pragma once

#include <cstdint>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ccnopt::obs {

/// Aggregated totals for one label path.
struct SpanAggregate {
  std::string path;  // "parent/child/..." (single label for roots)
  std::uint64_t count = 0;
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;
};

class ScopedSpan;

class SpanProfiler {
 public:
  static SpanProfiler& instance();

  SpanProfiler(const SpanProfiler&) = delete;
  SpanProfiler& operator=(const SpanProfiler&) = delete;

  /// Merged per-path aggregates across all threads, sorted by path.
  std::vector<SpanAggregate> snapshot() const;

  /// Drops all aggregates (open spans still record on close).
  void reset();

 private:
  friend class ScopedSpan;

  struct Cell {
    std::uint64_t count = 0;
    std::int64_t wall_ns = 0;
    std::int64_t cpu_ns = 0;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::string, Cell> cells;
  };

  SpanProfiler() = default;
  Shard& local_shard() const;
  void record(const std::string& path, std::int64_t wall_ns,
              std::int64_t cpu_ns);

  mutable std::mutex mutex_;
  mutable std::vector<std::unique_ptr<Shard>> shards_;
};

/// Times a scope and records it under the active span path on this thread.
/// Labels should be short dotted identifiers ("sim.replay") and must not
/// contain '/', which joins path segments.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view label);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  const std::string& path() const { return path_; }

  /// Innermost open span on the calling thread, or nullptr.
  static const ScopedSpan* current();

 private:
  std::string path_;
  ScopedSpan* parent_;
  std::chrono::steady_clock::time_point wall_start_;
  std::int64_t cpu_start_ns_;
};

}  // namespace ccnopt::obs
