// Process-level resource probes for benchmarks and capacity accounting.
#pragma once

#include <cstdint>

namespace ccnopt::obs {

/// High-water-mark resident set size of the calling process, in bytes
/// (getrusage ru_maxrss). Returns 0 on platforms without the probe. The
/// value is monotone over the process lifetime — sample it at the end of a
/// bench to bound the peak footprint of everything that ran before.
std::uint64_t peak_rss_bytes();

}  // namespace ccnopt::obs
