// Serialization of observability state: registry snapshots and span
// aggregates as JSON or CSV, and the common export_snapshot() entry point
// used by the CLI flags and the bench JSON records.
//
// All writers are deterministic for deterministic input: maps are ordered,
// spans are sorted by path, and doubles are rendered by std::to_chars
// (shortest round-trip form), so equal state always serializes to equal
// bytes.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/span.hpp"

namespace ccnopt::obs {

enum class ExportFormat { kJson, kCsv };

struct ExportOptions {
  ExportFormat format = ExportFormat::kJson;
  /// The deterministic domain: obs::metrics(). Byte-identical for a given
  /// seed regardless of thread count.
  bool include_metrics = true;
  /// The performance domain: obs::perf() (scheduling-dependent).
  bool include_perf = false;
  /// Span profiler aggregates (wall/CPU time; nondeterministic).
  bool include_spans = false;
};

/// Writes the selected sections of the process-wide observability state.
/// JSON: {"schema":"ccnopt-obs-v1","metrics":{...},"perf":{...},
/// "spans":[...]}. CSV: "section,type,name,key,value" rows.
void export_snapshot(std::ostream& out, const ExportOptions& options = {});

/// JSON value escaping per RFC 8259.
std::string json_escape(std::string_view text);

/// Shortest round-trip decimal form of a finite double ("1.5", "0.25");
/// non-finite values render as 0.
std::string json_number(double value);

/// One registry snapshot as a JSON object {"counters":{...},"gauges":{...},
/// "histograms":{...}}; `indent` spaces prefix every emitted line.
void write_registry_json(std::ostream& out, const RegistrySnapshot& snap,
                         int indent = 0);

/// Registry snapshot as CSV rows "section,type,name,key,value".
void write_registry_csv(std::ostream& out, const std::string& section,
                        const RegistrySnapshot& snap);

/// Span aggregates as a JSON array of {path,count,wall_ms,cpu_ms}.
void write_spans_json(std::ostream& out,
                      const std::vector<SpanAggregate>& spans, int indent = 0);

/// Span aggregates as CSV rows "spans,span,<path>,<field>,<value>".
void write_spans_csv(std::ostream& out,
                     const std::vector<SpanAggregate>& spans);

/// Recorded span occurrences in the Chrome trace-events format, loadable
/// directly by Perfetto / chrome://tracing: {"schema":"ccnopt-spans-v1",
/// "displayTimeUnit":"ms","dropped_events":N,"traceEvents":[...]} where
/// each event is a "ph":"X" complete event with microsecond ts/dur, the
/// span's last path segment as name, its full path under args.path, and
/// the recording shard as tid. Events should already be in (ts, tid)
/// order (SpanProfiler::events() returns them sorted).
void write_trace_events_json(std::ostream& out,
                             const std::vector<SpanEvent>& events,
                             std::uint64_t dropped_events = 0);

}  // namespace ccnopt::obs
