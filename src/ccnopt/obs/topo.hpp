// Topology-resolved flight recorder: dense, id-indexed per-router tier
// counters and per-link traversal loads for one simulation run.
//
// Same ownership pattern as the timeline's EpochRecorder: every recorder is
// run-local (owned by its Simulation), fed once per emitted request in
// emission order, and never reads the process-global obs::metrics()
// registry, which parallel replications share and mutate concurrently.
// ReplicationRunner merges the per-replication recorders in replication
// index order; every counter is an integer sum (the one double,
// latency_ms_sum, is accumulated serially in that same fixed order), so the
// merged recorder — and the ccnopt-topo-v1 JSON/CSV serialized from it —
// is byte-identical for any thread count.
//
// The obs layer sits below topology/, so the recorder takes the link list
// as plain (u, v) id pairs (graph().links() order, u < v) instead of a
// Graph.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace ccnopt::obs {

/// Tier codes of on_request(); match sim::ServeTier's numeric values.
inline constexpr std::uint32_t kTopoTierLocal = 0;
inline constexpr std::uint32_t kTopoTierNetwork = 1;
inline constexpr std::uint32_t kTopoTierOrigin = 2;

/// Per-router counters. Tier counts, latency and hops cover the measured
/// phase only (so they reconcile exactly with the run's SimReport);
/// placements count every copy the insertion rule actually seeded at this
/// router, warmup included; evictions/insertions/occupancy/capacity are
/// whole-run cache-state totals copied from the router's store when the run
/// finishes (they reconcile with CcnNetwork::cache_totals()).
struct TopoNodeStats {
  std::uint64_t requests = 0;   ///< measured requests entering here
  std::uint64_t local = 0;      ///< ...served from this router's own store
  std::uint64_t network = 0;    ///< ...served by a peer router
  std::uint64_t origin = 0;     ///< ...served by the origin
  /// Network-tier requests of *other* routers that this router served.
  std::uint64_t served_for_peers = 0;
  /// Copies the insertion rule placed here (actual admissions, not
  /// attempts; static local partitions therefore stay at 0).
  std::uint64_t placements = 0;
  double latency_ms_sum = 0.0;  ///< summed over requests entering here
  std::uint64_t hops_sum = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t occupancy = 0;
  std::uint64_t capacity = 0;
};

/// One undirected link (u < v) with its whole-run traversal count; mirrors
/// CcnNetwork::link_counts_ in graph().links() order.
struct TopoLinkStats {
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  std::uint64_t traversals = 0;
};

class TopoRecorder {
 public:
  /// Disabled recorder: enabled() is false and every hook is a
  /// precondition violation.
  TopoRecorder() = default;

  /// Enabled recorder over `router_count` routers and the given undirected
  /// links ((u, v) pairs with u < v, graph().links() order). Counts as one
  /// replication until merged into.
  TopoRecorder(std::string topology, std::size_t router_count,
               std::vector<std::pair<std::uint32_t, std::uint32_t>> links);

  bool enabled() const { return !nodes_.empty(); }
  const std::string& topology() const { return topology_; }
  /// Replications merged into this recorder (1 for a single run).
  std::uint32_t replications() const { return replications_; }
  const std::vector<TopoNodeStats>& nodes() const { return nodes_; }
  const std::vector<TopoLinkStats>& links() const { return links_; }
  /// placement_depths()[d] = copies placed d hops from the requesting
  /// router (depth 0 = at the first hop itself); grows on demand.
  const std::vector<std::uint64_t>& placement_depths() const {
    return placement_depths_;
  }

  /// One measured request that entered at `first_hop` and resolved at
  /// `tier` (kTopoTier*). `served_by` is the serving router (== first_hop
  /// for local hits, the origin gateway for origin-tier requests).
  void on_request(std::uint32_t first_hop, std::uint32_t tier,
                  std::uint32_t served_by, double latency_ms,
                  std::uint32_t hops);

  /// One copy actually inserted at `node`, `depth` hops from the
  /// requesting router along the delivery path.
  void on_placement(std::uint32_t node, std::uint32_t depth);

  /// End-of-run cache-state snapshot of one router.
  void set_router_cache(std::uint32_t id, std::uint64_t evictions,
                        std::uint64_t insertions, std::uint64_t occupancy,
                        std::uint64_t capacity);

  /// Adds the dense per-link traversal counters (same order and length as
  /// the construction link list) — CcnNetwork::link_counts().
  void add_link_traversals(const std::vector<std::uint64_t>& counts);

  /// Index-ordered merge: adds `other`'s counters entity by entity.
  /// A disabled recorder adopts `other` wholesale, so a summary recorder
  /// can start default-constructed; merging a disabled `other` is a no-op.
  /// Enabled-to-enabled merges require identical topology shape.
  void merge(const TopoRecorder& other);

  /// Same entity-by-entity sum as merge(), but `other` is a shard of THIS
  /// run rather than another replication: replications() is left untouched.
  /// The sharded request engine folds its per-shard placement recorders
  /// into the run recorder with this, in shard index order (every summed
  /// field is an integer or a serially accumulated double, so the result
  /// is byte-identical for any shard count).
  void absorb(const TopoRecorder& other);

  // Whole-network sums, for reconciliation against the global report.
  std::uint64_t total_requests() const;
  std::uint64_t total_placements() const;
  std::uint64_t total_link_traversals() const;
  std::uint64_t max_link_load() const;
  /// Mean placement depth over every recorded placement (0 when none).
  double mean_placement_depth() const;

 private:
  std::string topology_;
  std::uint32_t replications_ = 0;
  std::vector<TopoNodeStats> nodes_;
  std::vector<TopoLinkStats> links_;
  std::vector<std::uint64_t> placement_depths_;
};

/// JSON, schema "ccnopt-topo-v1": topology name, entity counts, the
/// placement-depth histogram, then one object per node and per edge.
/// Deterministic: doubles render via json_number (shortest round-trip).
void write_topo_json(std::ostream& out, const TopoRecorder& topo);

/// CSV: fixed header, then one `node` row per router, one `edge` row per
/// link, one `depth` row per histogram bucket (unused columns empty).
void write_topo_csv(std::ostream& out, const TopoRecorder& topo);

}  // namespace ccnopt::obs
