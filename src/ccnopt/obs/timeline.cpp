#include "ccnopt/obs/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/obs/export.hpp"

namespace ccnopt::obs {

Timeline::Timeline(std::uint64_t epoch_requests,
                   std::vector<std::string> columns)
    : epoch_requests_(epoch_requests), columns_(std::move(columns)) {
  CCNOPT_EXPECTS(epoch_requests_ >= 1);
  CCNOPT_EXPECTS(!columns_.empty());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (std::size_t j = i + 1; j < columns_.size(); ++j) {
      CCNOPT_EXPECTS(columns_[i] != columns_[j]);
    }
  }
}

std::size_t Timeline::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return npos;
}

void Timeline::push_epoch(std::uint64_t first_request,
                          std::uint64_t last_request,
                          std::vector<double> values) {
  CCNOPT_EXPECTS(enabled());
  CCNOPT_EXPECTS(values.size() == columns_.size());
  CCNOPT_EXPECTS(first_request <= last_request);
  TimelineEpoch row;
  if (!epochs_.empty()) {
    // push_epoch is for single-run accumulation; merging is append's job.
    const TimelineEpoch& prev = epochs_.back();
    CCNOPT_EXPECTS(prev.replication == 0);
    CCNOPT_EXPECTS(first_request == prev.last_request + 1);
    row.epoch = prev.epoch + 1;
  }
  row.first_request = first_request;
  row.last_request = last_request;
  row.values = std::move(values);
  epochs_.push_back(std::move(row));
}

void Timeline::append(const Timeline& other, std::uint32_t replication) {
  CCNOPT_EXPECTS(other.epoch_requests_ == epoch_requests_);
  CCNOPT_EXPECTS(other.columns_ == columns_);
  epochs_.reserve(epochs_.size() + other.epochs_.size());
  for (const TimelineEpoch& row : other.epochs_) {
    TimelineEpoch stamped = row;
    stamped.replication = replication;
    epochs_.push_back(std::move(stamped));
  }
}

std::vector<double> Timeline::series(std::size_t column) const {
  CCNOPT_EXPECTS(column < columns_.size());
  std::vector<double> out;
  out.reserve(epochs_.size());
  for (const TimelineEpoch& row : epochs_) out.push_back(row.values[column]);
  return out;
}

double Timeline::column_sum(std::size_t column, std::size_t from_epoch) const {
  CCNOPT_EXPECTS(column < columns_.size());
  double sum = 0.0;
  for (const TimelineEpoch& row : epochs_) {
    if (row.epoch < from_epoch) continue;
    sum += row.values[column];
  }
  return sum;
}

SteadyStateResult detect_steady_state(const std::vector<double>& series,
                                      const SteadyStateOptions& options) {
  SteadyStateResult result;
  const std::size_t window = std::max<std::size_t>(options.window, 2);
  if (series.size() < window) return result;
  for (std::size_t start = 0; start + window <= series.size(); ++start) {
    double lo = series[start];
    double hi = series[start];
    double scale = std::abs(series[start]);
    bool finite = std::isfinite(series[start]);
    for (std::size_t i = start + 1; i < start + window; ++i) {
      const double v = series[i];
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      scale = std::max(scale, std::abs(v));
    }
    if (!finite) continue;
    scale = std::max(scale, options.min_scale);
    if (hi - lo <= options.tolerance * scale) {
      result.converged = true;
      result.epoch = start;
      return result;
    }
  }
  return result;
}

void write_timeline_json(std::ostream& out, const Timeline& timeline) {
  out << "{\n";
  out << "  \"schema\": \"ccnopt-timeline-v1\",\n";
  out << "  \"epoch_requests\": " << timeline.epoch_requests() << ",\n";
  out << "  \"columns\": [";
  const std::vector<std::string>& columns = timeline.columns();
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i != 0) out << ", ";
    out << '"' << json_escape(columns[i]) << '"';
  }
  out << "],\n";
  out << "  \"epochs\": [";
  const std::vector<TimelineEpoch>& epochs = timeline.epochs();
  for (std::size_t i = 0; i < epochs.size(); ++i) {
    const TimelineEpoch& row = epochs[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"replication\": " << row.replication
        << ", \"epoch\": " << row.epoch
        << ", \"first_request\": " << row.first_request
        << ", \"last_request\": " << row.last_request << ", \"values\": [";
    for (std::size_t j = 0; j < row.values.size(); ++j) {
      if (j != 0) out << ", ";
      out << json_number(row.values[j]);
    }
    out << "]}";
  }
  if (!epochs.empty()) out << "\n  ";
  out << "]\n";
  out << "}\n";
}

void write_timeline_csv(std::ostream& out, const Timeline& timeline) {
  out << "replication,epoch,first_request,last_request";
  for (const std::string& column : timeline.columns()) out << ',' << column;
  out << '\n';
  for (const TimelineEpoch& row : timeline.epochs()) {
    out << row.replication << ',' << row.epoch << ',' << row.first_request
        << ',' << row.last_request;
    for (double value : row.values) out << ',' << json_number(value);
    out << '\n';
  }
}

}  // namespace ccnopt::obs
