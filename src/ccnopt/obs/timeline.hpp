// Time-resolved telemetry: per-epoch series of deterministic run metrics.
//
// A Timeline divides a run into fixed *request-count* epochs (every
// `epoch_requests` emitted requests, never wall clock) and stores one row
// of named columns per epoch — delta counts (requests, tier hits,
// evictions) and end-of-epoch gauges (occupancy, max link load). Because
// epoch boundaries are request indices and every recorded value is a pure
// function of seeds and inputs, a timeline is byte-identical for any
// --threads value: it lives in the deterministic domain of the
// obs::metrics() registry split, never the perf() domain.
//
// Timelines are accumulated per run by the owner (e.g. sim::Simulation)
// rather than sampled from the process-global registry: parallel
// replications all flush into the same obs::metrics() instance, so a
// mid-run global snapshot would see other replications' increments and
// break thread-count invariance. The per-run deltas sum to exactly what
// the run flushes into the registry at the end, which is what the
// epoch-sum tests assert.
//
// On top of the series sits a sliding-window steady-state detector
// (detect_steady_state) that finds the first epoch at which a metric has
// converged — replacing hard-coded warmup request counts in the benches
// and the strategy arena.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ccnopt::obs {

/// One epoch row: the half-open run slice [first_request, last_request]
/// (inclusive emission indices) and one value per Timeline column.
struct TimelineEpoch {
  /// Replication index the epoch belongs to (0 for single runs; stamped by
  /// Timeline::append when a runner merges per-replication timelines).
  std::uint32_t replication = 0;
  /// Epoch index within its replication, starting at 0.
  std::uint64_t epoch = 0;
  std::uint64_t first_request = 0;
  std::uint64_t last_request = 0;
  std::vector<double> values;
};

class Timeline {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  Timeline() = default;
  /// Requires epoch_requests >= 1 and at least one uniquely named column.
  Timeline(std::uint64_t epoch_requests, std::vector<std::string> columns);

  bool enabled() const { return epoch_requests_ > 0; }
  std::uint64_t epoch_requests() const { return epoch_requests_; }
  const std::vector<std::string>& columns() const { return columns_; }
  /// Index of `name` in columns(); npos when absent.
  std::size_t column_index(std::string_view name) const;

  const std::vector<TimelineEpoch>& epochs() const { return epochs_; }
  bool empty() const { return epochs_.empty(); }

  /// Appends the next epoch of replication 0 (single-run accumulation).
  /// `values` must have one entry per column; the slice must continue the
  /// previous epoch (first_request == previous last_request + 1).
  void push_epoch(std::uint64_t first_request, std::uint64_t last_request,
                  std::vector<double> values);

  /// Appends all of `other`'s epochs stamped with `replication`, in order.
  /// Requires matching epoch_requests and columns. Used by the replication
  /// runner to merge per-replication timelines in replication order so the
  /// merged timeline is independent of worker scheduling.
  void append(const Timeline& other, std::uint32_t replication);

  /// Drops all epochs, keeping epoch size and columns.
  void clear() { epochs_.clear(); }

  /// The per-epoch values of one column, in epoch order (all replications).
  std::vector<double> series(std::size_t column) const;

  /// Sum of one column over epochs [from_epoch, end), all replications.
  double column_sum(std::size_t column, std::size_t from_epoch = 0) const;

 private:
  std::uint64_t epoch_requests_ = 0;
  std::vector<std::string> columns_;
  std::vector<TimelineEpoch> epochs_;
};

/// Sliding-window convergence test for a per-epoch metric series.
struct SteadyStateOptions {
  /// Number of consecutive epochs that must agree.
  std::size_t window = 8;
  /// Maximum relative spread within the window: (max - min) <= tolerance *
  /// max(|value|) — with `min_scale` as the scale floor so all-zero series
  /// (e.g. origin load 0) count as converged rather than dividing by zero.
  double tolerance = 0.02;
  double min_scale = 1e-9;
};

struct SteadyStateResult {
  bool converged = false;
  /// First epoch of the first stable window (0 when not converged).
  std::size_t epoch = 0;
};

/// Finds the first index i such that series[i, i + window) stays within
/// the relative band of `options`. Series shorter than the window never
/// converge. Pure function of its inputs — safe for deterministic exports.
SteadyStateResult detect_steady_state(const std::vector<double>& series,
                                      const SteadyStateOptions& options = {});

/// JSON: {"schema":"ccnopt-timeline-v1","epoch_requests":E,
/// "columns":[...],"epochs":[{"replication":r,"epoch":k,
/// "first_request":i,"last_request":j,"values":[...]},...]}.
/// Deterministic: equal timelines serialize to equal bytes.
void write_timeline_json(std::ostream& out, const Timeline& timeline);

/// CSV: "replication,epoch,first_request,last_request,<columns...>" header
/// then one row per epoch.
void write_timeline_csv(std::ostream& out, const Timeline& timeline);

}  // namespace ccnopt::obs
