#include "ccnopt/obs/span.hpp"

#include <algorithm>
#include <ctime>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::obs {
namespace {

thread_local ScopedSpan* t_current_span = nullptr;

std::int64_t thread_cpu_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }
#endif
  return 0;
}

}  // namespace

SpanProfiler& SpanProfiler::instance() {
  static SpanProfiler* profiler = new SpanProfiler();
  return *profiler;
}

SpanProfiler::SpanProfiler() : epoch_(std::chrono::steady_clock::now()) {}

SpanProfiler::Shard& SpanProfiler::local_shard() const {
  thread_local Shard* t_span_shard = nullptr;
  if (t_span_shard != nullptr) return *t_span_shard;
  auto shard = std::make_unique<Shard>();
  Shard* raw = shard.get();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    raw->index = static_cast<std::uint32_t>(shards_.size());
    shards_.push_back(std::move(shard));
  }
  t_span_shard = raw;
  return *raw;
}

void SpanProfiler::record(const std::string& path,
                          std::chrono::steady_clock::time_point wall_start,
                          std::int64_t wall_ns, std::int64_t cpu_ns) {
  Shard& shard = local_shard();
  const std::lock_guard<std::mutex> lock(shard.mutex);
  Cell& cell = shard.cells[path];
  ++cell.count;
  cell.wall_ns += wall_ns;
  cell.cpu_ns += cpu_ns;
  if (events_enabled_.load(std::memory_order_relaxed)) {
    if (shard.events.size() < kMaxEventsPerShard) {
      const auto ts_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             wall_start - epoch_)
                             .count();
      shard.events.push_back(SpanEvent{path, shard.index, ts_ns, wall_ns});
    } else {
      ++shard.dropped_events;
    }
  }
}

void SpanProfiler::set_event_recording(bool enabled) {
  events_enabled_.store(enabled, std::memory_order_relaxed);
}

bool SpanProfiler::event_recording() const {
  return events_enabled_.load(std::memory_order_relaxed);
}

std::vector<SpanEvent> SpanProfiler::events() const {
  std::vector<SpanEvent> result;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      result.insert(result.end(), shard->events.begin(), shard->events.end());
    }
  }
  std::sort(result.begin(), result.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.path < b.path;
            });
  return result;
}

std::uint64_t SpanProfiler::dropped_events() const {
  std::uint64_t dropped = 0;
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    dropped += shard->dropped_events;
  }
  return dropped;
}

std::vector<SpanAggregate> SpanProfiler::snapshot() const {
  std::unordered_map<std::string, Cell> merged;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& shard : shards_) {
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      for (const auto& [path, cell] : shard->cells) {
        Cell& into = merged[path];
        into.count += cell.count;
        into.wall_ns += cell.wall_ns;
        into.cpu_ns += cell.cpu_ns;
      }
    }
  }
  std::vector<SpanAggregate> result;
  result.reserve(merged.size());
  for (const auto& [path, cell] : merged) {
    result.push_back(SpanAggregate{path, cell.count, cell.wall_ns,
                                   cell.cpu_ns});
  }
  std::sort(result.begin(), result.end(),
            [](const SpanAggregate& a, const SpanAggregate& b) {
              return a.path < b.path;
            });
  return result;
}

void SpanProfiler::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> shard_lock(shard->mutex);
    shard->cells.clear();
    shard->events.clear();
    shard->dropped_events = 0;
  }
}

ScopedSpan::ScopedSpan(std::string_view label)
    : parent_(t_current_span),
      wall_start_(std::chrono::steady_clock::now()),
      cpu_start_ns_(thread_cpu_ns()) {
  CCNOPT_EXPECTS(!label.empty());
  CCNOPT_EXPECTS(label.find('/') == std::string_view::npos);
  if (parent_ != nullptr) {
    path_.reserve(parent_->path_.size() + 1 + label.size());
    path_ = parent_->path_;
    path_ += '/';
    path_ += label;
  } else {
    path_ = std::string(label);
  }
  t_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  CCNOPT_ASSERT(t_current_span == this);  // spans must close LIFO per thread
  t_current_span = parent_;
  const auto wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start_)
          .count();
  const std::int64_t cpu_ns = thread_cpu_ns() - cpu_start_ns_;
  SpanProfiler::instance().record(path_, wall_start_, wall_ns,
                                  cpu_ns < 0 ? 0 : cpu_ns);
}

const ScopedSpan* ScopedSpan::current() { return t_current_span; }

}  // namespace ccnopt::obs
