#include "ccnopt/model/optimizer.hpp"

#include <cmath>

#include "ccnopt/numerics/minimize.hpp"
#include "ccnopt/numerics/roots.hpp"

namespace ccnopt::model {
namespace {

StrategyResult make_result(const PerformanceModel& model, double x_star,
                           SolveMethod method, int iterations) {
  StrategyResult result;
  result.x_star = x_star;
  result.ell_star = x_star / model.params().capacity_c;
  result.objective = model.objective(x_star);
  result.routing = model.routing_performance(x_star);
  result.cost = model.coordination_cost(x_star);
  result.method = method;
  result.iterations = iterations;
  return result;
}

}  // namespace

const char* to_string(SolveMethod method) {
  switch (method) {
    case SolveMethod::kClosedFormAlpha1:
      return "closed_form_alpha1";
    case SolveMethod::kLemma2Root:
      return "lemma2_root";
    case SolveMethod::kExactFirstOrder:
      return "exact_first_order";
    case SolveMethod::kDirectMinimization:
      return "direct_minimization";
  }
  return "unknown";
}

Expected<Lemma2Coefficients> lemma2_coefficients(const SystemParams& params) {
  if (Status st = params.validate(); !st.is_ok()) return st;
  return lemma2_coefficients(PerformanceModel(params));
}

Expected<Lemma2Coefficients> lemma2_coefficients(
    const PerformanceModel& model) {
  const SystemParams& params = model.params();
  if (!(params.alpha > 0.0)) {
    return Status(ErrorCode::kInvalidArgument,
                  "lemma2_coefficients: Eq. 7 requires alpha > 0");
  }
  // a = gamma n^{1-s}, b's zipf factor = (N^{1-s}-1)/(1-s), and c^s are
  // the model's memoized invariants — identical expressions, evaluated
  // once per model instead of once per call.
  Lemma2Coefficients coeff;
  coeff.a = model.lemma2_a();
  coeff.b = (1.0 - params.alpha) / params.alpha *
            model.zipf_integral_factor() * (params.n - 1.0) *
            params.cost.effective_unit_cost() /
            (params.latency.d1 - params.latency.d0) * model.capacity_pow_s();
  return coeff;
}

Expected<double> closed_form_alpha1(const SystemParams& params) {
  if (Status st = params.validate(); !st.is_ok()) return st;
  const double gamma = params.latency.gamma();
  if (!(gamma > 0.0)) {
    return Status(ErrorCode::kInvalidArgument,
                  "closed_form_alpha1: Theorem 2 requires gamma > 0");
  }
  const double s = params.s;
  // Erratum note: the paper prints l* = 1/(gamma^{1/s} n^{1-1/s} + 1), but
  // its own Appendix Eq. 10 / Lemma 2 (b = 0 at alpha = 1) yield
  // gamma^{-1/s}; the printed sign contradicts the paper's Figure 4
  // ("higher gamma -> higher coordination") and its Figure 5 endpoint
  // (l* ~= 0.35 at s = 2, which only the corrected form reproduces).
  // See DESIGN.md and EXPERIMENTS.md.
  return 1.0 /
         (std::pow(gamma, -1.0 / s) * std::pow(params.n, 1.0 - 1.0 / s) + 1.0);
}

Expected<StrategyResult> solve_lemma2(const SystemParams& params) {
  if (Status st = params.validate(); !st.is_ok()) return st;
  // One model for the whole solve: its memoized constants feed the
  // coefficients and the final objective decomposition alike.
  const PerformanceModel model(params);
  const auto coeff = lemma2_coefficients(model);
  if (!coeff) return coeff.status();
  const double a = coeff->a;
  const double b = coeff->b;
  const double s = params.s;
  // g(l) = a l^{-s} - (1-l)^{-s} - b: +inf at l -> 0, -inf at l -> 1, so a
  // bracket on (eps, 1-eps) always exists (Theorem 1).
  const auto g = [a, b, s](double l) {
    return a * std::pow(l, -s) - std::pow(1.0 - l, -s) - b;
  };
  constexpr double kEps = 1e-12;
  const auto root = numerics::brent(g, kEps, 1.0 - kEps,
                                    numerics::RootOptions{1e-14, 0.0, 300});
  if (!root) return root.status();
  return make_result(model, root->root * params.capacity_c,
                     SolveMethod::kLemma2Root, root->iterations);
}

Expected<StrategyResult> solve_exact_first_order(const SystemParams& params) {
  if (Status st = params.validate(); !st.is_ok()) return st;
  const PerformanceModel model(params);

  if (params.alpha == 0.0) {
    // Pure cost: W is strictly increasing in x, so x* = 0.
    return make_result(model, 0.0, SolveMethod::kExactFirstOrder, 0);
  }
  // Convexity (Lemma 1) makes the sign of the left-edge derivative decide
  // between the boundary x* = 0 and an interior root.
  if (model.objective_derivative(0.0) >= 0.0) {
    return make_result(model, 0.0, SolveMethod::kExactFirstOrder, 0);
  }
  // The derivative diverges to +inf as x -> c (the (c-x)^{-s} local term),
  // so [0, c(1-eps)] brackets the unique interior root. Should the finite
  // right probe still be negative (extremely small s paired with tiny
  // catalogs), widen towards c until the sign flips.
  const double c = params.capacity_c;
  double hi = c * (1.0 - 1e-9);
  int widen = 0;
  while (model.objective_derivative(hi) <= 0.0) {
    const double next = c - (c - hi) * 0.5;
    if (!(next > hi) || !(next < c) || ++widen > 60) {
      // The derivative is still negative at the largest representable
      // x < c (very small s drives the root within machine epsilon of c):
      // the optimum is the right boundary at double resolution.
      const double boundary = model.objective(c) <= model.objective(hi) ? c : hi;
      return make_result(model, boundary, SolveMethod::kExactFirstOrder,
                         widen);
    }
    hi = next;
  }
  const auto df = [&model](double x) { return model.objective_derivative(x); };
  const auto root =
      numerics::brent(df, 0.0, hi, numerics::RootOptions{1e-12 * c, 0.0, 300});
  if (!root) return root.status();
  StrategyResult interior = make_result(model, root->root,
                                        SolveMethod::kExactFirstOrder,
                                        root->iterations);
  // Eq. 6's F clamps to 0 below rank 1, so on the final unit interval
  // x in (c-1, c] the (clamped) objective keeps falling while the
  // unclamped derivative has already turned positive — x = c can undercut
  // the interior stationary point when that point sits within one content
  // of full coordination. Compare explicitly.
  if (model.objective(c) < interior.objective) {
    return make_result(model, c, SolveMethod::kExactFirstOrder,
                       root->iterations);
  }
  return interior;
}

Expected<StrategyResult> solve_direct(const SystemParams& params) {
  if (Status st = params.validate(); !st.is_ok()) return st;
  const PerformanceModel model(params);
  const auto objective = [&model](double x) { return model.objective(x); };
  const auto min = numerics::brent_minimize(
      objective, 0.0, params.capacity_c,
      numerics::MinimizeOptions{1e-12, 300});
  if (!min) return min.status();
  return make_result(model, min->x_min, SolveMethod::kDirectMinimization,
                     min->iterations);
}

Expected<StrategyResult> optimize(const SystemParams& params) {
  const auto exact = solve_exact_first_order(params);
  if (exact) return exact;
  return solve_direct(params);
}

}  // namespace ccnopt::model
