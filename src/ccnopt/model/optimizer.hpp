// Solvers for the optimal provisioning strategy (Section IV).
//
// Four routes to x* = argmin T_w(x), cross-checked in tests:
//   * closed_form_alpha1     — Theorem 2's closed form for alpha = 1.
//   * solve_lemma2           — root of a*l^{-s} = (1-l)^{-s} + b (Eq. 7),
//                              the paper's approximate characterization.
//   * solve_exact_first_order— root of the exact dT_w/dx (Eq. 10) with
//                              boundary handling; the reference solver.
//   * solve_direct           — derivative-free convex minimization of T_w;
//                              the belt-and-braces oracle.
#pragma once

#include "ccnopt/common/error.hpp"
#include "ccnopt/model/performance.hpp"

namespace ccnopt::model {

enum class SolveMethod {
  kClosedFormAlpha1,
  kLemma2Root,
  kExactFirstOrder,
  kDirectMinimization,
};

const char* to_string(SolveMethod method);

/// The optimal strategy and the objective decomposition at the optimum.
struct StrategyResult {
  double x_star = 0.0;      ///< optimal coordinated storage per router
  double ell_star = 0.0;    ///< coordination level x*/c (the paper's l*)
  double objective = 0.0;   ///< T_w(x*)
  double routing = 0.0;     ///< T(x*)
  double cost = 0.0;        ///< W(x*)
  SolveMethod method = SolveMethod::kExactFirstOrder;
  int iterations = 0;
};

/// Lemma 2's coefficients: a ~= gamma * n^{1-s} and
/// b ~= (1-alpha)/alpha * (N^{1-s}-1)/(1-s) * (n-1) w_eff/(d1-d0) * c^s.
/// b requires alpha > 0 (the paper's Eq. 7 divides by alpha).
struct Lemma2Coefficients {
  double a = 0.0;
  double b = 0.0;
};
Expected<Lemma2Coefficients> lemma2_coefficients(const SystemParams& params);

/// Same coefficients from an already-built model, reusing its memoized
/// pow() invariants (gamma n^{1-s}, c^s, the integrated Zipf factor) —
/// solvers that hold a PerformanceModel should prefer this overload.
Expected<Lemma2Coefficients> lemma2_coefficients(const PerformanceModel& model);

/// Theorem 2: l* = 1/(gamma^{1/s} * n^{1-1/s} + 1) for alpha = 1.
/// Fails if params are invalid; ignores params.alpha (the formula is the
/// alpha = 1 special case by construction).
Expected<double> closed_form_alpha1(const SystemParams& params);

/// Solves Eq. 7 by Brent root finding on (0, 1); Theorem 1 guarantees a
/// unique interior root. Requires alpha > 0.
Expected<StrategyResult> solve_lemma2(const SystemParams& params);

/// Reference solver: finds the root of the exact first-order condition
/// (Eq. 10) on [0, c), returning the boundary x* = 0 when the objective is
/// non-decreasing from the left edge (the derivative diverges to +inf at
/// x = c, so the right boundary is never optimal under Lemma 1).
Expected<StrategyResult> solve_exact_first_order(const SystemParams& params);

/// Derivative-free: Brent minimization of T_w over [0, c].
Expected<StrategyResult> solve_direct(const SystemParams& params);

/// The default entry point: exact first-order solver with a direct-
/// minimization fallback should the derivative bracket degenerate.
Expected<StrategyResult> optimize(const SystemParams& params);

}  // namespace ccnopt::model
