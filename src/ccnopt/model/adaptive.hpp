// Online self-adaptive coordination — the paper's Section VII future work
// ("design online self-adaptive algorithms to adjust the coordination
// level").
//
// A deployed coordinator does not know the Zipf exponent s; it sees
// requests. The controller accumulates a rank histogram per epoch,
// estimates s (MLE or log-log fit, popularity/estimator.hpp), smooths the
// estimate with an EWMA to avoid thrashing the provisioning, re-runs the
// optimizer, and emits the new coordination amount x for the next epoch.
// The closed loop against the simulator lives in
// experiments/adaptive_loop.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "ccnopt/common/error.hpp"
#include "ccnopt/model/optimizer.hpp"
#include "ccnopt/popularity/estimator.hpp"

namespace ccnopt::model {

struct AdaptiveConfig {
  /// Histogram width for estimation; must equal the workload's catalog.
  std::uint64_t catalog_size = 10000;
  /// Requests per adaptation epoch.
  std::uint64_t epoch_requests = 50000;
  /// EWMA weight of the new estimate (1 = trust the epoch fully).
  double smoothing = 0.5;
  /// MLE (tight) vs log-log fit (the classic measurement-paper approach).
  bool use_mle = true;
  /// Estimates are clamped into [min_s, max_s] and nudged off the s = 1
  /// singular point by `singularity_margin`.
  double min_s = 0.05;
  double max_s = 1.95;
  double singularity_margin = 0.02;

  Status validate() const;
};

class AdaptiveController {
 public:
  /// `initial` provides everything but s (latency tiers, cost, n, N, c);
  /// its s seeds the EWMA. Requires valid params and config.
  AdaptiveController(SystemParams initial, AdaptiveConfig config);

  /// Records one served request's content rank (1-based).
  void observe(std::uint64_t rank);

  std::uint64_t observed_in_epoch() const { return observed_; }
  bool epoch_complete() const {
    return observed_ >= config_.epoch_requests;
  }

  /// The controller's current belief (drives the next provisioning).
  const SystemParams& params() const { return params_; }
  std::uint64_t epochs_completed() const { return epoch_index_; }

  struct EpochDecision {
    std::uint64_t epoch = 0;
    double estimated_s = 0.0;  ///< raw per-epoch estimate
    double smoothed_s = 0.0;   ///< EWMA fed to the optimizer
    double ell_star = 0.0;
    double x_star = 0.0;
  };

  /// Closes the epoch: estimates s from the histogram, smooths, re-runs
  /// optimize(), resets the histogram. Fails (leaving the previous belief
  /// in place, histogram reset) when the epoch has too few samples for
  /// estimation.
  Expected<EpochDecision> end_epoch();

 private:
  SystemParams params_;
  AdaptiveConfig config_;
  std::vector<std::uint64_t> histogram_;
  std::uint64_t observed_ = 0;
  std::uint64_t epoch_index_ = 0;

  double clamp_exponent(double s) const;
};

}  // namespace ccnopt::model
