// CDF-agnostic performance-cost model: Eq. 2's structure with an arbitrary
// popularity CDF F plugged in. Everything the paper derives assumes pure
// Zipf; this generalization answers "do the conclusions survive other
// popularity laws?" (exercised with Zipf-Mandelbrot in
// bench_ablation_mandelbrot). No convexity guarantee is inherited, so the
// optimizer is a grid-refined derivative-free search.
#pragma once

#include <functional>

#include "ccnopt/common/error.hpp"
#include "ccnopt/model/optimizer.hpp"

namespace ccnopt::model {

/// F: rank coverage -> probability mass in [0, 1]; must be non-decreasing
/// with F(x <= 1) = 0.
using PopularityCdf = std::function<double(double)>;

/// The subset of SystemParams a general popularity law still needs.
struct GeneralParams {
  double alpha = 1.0;
  double n = 20.0;
  double capacity_c = 1e3;
  LatencyProfile latency;
  CostModel cost;

  Status validate() const;

  /// Copies the shared fields from SystemParams (s and N live in the CDF).
  static GeneralParams from_system(const SystemParams& params);
};

class GeneralPerformanceModel {
 public:
  /// Requires valid params and a callable CDF.
  GeneralPerformanceModel(GeneralParams params, PopularityCdf cdf);

  const GeneralParams& params() const { return params_; }

  /// Eq. 2 with the supplied F.
  double routing_performance(double x) const;
  double coordination_cost(double x) const;
  double objective(double x) const;
  double baseline_performance() const { return routing_performance(0.0); }

  /// Derivative-free minimization of the objective over [0, c].
  Expected<StrategyResult> optimize(int grid_points = 512) const;

  /// Gains at x relative to the non-coordinated baseline.
  struct GeneralGains {
    double origin_load_reduction = 0.0;
    double routing_improvement = 0.0;
  };
  GeneralGains gains(double x) const;

 private:
  GeneralParams params_;
  PopularityCdf cdf_;
};

}  // namespace ccnopt::model
