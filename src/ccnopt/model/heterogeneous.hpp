// Heterogeneous extension of the performance-cost model — the paper's
// Section VII future work ("a heterogeneous model where the routers'
// storage capacity may vary").
//
// Router i has capacity c_i and dedicates x_i in [0, c_i] to coordination;
// its local partition holds the top m_i = c_i - x_i ranks. The coordinated
// pool stores the X = sum x_i distinct ranks immediately after the
// network-wide local coverage L = max_i m_i (so pool contents never
// duplicate any local store). A request at router i is then served
//   locally        with probability F(m_i),
//   by the pool    with probability F(L + X) - F(L),
//   by the origin  otherwise — including i's "dead zone" (m_i, L], ranks
//                  held only in *other* routers' local partitions, which
//                  the model (like Eq. 2) does not fetch from peers.
// With equal capacities and equal x this reduces exactly to Eq. 2.
//
// The dead-zone term is what shapes the optimum: leaving routers at
// unequal local coverage wastes requests to the origin, so the optimal
// provisioning tends to equalize m_i and pour every spare unit of the
// larger routers into coordination ("equal-coverage" strategies).
#pragma once

#include <span>
#include <vector>

#include "ccnopt/common/error.hpp"
#include "ccnopt/model/params.hpp"
#include "ccnopt/popularity/zipf.hpp"

namespace ccnopt::model {

struct HeterogeneousParams {
  double alpha = 1.0;
  double s = 0.8;
  double catalog_n = 1e6;
  LatencyProfile latency;
  CostModel cost;
  /// Per-router capacities c_i; the router count is capacities.size().
  std::vector<double> capacities;
  /// Request share per router; empty = uniform. Must sum to ~1 otherwise.
  std::vector<double> request_share;

  /// Lemma-1-style conditions, plus every c_i > 0 and
  /// N > sum c_i (non-empty origin tier even at full coordination).
  Status validate() const;

  /// Homogeneous paper defaults replicated across `routers` routers.
  static HeterogeneousParams from_homogeneous(const SystemParams& params);
};

/// Parses a capacity specification like "500x10,1500x10" (ten routers of
/// 500 and ten of 1500) or "100,200,300" (one each). Rejects empty specs,
/// non-positive capacities and zero counts.
Expected<std::vector<double>> parse_capacity_spec(const std::string& spec);

/// A provisioning vector and its objective decomposition.
struct HeterogeneousStrategy {
  std::vector<double> x;    ///< coordinated amount per router
  double objective = 0.0;
  double routing = 0.0;
  double cost = 0.0;
  int iterations = 0;

  double total_coordinated() const;
  /// Network-wide coordination level: sum x_i / sum c_i.
  double coordination_level(const HeterogeneousParams& params) const;
};

class HeterogeneousModel {
 public:
  /// Requires params.validate().is_ok().
  explicit HeterogeneousModel(HeterogeneousParams params);

  const HeterogeneousParams& params() const { return params_; }
  std::size_t router_count() const { return params_.capacities.size(); }

  /// Mean latency over all routers' requests at provisioning x (size n,
  /// each x_i in [0, c_i]).
  double routing_performance(std::span<const double> x) const;

  /// (w * sum x_i + w_hat) / amortization — the Eq. 3 generalization.
  double coordination_cost(std::span<const double> x) const;

  /// alpha * T + (1 - alpha) * W.
  double objective(std::span<const double> x) const;

  /// Tier probabilities seen by router i under x.
  struct RouterTierSplit {
    double local = 0.0;
    double network = 0.0;
    double dead_zone = 0.0;  ///< (m_i, L] mass, charged to the origin tier
    double origin = 0.0;     ///< includes the dead zone
  };
  RouterTierSplit tier_split(std::size_t router,
                             std::span<const double> x) const;

  /// Baseline: x = 0 everywhere (non-coordinated).
  double baseline_performance() const;

  // --- Strategy families -------------------------------------------------

  /// Every router coordinates the same fraction: x_i = l * c_i; the best l
  /// found by 1-D minimization. The natural port of the homogeneous rule.
  Expected<HeterogeneousStrategy> optimize_uniform_level() const;

  /// Equal local coverage m: x_i = c_i - min(m, c_i); the best m by 1-D
  /// minimization. Exploits the dead-zone structure.
  Expected<HeterogeneousStrategy> optimize_equal_coverage() const;

  /// General: cyclic coordinate descent with golden-section line searches,
  /// warm-started from the better of the two 1-D families. Monotone in the
  /// objective; stops when a full sweep improves less than `tolerance`.
  Expected<HeterogeneousStrategy> optimize_coordinate_descent(
      int max_sweeps = 60, double tolerance = 1e-10) const;

 private:
  HeterogeneousStrategy evaluate(std::vector<double> x, int iterations) const;
  double share(std::size_t router) const;

  HeterogeneousParams params_;
  popularity::ContinuousZipf zipf_;
};

}  // namespace ccnopt::model
