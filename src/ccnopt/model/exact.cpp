#include "ccnopt/model/exact.hpp"

#include "ccnopt/common/assert.hpp"

namespace ccnopt::model {

ExactDiscreteModel::ExactDiscreteModel(SystemParams params,
                                       std::uint64_t catalog_n,
                                       std::uint64_t routers,
                                       std::uint64_t capacity_c)
    : params_(std::move(params)),
      zipf_(catalog_n, params_.s),
      routers_(routers),
      capacity_(capacity_c) {
  CCNOPT_EXPECTS(routers >= 2);
  CCNOPT_EXPECTS(capacity_c >= 1);
  CCNOPT_EXPECTS(catalog_n > routers * capacity_c);
  CCNOPT_EXPECTS(params_.latency.validate().is_ok());
  CCNOPT_EXPECTS(params_.cost.validate().is_ok());
  // Keep the continuous-model fields consistent for callers that read them.
  params_.catalog_n = static_cast<double>(catalog_n);
  params_.n = static_cast<double>(routers);
  params_.capacity_c = static_cast<double>(capacity_c);
}

double ExactDiscreteModel::routing_performance(std::uint64_t x) const {
  CCNOPT_EXPECTS(x <= capacity_);
  const std::uint64_t local_span = capacity_ - x;
  const std::uint64_t network_span = capacity_ + (routers_ - 1) * x;
  const double f_local = zipf_.cdf(local_span);
  const double f_network = zipf_.cdf(network_span);
  return f_local * params_.latency.d0 +
         (f_network - f_local) * params_.latency.d1 +
         (1.0 - f_network) * params_.latency.d2;
}

double ExactDiscreteModel::coordination_cost(std::uint64_t x) const {
  CCNOPT_EXPECTS(x <= capacity_);
  return params_.cost.total_cost(static_cast<double>(x),
                                 static_cast<double>(routers_));
}

double ExactDiscreteModel::objective(std::uint64_t x) const {
  return params_.alpha * routing_performance(x) +
         (1.0 - params_.alpha) * coordination_cost(x);
}

ExactDiscreteModel::DiscreteOptimum ExactDiscreteModel::brute_force_optimum()
    const {
  DiscreteOptimum best;
  best.x_star = 0;
  best.objective = objective(0);
  for (std::uint64_t x = 1; x <= capacity_; ++x) {
    const double value = objective(x);
    if (value < best.objective) {
      best.objective = value;
      best.x_star = x;
    }
  }
  best.ell_star =
      static_cast<double>(best.x_star) / static_cast<double>(capacity_);
  return best;
}

}  // namespace ccnopt::model
