#include "ccnopt/model/robustness.hpp"

#include <cmath>

#include "ccnopt/model/performance.hpp"

namespace ccnopt::model {

Expected<Regret> misestimation_regret(const SystemParams& believed,
                                      const SystemParams& actual) {
  if (Status st = believed.validate(); !st.is_ok()) return st;
  if (Status st = actual.validate(); !st.is_ok()) return st;
  if (believed.n != actual.n || believed.capacity_c != actual.capacity_c) {
    return Status(ErrorCode::kInvalidArgument,
                  "regret: structural parameters (n, c) must match");
  }
  const auto provisioned = optimize(believed);
  if (!provisioned) return provisioned.status();
  const auto ideal = optimize(actual);
  if (!ideal) return ideal.status();

  const PerformanceModel truth(actual);
  Regret regret;
  regret.x_believed = provisioned->x_star;
  regret.x_true = ideal->x_star;
  const double paid = truth.objective(provisioned->x_star);
  const double best = truth.objective(ideal->x_star);
  regret.absolute = paid - best;
  // Convexity of the true objective guarantees non-negativity up to solver
  // tolerance; clamp the numerical dust.
  if (regret.absolute < 0.0 && regret.absolute > -1e-9 * (std::abs(best) + 1.0)) {
    regret.absolute = 0.0;
  }
  regret.relative = (best > 0.0) ? regret.absolute / best : 0.0;
  return regret;
}

namespace {

Expected<std::vector<RegretPoint>> regret_curve(
    const SystemParams& actual, const std::vector<double>& beliefs,
    SystemParams (*mutate)(SystemParams, double)) {
  std::vector<RegretPoint> points;
  points.reserve(beliefs.size());
  for (const double belief : beliefs) {
    const SystemParams believed = mutate(actual, belief);
    if (!believed.validate().is_ok()) continue;
    const auto regret = misestimation_regret(believed, actual);
    if (!regret) return regret.status();
    points.push_back(RegretPoint{belief, *regret});
  }
  if (points.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "regret curve: no valid belief value");
  }
  return points;
}

}  // namespace

Expected<std::vector<RegretPoint>> zipf_regret_curve(
    const SystemParams& actual, const std::vector<double>& believed_s) {
  return regret_curve(actual, believed_s, &with_zipf);
}

Expected<std::vector<RegretPoint>> gamma_regret_curve(
    const SystemParams& actual, const std::vector<double>& believed_gamma) {
  return regret_curve(actual, believed_gamma, &with_gamma);
}

}  // namespace ccnopt::model
