#include "ccnopt/model/sensitivity.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/model/gains.hpp"

namespace ccnopt::model {
namespace {

using Mutator = SystemParams (*)(SystemParams, double);

Expected<std::vector<SweepPoint>> sweep(const SystemParams& base,
                                        const std::vector<double>& values,
                                        Mutator mutate) {
  std::vector<SweepPoint> points;
  points.reserve(values.size());
  for (double value : values) {
    const SystemParams params = mutate(base, value);
    if (!params.validate().is_ok()) continue;  // skip e.g. s = 1
    const auto strategy = optimize(params);
    if (!strategy) return strategy.status();
    const PerformanceModel model(params);
    const GainReport gains = compute_gains(model, strategy->x_star);
    points.push_back(SweepPoint{value, strategy->ell_star,
                                gains.origin_load_reduction,
                                gains.routing_improvement});
  }
  if (points.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "sweep: no parameter value was valid");
  }
  return points;
}

}  // namespace

Expected<std::vector<SweepPoint>> sweep_alpha(
    const SystemParams& base, const std::vector<double>& alphas) {
  return sweep(base, alphas, &with_alpha);
}

Expected<std::vector<SweepPoint>> sweep_zipf(
    const SystemParams& base, const std::vector<double>& exponents) {
  return sweep(base, exponents, &with_zipf);
}

Expected<std::vector<SweepPoint>> sweep_routers(
    const SystemParams& base, const std::vector<double>& ns) {
  return sweep(base, ns, &with_routers);
}

Expected<std::vector<SweepPoint>> sweep_unit_cost(
    const SystemParams& base, const std::vector<double>& ws) {
  return sweep(base, ws, &with_unit_cost);
}

Expected<std::vector<SweepPoint>> sweep_gamma(
    const SystemParams& base, const std::vector<double>& gammas) {
  return sweep(base, gammas, &with_gamma);
}

std::vector<double> linspace(double lo, double hi, int count) {
  CCNOPT_EXPECTS(count >= 2);
  std::vector<double> values(static_cast<std::size_t>(count));
  const double step = (hi - lo) / (count - 1);
  for (int i = 0; i < count; ++i) {
    values[static_cast<std::size_t>(i)] = lo + step * i;
  }
  values.back() = hi;  // avoid accumulated rounding at the endpoint
  return values;
}

Expected<SensitiveRange> sensitive_range(const std::vector<SweepPoint>& curve,
                                         double lo_level, double hi_level) {
  CCNOPT_EXPECTS(lo_level < hi_level);
  if (curve.size() < 2) {
    return Status(ErrorCode::kInvalidArgument,
                  "sensitive_range: need at least 2 sweep points");
  }
  // Linear interpolation of the first upward crossing of each level.
  auto crossing = [&curve](double level) -> Expected<double> {
    for (std::size_t i = 1; i < curve.size(); ++i) {
      const SweepPoint& prev = curve[i - 1];
      const SweepPoint& next = curve[i];
      if (prev.ell_star <= level && next.ell_star >= level) {
        const double span = next.ell_star - prev.ell_star;
        if (span <= 0.0) return next.parameter;
        const double t = (level - prev.ell_star) / span;
        return prev.parameter + t * (next.parameter - prev.parameter);
      }
    }
    return Status(ErrorCode::kFailedPrecondition,
                  "sensitive_range: curve never crosses the level");
  };
  const auto low = crossing(lo_level);
  if (!low) return low.status();
  const auto high = crossing(hi_level);
  if (!high) return high.status();
  return SensitiveRange{*low, *high};
}

double max_sensitivity(const std::vector<SweepPoint>& curve) {
  double worst = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dp = curve[i].parameter - curve[i - 1].parameter;
    if (dp == 0.0) continue;
    worst = std::max(worst,
                     std::abs((curve[i].ell_star - curve[i - 1].ell_star) / dp));
  }
  return worst;
}

}  // namespace ccnopt::model
