#include "ccnopt/model/sensitivity.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/model/gains.hpp"

namespace ccnopt::model {

const char* to_string(SweepParameter parameter) {
  switch (parameter) {
    case SweepParameter::kAlpha:
      return "alpha";
    case SweepParameter::kZipf:
      return "s";
    case SweepParameter::kRouters:
      return "n";
    case SweepParameter::kUnitCost:
      return "w";
    case SweepParameter::kGamma:
      return "gamma";
  }
  return "unknown";
}

SystemParams apply_sweep_parameter(const SystemParams& base,
                                   SweepParameter parameter, double value) {
  switch (parameter) {
    case SweepParameter::kAlpha:
      return with_alpha(base, value);
    case SweepParameter::kZipf:
      return with_zipf(base, value);
    case SweepParameter::kRouters:
      return with_routers(base, value);
    case SweepParameter::kUnitCost:
      return with_unit_cost(base, value);
    case SweepParameter::kGamma:
      return with_gamma(base, value);
  }
  CCNOPT_ASSERT(false);
  return base;
}

SweepPointOutcome evaluate_sweep_point(const SystemParams& base,
                                       SweepParameter parameter,
                                       double value) {
  SweepPointOutcome outcome;
  const SystemParams params = apply_sweep_parameter(base, parameter, value);
  if (!params.validate().is_ok()) return outcome;  // skip e.g. s = 1
  outcome.valid = true;
  const auto strategy = optimize(params);
  if (!strategy) {
    outcome.status = strategy.status();
    return outcome;
  }
  const PerformanceModel model(params);
  const GainReport gains = compute_gains(model, strategy->x_star);
  outcome.point = SweepPoint{value, strategy->ell_star,
                             gains.origin_load_reduction,
                             gains.routing_improvement};
  return outcome;
}

Expected<std::vector<SweepPoint>> reduce_sweep_outcomes(
    const std::vector<SweepPointOutcome>& outcomes) {
  std::vector<SweepPoint> points;
  points.reserve(outcomes.size());
  for (const SweepPointOutcome& outcome : outcomes) {
    if (!outcome.valid) continue;
    if (!outcome.status.is_ok()) return outcome.status;
    points.push_back(outcome.point);
  }
  if (points.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "sweep: no parameter value was valid");
  }
  return points;
}

Expected<std::vector<SweepPoint>> sweep(const SystemParams& base,
                                        SweepParameter parameter,
                                        const std::vector<double>& values) {
  std::vector<SweepPointOutcome> outcomes;
  outcomes.reserve(values.size());
  for (double value : values) {
    outcomes.push_back(evaluate_sweep_point(base, parameter, value));
    // Match the historical early-exit: nothing after an optimizer failure
    // is evaluated (the parallel runner evaluates everything, but the
    // reduction returns the same first error either way).
    if (outcomes.back().valid && !outcomes.back().status.is_ok()) break;
  }
  return reduce_sweep_outcomes(outcomes);
}

Expected<std::vector<SweepPoint>> sweep_alpha(
    const SystemParams& base, const std::vector<double>& alphas) {
  return sweep(base, SweepParameter::kAlpha, alphas);
}

Expected<std::vector<SweepPoint>> sweep_zipf(
    const SystemParams& base, const std::vector<double>& exponents) {
  return sweep(base, SweepParameter::kZipf, exponents);
}

Expected<std::vector<SweepPoint>> sweep_routers(
    const SystemParams& base, const std::vector<double>& ns) {
  return sweep(base, SweepParameter::kRouters, ns);
}

Expected<std::vector<SweepPoint>> sweep_unit_cost(
    const SystemParams& base, const std::vector<double>& ws) {
  return sweep(base, SweepParameter::kUnitCost, ws);
}

Expected<std::vector<SweepPoint>> sweep_gamma(
    const SystemParams& base, const std::vector<double>& gammas) {
  return sweep(base, SweepParameter::kGamma, gammas);
}

std::vector<double> linspace(double lo, double hi, int count) {
  CCNOPT_EXPECTS(count >= 2);
  std::vector<double> values(static_cast<std::size_t>(count));
  const double step = (hi - lo) / (count - 1);
  for (int i = 0; i < count; ++i) {
    values[static_cast<std::size_t>(i)] = lo + step * i;
  }
  values.back() = hi;  // avoid accumulated rounding at the endpoint
  return values;
}

Expected<SensitiveRange> sensitive_range(const std::vector<SweepPoint>& curve,
                                         double lo_level, double hi_level) {
  CCNOPT_EXPECTS(lo_level < hi_level);
  if (curve.size() < 2) {
    return Status(ErrorCode::kInvalidArgument,
                  "sensitive_range: need at least 2 sweep points");
  }
  // Linear interpolation of the first upward crossing of each level.
  auto crossing = [&curve](double level) -> Expected<double> {
    for (std::size_t i = 1; i < curve.size(); ++i) {
      const SweepPoint& prev = curve[i - 1];
      const SweepPoint& next = curve[i];
      if (prev.ell_star <= level && next.ell_star >= level) {
        const double span = next.ell_star - prev.ell_star;
        if (span <= 0.0) return next.parameter;
        const double t = (level - prev.ell_star) / span;
        return prev.parameter + t * (next.parameter - prev.parameter);
      }
    }
    return Status(ErrorCode::kFailedPrecondition,
                  "sensitive_range: curve never crosses the level");
  };
  const auto low = crossing(lo_level);
  if (!low) return low.status();
  const auto high = crossing(hi_level);
  if (!high) return high.status();
  return SensitiveRange{*low, *high};
}

double max_sensitivity(const std::vector<SweepPoint>& curve) {
  double worst = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dp = curve[i].parameter - curve[i - 1].parameter;
    if (dp == 0.0) continue;
    worst = std::max(worst,
                     std::abs((curve[i].ell_star - curve[i - 1].ell_star) / dp));
  }
  return worst;
}

}  // namespace ccnopt::model
