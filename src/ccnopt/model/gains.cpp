#include "ccnopt/model/gains.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::model {

GainReport compute_gains(const PerformanceModel& model, double x_star) {
  const SystemParams& p = model.params();
  CCNOPT_EXPECTS(x_star >= 0.0 && x_star <= p.capacity_c);
  GainReport report;
  const double covered = p.capacity_c + (p.n - 1.0) * x_star;
  report.origin_load_optimal = 1.0 - model.popularity_cdf(covered);
  report.origin_load_baseline = 1.0 - model.popularity_cdf(p.capacity_c);
  CCNOPT_ASSERT(report.origin_load_baseline > 0.0);
  report.origin_load_reduction =
      1.0 - report.origin_load_optimal / report.origin_load_baseline;
  report.routing_optimal = model.routing_performance(x_star);
  report.routing_baseline = model.baseline_performance();
  CCNOPT_ASSERT(report.routing_baseline > 0.0);
  report.routing_improvement =
      1.0 - report.routing_optimal / report.routing_baseline;
  return report;
}

double origin_load_reduction_closed_form(const SystemParams& params,
                                         double x_star) {
  const double one_minus_s = 1.0 - params.s;
  const double covered = params.capacity_c + (params.n - 1.0) * x_star;
  return (std::pow(covered, one_minus_s) -
          std::pow(params.capacity_c, one_minus_s)) /
         (std::pow(params.catalog_n, one_minus_s) -
          std::pow(params.capacity_c, one_minus_s));
}

}  // namespace ccnopt::model
