#include "ccnopt/model/performance.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::model {

PerformanceModel::PerformanceModel(SystemParams params)
    : params_(std::move(params)),
      zipf_(params_.catalog_n, params_.s) {
  const Status status = params_.validate();
  if (!status.is_ok()) {
    CCNOPT_EXPECTS(status.is_ok() && "SystemParams failed validation");
  }
  gamma_n_pow_ =
      params_.latency.gamma() * std::pow(params_.n, 1.0 - params_.s);
  c_pow_s_ = std::pow(params_.capacity_c, params_.s);
  zipf_integral_factor_ = zipf_.denominator() / (1.0 - params_.s);
}

PerformanceModel::TierSplit PerformanceModel::tier_split(double x) const {
  CCNOPT_EXPECTS(x >= 0.0 && x <= params_.capacity_c);
  const double local_span = params_.capacity_c - x;
  const double network_span = params_.capacity_c + (params_.n - 1.0) * x;
  TierSplit split;
  split.local = zipf_.cdf(local_span);
  const double f_network = zipf_.cdf(network_span);
  split.network = f_network - split.local;
  split.origin = 1.0 - f_network;
  return split;
}

double PerformanceModel::routing_performance(double x) const {
  const TierSplit split = tier_split(x);
  return split.local * params_.latency.d0 +
         split.network * params_.latency.d1 +
         split.origin * params_.latency.d2;
}

double PerformanceModel::coordination_cost(double x) const {
  CCNOPT_EXPECTS(x >= 0.0 && x <= params_.capacity_c);
  return params_.cost.total_cost(x, params_.n);
}

double PerformanceModel::objective(double x) const {
  return params_.alpha * routing_performance(x) +
         (1.0 - params_.alpha) * coordination_cost(x);
}

double PerformanceModel::objective_derivative(double x) const {
  CCNOPT_EXPECTS(x >= 0.0 && x < params_.capacity_c);
  const double s = params_.s;
  const double n = params_.n;
  const double denom = zipf_.denominator();  // N^{1-s} - 1
  const double local_span = params_.capacity_c - x;
  const double network_span = params_.capacity_c + (n - 1.0) * x;
  const double latency_term =
      (1.0 - s) * params_.alpha / denom *
      ((params_.latency.d1 - params_.latency.d0) * std::pow(local_span, -s) -
       (params_.latency.d2 - params_.latency.d1) * (n - 1.0) *
           std::pow(network_span, -s));
  const double cost_term =
      (1.0 - params_.alpha) * params_.cost.effective_unit_cost() * n;
  return latency_term + cost_term;
}

double PerformanceModel::objective_second_derivative(double x) const {
  CCNOPT_EXPECTS(x >= 0.0 && x < params_.capacity_c);
  const double s = params_.s;
  const double n = params_.n;
  const double denom = zipf_.denominator();
  const double local_span = params_.capacity_c - x;
  const double network_span = params_.capacity_c + (n - 1.0) * x;
  return s * (1.0 - s) * params_.alpha / denom *
         ((params_.latency.d1 - params_.latency.d0) *
              std::pow(local_span, -s - 1.0) +
          (params_.latency.d2 - params_.latency.d1) * (n - 1.0) * (n - 1.0) *
              std::pow(network_span, -s - 1.0));
}

bool PerformanceModel::is_convex(int samples) const {
  CCNOPT_EXPECTS(samples >= 3);
  // Stay away from the x = c singularity; the analytic check plus a
  // secant-slope (three-point) check guard against sign errors in either
  // derivation.
  const double hi = params_.capacity_c * (1.0 - 1e-6);
  const double step = hi / (samples + 1);
  for (int i = 1; i <= samples; ++i) {
    const double x = step * static_cast<double>(i);
    if (params_.alpha > 0.0 && objective_second_derivative(x) <= 0.0) {
      return false;
    }
    const double h = step * 0.25;
    const double mid2 = 2.0 * objective(x);
    const double chord = objective(x - h) + objective(x + h);
    if (chord + 1e-9 * std::abs(mid2) < mid2) return false;
  }
  return true;
}

}  // namespace ccnopt::model
