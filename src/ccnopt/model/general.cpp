#include "ccnopt/model/general.hpp"

#include "ccnopt/common/assert.hpp"
#include "ccnopt/numerics/minimize.hpp"

namespace ccnopt::model {

Status GeneralParams::validate() const {
  if (alpha < 0.0 || alpha > 1.0) {
    return Status(ErrorCode::kInvalidArgument, "alpha must be in [0, 1]");
  }
  if (!(n > 1.0)) {
    return Status(ErrorCode::kInvalidArgument, "need n > 1 routers");
  }
  if (!(capacity_c > 0.0)) {
    return Status(ErrorCode::kInvalidArgument, "need capacity c > 0");
  }
  if (Status st = latency.validate(); !st.is_ok()) return st;
  if (Status st = cost.validate(); !st.is_ok()) return st;
  return Status::ok();
}

GeneralParams GeneralParams::from_system(const SystemParams& params) {
  GeneralParams gp;
  gp.alpha = params.alpha;
  gp.n = params.n;
  gp.capacity_c = params.capacity_c;
  gp.latency = params.latency;
  gp.cost = params.cost;
  return gp;
}

GeneralPerformanceModel::GeneralPerformanceModel(GeneralParams params,
                                                 PopularityCdf cdf)
    : params_(std::move(params)), cdf_(std::move(cdf)) {
  CCNOPT_EXPECTS(params_.validate().is_ok());
  CCNOPT_EXPECTS(cdf_ != nullptr);
}

double GeneralPerformanceModel::routing_performance(double x) const {
  CCNOPT_EXPECTS(x >= 0.0 && x <= params_.capacity_c);
  const double f_local = cdf_(params_.capacity_c - x);
  const double f_network = cdf_(params_.capacity_c + (params_.n - 1.0) * x);
  return f_local * params_.latency.d0 +
         (f_network - f_local) * params_.latency.d1 +
         (1.0 - f_network) * params_.latency.d2;
}

double GeneralPerformanceModel::coordination_cost(double x) const {
  CCNOPT_EXPECTS(x >= 0.0 && x <= params_.capacity_c);
  return params_.cost.total_cost(x, params_.n);
}

double GeneralPerformanceModel::objective(double x) const {
  return params_.alpha * routing_performance(x) +
         (1.0 - params_.alpha) * coordination_cost(x);
}

Expected<StrategyResult> GeneralPerformanceModel::optimize(
    int grid_points) const {
  const auto f = [this](double x) { return objective(x); };
  const auto best =
      numerics::grid_refine(f, 0.0, params_.capacity_c, grid_points);
  if (!best) return best.status();
  StrategyResult result;
  result.x_star = best->x_min;
  result.ell_star = best->x_min / params_.capacity_c;
  result.objective = best->f_min;
  result.routing = routing_performance(best->x_min);
  result.cost = coordination_cost(best->x_min);
  result.method = SolveMethod::kDirectMinimization;
  result.iterations = best->iterations;
  return result;
}

GeneralPerformanceModel::GeneralGains GeneralPerformanceModel::gains(
    double x) const {
  CCNOPT_EXPECTS(x >= 0.0 && x <= params_.capacity_c);
  GeneralGains report;
  const double covered = params_.capacity_c + (params_.n - 1.0) * x;
  const double origin_optimal = 1.0 - cdf_(covered);
  const double origin_baseline = 1.0 - cdf_(params_.capacity_c);
  CCNOPT_ASSERT(origin_baseline > 0.0);
  report.origin_load_reduction = 1.0 - origin_optimal / origin_baseline;
  report.routing_improvement =
      1.0 - routing_performance(x) / baseline_performance();
  return report;
}

}  // namespace ccnopt::model
