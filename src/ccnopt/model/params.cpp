#include "ccnopt/model/params.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::model {

LatencyProfile LatencyProfile::from_gamma(double d0, double d1_minus_d0,
                                          double gamma) {
  CCNOPT_EXPECTS(d1_minus_d0 > 0.0);
  CCNOPT_EXPECTS(gamma >= 0.0);
  LatencyProfile p;
  p.d0 = d0;
  p.d1 = d0 + d1_minus_d0;
  p.d2 = p.d1 + gamma * d1_minus_d0;
  return p;
}

Status LatencyProfile::validate() const {
  if (d0 < 0.0) {
    return Status(ErrorCode::kInvalidArgument, "latency: d0 must be >= 0");
  }
  if (!(d0 < d1)) {
    return Status(ErrorCode::kInvalidArgument, "latency: need d0 < d1");
  }
  if (!(d1 <= d2)) {
    return Status(ErrorCode::kInvalidArgument, "latency: need d1 <= d2");
  }
  return Status::ok();
}

Status CostModel::validate() const {
  if (!(unit_cost_w > 0.0)) {
    return Status(ErrorCode::kInvalidArgument, "cost: w must be > 0");
  }
  if (fixed_cost < 0.0) {
    return Status(ErrorCode::kInvalidArgument, "cost: w_hat must be >= 0");
  }
  if (!(amortization > 0.0)) {
    return Status(ErrorCode::kInvalidArgument,
                  "cost: amortization must be > 0");
  }
  return Status::ok();
}

Status SystemParams::validate() const {
  if (alpha < 0.0 || alpha > 1.0) {
    return Status(ErrorCode::kInvalidArgument, "alpha must be in [0, 1]");
  }
  if (!(s > 0.0 && s < 2.0) || std::abs(s - 1.0) < 1e-9) {
    return Status(ErrorCode::kInvalidArgument,
                  "s must be in (0,1) U (1,2); s = 1 is the singular point");
  }
  if (!(n > 1.0)) {
    return Status(ErrorCode::kInvalidArgument, "need n > 1 routers");
  }
  if (!(capacity_c > 0.0)) {
    return Status(ErrorCode::kInvalidArgument, "need capacity c > 0");
  }
  if (!(catalog_n > capacity_c + (n - 1.0) * capacity_c)) {
    // N must exceed the maximum number of distinct cached contents
    // c + (n-1)c = n*c, otherwise the whole catalog fits in the network and
    // the origin tier vanishes (the model's F would clamp everywhere).
    return Status(ErrorCode::kInvalidArgument,
                  "need catalog N > n*c (origin tier must be non-empty)");
  }
  if (Status st = latency.validate(); !st.is_ok()) return st;
  if (Status st = cost.validate(); !st.is_ok()) return st;
  return Status::ok();
}

SystemParams SystemParams::paper_defaults() {
  SystemParams p;
  p.alpha = 1.0;
  p.s = 0.8;
  p.n = 20.0;
  p.catalog_n = 1e6;
  p.capacity_c = 1e3;
  // Table IV: d1 - d0 = 2.2842 hops (US-A), gamma = 5; d0 = 1 hop puts the
  // first tier at the client-to-router access hop.
  p.latency = LatencyProfile::from_gamma(/*d0=*/1.0, /*d1_minus_d0=*/2.2842,
                                         /*gamma=*/5.0);
  p.cost.unit_cost_w = 26.7;
  p.cost.fixed_cost = 0.0;
  p.cost.amortization = 1.0;
  p.cost.amortization = calibrate_amortization(p);
  return p;
}

double calibrate_amortization(const SystemParams& params) {
  // Lemma 2 coefficients with amortization 1:
  //   a = gamma * n^{1-s}
  //   b = (1-alpha)/alpha * (N^{1-s}-1)/(1-s) * (n-1) w / (d1-d0) * c^s
  // At alpha = 0.5 the (1-alpha)/alpha factor is 1; choose the epoch size
  // rho so that b/rho = a, i.e. the two objective terms trade off evenly at
  // the midpoint of the alpha axis.
  SystemParams p = params;
  p.cost.amortization = 1.0;
  CCNOPT_EXPECTS(p.validate().is_ok());
  const double a = p.latency.gamma() * std::pow(p.n, 1.0 - p.s);
  CCNOPT_EXPECTS(a > 0.0);
  const double denom_zipf =
      (std::pow(p.catalog_n, 1.0 - p.s) - 1.0) / (1.0 - p.s);
  const double b_raw = denom_zipf * (p.n - 1.0) * p.cost.unit_cost_w /
                       (p.latency.d1 - p.latency.d0) *
                       std::pow(p.capacity_c, p.s);
  CCNOPT_ENSURES(b_raw > 0.0);
  return b_raw / a;
}

SystemParams with_alpha(SystemParams p, double alpha) {
  p.alpha = alpha;
  return p;
}

SystemParams with_zipf(SystemParams p, double s) {
  p.s = s;
  return p;
}

SystemParams with_routers(SystemParams p, double n) {
  p.n = n;
  return p;
}

SystemParams with_unit_cost(SystemParams p, double w) {
  p.cost.unit_cost_w = w;
  return p;
}

SystemParams with_gamma(SystemParams p, double gamma) {
  p.latency = LatencyProfile::from_gamma(p.latency.d0,
                                         p.latency.d1 - p.latency.d0, gamma);
  return p;
}

}  // namespace ccnopt::model
