#include "ccnopt/model/heterogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/numerics/minimize.hpp"

namespace ccnopt::model {

Expected<std::vector<double>> parse_capacity_spec(const std::string& spec) {
  std::vector<double> capacities;
  for (const std::string& group : split(spec, ',')) {
    const std::string entry(trim(group));
    if (entry.empty()) {
      return Status(ErrorCode::kParseError,
                    "capacity spec: empty group in '" + spec + "'");
    }
    const std::size_t x_pos = entry.find('x');
    std::string value_text = entry;
    std::size_t count = 1;
    if (x_pos != std::string::npos) {
      value_text = entry.substr(0, x_pos);
      const std::string count_text = entry.substr(x_pos + 1);
      try {
        std::size_t consumed = 0;
        const long long parsed = std::stoll(count_text, &consumed);
        if (consumed != count_text.size() || parsed <= 0) throw std::exception();
        count = static_cast<std::size_t>(parsed);
      } catch (const std::exception&) {
        return Status(ErrorCode::kParseError,
                      "capacity spec: bad count '" + count_text + "'");
      }
    }
    double value = 0.0;
    try {
      std::size_t consumed = 0;
      value = std::stod(value_text, &consumed);
      if (consumed != value_text.size()) throw std::exception();
    } catch (const std::exception&) {
      return Status(ErrorCode::kParseError,
                    "capacity spec: bad capacity '" + value_text + "'");
    }
    if (!(value > 0.0)) {
      return Status(ErrorCode::kParseError,
                    "capacity spec: capacities must be > 0");
    }
    capacities.insert(capacities.end(), count, value);
  }
  if (capacities.empty()) {
    return Status(ErrorCode::kParseError, "capacity spec: empty");
  }
  return capacities;
}

Status HeterogeneousParams::validate() const {
  if (alpha < 0.0 || alpha > 1.0) {
    return Status(ErrorCode::kInvalidArgument, "alpha must be in [0, 1]");
  }
  if (!(s > 0.0 && s < 2.0) || std::abs(s - 1.0) < 1e-9) {
    return Status(ErrorCode::kInvalidArgument,
                  "s must be in (0,1) U (1,2)");
  }
  if (capacities.size() < 2) {
    return Status(ErrorCode::kInvalidArgument, "need at least 2 routers");
  }
  double total_capacity = 0.0;
  for (const double c : capacities) {
    if (!(c > 0.0)) {
      return Status(ErrorCode::kInvalidArgument,
                    "every capacity must be > 0");
    }
    total_capacity += c;
  }
  if (!(catalog_n > total_capacity)) {
    return Status(ErrorCode::kInvalidArgument,
                  "need catalog N > sum of capacities");
  }
  if (!request_share.empty()) {
    if (request_share.size() != capacities.size()) {
      return Status(ErrorCode::kInvalidArgument,
                    "request_share size must match capacities");
    }
    double total_share = 0.0;
    for (const double share : request_share) {
      if (share < 0.0) {
        return Status(ErrorCode::kInvalidArgument,
                      "request shares must be >= 0");
      }
      total_share += share;
    }
    if (std::abs(total_share - 1.0) > 1e-6) {
      return Status(ErrorCode::kInvalidArgument,
                    "request shares must sum to 1");
    }
  }
  if (Status st = latency.validate(); !st.is_ok()) return st;
  if (Status st = cost.validate(); !st.is_ok()) return st;
  return Status::ok();
}

HeterogeneousParams HeterogeneousParams::from_homogeneous(
    const SystemParams& params) {
  HeterogeneousParams hp;
  hp.alpha = params.alpha;
  hp.s = params.s;
  hp.catalog_n = params.catalog_n;
  hp.latency = params.latency;
  hp.cost = params.cost;
  hp.capacities.assign(static_cast<std::size_t>(params.n),
                       params.capacity_c);
  return hp;
}

double HeterogeneousStrategy::total_coordinated() const {
  return std::accumulate(x.begin(), x.end(), 0.0);
}

double HeterogeneousStrategy::coordination_level(
    const HeterogeneousParams& params) const {
  const double total_capacity = std::accumulate(params.capacities.begin(),
                                                params.capacities.end(), 0.0);
  return total_coordinated() / total_capacity;
}

HeterogeneousModel::HeterogeneousModel(HeterogeneousParams params)
    : params_(std::move(params)), zipf_(params_.catalog_n, params_.s) {
  CCNOPT_EXPECTS(params_.validate().is_ok());
}

double HeterogeneousModel::share(std::size_t router) const {
  if (params_.request_share.empty()) {
    return 1.0 / static_cast<double>(router_count());
  }
  return params_.request_share[router];
}

HeterogeneousModel::RouterTierSplit HeterogeneousModel::tier_split(
    std::size_t router, std::span<const double> x) const {
  CCNOPT_EXPECTS(router < router_count());
  CCNOPT_EXPECTS(x.size() == router_count());
  double coverage_l = 0.0;  // L = max_i m_i
  double pool = 0.0;        // X = sum x_i
  for (std::size_t i = 0; i < x.size(); ++i) {
    CCNOPT_EXPECTS(x[i] >= 0.0 && x[i] <= params_.capacities[i] + 1e-9);
    coverage_l = std::max(coverage_l, params_.capacities[i] - x[i]);
    pool += x[i];
  }
  const double m_i = params_.capacities[router] - x[router];
  RouterTierSplit split;
  split.local = zipf_.cdf(m_i);
  const double f_l = zipf_.cdf(coverage_l);
  const double f_pool = zipf_.cdf(coverage_l + pool);
  split.network = f_pool - f_l;
  split.dead_zone = f_l - split.local;
  split.origin = 1.0 - split.local - split.network;
  return split;
}

double HeterogeneousModel::routing_performance(
    std::span<const double> x) const {
  double total = 0.0;
  for (std::size_t i = 0; i < router_count(); ++i) {
    const RouterTierSplit split = tier_split(i, x);
    total += share(i) * (split.local * params_.latency.d0 +
                         split.network * params_.latency.d1 +
                         split.origin * params_.latency.d2);
  }
  return total;
}

double HeterogeneousModel::coordination_cost(std::span<const double> x) const {
  CCNOPT_EXPECTS(x.size() == router_count());
  const double pool = std::accumulate(x.begin(), x.end(), 0.0);
  return (params_.cost.unit_cost_w * pool + params_.cost.fixed_cost) /
         params_.cost.amortization;
}

double HeterogeneousModel::objective(std::span<const double> x) const {
  return params_.alpha * routing_performance(x) +
         (1.0 - params_.alpha) * coordination_cost(x);
}

double HeterogeneousModel::baseline_performance() const {
  const std::vector<double> zero(router_count(), 0.0);
  return routing_performance(zero);
}

HeterogeneousStrategy HeterogeneousModel::evaluate(std::vector<double> x,
                                                   int iterations) const {
  HeterogeneousStrategy strategy;
  strategy.routing = routing_performance(x);
  strategy.cost = coordination_cost(x);
  strategy.objective = params_.alpha * strategy.routing +
                       (1.0 - params_.alpha) * strategy.cost;
  strategy.x = std::move(x);
  strategy.iterations = iterations;
  return strategy;
}

Expected<HeterogeneousStrategy> HeterogeneousModel::optimize_uniform_level()
    const {
  const auto objective_at_level = [this](double level) {
    std::vector<double> x(router_count());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = level * params_.capacities[i];
    }
    return objective(x);
  };
  const auto best = numerics::grid_refine(objective_at_level, 0.0, 1.0, 256);
  if (!best) return best.status();
  std::vector<double> x(router_count());
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = best->x_min * params_.capacities[i];
  }
  return evaluate(std::move(x), best->iterations);
}

Expected<HeterogeneousStrategy> HeterogeneousModel::optimize_equal_coverage()
    const {
  const double max_capacity = *std::max_element(params_.capacities.begin(),
                                                params_.capacities.end());
  const auto x_for_coverage = [this](double coverage) {
    std::vector<double> x(router_count());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = params_.capacities[i] - std::min(coverage, params_.capacities[i]);
    }
    return x;
  };
  const auto objective_at_coverage = [&](double coverage) {
    return objective(x_for_coverage(coverage));
  };
  const auto best =
      numerics::grid_refine(objective_at_coverage, 0.0, max_capacity, 256);
  if (!best) return best.status();
  return evaluate(x_for_coverage(best->x_min), best->iterations);
}

Expected<HeterogeneousStrategy>
HeterogeneousModel::optimize_coordinate_descent(int max_sweeps,
                                                double tolerance) const {
  // Warm start: the better of the two 1-D families.
  const auto uniform = optimize_uniform_level();
  if (!uniform) return uniform.status();
  const auto equal = optimize_equal_coverage();
  if (!equal) return equal.status();
  std::vector<double> x =
      (uniform->objective <= equal->objective) ? uniform->x : equal->x;
  double current = objective(x);

  int sweeps = 0;
  for (; sweeps < max_sweeps; ++sweeps) {
    const double before = current;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const auto line = [&](double xi) {
        const double saved = x[i];
        x[i] = xi;
        const double value = objective(x);
        x[i] = saved;
        return value;
      };
      const auto best =
          numerics::golden_section(line, 0.0, params_.capacities[i],
                                   numerics::MinimizeOptions{1e-10, 120});
      if (!best) return best.status();
      if (best->f_min < current) {
        x[i] = best->x_min;
        current = best->f_min;
      }
    }
    if (before - current <= tolerance * (std::abs(before) + 1.0)) break;
  }
  return evaluate(std::move(x), sweeps);
}

}  // namespace ccnopt::model
