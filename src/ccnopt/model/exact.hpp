// Exact discrete counterpart of the continuous model: the same Eq. 2/3/4
// structure evaluated with the exact Zipf CDF F(k) = H_{k,s}/H_{N,s}
// (Eq. 1) over integer coordination amounts x in {0, ..., c}.
//
// The paper's analysis lives entirely in the continuous approximation
// (Eq. 6); this class is the ground truth it is checked against (ablation
// bench `bench_ablation_approximation` and the Lemma-1/2 property tests).
#pragma once

#include <cstdint>

#include "ccnopt/model/params.hpp"
#include "ccnopt/popularity/zipf.hpp"

namespace ccnopt::model {

class ExactDiscreteModel {
 public:
  /// Discrete system: `catalog_n` contents, `routers` routers of capacity
  /// `capacity_c` contents each. Requires routers >= 2, capacity >= 1, and
  /// catalog_n > routers * capacity_c (non-empty origin tier); alpha, s,
  /// latency and cost come from `params` (catalog/n/c fields of `params`
  /// are ignored in favor of the integer arguments).
  ExactDiscreteModel(SystemParams params, std::uint64_t catalog_n,
                     std::uint64_t routers, std::uint64_t capacity_c);

  std::uint64_t catalog_n() const { return zipf_.catalog_size(); }
  std::uint64_t routers() const { return routers_; }
  std::uint64_t capacity_c() const { return capacity_; }

  /// Exact F(k) = H_{k,s} / H_{N,s}.
  double popularity_cdf(std::uint64_t rank) const { return zipf_.cdf(rank); }

  /// Eq. 2 with the exact CDF; requires x <= capacity_c.
  double routing_performance(std::uint64_t x) const;

  /// Eq. 3 (amortized), as in the continuous model.
  double coordination_cost(std::uint64_t x) const;

  /// Eq. 4.
  double objective(std::uint64_t x) const;

  /// Brute-force scan of all integer x in [0, c]; the discrete optimum.
  struct DiscreteOptimum {
    std::uint64_t x_star = 0;
    double ell_star = 0.0;
    double objective = 0.0;
  };
  DiscreteOptimum brute_force_optimum() const;

 private:
  SystemParams params_;
  popularity::ZipfDistribution zipf_;
  std::uint64_t routers_;
  std::uint64_t capacity_;
};

}  // namespace ccnopt::model
