// Parameter sweeps and stability analysis behind the paper's Figures 4-13
// and the "sensitive range" discussion of Section V-B.
#pragma once

#include <vector>

#include "ccnopt/common/error.hpp"
#include "ccnopt/model/optimizer.hpp"

namespace ccnopt::model {

/// One point of a sweep: the varied parameter value, the optimal strategy,
/// and both performance gains evaluated at it.
struct SweepPoint {
  double parameter = 0.0;
  double ell_star = 0.0;
  double origin_load_reduction = 0.0;   // G_O
  double routing_improvement = 0.0;     // G_R
};

/// Which knob a sweep varies (the with_* mutators of params.hpp).
enum class SweepParameter { kAlpha, kZipf, kRouters, kUnitCost, kGamma };

const char* to_string(SweepParameter parameter);

/// `base` with the swept parameter set to `value` (not validated).
SystemParams apply_sweep_parameter(const SystemParams& base,
                                   SweepParameter parameter, double value);

/// One grid point, evaluated exactly as the sweeps do. `valid` is false
/// when the mutated parameters fail validation (sweeps skip such values,
/// e.g. s = 1); a non-ok `status` carries an optimizer failure, which
/// aborts the enclosing sweep. `point` is meaningful only when `valid`
/// and `status.is_ok()`. Pure function of its arguments — safe to call
/// concurrently from runtime::SweepRunner workers.
struct SweepPointOutcome {
  bool valid = false;
  SweepPoint point;
  Status status;
};
SweepPointOutcome evaluate_sweep_point(const SystemParams& base,
                                       SweepParameter parameter, double value);

/// Ordered reduction of per-point outcomes into a sweep result: skips
/// invalid values, fails on the first (lowest-index) optimizer error, and
/// fails if no value was valid. Shared by the serial sweeps and the
/// parallel SweepRunner so both produce bit-identical results.
Expected<std::vector<SweepPoint>> reduce_sweep_outcomes(
    const std::vector<SweepPointOutcome>& outcomes);

/// Evaluates optimize() + gains at each value of the named parameter,
/// holding everything else in `base` fixed. Values outside the valid domain
/// (e.g. s = 1) are skipped. The sweep fails only if no value is valid.
Expected<std::vector<SweepPoint>> sweep(const SystemParams& base,
                                        SweepParameter parameter,
                                        const std::vector<double>& values);
Expected<std::vector<SweepPoint>> sweep_alpha(const SystemParams& base,
                                              const std::vector<double>& alphas);
Expected<std::vector<SweepPoint>> sweep_zipf(const SystemParams& base,
                                             const std::vector<double>& exponents);
Expected<std::vector<SweepPoint>> sweep_routers(const SystemParams& base,
                                                const std::vector<double>& ns);
Expected<std::vector<SweepPoint>> sweep_unit_cost(const SystemParams& base,
                                                  const std::vector<double>& ws);
Expected<std::vector<SweepPoint>> sweep_gamma(const SystemParams& base,
                                              const std::vector<double>& gammas);

/// Uniformly spaced values in [lo, hi] inclusive; count >= 2.
std::vector<double> linspace(double lo, double hi, int count);

/// The paper's "sensitive range" of a monotone l*(alpha) curve: the
/// parameter interval over which ell_star rises from `lo_level` to
/// `hi_level` (defaults 0.1 -> 0.9). Returns kFailedPrecondition when the
/// curve never reaches the levels.
struct SensitiveRange {
  double low = 0.0;
  double high = 0.0;
  double width() const { return high - low; }
};
Expected<SensitiveRange> sensitive_range(const std::vector<SweepPoint>& curve,
                                         double lo_level = 0.1,
                                         double hi_level = 0.9);

/// Maximum |d ell*/d parameter| along a sweep (finite differences); the
/// stability measure discussed in Sections I and V.
double max_sensitivity(const std::vector<SweepPoint>& curve);

}  // namespace ccnopt::model
