#include "ccnopt/model/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::model {

Status AdaptiveConfig::validate() const {
  if (catalog_size < 2) {
    return Status(ErrorCode::kInvalidArgument,
                  "adaptive: catalog_size must be >= 2");
  }
  if (epoch_requests < 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "adaptive: epoch_requests must be >= 1");
  }
  if (!(smoothing > 0.0 && smoothing <= 1.0)) {
    return Status(ErrorCode::kInvalidArgument,
                  "adaptive: smoothing must be in (0, 1]");
  }
  if (!(min_s > 0.0 && min_s < max_s && max_s < 2.0)) {
    return Status(ErrorCode::kInvalidArgument,
                  "adaptive: need 0 < min_s < max_s < 2");
  }
  if (!(singularity_margin > 0.0 && singularity_margin < 0.5)) {
    return Status(ErrorCode::kInvalidArgument,
                  "adaptive: singularity_margin must be in (0, 0.5)");
  }
  return Status::ok();
}

AdaptiveController::AdaptiveController(SystemParams initial,
                                       AdaptiveConfig config)
    : params_(std::move(initial)), config_(std::move(config)) {
  CCNOPT_EXPECTS(params_.validate().is_ok());
  CCNOPT_EXPECTS(config_.validate().is_ok());
  histogram_.assign(config_.catalog_size, 0);
}

void AdaptiveController::observe(std::uint64_t rank) {
  CCNOPT_EXPECTS(rank >= 1 && rank <= histogram_.size());
  ++histogram_[rank - 1];
  ++observed_;
}

double AdaptiveController::clamp_exponent(double s) const {
  s = std::clamp(s, config_.min_s, config_.max_s);
  // Nudge off the singular point (validate() rejects s = 1).
  if (std::abs(s - 1.0) < config_.singularity_margin) {
    s = (s < 1.0) ? 1.0 - config_.singularity_margin
                  : 1.0 + config_.singularity_margin;
  }
  return s;
}

Expected<AdaptiveController::EpochDecision> AdaptiveController::end_epoch() {
  const auto fit = config_.use_mle
                       ? popularity::fit_zipf_mle(histogram_)
                       : popularity::fit_zipf_loglog(histogram_);
  // The histogram is consumed either way: a failed epoch should not bleed
  // its few samples into the next one.
  std::fill(histogram_.begin(), histogram_.end(), 0);
  observed_ = 0;
  if (!fit) return fit.status();

  ++epoch_index_;
  EpochDecision decision;
  decision.epoch = epoch_index_;
  decision.estimated_s = fit->s;

  const double blended = (1.0 - config_.smoothing) * params_.s +
                         config_.smoothing * fit->s;
  params_.s = clamp_exponent(blended);
  decision.smoothed_s = params_.s;

  const auto strategy = optimize(params_);
  if (!strategy) return strategy.status();
  decision.ell_star = strategy->ell_star;
  decision.x_star = strategy->x_star;
  return decision;
}

}  // namespace ccnopt::model
