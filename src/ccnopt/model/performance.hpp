// The performance-cost model of Section III-B:
//   T(x)   — average latency of serving a request (Eq. 2)
//   W(x)   — coordination cost (Eq. 3, via CostModel)
//   T_w(x) — the convex combination alpha*T + (1-alpha)*W (Eq. 4)
// together with the analytic first and second derivatives used in the
// Appendix proof of Lemma 1.
#pragma once

#include "ccnopt/model/params.hpp"
#include "ccnopt/popularity/zipf.hpp"

namespace ccnopt::model {

class PerformanceModel {
 public:
  /// Requires params.validate().is_ok().
  explicit PerformanceModel(SystemParams params);

  const SystemParams& params() const { return params_; }

  /// The Zipf CDF F evaluated through the continuous approximation (Eq. 6).
  double popularity_cdf(double rank) const { return zipf_.cdf(rank); }

  /// Fraction of requests served by each latency tier at coordination
  /// amount x: local hit F(c-x), in-network hit F(c+(n-1)x) - F(c-x),
  /// origin 1 - F(c+(n-1)x).
  struct TierSplit {
    double local = 0.0;
    double network = 0.0;
    double origin = 0.0;
  };
  TierSplit tier_split(double x) const;

  /// Eq. 2: average latency at coordination amount x in [0, c].
  double routing_performance(double x) const;

  /// Eq. 3 (amortized): coordination cost at x.
  double coordination_cost(double x) const;

  /// Eq. 4: the combined objective.
  double objective(double x) const;

  /// Analytic dT_w/dx (Eq. 10 in the Appendix). x must be in [0, c); the
  /// derivative diverges to +inf as x -> c.
  double objective_derivative(double x) const;

  /// Analytic d^2T_w/dx^2; strictly positive on [0, c) under Lemma 1's
  /// conditions whenever alpha > 0.
  double objective_second_derivative(double x) const;

  /// Numerically verifies convexity by sampling the second derivative (and
  /// a finite-difference cross-check) on `samples` points of [0, c).
  /// Diagnostic used by the Lemma-1 property tests.
  bool is_convex(int samples = 64) const;

  /// T(0), the non-coordinated baseline of Section IV-E:
  /// ((N^{1-s} - c^{1-s}) d2 + (c^{1-s} - 1) d0) / (N^{1-s} - 1).
  double baseline_performance() const { return routing_performance(0.0); }

  // Memoized Zipf-CDF constants, computed once per model so solvers that
  // evaluate Lemma 2 / Eq. 7 repeatedly never re-run pow() on invariants.

  /// gamma * n^{1-s} — Lemma 2's coefficient "a".
  double lemma2_a() const { return gamma_n_pow_; }
  /// c^s, the capacity factor of Lemma 2's coefficient "b".
  double capacity_pow_s() const { return c_pow_s_; }
  /// (N^{1-s} - 1)/(1 - s), the integrated Zipf factor in "b".
  double zipf_integral_factor() const { return zipf_integral_factor_; }

 private:
  SystemParams params_;
  popularity::ContinuousZipf zipf_;
  double gamma_n_pow_ = 0.0;
  double c_pow_s_ = 0.0;
  double zipf_integral_factor_ = 0.0;
};

}  // namespace ccnopt::model
