// Robustness of the optimal strategy to parameter misestimation.
//
// A carrier provisions l* from *estimated* parameters; the traffic obeys
// the true ones. The regret of believing b when the truth is t is
//   R(b | t) = T_w^t(x*(b)) - T_w^t(x*(t))  >= 0,
// the extra objective paid for optimizing against the wrong belief. This
// quantifies the stability discussion of Sections I/V-B (how carefully
// alpha and s must be known) and motivates the adaptive controller: its
// per-epoch estimation error maps through these curves to a latency cost.
#pragma once

#include <vector>

#include "ccnopt/common/error.hpp"
#include "ccnopt/model/optimizer.hpp"

namespace ccnopt::model {

/// Regret of provisioning with belief `believed` when traffic follows
/// `actual`. The two must differ only in popularity/latency/cost fields,
/// not in structural ones (n, c); both must validate. Returns
/// {regret, relative_regret} where relative is against the true optimum.
struct Regret {
  double absolute = 0.0;  ///< T_w^t(x*(b)) - T_w^t(x*(t))
  double relative = 0.0;  ///< absolute / T_w^t(x*(t))
  double x_believed = 0.0;
  double x_true = 0.0;
};
Expected<Regret> misestimation_regret(const SystemParams& believed,
                                      const SystemParams& actual);

/// Regret curve for Zipf-exponent misestimation: the truth is `actual`;
/// beliefs scan `believed_s`. Invalid beliefs (s = 1) are skipped.
struct RegretPoint {
  double believed_parameter = 0.0;
  Regret regret;
};
Expected<std::vector<RegretPoint>> zipf_regret_curve(
    const SystemParams& actual, const std::vector<double>& believed_s);

/// Same for the tiered latency ratio gamma.
Expected<std::vector<RegretPoint>> gamma_regret_curve(
    const SystemParams& actual, const std::vector<double>& believed_gamma);

}  // namespace ccnopt::model
