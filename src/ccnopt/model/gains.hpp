// Performance gains of the optimal strategy (Section IV-E):
//   G_O — origin load reduction vs the non-coordinated baseline
//   G_R — routing performance improvement vs the non-coordinated baseline
#pragma once

#include "ccnopt/model/performance.hpp"

namespace ccnopt::model {

struct GainReport {
  /// Fraction of requests hitting the origin with the optimal strategy,
  /// 1 - F(c + (n-1) x*).
  double origin_load_optimal = 0.0;
  /// Fraction of requests hitting the origin non-coordinated, 1 - F(c).
  double origin_load_baseline = 0.0;
  /// G_O = 1 - origin_load_optimal / origin_load_baseline
  ///     = ((c+(n-1)x*)^{1-s} - c^{1-s}) / (N^{1-s} - c^{1-s}).
  double origin_load_reduction = 0.0;
  /// T(x*) and T(0).
  double routing_optimal = 0.0;
  double routing_baseline = 0.0;
  /// G_R = 1 - T(x*)/T(0).
  double routing_improvement = 0.0;
};

/// Evaluates both gains at coordinated amount `x_star` in [0, c].
GainReport compute_gains(const PerformanceModel& model, double x_star);

/// Section IV-E's closed form for G_O, used by tests to cross-check the
/// definition-based computation in compute_gains.
double origin_load_reduction_closed_form(const SystemParams& params,
                                         double x_star);

}  // namespace ccnopt::model
