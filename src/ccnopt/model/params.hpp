// System parameters of the performance-cost model (Section III).
//
// LatencyProfile holds the three latency tiers d0 < d1 <= d2 and the derived
// ratios (t1, t2 and the tiered latency ratio gamma of Section III-B).
// CostModel is the coordination cost W(x) = (w*n*x + w_hat)/amortization of
// Eq. 3, with the amortization normalization documented in DESIGN.md.
// SystemParams bundles everything Eq. 4 needs, with validation implementing
// Lemma 1's existence conditions.
#pragma once

#include "ccnopt/common/error.hpp"

namespace ccnopt::model {

/// The three-tier latency structure of Figure 2.
struct LatencyProfile {
  double d0 = 1.0;  ///< serving from the client's first-hop router
  double d1 = 2.0;  ///< serving from a peer router in the domain
  double d2 = 3.0;  ///< serving from the origin

  /// First-tier latency ratio t1 = d1/d0.
  double t1() const { return d1 / d0; }
  /// Second-tier latency ratio t2 = d2/d1.
  double t2() const { return d2 / d1; }
  /// Tiered latency ratio gamma = (d2 - d1)/(d1 - d0), the quantity Theorem 2
  /// shows is the only latency information the optimum depends on.
  double gamma() const { return (d2 - d1) / (d1 - d0); }

  /// Builds a profile from the quantities the paper parameterizes by:
  /// d0, the router separation d1 - d0, and gamma.
  static LatencyProfile from_gamma(double d0, double d1_minus_d0,
                                   double gamma);

  /// Checks d0 >= 0 and d0 < d1 <= d2 (Lemma 1's latency condition).
  Status validate() const;
};

/// Coordination cost model (Eq. 3), normalized per served request.
///
/// Eq. 3's W(x) = w*n*x + w_hat is the message cost of one coordination
/// epoch; Eq. 4 adds it to a per-request latency. The paper leaves the
/// common scale implicit; we expose it as `amortization`, the number of
/// requests one epoch's coordination cost is spread over (see DESIGN.md,
/// "Substitutions"). amortization = 1 recovers the raw Eq. 3.
struct CostModel {
  double unit_cost_w = 26.7;  ///< w: per content per router per epoch (ms)
  double fixed_cost = 0.0;    ///< w_hat: computation + enforcement (constant)
  double amortization = 1.0;  ///< requests per coordination epoch

  /// W(x) for a network of n routers.
  double total_cost(double x, double n) const {
    return (unit_cost_w * n * x + fixed_cost) / amortization;
  }
  /// w divided by the amortization; the quantity Lemma 2's b-coefficient
  /// actually consumes.
  double effective_unit_cost() const { return unit_cost_w / amortization; }

  /// Checks w > 0, w_hat >= 0, amortization > 0.
  Status validate() const;
};

/// Everything Eq. 4 needs. n and N are doubles because the analysis treats
/// them as continuous (Eq. 6); the simulator uses integral counterparts.
struct SystemParams {
  double alpha = 1.0;       ///< trade-off weight (1 = pure routing performance)
  double s = 0.8;           ///< Zipf exponent, (0,1) U (1,2)
  double n = 20.0;          ///< number of routers, > 1
  double catalog_n = 1e6;   ///< N, number of contents
  double capacity_c = 1e3;  ///< c, per-router storage in unit contents
  LatencyProfile latency;
  CostModel cost;

  /// Lemma 1's existence conditions: c > 0, N >> 1, n > 1,
  /// s in (0,2) \ {1}, d0 < d1 <= d2, alpha in [0,1], valid cost.
  Status validate() const;

  /// The Table IV default row (US-A): gamma = 5, s = 0.8, n = 20, N = 1e6,
  /// c = 1e3, w = 26.7 ms, d1 - d0 = 2.2842 hops, with the amortization
  /// calibrated by `calibrate_amortization`.
  static SystemParams paper_defaults();
};

/// Calibrates CostModel::amortization so that Lemma 2's cost coefficient b
/// equals the latency coefficient a at alpha = 0.5 — the single degree of
/// freedom the paper leaves implicit when it plots Figures 4-13 with both
/// objective terms on a common scale. Requires valid params (ignoring any
/// current amortization) and returns the epoch size in requests.
double calibrate_amortization(const SystemParams& params);

/// paper_defaults() with one field overridden; small helpers used
/// throughout the experiments to express Table IV rows.
SystemParams with_alpha(SystemParams p, double alpha);
SystemParams with_zipf(SystemParams p, double s);
SystemParams with_routers(SystemParams p, double n);
SystemParams with_unit_cost(SystemParams p, double w);
SystemParams with_gamma(SystemParams p, double gamma);

}  // namespace ccnopt::model
