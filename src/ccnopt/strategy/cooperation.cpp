#include "ccnopt/strategy/cooperation.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::strategy {

PlacementPlan DegreeWeightedPlacement::provision(
    const PlacementContext& context) const {
  const std::vector<topology::NodeId>& alive = context.alive_participants;
  CCNOPT_EXPECTS(!alive.empty());
  CCNOPT_EXPECTS(context.graph != nullptr);
  std::size_t min_capacity = SIZE_MAX;
  for (const topology::NodeId id : alive) {
    min_capacity = std::min(min_capacity, context.routers[id].capacity);
  }
  // Same feasibility rule as coordinated-split, so the two strategies are
  // comparable at equal x: the pool totals x per alive participant.
  CCNOPT_EXPECTS(context.requested_x <= min_capacity);
  const std::uint64_t pool = static_cast<std::uint64_t>(context.requested_x) *
                             static_cast<std::uint64_t>(alive.size());

  PlacementPlan plan;
  plan.coordinated_capacity.assign(context.routers.size(), 0);
  plan.assigned.resize(context.routers.size());
  if (pool == 0) return plan;

  // Largest-remainder apportionment of the pool by node degree, capped at
  // each participant's capacity. The cap can displace shares, so leftover
  // slots cascade to the highest-remainder participants with spare room;
  // pool <= n * min_capacity <= sum of capacities guarantees convergence.
  const std::size_t n = alive.size();
  std::vector<std::uint64_t> weight(n, 1);
  std::uint64_t total_weight = 0;
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = std::max<std::uint64_t>(
        1, context.graph->neighbors(alive[i]).size());
    total_weight += weight[i];
  }
  std::vector<std::size_t> counts(n, 0);
  std::vector<std::uint64_t> remainder(n, 0);
  std::uint64_t handed_out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ideal = pool * weight[i];
    const std::size_t capacity = context.routers[alive[i]].capacity;
    counts[i] = std::min<std::uint64_t>(ideal / total_weight, capacity);
    remainder[i] = ideal % total_weight;
    handed_out += counts[i];
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return remainder[a] > remainder[b];
                   });
  while (handed_out < pool) {
    bool progressed = false;
    for (const std::size_t i : order) {
      if (handed_out == pool) break;
      if (counts[i] >= context.routers[alive[i]].capacity) continue;
      ++counts[i];
      ++handed_out;
      progressed = true;
    }
    CCNOPT_ASSERT(progressed);
  }

  // Heterogeneous quotas leave heterogeneous local partitions; the pool
  // covers the ranks just past the network-wide local coverage
  // L = max_i (c_i - x_i), exactly like model/heterogeneous.hpp.
  std::size_t coverage_l = 0;
  for (std::size_t i = 0; i < n; ++i) {
    coverage_l =
        std::max(coverage_l, context.routers[alive[i]].capacity - counts[i]);
  }
  const Coordinator alive_coordinator(alive);
  plan.assignment = alive_coordinator.assign_weighted(
      static_cast<cache::ContentId>(coverage_l) + 1, counts);
  plan.messages = plan.assignment.messages;
  plan.provisioned_x = 0;  // heterogeneous: no single x
  for (std::size_t i = 0; i < n; ++i) {
    plan.coordinated_capacity[alive[i]] = counts[i];
    plan.assigned[alive[i]] = plan.assignment.per_router[i];
  }
  return plan;
}

}  // namespace ccnopt::strategy
