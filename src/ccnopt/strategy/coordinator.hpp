// The conceptually-centralized coordinator of Section III-A: decides which
// contents each participating router's coordinated partition holds, and
// accounts for the messages that decision costs (Eq. 3's w * n * x
// communication term: one assignment message per coordinated content per
// router-epoch).
//
// Formerly sim/coordinator.{hpp,cpp}; it moved into the strategy layer so
// placement strategies (strategy/placement.hpp) can plan epochs without a
// dependency cycle on the data plane. The metric names it emits are
// unchanged ("sim.coordinator.*") so metric exports stay byte-identical.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ccnopt/cache/policy.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::strategy {

class Coordinator {
 public:
  /// `participants` are the routers with non-zero storage, in a fixed order
  /// (assignment is deterministic). Requires at least one participant.
  explicit Coordinator(std::vector<topology::NodeId> participants);

  const std::vector<topology::NodeId>& participants() const {
    return participants_;
  }

  /// One epoch's placement: the contiguous rank range
  /// [first_rank, first_rank + per_router_x * |participants|) distributed
  /// round-robin, `per_router_x` contents per router.
  struct Assignment {
    /// content -> owning router (the lookup the data plane uses).
    std::unordered_map<cache::ContentId, topology::NodeId> owner;
    /// participant index -> its assigned contents.
    std::vector<std::vector<cache::ContentId>> per_router;
    /// Messages this epoch cost: per_router_x per participant (Eq. 3's
    /// n * x communication term).
    std::uint64_t messages = 0;
  };
  Assignment assign(cache::ContentId first_rank,
                    std::size_t per_router_x) const;

  /// Heterogeneous epoch: participant i receives exactly counts[i]
  /// contents from the contiguous range starting at first_rank, dealt
  /// round-robin among routers with remaining quota so popular ranks
  /// spread evenly. counts.size() must equal the participant count.
  Assignment assign_weighted(cache::ContentId first_rank,
                             const std::vector<std::size_t>& counts) const;

 private:
  std::vector<topology::NodeId> participants_;
};

}  // namespace ccnopt::strategy
