#include "ccnopt/strategy/registry.hpp"

#include <algorithm>
#include <memory>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/strategy/cooperation.hpp"
#include "ccnopt/strategy/coordinated_split.hpp"
#include "ccnopt/strategy/en_route.hpp"

namespace ccnopt::strategy {
namespace {

StrategyBundle make_owner_table_bundle(
    std::string name, std::string description,
    std::unique_ptr<PlacementStrategy> placement) {
  StrategyBundle bundle;
  bundle.name = std::move(name);
  bundle.description = std::move(description);
  bundle.placement = std::move(placement);
  bundle.forwarding = std::make_unique<OwnerTableForwarding>();
  return bundle;
}

StrategyBundle make_en_route_bundle(const char* name, std::string description,
                                    InsertionRule rule) {
  StrategyBundle bundle;
  bundle.name = name;
  bundle.description = std::move(description);
  bundle.placement = std::make_unique<EnRoutePlacement>(name, rule);
  bundle.forwarding = std::make_unique<OnPathForwarding>();
  return bundle;
}

/// Fixed admission probability of the `prob` baseline; 0.5 is the midpoint
/// commonly used as the fixed-p reference in en-route caching studies.
constexpr double kFixedProbability = 0.5;

}  // namespace

StrategyRegistry::StrategyRegistry() {
  register_strategy(
      "coordinated-split",
      "paper's scheme: top c-x ranks local, next n*x ranks coordinated "
      "round-robin (Sec. III-A)",
      [] {
        return make_owner_table_bundle(
            "coordinated-split",
            "paper's scheme: top c-x ranks local, next n*x ranks coordinated "
            "round-robin (Sec. III-A)",
            std::make_unique<CoordinatedSplitPlacement>());
      });
  register_strategy(
      "coop-degree",
      "topology-aware cooperation: degree-weighted coordinated quotas "
      "(arXiv:1312.0133 spirit)",
      [] {
        return make_owner_table_bundle(
            "coop-degree",
            "topology-aware cooperation: degree-weighted coordinated quotas "
            "(arXiv:1312.0133 spirit)",
            std::make_unique<DegreeWeightedPlacement>());
      });
  register_strategy(
      "lce", "leave copy everywhere: en-route admission at every miss-path "
             "router",
      [] {
        return make_en_route_bundle(
            "lce",
            "leave copy everywhere: en-route admission at every miss-path "
            "router",
            InsertionRule{InsertionKind::kEveryHop, 1.0, false});
      });
  register_strategy(
      "lcd", "leave copy down: admit one hop below the serving point per "
             "miss",
      [] {
        return make_en_route_bundle(
            "lcd",
            "leave copy down: admit one hop below the serving point per miss",
            InsertionRule{InsertionKind::kOneHopDown, 1.0, false});
      });
  register_strategy(
      "prob", "probabilistic en-route caching, fixed p = 0.5",
      [] {
        return make_en_route_bundle(
            "prob", "probabilistic en-route caching, fixed p = 0.5",
            InsertionRule{InsertionKind::kProbabilistic, kFixedProbability,
                          false});
      });
  register_strategy(
      "prob-cap",
      "capacity-weighted probabilistic caching (ProbCache spirit): "
      "p_i = c_i / sum of miss-path capacities",
      [] {
        return make_en_route_bundle(
            "prob-cap",
            "capacity-weighted probabilistic caching (ProbCache spirit): "
            "p_i = c_i / sum of miss-path capacities",
            InsertionRule{InsertionKind::kProbabilistic, 1.0, true});
      });
}

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry registry;
  return registry;
}

void StrategyRegistry::register_strategy(std::string name,
                                         std::string description,
                                         Factory factory) {
  CCNOPT_EXPECTS(!name.empty());
  CCNOPT_EXPECTS(factory != nullptr);
  const std::lock_guard<std::mutex> lock(mutex_);
  Entry entry{std::move(description), std::move(factory)};
  const auto pos = std::lower_bound(
      entries_.begin(), entries_.end(), name,
      [](const auto& existing, const std::string& key) {
        return existing.first < key;
      });
  if (pos != entries_.end() && pos->first == name) {
    pos->second = std::move(entry);
    return;
  }
  entries_.emplace(pos, std::move(name), std::move(entry));
}

Expected<StrategyBundle> StrategyRegistry::make(const std::string& name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const auto& existing, const std::string& key) {
          return existing.first < key;
        });
    if (pos == entries_.end() || pos->first != name) {
      std::string known;
      for (const auto& [known_name, entry] : entries_) {
        (void)entry;
        if (!known.empty()) known += ", ";
        known += known_name;
      }
      return Status(ErrorCode::kNotFound, "unknown strategy '" + name +
                                              "' (registered: " + known + ")");
    }
    factory = pos->second.factory;
  }
  StrategyBundle bundle = factory();
  CCNOPT_ASSERT(bundle.name == name);
  CCNOPT_ASSERT(bundle.placement != nullptr && bundle.forwarding != nullptr);
  return bundle;
}

std::vector<StrategyRegistry::Info> StrategyRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Info> infos;
  infos.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    infos.push_back(Info{name, entry.description});
  }
  return infos;
}

std::vector<std::string> StrategyRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

Expected<StrategyBundle> make_strategy(const std::string& name) {
  return StrategyRegistry::instance().make(name);
}

std::vector<std::string> strategy_names() {
  return StrategyRegistry::instance().names();
}

}  // namespace ccnopt::strategy
