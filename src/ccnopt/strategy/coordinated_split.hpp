// The paper's scheme (Section III-A), lifted verbatim out of
// sim/network.cpp's provision(): every participant keeps the top c - x
// popularity ranks locally and contributes x slots to a coordinated pool
// covering the next n * x ranks, dealt round-robin by the Coordinator.
// Its plan is byte-identical to the pre-extraction coordinator path —
// tests/test_strategy_ab_identity.cpp enforces that on whole simulations.
#pragma once

#include "ccnopt/strategy/strategy.hpp"

namespace ccnopt::strategy {

class CoordinatedSplitPlacement final : public PlacementStrategy {
 public:
  const char* name() const override { return "coordinated-split"; }
  PlacementPlan provision(const PlacementContext& context) const override;
};

}  // namespace ccnopt::strategy
