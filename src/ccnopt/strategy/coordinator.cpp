#include "ccnopt/strategy/coordinator.hpp"

#include "ccnopt/common/assert.hpp"
#include "ccnopt/obs/registry.hpp"

namespace ccnopt::strategy {
namespace {

// Interned once per process; handles survive registry reset(). The names
// keep their historical "sim.coordinator." prefix: metric exports are part
// of the byte-identity contract with the seed coordinator.
struct CoordinatorMetricHandles {
  obs::MetricsRegistry::CounterHandle assignments;
  obs::MetricsRegistry::CounterHandle placements;

  static const CoordinatorMetricHandles& get() {
    static const CoordinatorMetricHandles handles = [] {
      obs::MetricsRegistry& registry = obs::metrics();
      return CoordinatorMetricHandles{
          registry.counter_handle("sim.coordinator.assignments"),
          registry.counter_handle("sim.coordinator.placements"),
      };
    }();
    return handles;
  }
};

}  // namespace

Coordinator::Coordinator(std::vector<topology::NodeId> participants)
    : participants_(std::move(participants)) {
  CCNOPT_EXPECTS(!participants_.empty());
}

Coordinator::Assignment Coordinator::assign(cache::ContentId first_rank,
                                            std::size_t per_router_x) const {
  CCNOPT_EXPECTS(first_rank >= 1);
  Assignment assignment;
  const std::size_t n = participants_.size();
  assignment.per_router.resize(n);
  const std::uint64_t total =
      static_cast<std::uint64_t>(per_router_x) * static_cast<std::uint64_t>(n);
  assignment.owner.reserve(total);
  for (std::uint64_t offset = 0; offset < total; ++offset) {
    const cache::ContentId content = first_rank + offset;
    const std::size_t router_index = offset % n;
    assignment.owner.emplace(content, participants_[router_index]);
    assignment.per_router[router_index].push_back(content);
  }
  assignment.messages = total;  // one placement message per content
  const CoordinatorMetricHandles& handles = CoordinatorMetricHandles::get();
  obs::metrics().incr(handles.assignments);
  obs::metrics().incr(handles.placements, total);
  return assignment;
}

Coordinator::Assignment Coordinator::assign_weighted(
    cache::ContentId first_rank, const std::vector<std::size_t>& counts) const {
  CCNOPT_EXPECTS(first_rank >= 1);
  CCNOPT_EXPECTS(counts.size() == participants_.size());
  Assignment assignment;
  const std::size_t n = participants_.size();
  assignment.per_router.resize(n);
  std::uint64_t total = 0;
  for (const std::size_t count : counts) total += count;
  assignment.owner.reserve(total);

  std::vector<std::size_t> remaining = counts;
  cache::ContentId next_content = first_rank;
  std::size_t cursor = 0;
  for (std::uint64_t placed = 0; placed < total; ++placed) {
    while (remaining[cursor] == 0) cursor = (cursor + 1) % n;
    assignment.owner.emplace(next_content, participants_[cursor]);
    assignment.per_router[cursor].push_back(next_content);
    --remaining[cursor];
    ++next_content;
    cursor = (cursor + 1) % n;
  }
  assignment.messages = total;
  const CoordinatorMetricHandles& handles = CoordinatorMetricHandles::get();
  obs::metrics().incr(handles.assignments);
  obs::metrics().incr(handles.placements, total);
  return assignment;
}

}  // namespace ccnopt::strategy
