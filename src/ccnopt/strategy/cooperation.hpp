// Topology-aware cooperation in the spirit of Wang et al. (arXiv:1312.0133,
// "Design and Evaluation of the Optimal Cache Allocation for Content-Centric
// Networking"): routers that sit on more paths should hold more of the
// shared pool. Here the per-router coordinated quota is apportioned by node
// degree (the cheap centrality proxy that paper found competitive), then
// placed through the same rank-interval coordinator as the paper's scheme
// so the owner-table data plane is reused unchanged.
#pragma once

#include "ccnopt/strategy/strategy.hpp"

namespace ccnopt::strategy {

class DegreeWeightedPlacement final : public PlacementStrategy {
 public:
  const char* name() const override { return "coop-degree"; }
  PlacementPlan provision(const PlacementContext& context) const override;
};

}  // namespace ccnopt::strategy
