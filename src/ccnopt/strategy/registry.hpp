// String-keyed strategy registry: the single place where strategy names
// resolve to StrategyBundle factories. The CLI's --strategy flag, the
// ablation bench, and the arena driver all enumerate from here, so adding
// a strategy means registering it once (builtins self-register lazily).
#pragma once

#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "ccnopt/common/error.hpp"
#include "ccnopt/strategy/strategy.hpp"

namespace ccnopt::strategy {

class StrategyRegistry {
 public:
  using Factory = std::function<StrategyBundle()>;

  /// The process-wide registry, with builtins already registered.
  static StrategyRegistry& instance();

  /// Registers (or replaces) a named strategy. The factory must produce a
  /// bundle whose `name` matches `name`. Thread-safe.
  void register_strategy(std::string name, std::string description,
                         Factory factory);

  /// Builds a fresh bundle; kNotFound lists every registered name in the
  /// message so callers can fail with a helpful error. Thread-safe.
  Expected<StrategyBundle> make(const std::string& name) const;

  struct Info {
    std::string name;
    std::string description;
  };
  /// All registered strategies, sorted by name. Thread-safe.
  std::vector<Info> list() const;
  std::vector<std::string> names() const;

 private:
  StrategyRegistry();

  struct Entry {
    std::string description;
    Factory factory;
  };
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, Entry>> entries_;  // sorted by name
};

/// Shorthand for StrategyRegistry::instance().make(name).
Expected<StrategyBundle> make_strategy(const std::string& name);
/// Shorthand for StrategyRegistry::instance().names().
std::vector<std::string> strategy_names();

}  // namespace ccnopt::strategy
