// Pluggable caching strategies: who places what where (PlacementStrategy,
// consulted once per provision epoch) and how requests travel and seed
// copies (ForwardingStrategy + the POD DataPlane descriptor the data plane
// branches on per request).
//
// Hot-path contract: virtual calls happen only at provision/bind time. The
// per-request serve loop reads the strategy through DataPlane — two enums
// and two scalars — so the batched replay engine of sim/simulation.cpp
// keeps its throughput regardless of which strategy is bound.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ccnopt/cache/policy.hpp"
#include "ccnopt/strategy/coordinator.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::strategy {

/// How a request locates a non-local copy.
enum class ForwardingMode {
  /// Consult the coordinator's owner table (the paper's mid tier), falling
  /// back to the origin. Requires a PlacementPlan with an assignment.
  kOwnerTable,
  /// Walk the shortest path toward the content's origin gateway, checking
  /// each en-route store; copies are seeded on the miss path according to
  /// the placement's InsertionRule.
  kOnPath,
};

const char* to_string(ForwardingMode mode);

/// Where an on-path strategy leaves copies after a non-local hit/fetch.
enum class InsertionKind {
  kFirstHopOnly,   ///< only the requesting router admits (default CCN edge)
  kEveryHop,       ///< LCE: every router on the miss path admits
  kOneHopDown,     ///< LCD: only the router one hop below the serving point
  kProbabilistic,  ///< each miss-path router admits with probability p
};

const char* to_string(InsertionKind kind);

struct InsertionRule {
  InsertionKind kind = InsertionKind::kFirstHopOnly;
  /// Base admission probability for kProbabilistic (ignored otherwise).
  double p = 1.0;
  /// ProbCache-style weighting: scale p by capacity_i / sum of capacities
  /// along the miss path, so the expected copies per path is ~p.
  bool capacity_weighted = false;
};

/// The complete per-request contract between a bound strategy and the data
/// plane. Plain data: cheap to copy, branch-predictable to read.
struct DataPlane {
  ForwardingMode forwarding = ForwardingMode::kOwnerTable;
  InsertionRule insertion;
};

/// One router as the placement layer sees it.
struct RouterInfo {
  topology::NodeId id = 0;
  std::size_t capacity = 0;
  bool alive = true;
};

/// Everything a PlacementStrategy may consult when planning an epoch.
struct PlacementContext {
  const topology::Graph* graph = nullptr;
  /// Dense by node id (size = node_count).
  std::vector<RouterInfo> routers;
  /// Routers with capacity > 0 that have not failed, in id order — the
  /// coordinator's participant set for this epoch.
  std::vector<topology::NodeId> alive_participants;
  std::uint64_t catalog_size = 0;
  /// The x the caller asked for (per-router coordinated amount).
  std::size_t requested_x = 0;
  std::uint64_t seed = 0;
};

/// One epoch's plan: the coordinator assignment (may be empty for
/// uncoordinated strategies) plus the dense per-node store shape.
struct PlacementPlan {
  Coordinator::Assignment assignment;
  /// Coordinated partition size per node (dense by id; 0 for non-alive or
  /// uncoordinated nodes).
  std::vector<std::size_t> coordinated_capacity;
  /// Contents pinned into each node's coordinated partition (dense by id).
  std::vector<std::vector<cache::ContentId>> assigned;
  /// Coordination messages this epoch cost (Eq. 3's communication term).
  std::uint64_t messages = 0;
  /// The homogeneous x actually provisioned (0 for heterogeneous or
  /// uncoordinated plans) — reported by CcnNetwork::provisioned_x().
  std::size_t provisioned_x = 0;
};

/// Decides, once per provision epoch, what every router's coordinated
/// partition holds. Implementations must be deterministic in the context.
class PlacementStrategy {
 public:
  virtual ~PlacementStrategy() = default;
  virtual const char* name() const = 0;
  virtual PlacementPlan provision(const PlacementContext& context) const = 0;
  /// The en-route admission rule the data plane applies on miss paths
  /// (meaningful for kOnPath forwarding; ignored for kOwnerTable).
  virtual InsertionRule insertion_rule() const { return InsertionRule{}; }
};

/// Names the forwarding discipline requests use under this strategy.
class ForwardingStrategy {
 public:
  virtual ~ForwardingStrategy() = default;
  virtual const char* name() const = 0;
  virtual ForwardingMode mode() const = 0;
};

class OwnerTableForwarding final : public ForwardingStrategy {
 public:
  const char* name() const override { return "owner-table"; }
  ForwardingMode mode() const override { return ForwardingMode::kOwnerTable; }
};

class OnPathForwarding final : public ForwardingStrategy {
 public:
  const char* name() const override { return "on-path"; }
  ForwardingMode mode() const override { return ForwardingMode::kOnPath; }
};

/// A named, ready-to-bind strategy pair as produced by the registry.
struct StrategyBundle {
  std::string name;
  std::string description;
  std::unique_ptr<PlacementStrategy> placement;
  std::unique_ptr<ForwardingStrategy> forwarding;

  /// The per-request descriptor the data plane caches at bind time.
  DataPlane data_plane() const {
    return DataPlane{forwarding->mode(), placement->insertion_rule()};
  }
};

}  // namespace ccnopt::strategy
