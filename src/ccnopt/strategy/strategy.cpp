#include "ccnopt/strategy/strategy.hpp"

namespace ccnopt::strategy {

const char* to_string(ForwardingMode mode) {
  switch (mode) {
    case ForwardingMode::kOwnerTable:
      return "owner-table";
    case ForwardingMode::kOnPath:
      return "on-path";
  }
  return "unknown";
}

const char* to_string(InsertionKind kind) {
  switch (kind) {
    case InsertionKind::kFirstHopOnly:
      return "first-hop-only";
    case InsertionKind::kEveryHop:
      return "every-hop";
    case InsertionKind::kOneHopDown:
      return "one-hop-down";
    case InsertionKind::kProbabilistic:
      return "probabilistic";
  }
  return "unknown";
}

}  // namespace ccnopt::strategy
