#include "ccnopt/strategy/en_route.hpp"

namespace ccnopt::strategy {

PlacementPlan EnRoutePlacement::provision(
    const PlacementContext& context) const {
  // No coordinated partitions and no control-plane traffic: every router's
  // full capacity is its dynamic local partition, populated purely by the
  // en-route admissions the InsertionRule dictates.
  PlacementPlan plan;
  plan.coordinated_capacity.assign(context.routers.size(), 0);
  plan.assigned.resize(context.routers.size());
  plan.messages = 0;
  plan.provisioned_x = 0;
  return plan;
}

}  // namespace ccnopt::strategy
