#include "ccnopt/strategy/coordinated_split.hpp"

#include <algorithm>
#include <cstdint>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::strategy {

PlacementPlan CoordinatedSplitPlacement::provision(
    const PlacementContext& context) const {
  // Mirrors the seed CcnNetwork::provision() step for step: the coordinated
  // pool spans the surviving participants only (re-provisioning after
  // failures is the repair step), and x is clamped to the smallest alive
  // participant so the rank ranges line up with the homogeneous model.
  const std::vector<topology::NodeId>& alive = context.alive_participants;
  CCNOPT_EXPECTS(!alive.empty());
  std::size_t min_capacity = SIZE_MAX;
  for (const topology::NodeId id : alive) {
    min_capacity = std::min(min_capacity, context.routers[id].capacity);
  }
  CCNOPT_EXPECTS(context.requested_x <= min_capacity);

  const cache::ContentId first_coordinated_rank =
      static_cast<cache::ContentId>(min_capacity - context.requested_x) + 1;
  const Coordinator alive_coordinator(alive);

  PlacementPlan plan;
  plan.assignment =
      alive_coordinator.assign(first_coordinated_rank, context.requested_x);
  plan.messages = plan.assignment.messages;
  plan.provisioned_x = context.requested_x;
  plan.coordinated_capacity.assign(context.routers.size(), 0);
  plan.assigned.resize(context.routers.size());
  std::size_t alive_index = 0;
  for (const RouterInfo& router : context.routers) {
    const bool participates = router.capacity > 0 && router.alive;
    if (!participates) continue;
    plan.coordinated_capacity[router.id] = context.requested_x;
    plan.assigned[router.id] = plan.assignment.per_router[alive_index];
    ++alive_index;
  }
  return plan;
}

}  // namespace ccnopt::strategy
