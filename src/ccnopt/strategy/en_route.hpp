// Uncoordinated en-route caching baselines: LCE, LCD, and probabilistic
// admission (fixed-p and ProbCache-style capacity-weighted). None of them
// provision a coordinated partition — all caching happens on the miss path
// under kOnPath forwarding, driven by the strategy's InsertionRule.
#pragma once

#include "ccnopt/strategy/strategy.hpp"

namespace ccnopt::strategy {

/// Shared placement for every en-route baseline: the whole capacity is the
/// local (dynamic) partition, zero coordination messages; behavior differs
/// only in the InsertionRule the data plane applies.
class EnRoutePlacement final : public PlacementStrategy {
 public:
  EnRoutePlacement(const char* name, InsertionRule rule)
      : name_(name), rule_(rule) {}

  const char* name() const override { return name_; }
  PlacementPlan provision(const PlacementContext& context) const override;
  InsertionRule insertion_rule() const override { return rule_; }

 private:
  const char* name_;
  InsertionRule rule_;
};

}  // namespace ccnopt::strategy
