// Head-to-head strategy arena: every registered caching strategy runs the
// same seeded workload on every topology in the roster, producing a
// cells = strategies x topologies comparison of hit ratio, latency tiers,
// origin load and coordination messages. Exported as the machine-readable
// `ccnopt-arena-v1` JSON/CSV (validated by tools/check_bench_json.py) and
// as aligned console tables; driven by bench/bench_arena.cpp.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ccnopt/obs/timeline.hpp"
#include "ccnopt/obs/topo.hpp"
#include "ccnopt/sim/simulation.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::runtime {
class ThreadPool;
}

namespace ccnopt::experiments {

struct ArenaOptions {
  /// Strategy names to race; empty = every registered strategy. Unknown
  /// names are a precondition violation — validate against
  /// strategy::strategy_names() before calling run_arena.
  std::vector<std::string> strategies;
  /// Topology roster; empty = default_arena_topologies(seed).
  std::vector<topology::Graph> topologies;
  std::uint64_t catalog_size = 20000;
  std::size_t capacity_c = 200;
  /// Per-router coordinated amount offered to each strategy (uncoordinated
  /// strategies ignore it; coordinated ones split capacity as c - x / x).
  std::size_t coordinated_x = 100;
  double zipf_s = 0.8;
  std::uint64_t warmup_requests = 100000;
  std::uint64_t measured_requests = 100000;
  sim::LocalStoreMode local_mode = sim::LocalStoreMode::kLru;
  /// Every cell of one arena run uses this same seed, so strategies face
  /// identical request sequences per topology (paired comparison).
  std::uint64_t seed = 42;
  /// Detected-convergence mode: instead of the hard-coded warmup/measured
  /// split, each cell runs its whole request budget (warmup + measured)
  /// through sim::run_to_steady_state and reports the post-convergence
  /// epochs only, with per-cell convergence columns. Off by default so the
  /// fixed-split semantics stay available for A/B comparisons;
  /// bench_arena turns it on.
  bool detect_steady_state = false;
  /// Requests per timeline epoch in detection mode; 0 = total/64.
  std::uint64_t timeline_epoch = 0;
  /// Convergence tolerance of the per-epoch origin-load series.
  obs::SteadyStateOptions steady_options;
};

struct ArenaCell {
  std::string strategy;
  std::string topology;
  std::size_t routers = 0;
  sim::SimReport report;
  /// Detection-mode fields (all zero when ArenaOptions::detect_steady_state
  /// is off): whether the origin-load series converged, the first measured
  /// epoch, and the number of requests discarded as detected warmup.
  bool converged = false;
  std::uint64_t steady_state_epoch = 0;
  std::uint64_t steady_state_requests = 0;
  /// Topology-resolved summary of the cell's run (every cell runs with
  /// SimConfig::record_topo): how many copies the strategy's insertion
  /// rule actually placed, where along the delivery path it put them
  /// (placement_depths[d] = copies d hops from the requester; LCE smears
  /// mass across the path, LCD concentrates it one hop below the serving
  /// point), and how hot the busiest link ran.
  std::uint64_t placements = 0;
  double mean_placement_depth = 0.0;
  std::vector<std::uint64_t> placement_depths;
  std::uint64_t link_traversals = 0;
  std::uint64_t max_link_load = 0;
  /// The cell's full flight recorder, for per-cell ccnopt-topo-v1 exports
  /// (bench_arena writes one TOPO_arena_* file per cell; render_topo.py
  /// turns them into heatmaps).
  obs::TopoRecorder topo;
};

struct ArenaResult {
  ArenaOptions options;            // resolved (strategies never empty)
  std::vector<std::string> strategies;
  std::vector<std::string> topologies;
  /// Topology-major: cells[t * strategies.size() + s].
  std::vector<ArenaCell> cells;
};

/// The default roster: the four embedded datasets (Table II) plus a 6x6
/// grid and a 32-node Waxman graph drawn from `seed`, so the comparison
/// covers both real backbones and synthetic extremes.
std::vector<topology::Graph> default_arena_topologies(std::uint64_t seed);

/// Runs the full cross product; with a pool, cells run in parallel
/// (parallel_map keeps cell order deterministic and each cell is an
/// independent Simulation, so results match the serial run exactly).
ArenaResult run_arena(const ArenaOptions& options,
                      runtime::ThreadPool* pool = nullptr);

/// Per-topology comparison tables plus a cross-topology origin-load
/// summary, rendered with TextTable alignment.
void print_arena_tables(const ArenaResult& result, std::ostream& out);

/// Machine-readable export, schema "ccnopt-arena-v1".
void write_arena_json(const ArenaResult& result, std::ostream& out);
void write_arena_csv(const ArenaResult& result, std::ostream& out);

/// Publishes per-cell gauges "arena.<topology>.<strategy>.<metric>" into
/// obs::metrics(), so arena outcomes ride the standard registry exports.
void record_arena_metrics(const ArenaResult& result);

}  // namespace ccnopt::experiments
