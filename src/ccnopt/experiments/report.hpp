// Rendering of figure sweeps as aligned console tables and CSV — the
// bench binaries' output layer.
#pragma once

#include <ostream>

#include "ccnopt/experiments/figures.hpp"

namespace ccnopt::experiments {

/// Prints one metric of a figure sweep as a table: first column the swept
/// parameter, one column per series. Rows are subsampled to at most
/// `max_rows` so figure benches stay readable.
void print_series_table(const FigureData& data, Metric metric,
                        std::ostream& out, int max_rows = 25);

/// Full-resolution CSV: parameter, series label, ell_star, G_O, G_R.
void write_series_csv(const FigureData& data, std::ostream& out);

}  // namespace ccnopt::experiments
