#include "ccnopt/experiments/arena.hpp"

#include <algorithm>
#include <ostream>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/obs/export.hpp"
#include "ccnopt/obs/registry.hpp"
#include "ccnopt/runtime/parallel.hpp"
#include "ccnopt/sim/steady_state.hpp"
#include "ccnopt/strategy/registry.hpp"
#include "ccnopt/topology/datasets.hpp"
#include "ccnopt/topology/generators.hpp"

namespace ccnopt::experiments {
namespace {

ArenaCell run_cell(const ArenaOptions& options, const topology::Graph& graph,
                   const std::string& strategy) {
  sim::SimConfig config;
  config.network.catalog_size = options.catalog_size;
  config.network.capacity_c = options.capacity_c;
  config.network.local_mode = options.local_mode;
  config.network.strategy = strategy;
  config.network.seed = options.seed;
  config.coordinated_x = options.coordinated_x;
  config.zipf_s = options.zipf_s;
  config.warmup_requests = options.warmup_requests;
  config.measured_requests = options.measured_requests;
  config.seed = options.seed;
  config.record_topo = true;

  ArenaCell cell;
  cell.strategy = strategy;
  cell.topology = graph.name();
  cell.routers = graph.node_count();
  const auto summarize_topo = [&cell](const obs::TopoRecorder& topo) {
    cell.placements = topo.total_placements();
    cell.mean_placement_depth = topo.mean_placement_depth();
    cell.placement_depths = topo.placement_depths();
    cell.link_traversals = topo.total_link_traversals();
    cell.max_link_load = topo.max_link_load();
    cell.topo = topo;
  };
  if (options.detect_steady_state) {
    config.timeline_epoch = options.timeline_epoch;
    const sim::SteadyStateRun run = sim::run_to_steady_state(
        graph, std::move(config), options.steady_options);
    cell.report = run.report;
    cell.converged = run.steady.converged;
    cell.steady_state_epoch = run.measured_from_epoch;
    cell.steady_state_requests = run.steady_state_requests;
    summarize_topo(run.topo);
  } else {
    sim::Simulation simulation(graph, std::move(config));
    cell.report = simulation.run();
    summarize_topo(simulation.topo());
  }
  return cell;
}

}  // namespace

std::vector<topology::Graph> default_arena_topologies(std::uint64_t seed) {
  std::vector<topology::Graph> roster = topology::all_datasets();
  roster.push_back(topology::make_grid(6, 6));
  Rng rng(derive_seed(seed, 0xA12E7A));
  roster.push_back(topology::make_waxman(32, rng));
  return roster;
}

ArenaResult run_arena(const ArenaOptions& options,
                      runtime::ThreadPool* pool) {
  ArenaResult result;
  result.options = options;
  result.strategies = options.strategies.empty() ? strategy::strategy_names()
                                                 : options.strategies;
  for (const std::string& name : result.strategies) {
    const std::vector<std::string> known = strategy::strategy_names();
    CCNOPT_EXPECTS(std::find(known.begin(), known.end(), name) != known.end());
  }
  result.options.strategies = result.strategies;
  const std::vector<topology::Graph> roster =
      options.topologies.empty() ? default_arena_topologies(options.seed)
                                 : options.topologies;
  CCNOPT_EXPECTS(!roster.empty());
  for (const topology::Graph& graph : roster) {
    result.topologies.push_back(graph.name());
  }

  struct CellSpec {
    std::size_t topology_index = 0;
    std::size_t strategy_index = 0;
  };
  std::vector<CellSpec> specs;
  specs.reserve(roster.size() * result.strategies.size());
  for (std::size_t t = 0; t < roster.size(); ++t) {
    for (std::size_t s = 0; s < result.strategies.size(); ++s) {
      specs.push_back(CellSpec{t, s});
    }
  }
  const auto evaluate = [&](const CellSpec& spec) {
    return run_cell(result.options, roster[spec.topology_index],
                    result.strategies[spec.strategy_index]);
  };
  if (pool != nullptr) {
    result.cells = runtime::parallel_map(*pool, specs, evaluate);
  } else {
    result.cells.reserve(specs.size());
    for (const CellSpec& spec : specs) {
      result.cells.push_back(evaluate(spec));
    }
  }
  return result;
}

void print_arena_tables(const ArenaResult& result, std::ostream& out) {
  const std::size_t strategy_count = result.strategies.size();
  const bool detected = result.options.detect_steady_state;
  for (std::size_t t = 0; t < result.topologies.size(); ++t) {
    const ArenaCell& first = result.cells[t * strategy_count];
    out << "--- " << result.topologies[t] << " (" << first.routers
        << " routers) ---\n";
    std::vector<std::string> header{"strategy", "hit ratio", "local frac",
                                    "network frac", "origin load",
                                    "mean latency ms", "mean hops",
                                    "coord msgs", "placements", "mean depth",
                                    "max link load"};
    if (detected) header.push_back("steady after req");
    TextTable table(header);
    for (std::size_t s = 0; s < strategy_count; ++s) {
      const ArenaCell& cell = result.cells[t * strategy_count + s];
      const sim::SimReport& report = cell.report;
      std::vector<std::string> row{
          cell.strategy,
          format_double(1.0 - report.origin_load, 4),
          format_double(report.local_fraction, 4),
          format_double(report.network_fraction, 4),
          format_double(report.origin_load, 4),
          format_double(report.mean_latency_ms, 2),
          format_double(report.mean_hops, 3),
          std::to_string(report.coordination_messages),
          std::to_string(cell.placements),
          format_double(cell.mean_placement_depth, 3),
          std::to_string(cell.max_link_load)};
      if (detected) {
        // "~" marks the not-converged fallback (second half of the run).
        row.push_back(std::to_string(cell.steady_state_requests) +
                      (cell.converged ? "" : " ~"));
      }
      table.add_row(std::move(row));
    }
    table.print(out);
    out << "\n";

    // Where along the delivery path each strategy leaves copies: the
    // fraction of its placements at each hop distance from the requester.
    // This is the LCD-vs-LCE signature — LCE smears mass over the whole
    // path, LCD keeps it one hop below the serving point.
    std::size_t max_depth = 0;
    for (std::size_t s = 0; s < strategy_count; ++s) {
      max_depth = std::max(
          max_depth,
          result.cells[t * strategy_count + s].placement_depths.size());
    }
    if (max_depth > 0) {
      out << "--- " << result.topologies[t]
          << ": placement-depth distribution (fraction of placements at "
             "d hops from the requester) ---\n";
      std::vector<std::string> depth_header{"strategy", "placements"};
      for (std::size_t d = 0; d < max_depth; ++d) {
        depth_header.push_back("d=" + std::to_string(d));
      }
      TextTable depths(depth_header);
      for (std::size_t s = 0; s < strategy_count; ++s) {
        const ArenaCell& cell = result.cells[t * strategy_count + s];
        std::vector<std::string> row{cell.strategy,
                                     std::to_string(cell.placements)};
        for (std::size_t d = 0; d < max_depth; ++d) {
          const std::uint64_t count = d < cell.placement_depths.size()
                                          ? cell.placement_depths[d]
                                          : 0;
          row.push_back(cell.placements == 0
                            ? "-"
                            : format_double(static_cast<double>(count) /
                                                static_cast<double>(
                                                    cell.placements),
                                            3));
        }
        depths.add_row(std::move(row));
      }
      depths.print(out);
      out << "\n";
    }
  }

  out << "--- origin load across topologies (lower is better) ---\n";
  std::vector<std::string> header{"strategy"};
  header.insert(header.end(), result.topologies.begin(),
                result.topologies.end());
  TextTable summary(header);
  for (std::size_t s = 0; s < strategy_count; ++s) {
    std::vector<std::string> row{result.strategies[s]};
    for (std::size_t t = 0; t < result.topologies.size(); ++t) {
      row.push_back(format_double(
          result.cells[t * strategy_count + s].report.origin_load, 4));
    }
    summary.add_row(std::move(row));
  }
  summary.print(out);
}

namespace {

void write_cell_json(const ArenaCell& cell, std::ostream& out,
                     const char* indent) {
  const sim::SimReport& report = cell.report;
  out << indent << "{\n"
      << indent << "  \"strategy\": \"" << obs::json_escape(cell.strategy)
      << "\",\n"
      << indent << "  \"topology\": \"" << obs::json_escape(cell.topology)
      << "\",\n"
      << indent << "  \"routers\": " << cell.routers << ",\n"
      << indent << "  \"total_requests\": " << report.total_requests << ",\n"
      << indent << "  \"hit_ratio\": "
      << obs::json_number(1.0 - report.origin_load) << ",\n"
      << indent << "  \"local_fraction\": "
      << obs::json_number(report.local_fraction) << ",\n"
      << indent << "  \"network_fraction\": "
      << obs::json_number(report.network_fraction) << ",\n"
      << indent << "  \"origin_load\": " << obs::json_number(report.origin_load)
      << ",\n"
      << indent << "  \"mean_latency_ms\": "
      << obs::json_number(report.mean_latency_ms) << ",\n"
      << indent << "  \"mean_hops\": " << obs::json_number(report.mean_hops)
      << ",\n"
      << indent << "  \"mean_local_latency_ms\": "
      << obs::json_number(report.mean_local_latency_ms) << ",\n"
      << indent << "  \"mean_network_latency_ms\": "
      << obs::json_number(report.mean_network_latency_ms) << ",\n"
      << indent << "  \"mean_origin_latency_ms\": "
      << obs::json_number(report.mean_origin_latency_ms) << ",\n"
      << indent << "  \"coordination_messages\": "
      << report.coordination_messages << ",\n"
      << indent << "  \"converged\": " << (cell.converged ? "true" : "false")
      << ",\n"
      << indent << "  \"steady_state_epoch\": " << cell.steady_state_epoch
      << ",\n"
      << indent << "  \"steady_state_requests\": "
      << cell.steady_state_requests << ",\n"
      << indent << "  \"placements\": " << cell.placements << ",\n"
      << indent << "  \"mean_placement_depth\": "
      << obs::json_number(cell.mean_placement_depth) << ",\n"
      << indent << "  \"placement_depths\": [";
  for (std::size_t d = 0; d < cell.placement_depths.size(); ++d) {
    out << (d ? ", " : "") << cell.placement_depths[d];
  }
  out << "],\n"
      << indent << "  \"link_traversals\": " << cell.link_traversals << ",\n"
      << indent << "  \"max_link_load\": " << cell.max_link_load << "\n"
      << indent << "}";
}

void write_string_array(const std::vector<std::string>& values,
                        std::ostream& out) {
  out << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << (i ? ", " : "") << "\"" << obs::json_escape(values[i]) << "\"";
  }
  out << "]";
}

}  // namespace

void write_arena_json(const ArenaResult& result, std::ostream& out) {
  const ArenaOptions& options = result.options;
  out << "{\n  \"schema\": \"ccnopt-arena-v1\",\n  \"config\": {\n"
      << "    \"catalog_size\": " << options.catalog_size << ",\n"
      << "    \"capacity_c\": " << options.capacity_c << ",\n"
      << "    \"coordinated_x\": " << options.coordinated_x << ",\n"
      << "    \"zipf_s\": " << obs::json_number(options.zipf_s) << ",\n"
      << "    \"warmup_requests\": " << options.warmup_requests << ",\n"
      << "    \"measured_requests\": " << options.measured_requests << ",\n"
      << "    \"local_mode\": \"" << sim::to_string(options.local_mode)
      << "\",\n"
      << "    \"seed\": " << options.seed << ",\n"
      << "    \"detect_steady_state\": "
      << (options.detect_steady_state ? "true" : "false") << ",\n"
      << "    \"timeline_epoch\": " << options.timeline_epoch << "\n  },\n"
      << "  \"strategies\": ";
  write_string_array(result.strategies, out);
  out << ",\n  \"topologies\": ";
  write_string_array(result.topologies, out);
  out << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    write_cell_json(result.cells[i], out, "    ");
    out << (i + 1 < result.cells.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
}

void write_arena_csv(const ArenaResult& result, std::ostream& out) {
  out << "topology,strategy,routers,total_requests,hit_ratio,local_fraction,"
         "network_fraction,origin_load,mean_latency_ms,mean_hops,"
         "mean_local_latency_ms,mean_network_latency_ms,"
         "mean_origin_latency_ms,coordination_messages,converged,"
         "steady_state_epoch,steady_state_requests,placements,"
         "mean_placement_depth,link_traversals,max_link_load\n";
  for (const ArenaCell& cell : result.cells) {
    const sim::SimReport& report = cell.report;
    out << cell.topology << "," << cell.strategy << "," << cell.routers << ","
        << report.total_requests << ","
        << obs::json_number(1.0 - report.origin_load) << ","
        << obs::json_number(report.local_fraction) << ","
        << obs::json_number(report.network_fraction) << ","
        << obs::json_number(report.origin_load) << ","
        << obs::json_number(report.mean_latency_ms) << ","
        << obs::json_number(report.mean_hops) << ","
        << obs::json_number(report.mean_local_latency_ms) << ","
        << obs::json_number(report.mean_network_latency_ms) << ","
        << obs::json_number(report.mean_origin_latency_ms) << ","
        << report.coordination_messages << ","
        << (cell.converged ? 1 : 0) << "," << cell.steady_state_epoch << ","
        << cell.steady_state_requests << "," << cell.placements << ","
        << obs::json_number(cell.mean_placement_depth) << ","
        << cell.link_traversals << "," << cell.max_link_load << "\n";
  }
}

void record_arena_metrics(const ArenaResult& result) {
  obs::MetricsRegistry& registry = obs::metrics();
  for (const ArenaCell& cell : result.cells) {
    const std::string prefix = "arena." + cell.topology + "." + cell.strategy;
    registry.set_gauge(prefix + ".hit_ratio", 1.0 - cell.report.origin_load);
    registry.set_gauge(prefix + ".origin_load", cell.report.origin_load);
    registry.set_gauge(prefix + ".mean_latency_ms",
                       cell.report.mean_latency_ms);
    registry.set_gauge(prefix + ".coordination_messages",
                       static_cast<double>(cell.report.coordination_messages));
    registry.set_gauge(prefix + ".mean_placement_depth",
                       cell.mean_placement_depth);
    registry.set_gauge(prefix + ".max_link_load",
                       static_cast<double>(cell.max_link_load));
  }
}

}  // namespace ccnopt::experiments
