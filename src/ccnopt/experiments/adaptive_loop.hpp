// Closed loop: the online adaptive controller (model/adaptive.hpp) driving
// the simulator under a drifting Zipf workload, compared per epoch against
//   * static    — provisioned once from the initial exponent, never adapts;
//   * oracle    — re-provisioned each epoch with the *true* exponent.
// All three networks serve the identical request stream, so differences
// are purely provisioning quality.
#pragma once

#include <vector>

#include "ccnopt/common/error.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::experiments {

struct AdaptiveLoopOptions {
  std::uint64_t catalog_size = 20000;
  std::size_t capacity_c = 200;
  std::uint64_t requests_per_epoch = 40000;
  /// True Zipf exponent per epoch (the drift the controller must track).
  std::vector<double> s_per_epoch = {0.6, 0.7, 0.9, 1.2, 1.4, 1.2, 0.9, 0.7};
  /// EWMA weight of each epoch's estimate.
  double smoothing = 0.7;
  double access_latency_d0_ms = 1.0;
  double origin_extra_ms = 50.0;
  std::uint64_t seed = 31;
};

struct AdaptiveEpochReport {
  std::uint64_t epoch = 0;
  double true_s = 0.0;
  double estimated_s = 0.0;  ///< raw estimate the controller formed
  double smoothed_s = 0.0;   ///< belief after EWMA
  double ell_adaptive = 0.0;
  double ell_oracle = 0.0;
  double latency_adaptive_ms = 0.0;
  double latency_static_ms = 0.0;
  double latency_oracle_ms = 0.0;
  double origin_adaptive = 0.0;
  double origin_static = 0.0;
  double origin_oracle = 0.0;
};

struct AdaptiveLoopResult {
  std::vector<AdaptiveEpochReport> epochs;
  double mean_latency_adaptive_ms = 0.0;
  double mean_latency_static_ms = 0.0;
  double mean_latency_oracle_ms = 0.0;
};

/// Runs the loop on `graph` (connected, uniform capacities). Requires at
/// least 2 epochs and catalog > n * c.
Expected<AdaptiveLoopResult> run_adaptive_loop(
    const topology::Graph& graph, const AdaptiveLoopOptions& options = {});

}  // namespace ccnopt::experiments
