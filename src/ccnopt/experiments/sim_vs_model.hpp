// Validation of the analytical model (Eq. 2 and the Section IV-E gains)
// against the discrete-event simulator on a real topology: the simulator
// knows nothing of the formulas — it replays Zipf requests against
// partitioned stores over shortest paths — yet its measured origin load and
// mean latency must track T(x) and 1 - F(c + (n-1)x).
#pragma once

#include <vector>

#include "ccnopt/model/performance.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::runtime {
class ThreadPool;
}

namespace ccnopt::experiments {

struct SimVsModelOptions {
  std::uint64_t catalog_size = 50000;
  std::size_t capacity_c = 500;
  double zipf_s = 0.8;
  std::uint64_t measured_requests = 200000;
  std::uint64_t seed = 7;
  int x_points = 5;  // x sampled uniformly over [0, c]
  double access_latency_d0_ms = 1.0;
  double origin_extra_ms = 50.0;
};

struct SimVsModelPoint {
  std::size_t x = 0;
  double ell = 0.0;
  double model_latency_ms = 0.0;
  double sim_latency_ms = 0.0;
  double model_origin_load = 0.0;
  double sim_origin_load = 0.0;
  double model_local_fraction = 0.0;
  double sim_local_fraction = 0.0;  // model-faithful: own-coordinated
                                    // hits counted as the network tier
};

struct SimVsModelResult {
  model::SystemParams params;  // the derived analytic twin of the sim setup
  std::vector<SimVsModelPoint> points;
  double max_origin_load_abs_error = 0.0;
  double max_latency_rel_error = 0.0;
};

/// Runs the sweep on `graph` (connected, uniform capacities). The analytic
/// twin derives d1 - d0 from the topology's mean pairwise latency and d2
/// from the mean gateway distance plus the origin offset, exactly as
/// Section V-A derives Table III.
///
/// Each x point replays its requests against its own freshly provisioned
/// network with a workload seeded derive_seed(options.seed, point index),
/// so points are independent; with a pool they run in parallel and the
/// result is bit-identical to the serial (null-pool) run.
SimVsModelResult run_sim_vs_model(const topology::Graph& graph,
                                  const SimVsModelOptions& options = {},
                                  runtime::ThreadPool* pool = nullptr);

}  // namespace ccnopt::experiments
