#include "ccnopt/experiments/report.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/csv.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"

namespace ccnopt::experiments {

void print_series_table(const FigureData& data, Metric metric,
                        std::ostream& out, int max_rows) {
  CCNOPT_EXPECTS(!data.series.empty());
  CCNOPT_EXPECTS(max_rows >= 2);
  // All series of one figure share the same parameter grid by
  // construction; use the longest series as the row index in case a sweep
  // skipped invalid values (the s = 1 hole).
  std::size_t longest = 0;
  for (std::size_t i = 1; i < data.series.size(); ++i) {
    if (data.series[i].points.size() > data.series[longest].points.size()) {
      longest = i;
    }
  }
  const auto& axis = data.series[longest].points;

  std::vector<std::string> header{data.x_label};
  for (const Series& series : data.series) {
    header.push_back(series.label + " " + to_string(metric));
  }
  TextTable table(std::move(header));

  const std::size_t rows = axis.size();
  const std::size_t stride =
      std::max<std::size_t>(1, rows / static_cast<std::size_t>(max_rows));
  for (std::size_t row = 0; row < rows; row += stride) {
    const double parameter = axis[row].parameter;
    std::vector<double> values;
    values.reserve(data.series.size());
    for (const Series& series : data.series) {
      // Match by parameter value (series may have holes).
      const auto it = std::find_if(
          series.points.begin(), series.points.end(),
          [parameter](const model::SweepPoint& p) {
            return std::abs(p.parameter - parameter) < 1e-9;
          });
      values.push_back(it == series.points.end()
                           ? std::numeric_limits<double>::quiet_NaN()
                           : metric_value(*it, metric));
    }
    table.add_row(format_double(parameter, 3), values);
  }
  out << data.title << " [" << to_string(metric) << "]\n";
  table.print(out);
}

void write_series_csv(const FigureData& data, std::ostream& out) {
  CsvWriter csv(out);
  csv.write_header({data.x_label, "series", "ell_star", "G_O", "G_R"});
  for (const Series& series : data.series) {
    for (const model::SweepPoint& point : series.points) {
      csv.write_row({format_double(point.parameter, 6), series.label,
                     format_double(point.ell_star, 6),
                     format_double(point.origin_load_reduction, 6),
                     format_double(point.routing_improvement, 6)});
    }
  }
}

}  // namespace ccnopt::experiments
