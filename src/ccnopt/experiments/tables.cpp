#include "ccnopt/experiments/tables.hpp"

#include "ccnopt/runtime/parallel.hpp"
#include "ccnopt/topology/datasets.hpp"

namespace ccnopt::experiments {

std::vector<topology::TopologyParameters> table3_rows(
    runtime::ThreadPool* pool) {
  const std::vector<topology::Graph> datasets = topology::all_datasets();
  if (pool != nullptr) {
    return runtime::parallel_map(*pool, datasets,
                                 [](const topology::Graph& g) {
                                   return topology::derive_parameters(g);
                                 });
  }
  std::vector<topology::TopologyParameters> rows;
  rows.reserve(datasets.size());
  for (const topology::Graph& g : datasets) {
    rows.push_back(topology::derive_parameters(g));
  }
  return rows;
}

std::vector<PaperTable3Row> paper_table3() {
  return {
      {"Abilene", 11, 22.3, 14.3, 2.4182},
      {"CERNET", 36, 33.3, 16.2, 2.8238},
      {"GEANT", 23, 27.8, 16.0, 2.6008},
      {"US-A", 20, 26.7, 15.7, 2.2842},
  };
}

}  // namespace ccnopt::experiments
