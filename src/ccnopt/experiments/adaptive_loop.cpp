#include "ccnopt/experiments/adaptive_loop.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/model/adaptive.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/sim/workload.hpp"
#include "ccnopt/topology/shortest_paths.hpp"

namespace ccnopt::experiments {
namespace {

/// Analytic twin derived from the topology the Section V-A way.
model::SystemParams derive_twin(const topology::Graph& graph,
                                const AdaptiveLoopOptions& options,
                                double initial_s) {
  const topology::AllPairs paths = topology::all_pairs(graph);
  const std::size_t n = graph.node_count();
  double sum_pairwise = 0.0;
  double sum_gateway = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) sum_pairwise += paths.latency_ms(i, j);
    sum_gateway += paths.latency_ms(i, 0);
  }
  model::SystemParams params;
  params.alpha = 1.0;  // the loop optimizes routing performance
  params.s = initial_s;
  params.n = static_cast<double>(n);
  params.catalog_n = static_cast<double>(options.catalog_size);
  params.capacity_c = static_cast<double>(options.capacity_c);
  params.latency.d0 = options.access_latency_d0_ms;
  params.latency.d1 =
      options.access_latency_d0_ms +
      sum_pairwise / (static_cast<double>(n) * static_cast<double>(n));
  params.latency.d2 = options.access_latency_d0_ms +
                      sum_gateway / static_cast<double>(n) +
                      options.origin_extra_ms;
  params.cost = model::CostModel{};
  CCNOPT_ENSURES(params.validate().is_ok());
  return params;
}

struct EpochMeasurement {
  double latency_sum = 0.0;
  std::uint64_t origin_hits = 0;
};

}  // namespace

Expected<AdaptiveLoopResult> run_adaptive_loop(
    const topology::Graph& graph, const AdaptiveLoopOptions& options) {
  if (options.s_per_epoch.size() < 2) {
    return Status(ErrorCode::kInvalidArgument,
                  "adaptive loop: need at least 2 epochs");
  }
  if (options.catalog_size <=
      graph.node_count() * options.capacity_c) {
    return Status(ErrorCode::kInvalidArgument,
                  "adaptive loop: need catalog > n * c");
  }

  const double initial_s = options.s_per_epoch.front();
  const model::SystemParams twin = derive_twin(graph, options, initial_s);

  // One drifting workload; each epoch is one phase.
  std::vector<sim::DriftingZipfWorkload::Phase> schedule;
  schedule.reserve(options.s_per_epoch.size());
  for (std::size_t e = 0; e < options.s_per_epoch.size(); ++e) {
    schedule.push_back(sim::DriftingZipfWorkload::Phase{
        e * options.requests_per_epoch, options.s_per_epoch[e]});
  }
  sim::DriftingZipfWorkload workload(graph.node_count(), options.catalog_size,
                                     schedule, options.seed);

  // Three identical networks served with the identical stream.
  sim::NetworkConfig net_config;
  net_config.catalog_size = options.catalog_size;
  net_config.capacity_c = options.capacity_c;
  net_config.local_mode = sim::LocalStoreMode::kStaticTop;
  net_config.access_latency_d0_ms = options.access_latency_d0_ms;
  net_config.origin_extra_ms = options.origin_extra_ms;
  net_config.seed = options.seed;
  sim::CcnNetwork adaptive_net(graph, net_config);
  sim::CcnNetwork static_net(graph, net_config);
  sim::CcnNetwork oracle_net(graph, net_config);

  const auto provision_for = [&](double s) -> Expected<std::size_t> {
    const auto strategy = model::optimize(model::with_zipf(twin, s));
    if (!strategy) return strategy.status();
    return static_cast<std::size_t>(strategy->x_star + 0.5);
  };

  const auto initial_x = provision_for(initial_s);
  if (!initial_x) return initial_x.status();
  adaptive_net.provision(*initial_x);
  static_net.provision(*initial_x);

  model::AdaptiveConfig controller_config;
  controller_config.catalog_size = options.catalog_size;
  controller_config.epoch_requests = options.requests_per_epoch;
  controller_config.smoothing = options.smoothing;
  model::AdaptiveController controller(twin, controller_config);

  AdaptiveLoopResult result;
  double total_adaptive = 0.0, total_static = 0.0, total_oracle = 0.0;

  for (std::size_t e = 0; e < options.s_per_epoch.size(); ++e) {
    const double true_s = options.s_per_epoch[e];
    const auto oracle_x = provision_for(true_s);
    if (!oracle_x) return oracle_x.status();
    oracle_net.provision(*oracle_x);
    const auto oracle_strategy = model::optimize(model::with_zipf(twin, true_s));

    EpochMeasurement adaptive_m, static_m, oracle_m;
    for (std::uint64_t r = 0; r < options.requests_per_epoch; ++r) {
      const auto router = static_cast<topology::NodeId>(
          r % graph.node_count());
      const cache::ContentId content = workload.next(router);
      controller.observe(content);
      const sim::ServeResult sa = adaptive_net.serve(router, content);
      const sim::ServeResult ss = static_net.serve(router, content);
      const sim::ServeResult so = oracle_net.serve(router, content);
      adaptive_m.latency_sum += sa.latency_ms;
      static_m.latency_sum += ss.latency_ms;
      oracle_m.latency_sum += so.latency_ms;
      adaptive_m.origin_hits += (sa.tier == sim::ServeTier::kOrigin) ? 1 : 0;
      static_m.origin_hits += (ss.tier == sim::ServeTier::kOrigin) ? 1 : 0;
      oracle_m.origin_hits += (so.tier == sim::ServeTier::kOrigin) ? 1 : 0;
    }

    AdaptiveEpochReport report;
    report.epoch = e;
    report.true_s = true_s;
    const double requests =
        static_cast<double>(options.requests_per_epoch);
    report.latency_adaptive_ms = adaptive_m.latency_sum / requests;
    report.latency_static_ms = static_m.latency_sum / requests;
    report.latency_oracle_ms = oracle_m.latency_sum / requests;
    report.origin_adaptive =
        static_cast<double>(adaptive_m.origin_hits) / requests;
    report.origin_static =
        static_cast<double>(static_m.origin_hits) / requests;
    report.origin_oracle =
        static_cast<double>(oracle_m.origin_hits) / requests;
    report.ell_oracle = oracle_strategy ? oracle_strategy->ell_star : 0.0;

    // Close the controller's epoch and apply its decision for the next one.
    const auto decision = controller.end_epoch();
    if (!decision) return decision.status();
    report.estimated_s = decision->estimated_s;
    report.smoothed_s = decision->smoothed_s;
    report.ell_adaptive = decision->ell_star;
    adaptive_net.provision(static_cast<std::size_t>(decision->x_star + 0.5));

    total_adaptive += report.latency_adaptive_ms;
    total_static += report.latency_static_ms;
    total_oracle += report.latency_oracle_ms;
    result.epochs.push_back(report);
  }

  const double epochs = static_cast<double>(result.epochs.size());
  result.mean_latency_adaptive_ms = total_adaptive / epochs;
  result.mean_latency_static_ms = total_static / epochs;
  result.mean_latency_oracle_ms = total_oracle / epochs;
  return result;
}

}  // namespace ccnopt::experiments
