// The parameter sweeps behind the paper's Figures 4-13 (Table IV rows).
//
// Each sweep returns every metric at once (l*, G_O, G_R), so one sweep
// feeds three figures: the alpha sweep produces Figures 4, 8 and 12; the
// Zipf sweep Figures 5, 9 and 13; the network-size sweep Figures 6 and 10;
// the unit-cost sweep Figures 7 and 11.
#pragma once

#include <string>
#include <vector>

#include "ccnopt/model/sensitivity.hpp"

namespace ccnopt::runtime {
class ThreadPool;
}

namespace ccnopt::experiments {

struct Series {
  std::string label;  // e.g. "gamma=4" or "alpha=0.6"
  std::vector<model::SweepPoint> points;
};

struct FigureData {
  std::string id;       // "fig4+8+12"
  std::string title;
  std::string x_label;  // the swept parameter
  std::vector<Series> series;
};

/// Which metric of the sweep a figure plots.
enum class Metric { kEllStar, kOriginGain, kRoutingGain };

const char* to_string(Metric metric);
double metric_value(const model::SweepPoint& point, Metric metric);

/// Table IV grids.
std::vector<double> alpha_grid(int points = 50);       // (0, 1]
std::vector<double> zipf_grid(int points_per_side = 25);  // [0.1,1) U (1,1.9]
std::vector<double> router_grid();                     // 10 .. 500
std::vector<double> unit_cost_grid(int points = 46);   // 10 .. 100
std::vector<double> gamma_series_values();             // {2,4,6,8,10}
std::vector<double> alpha_series_values();             // {0.2,...,1.0}

/// All sweeps accept an optional pool: when given, grid points are
/// evaluated in parallel by runtime::SweepRunner. Both paths go through
/// model::evaluate_sweep_point, so the output is bit-identical whether the
/// pool is null, has 1 thread, or has many.

/// Figures 4/8/12: sweep alpha, one series per gamma in {2,4,6,8,10};
/// s = 0.8, n = 20 (Table IV row 1).
FigureData sweep_vs_alpha(const model::SystemParams& base,
                          runtime::ThreadPool* pool = nullptr);

/// Figures 5/9/13: sweep s over [0.1,1) U (1,1.9], one series per alpha in
/// {0.2,...,1.0}; gamma = 5, n = 20 (Table IV row 2).
FigureData sweep_vs_zipf(const model::SystemParams& base,
                         runtime::ThreadPool* pool = nullptr);

/// Figures 6/10: sweep n over [10, 500], one series per alpha (row 4).
FigureData sweep_vs_routers(const model::SystemParams& base,
                            runtime::ThreadPool* pool = nullptr);

/// Figures 7/11: sweep w over [10, 100] ms, one series per alpha (row 3).
FigureData sweep_vs_unit_cost(const model::SystemParams& base,
                              runtime::ThreadPool* pool = nullptr);

}  // namespace ccnopt::experiments
