// The Section II motivating example (Figure 1 / Table I), reproduced
// mechanically by the simulator rather than by hand: three routers R0
// (no storage), R1 and R2 (capacity 1) around an origin O behind R0, two
// identical {a, a, b} request flows at R1 and R2.
#pragma once

#include "ccnopt/sim/metrics.hpp"

namespace ccnopt::experiments {

struct MotivatingRow {
  double origin_load = 0.0;            // fraction of requests hitting O
  double mean_hops = 0.0;              // router-side hops per request
  std::uint64_t coordination_messages = 0;
};

struct MotivatingResult {
  MotivatingRow non_coordinated;  // both R1 and R2 hold {a}
  MotivatingRow coordinated;      // R1 holds {a}, R2 holds {b}
};

/// Replays `cycles` repetitions of the two {a,a,b} flows (6 requests per
/// cycle) under both strategies. With the paper's steady-state assumption
/// any cycle count gives the same fractions; cycles >= 1.
MotivatingResult run_motivating_example(std::uint64_t cycles = 100);

}  // namespace ccnopt::experiments
