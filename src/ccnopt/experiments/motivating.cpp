#include "ccnopt/experiments/motivating.hpp"

#include <memory>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/sim/simulation.hpp"

namespace ccnopt::experiments {
namespace {

// Figure 1: R0 connects R1, R2 and the origin; R1 and R2 are also peered
// directly (the coordinated strategy fetches across that one-hop link).
topology::Graph motivating_graph() {
  topology::Graph g("motivating");
  const auto r0 = g.add_node(topology::NodeInfo{"R0", {}});
  const auto r1 = g.add_node(topology::NodeInfo{"R1", {}});
  const auto r2 = g.add_node(topology::NodeInfo{"R2", {}});
  CCNOPT_ASSERT(g.add_edge(r1, r0, 5.0).is_ok());
  CCNOPT_ASSERT(g.add_edge(r2, r0, 5.0).is_ok());
  CCNOPT_ASSERT(g.add_edge(r1, r2, 5.0).is_ok());
  return g;
}

MotivatingRow run_strategy(std::size_t coordinated_x, std::uint64_t cycles) {
  sim::SimConfig config;
  config.network.catalog_size = 2;  // contents a (rank 1) and b (rank 2)
  config.network.capacity_c = 1;
  config.network.capacity_overrides = {0, 1, 1};  // R0 routes only
  config.network.local_mode = sim::LocalStoreMode::kStaticTop;
  config.network.access_latency_d0_ms = 1.0;
  config.network.origin_gateway = 0;   // O hangs off R0...
  config.network.origin_extra_ms = 50.0;
  config.network.origin_extra_hops = 1;  // ...one hop beyond it
  config.coordinated_x = coordinated_x;
  config.warmup_requests = 0;
  config.measured_requests = cycles * 6;  // two 3-request flows per cycle

  sim::Simulation simulation(motivating_graph(), config);
  // Flows: R0 none, R1 and R2 each the repeating {a, a, b}.
  simulation.set_workload(std::make_unique<sim::CyclicWorkload>(
      std::vector<std::vector<cache::ContentId>>{{}, {1, 1, 2}, {1, 1, 2}}));
  const sim::SimReport report = simulation.run();

  MotivatingRow row;
  row.origin_load = report.origin_load;
  row.mean_hops = report.mean_hops;
  row.coordination_messages = report.coordination_messages;
  return row;
}

}  // namespace

MotivatingResult run_motivating_example(std::uint64_t cycles) {
  CCNOPT_EXPECTS(cycles >= 1);
  MotivatingResult result;
  // Non-coordinated: x = 0, each storage-bearing router keeps its locally
  // most popular content — the static top-1, i.e. {a} at both R1 and R2.
  result.non_coordinated = run_strategy(/*coordinated_x=*/0, cycles);
  // Coordinated: x = 1 (the full capacity), the coordinator assigns the
  // rank range {1, 2} round-robin: R1 <- a, R2 <- b.
  result.coordinated = run_strategy(/*coordinated_x=*/1, cycles);
  return result;
}

}  // namespace ccnopt::experiments
