#include "ccnopt/experiments/sim_vs_model.hpp"

#include <algorithm>
#include <cmath>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/runtime/parallel.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/sim/workload.hpp"
#include "ccnopt/topology/shortest_paths.hpp"

namespace ccnopt::experiments {
namespace {

/// Analytic twin of the simulated network, derived the Table III way.
model::SystemParams derive_params(const topology::Graph& graph,
                                  const SimVsModelOptions& options) {
  const topology::AllPairs paths = topology::all_pairs(graph);
  const std::size_t n = graph.node_count();
  double sum_pairwise = 0.0;
  double sum_gateway = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) sum_pairwise += paths.latency_ms(i, j);
    sum_gateway += paths.latency_ms(i, 0);
  }
  const double mean_pairwise =
      sum_pairwise / (static_cast<double>(n) * static_cast<double>(n));
  const double mean_gateway = sum_gateway / static_cast<double>(n);

  model::SystemParams params;
  params.alpha = 1.0;
  params.s = options.zipf_s;
  params.n = static_cast<double>(n);
  params.catalog_n = static_cast<double>(options.catalog_size);
  params.capacity_c = static_cast<double>(options.capacity_c);
  params.latency.d0 = options.access_latency_d0_ms;
  params.latency.d1 = options.access_latency_d0_ms + mean_pairwise;
  params.latency.d2 =
      options.access_latency_d0_ms + mean_gateway + options.origin_extra_ms;
  params.cost = model::CostModel{};  // unused by the routing comparison
  CCNOPT_ENSURES(params.validate().is_ok());
  return params;
}

/// One x point: its own network (provisioned at x) and its own workload
/// sub-stream, so points are independent of each other and of thread count.
SimVsModelPoint evaluate_x_point(const topology::Graph& graph,
                                 const SimVsModelOptions& options,
                                 const model::PerformanceModel& analytic,
                                 const sim::NetworkConfig& net_config,
                                 std::size_t index) {
  const std::size_t x = options.capacity_c * index /
                        static_cast<std::size_t>(options.x_points - 1);
  sim::CcnNetwork network(graph, net_config);
  sim::ZipfWorkload workload(network.router_count(), options.catalog_size,
                             options.zipf_s,
                             derive_seed(options.seed, index));
  network.provision(x);

  std::uint64_t origin_hits = 0;
  std::uint64_t faithful_local_hits = 0;
  double latency_sum = 0.0;
  const std::uint64_t requests = options.measured_requests;
  for (std::uint64_t r = 0; r < requests; ++r) {
    const auto router =
        static_cast<topology::NodeId>(r % network.router_count());
    const sim::ServeResult served =
        network.serve(router, workload.next(router));
    latency_sum += served.latency_ms;
    if (served.tier == sim::ServeTier::kOrigin) ++origin_hits;
    // Eq. 2 charges a router's own coordinated contents to the network
    // tier; reclassify so the tier splits are comparable.
    if (served.tier == sim::ServeTier::kLocal && !served.own_coordinated_hit) {
      ++faithful_local_hits;
    }
  }

  SimVsModelPoint point;
  point.x = x;
  point.ell = static_cast<double>(x) / static_cast<double>(options.capacity_c);
  point.model_latency_ms = analytic.routing_performance(static_cast<double>(x));
  point.sim_latency_ms = latency_sum / static_cast<double>(requests);
  const auto split = analytic.tier_split(static_cast<double>(x));
  point.model_origin_load = split.origin;
  point.model_local_fraction = split.local;
  point.sim_origin_load =
      static_cast<double>(origin_hits) / static_cast<double>(requests);
  point.sim_local_fraction = static_cast<double>(faithful_local_hits) /
                             static_cast<double>(requests);
  return point;
}

}  // namespace

SimVsModelResult run_sim_vs_model(const topology::Graph& graph,
                                  const SimVsModelOptions& options,
                                  runtime::ThreadPool* pool) {
  CCNOPT_EXPECTS(options.x_points >= 2);
  CCNOPT_EXPECTS(graph.is_connected());
  CCNOPT_EXPECTS(options.catalog_size >
                 graph.node_count() * options.capacity_c);

  SimVsModelResult result;
  result.params = derive_params(graph, options);
  const model::PerformanceModel analytic(result.params);

  sim::NetworkConfig net_config;
  net_config.catalog_size = options.catalog_size;
  net_config.capacity_c = options.capacity_c;
  net_config.local_mode = sim::LocalStoreMode::kStaticTop;
  net_config.access_latency_d0_ms = options.access_latency_d0_ms;
  net_config.origin_gateway = 0;
  net_config.origin_extra_ms = options.origin_extra_ms;
  net_config.seed = options.seed;

  const std::size_t point_count = static_cast<std::size_t>(options.x_points);
  result.points.resize(point_count);
  const auto evaluate = [&](std::size_t i) {
    result.points[i] =
        evaluate_x_point(graph, options, analytic, net_config, i);
  };
  if (pool != nullptr) {
    runtime::parallel_for(*pool, point_count, evaluate);
  } else {
    for (std::size_t i = 0; i < point_count; ++i) evaluate(i);
  }

  for (const SimVsModelPoint& point : result.points) {
    result.max_origin_load_abs_error =
        std::max(result.max_origin_load_abs_error,
                 std::abs(point.model_origin_load - point.sim_origin_load));
    if (point.model_latency_ms > 0.0) {
      result.max_latency_rel_error = std::max(
          result.max_latency_rel_error,
          std::abs(point.model_latency_ms - point.sim_latency_ms) /
              point.model_latency_ms);
    }
  }
  return result;
}

}  // namespace ccnopt::experiments
