#include "ccnopt/experiments/figures.hpp"

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/runtime/sweep_runner.hpp"

namespace ccnopt::experiments {
namespace {

std::string series_label(const char* name, double value, int precision) {
  return std::string(name) + "=" + ccnopt::format_double(value, precision);
}

/// Serial sweep, or point-parallel over `pool` when one is given.
Expected<std::vector<model::SweepPoint>> run_grid(
    runtime::ThreadPool* pool, const model::SystemParams& base,
    model::SweepParameter parameter, const std::vector<double>& grid) {
  if (pool != nullptr) {
    return runtime::SweepRunner(*pool).run(base, parameter, grid);
  }
  return model::sweep(base, parameter, grid);
}

}  // namespace

const char* to_string(Metric metric) {
  switch (metric) {
    case Metric::kEllStar:
      return "ell_star";
    case Metric::kOriginGain:
      return "G_O";
    case Metric::kRoutingGain:
      return "G_R";
  }
  return "unknown";
}

double metric_value(const model::SweepPoint& point, Metric metric) {
  switch (metric) {
    case Metric::kEllStar:
      return point.ell_star;
    case Metric::kOriginGain:
      return point.origin_load_reduction;
    case Metric::kRoutingGain:
      return point.routing_improvement;
  }
  CCNOPT_ASSERT(false);
  return 0.0;
}

std::vector<double> alpha_grid(int points) {
  // Open at 0: Lemma 2 needs alpha > 0, and alpha = 0 is trivially l* = 0.
  return model::linspace(0.02, 1.0, points);
}

std::vector<double> zipf_grid(int points_per_side) {
  std::vector<double> grid = model::linspace(0.1, 0.98, points_per_side);
  const std::vector<double> upper =
      model::linspace(1.02, 1.9, points_per_side);
  grid.insert(grid.end(), upper.begin(), upper.end());
  return grid;
}

std::vector<double> router_grid() {
  std::vector<double> grid;
  for (double n = 10.0; n <= 500.0; n += 10.0) grid.push_back(n);
  return grid;
}

std::vector<double> unit_cost_grid(int points) {
  return model::linspace(10.0, 100.0, points);
}

std::vector<double> gamma_series_values() { return {2.0, 4.0, 6.0, 8.0, 10.0}; }

std::vector<double> alpha_series_values() {
  return {0.2, 0.4, 0.6, 0.8, 1.0};
}

FigureData sweep_vs_alpha(const model::SystemParams& base,
                          runtime::ThreadPool* pool) {
  FigureData data{"fig4+8+12",
                  "optimal strategy and gains vs trade-off weight alpha",
                  "alpha",
                  {}};
  for (const double gamma : gamma_series_values()) {
    const auto points = run_grid(pool, model::with_gamma(base, gamma),
                                 model::SweepParameter::kAlpha, alpha_grid());
    CCNOPT_ASSERT(points.has_value());
    data.series.push_back(Series{series_label("gamma", gamma, 0), *points});
  }
  return data;
}

FigureData sweep_vs_zipf(const model::SystemParams& base,
                         runtime::ThreadPool* pool) {
  FigureData data{"fig5+9+13",
                  "optimal strategy and gains vs Zipf exponent s",
                  "s",
                  {}};
  for (const double alpha : alpha_series_values()) {
    const auto points = run_grid(pool, model::with_alpha(base, alpha),
                                 model::SweepParameter::kZipf, zipf_grid());
    CCNOPT_ASSERT(points.has_value());
    data.series.push_back(Series{series_label("alpha", alpha, 1), *points});
  }
  return data;
}

FigureData sweep_vs_routers(const model::SystemParams& base,
                            runtime::ThreadPool* pool) {
  FigureData data{"fig6+10",
                  "optimal strategy and gains vs network size n",
                  "n",
                  {}};
  for (const double alpha : alpha_series_values()) {
    const auto points =
        run_grid(pool, model::with_alpha(base, alpha),
                 model::SweepParameter::kRouters, router_grid());
    CCNOPT_ASSERT(points.has_value());
    data.series.push_back(Series{series_label("alpha", alpha, 1), *points});
  }
  return data;
}

FigureData sweep_vs_unit_cost(const model::SystemParams& base,
                              runtime::ThreadPool* pool) {
  FigureData data{"fig7+11",
                  "optimal strategy and gains vs unit coordination cost w",
                  "w_ms",
                  {}};
  for (const double alpha : alpha_series_values()) {
    const auto points =
        run_grid(pool, model::with_alpha(base, alpha),
                 model::SweepParameter::kUnitCost, unit_cost_grid());
    CCNOPT_ASSERT(points.has_value());
    data.series.push_back(Series{series_label("alpha", alpha, 1), *points});
  }
  return data;
}

}  // namespace ccnopt::experiments
