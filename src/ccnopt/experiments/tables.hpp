// Tables II and III: the four evaluation topologies' structural statistics
// and derived model parameters.
#pragma once

#include <vector>

#include "ccnopt/topology/params.hpp"

namespace ccnopt::runtime {
class ThreadPool;
}

namespace ccnopt::experiments {

/// One row per dataset in Table II order (Abilene, CERNET, GEANT, US-A).
/// With a pool the per-topology all-pairs derivations run in parallel;
/// row order is preserved either way.
std::vector<topology::TopologyParameters> table3_rows(
    runtime::ThreadPool* pool = nullptr);

/// The paper's published Table III values, for paper-vs-measured reporting.
struct PaperTable3Row {
  const char* name;
  double n;
  double w_ms;
  double d1_minus_d0_ms;
  double d1_minus_d0_hops;
};
std::vector<PaperTable3Row> paper_table3();

}  // namespace ccnopt::experiments
