// The paper's split content store (Section III-B): of a router's capacity
// c, the c - x "local" partition runs a canonical replacement policy over
// whatever the router sees, and the x "coordinated" partition holds the
// contents assigned by the network coordinator. Lookups consult both;
// misses only ever admit into the local partition (the coordinated one
// changes only at coordinator epochs).
#pragma once

#include <memory>
#include <unordered_set>

#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class PartitionedStore final : public CachePolicy {
 public:
  /// `local` must have capacity total_capacity - coordinated_capacity;
  /// `coordinated_ids.size()` must not exceed coordinated_capacity.
  PartitionedStore(std::size_t total_capacity,
                   std::size_t coordinated_capacity,
                   std::unique_ptr<CachePolicy> local,
                   std::vector<ContentId> coordinated_ids);

  std::size_t size() const override {
    return local_->size() + coordinated_.size();
  }
  bool contains(ContentId id) const override {
    return coordinated_.count(id) > 0 || local_->contains(id);
  }
  std::vector<ContentId> contents() const override;
  /// Clears the local partition only; the coordinated set is owned by the
  /// coordinator and changes exclusively at assign_coordinated() epochs.
  void clear() override { local_->clear(); }
  /// Forwarded to the local partition's membership index; the coordinated
  /// set is a small hash set that stays hot on its own.
  void prefetch(ContentId id) const override { local_->prefetch(id); }
  const char* name() const override { return "partitioned"; }

  std::size_t coordinated_capacity() const { return coordinated_capacity_; }
  const CachePolicy& local() const { return *local_; }

  bool coordinated_contains(ContentId id) const {
    return coordinated_.count(id) > 0;
  }
  std::vector<ContentId> coordinated_contents() const {
    return {coordinated_.begin(), coordinated_.end()};
  }

  /// Coordinator epoch update: replaces the coordinated partition.
  /// Requires ids.size() <= coordinated_capacity().
  void assign_coordinated(const std::vector<ContentId>& ids);

 protected:
  bool handle(ContentId id) override;

 private:
  std::size_t coordinated_capacity_;
  std::unique_ptr<CachePolicy> local_;
  std::unordered_set<ContentId> coordinated_;
};

}  // namespace ccnopt::cache
