// Open-addressing ContentId -> slot table with robin-hood linear probing:
// the capacity-proportional alternative to the dense SlotMap for the
// catalog >> capacity regime, where an array indexed by content id would
// cost O(N) per router.
//
// Memory is ~13 bytes per table cell (8B key + 4B slot + 1B probe length)
// at a load factor <= 0.5, so a cache of capacity c costs ~52c bytes
// regardless of catalog size. Probe lengths are kept byte-sized by the
// robin-hood invariant (displace richer entries on insert, backward-shift
// on erase), which bounds variance tightly at this load factor; the table
// still doubles defensively if a probe chain ever approaches the byte cap.
#pragma once

#include <cstdint>
#include <vector>

#include "ccnopt/cache/policy.hpp"
#include "ccnopt/common/assert.hpp"

namespace ccnopt::cache {

class SparseSlotMap {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Sizes the table for `expected_entries` live ids (a cache passes its
  /// capacity); the table never rehashes as long as occupancy stays there.
  explicit SparseSlotMap(std::size_t expected_entries = 0) {
    rehash(table_size_for(expected_entries));
  }

  std::size_t size() const { return entries_; }
  std::size_t table_size() const { return keys_.size(); }

  std::uint32_t find(ContentId id) const {
    std::size_t pos = bucket_of(id);
    for (std::uint8_t dist = 1;; ++dist) {
      // An empty cell or a cell closer to its home than we are terminates
      // the probe: the robin-hood invariant says `id` cannot live beyond it.
      if (dist_[pos] < dist) return kNoSlot;
      if (keys_[pos] == id) return slots_[pos];
      pos = (pos + 1) & mask_;
    }
  }

  void insert(ContentId id, std::uint32_t slot) {
    if ((entries_ + 1) * 2 > keys_.size()) rehash(keys_.size() * 2);
    insert_impl(id, slot);
  }

  void erase(ContentId id) {
    std::size_t pos = bucket_of(id);
    for (std::uint8_t dist = 1;; ++dist) {
      if (dist_[pos] < dist) return;  // absent
      if (keys_[pos] == id) break;
      pos = (pos + 1) & mask_;
    }
    // Backward-shift deletion: pull each displaced successor one cell left
    // until a cell that is empty or sitting at its home bucket.
    std::size_t next = (pos + 1) & mask_;
    while (dist_[next] > 1) {
      keys_[pos] = keys_[next];
      slots_[pos] = slots_[next];
      dist_[pos] = static_cast<std::uint8_t>(dist_[next] - 1);
      pos = next;
      next = (next + 1) & mask_;
    }
    dist_[pos] = 0;
    --entries_;
  }

  /// Wipes all entries in O(table_size) — proportional to the cache
  /// capacity this map was sized for, never to the catalog.
  void clear() {
    std::fill(dist_.begin(), dist_.end(), 0);
    entries_ = 0;
  }

  /// Hints the probe window of `id` into cache ahead of a find/insert.
  void prefetch(ContentId id) const {
#if defined(__GNUC__) || defined(__clang__)
    const std::size_t pos = bucket_of(id);
    __builtin_prefetch(&dist_[pos]);
    __builtin_prefetch(&keys_[pos]);
#else
    (void)id;
#endif
  }

 private:
  static constexpr std::size_t kMinTableSize = 16;
  static constexpr std::uint8_t kMaxProbe = 250;  // rehash safety margin

  static std::size_t table_size_for(std::size_t expected_entries) {
    std::size_t size = kMinTableSize;
    while (size < expected_entries * 2) size *= 2;
    return size;
  }

  /// splitmix64 finalizer: full-avalanche mix so sequential Zipf ranks
  /// scatter uniformly over the power-of-two table.
  static std::uint64_t mix(ContentId id) {
    std::uint64_t z = id + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::size_t bucket_of(ContentId id) const {
    return static_cast<std::size_t>(mix(id)) & mask_;
  }

  void insert_impl(ContentId id, std::uint32_t slot) {
    std::size_t pos = bucket_of(id);
    ContentId key = id;
    std::uint8_t dist = 1;
    for (;;) {
      if (dist_[pos] == 0) {
        keys_[pos] = key;
        slots_[pos] = slot;
        dist_[pos] = dist;
        ++entries_;
        return;
      }
      if (keys_[pos] == key && key == id) {
        slots_[pos] = slot;  // overwrite existing mapping
        return;
      }
      if (dist_[pos] < dist) {
        // Robin hood: the resident is closer to home than we are — swap and
        // keep probing on its behalf.
        std::swap(keys_[pos], key);
        std::swap(slots_[pos], slot);
        std::swap(dist_[pos], dist);
      }
      pos = (pos + 1) & mask_;
      ++dist;
      if (dist >= kMaxProbe) {
        // Pathological clustering (cannot happen at <= 50% load with a
        // mixed hash, but stay correct regardless): grow, which reinserts
        // everything already placed, then place the carried entry.
        rehash(keys_.size() * 2);
        insert_impl(key, slot);
        return;
      }
    }
  }

  void rehash(std::size_t new_size) {
    CCNOPT_ASSERT((new_size & (new_size - 1)) == 0);
    std::vector<ContentId> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_dist = std::move(dist_);
    keys_.assign(new_size, 0);
    slots_.assign(new_size, kNoSlot);
    dist_.assign(new_size, 0);
    mask_ = new_size - 1;
    entries_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_dist[i] != 0) insert_impl(old_keys[i], old_slots[i]);
    }
  }

  std::vector<ContentId> keys_;
  std::vector<std::uint32_t> slots_;
  std::vector<std::uint8_t> dist_;  // probe distance + 1; 0 = empty cell
  std::size_t mask_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace ccnopt::cache
