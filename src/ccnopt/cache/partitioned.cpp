#include "ccnopt/cache/partitioned.hpp"

namespace ccnopt::cache {

PartitionedStore::PartitionedStore(std::size_t total_capacity,
                                   std::size_t coordinated_capacity,
                                   std::unique_ptr<CachePolicy> local,
                                   std::vector<ContentId> coordinated_ids)
    : CachePolicy(total_capacity),
      coordinated_capacity_(coordinated_capacity),
      local_(std::move(local)) {
  CCNOPT_EXPECTS(coordinated_capacity <= total_capacity);
  CCNOPT_EXPECTS(local_ != nullptr);
  CCNOPT_EXPECTS(local_->capacity() == total_capacity - coordinated_capacity);
  assign_coordinated(coordinated_ids);
}

std::vector<ContentId> PartitionedStore::contents() const {
  std::vector<ContentId> out = local_->contents();
  out.insert(out.end(), coordinated_.begin(), coordinated_.end());
  return out;
}

void PartitionedStore::assign_coordinated(
    const std::vector<ContentId>& ids) {
  CCNOPT_EXPECTS(ids.size() <= coordinated_capacity_);
  coordinated_.clear();
  coordinated_.insert(ids.begin(), ids.end());
  CCNOPT_EXPECTS(coordinated_.size() == ids.size());  // no duplicates
}

bool PartitionedStore::handle(ContentId id) {
  if (coordinated_.count(id) > 0) return true;
  // Delegate to the local partition; its own stats also accrue, which the
  // simulator reports per partition.
  return local_->admit(id);
}

}  // namespace ccnopt::cache
