// Che's approximation for LRU hit ratios under the Independent Reference
// Model (Che, Tung & Wang 2002): an LRU cache of capacity C behaves as if
// each content i stays resident for a fixed "characteristic time" T_C
// after each request, giving
//   h_i = 1 - exp(-p_i * T_C),   with T_C solving  sum_i h_i = C.
//
// This is the analytical counterpart of the simulator's LRU stores: the
// paper's model assumes frequency-ideal (static-top) locals, and Che
// quantifies how far a real LRU deployment falls from that ideal without
// running the simulator (validated against it in tests and the policy
// ablation bench).
#pragma once

#include <cstdint>
#include <vector>

#include "ccnopt/common/error.hpp"
#include "ccnopt/popularity/zipf.hpp"

namespace ccnopt::cache {

class CheApproximation {
 public:
  /// Builds the approximation for an LRU cache of `capacity` contents
  /// under IRM with Zipf popularity. Requires 1 <= capacity < catalog.
  /// Construction solves for the characteristic time (Brent).
  static Expected<CheApproximation> create(
      const popularity::ZipfDistribution& popularity, std::size_t capacity);

  double characteristic_time() const { return t_c_; }
  std::size_t capacity() const { return capacity_; }

  /// Per-content hit probability h_i; requires 1 <= rank <= catalog.
  double hit_ratio(std::uint64_t rank) const;

  /// Aggregate hit ratio sum_i p_i h_i — what a long simulation measures.
  double aggregate_hit_ratio() const { return aggregate_; }

  /// The frequency-ideal (static top-C) hit ratio F(C), Che's upper bound.
  double ideal_hit_ratio() const { return ideal_; }

 private:
  CheApproximation(std::vector<double> pmf, std::size_t capacity, double t_c);

  std::vector<double> pmf_;  // indexed by rank - 1
  std::size_t capacity_;
  double t_c_;
  double aggregate_ = 0.0;
  double ideal_ = 0.0;
};

}  // namespace ccnopt::cache
