#include "ccnopt/cache/random_policy.hpp"

namespace ccnopt::cache {

bool RandomCache::handle(ContentId id) {
  if (index_.count(id) > 0) return true;
  if (capacity() == 0) return false;
  if (slots_.size() == capacity()) {
    const std::size_t victim_slot =
        static_cast<std::size_t>(rng_.uniform_int(0, slots_.size() - 1));
    index_.erase(slots_[victim_slot]);
    if (victim_slot != slots_.size() - 1) {
      slots_[victim_slot] = slots_.back();
      index_[slots_[victim_slot]] = victim_slot;
    }
    slots_.pop_back();
    count_eviction();
  }
  index_.emplace(id, slots_.size());
  slots_.push_back(id);
  count_insertion();
  return false;
}

}  // namespace ccnopt::cache
