// The membership index behind the flat cache policies: one interface over
// the dense SlotMap (array indexed by content id, O(max id) memory, single
// load per lookup) and the SparseSlotMap (robin-hood table, O(capacity)
// memory). The policies pick a side once at construction from an IndexSpec
// and the choice never changes, so the per-request branch is perfectly
// predicted.
//
// kAuto resolves to sparse only when the declared catalog is both large in
// absolute terms and much larger than the capacity — the paper's
// heavy-tail, c << N regime — so small-catalog runs keep the dense table's
// single-load lookups and their historical memory profile.
#pragma once

#include <cstdint>

#include "ccnopt/cache/policy.hpp"
#include "ccnopt/cache/slot_map.hpp"
#include "ccnopt/cache/sparse_slot_map.hpp"

namespace ccnopt::cache {

class ContentIndex {
 public:
  static constexpr std::uint32_t kNoSlot = SlotMap::kNoSlot;
  static_assert(SlotMap::kNoSlot == SparseSlotMap::kNoSlot);

  /// Catalog size below which kAuto never goes sparse.
  static constexpr std::uint64_t kSparseCatalogFloor = 1ull << 20;
  /// Minimum catalog/capacity ratio for kAuto to go sparse.
  static constexpr std::uint64_t kSparseRatio = 64;

  ContentIndex(IndexSpec spec, std::size_t capacity)
      : sparse_active_(choose_sparse(spec, capacity)),
        sparse_(sparse_active_ ? capacity : 0) {}

  bool sparse_active() const { return sparse_active_; }

  std::uint32_t find(ContentId id) const {
    return sparse_active_ ? sparse_.find(id) : dense_.find(id);
  }

  void insert(ContentId id, std::uint32_t slot) {
    if (sparse_active_) {
      sparse_.insert(id, slot);
    } else {
      dense_.insert(id, slot);
    }
  }

  void erase(ContentId id) {
    if (sparse_active_) {
      sparse_.erase(id);
    } else {
      dense_.erase(id);
    }
  }

  /// Removes the `count` live ids in `ids[0..count)` from the index. The
  /// sparse side wipes its O(capacity) table outright; the dense side
  /// erases per id — either way the cost is bounded by the cache capacity,
  /// never by the catalog (the reset()-path guarantee CachePolicy::clear()
  /// documents).
  void clear(const ContentId* ids, std::size_t count) {
    if (sparse_active_) {
      sparse_.clear();
    } else {
      for (std::size_t i = 0; i < count; ++i) dense_.erase(ids[i]);
    }
  }

  void prefetch(ContentId id) const {
    if (sparse_active_) {
      sparse_.prefetch(id);
    } else {
      dense_.prefetch(id);
    }
  }

 private:
  static bool choose_sparse(IndexSpec spec, std::size_t capacity) {
    switch (spec.mode) {
      case IndexMode::kDense:
        return false;
      case IndexMode::kSparse:
        return true;
      case IndexMode::kAuto:
        break;
    }
    if (spec.catalog_hint < kSparseCatalogFloor) return false;
    const std::uint64_t floor_capacity =
        capacity == 0 ? 1 : static_cast<std::uint64_t>(capacity);
    return spec.catalog_hint / floor_capacity >= kSparseRatio;
  }

  bool sparse_active_;
  SlotMap dense_;
  SparseSlotMap sparse_;
};

}  // namespace ccnopt::cache
