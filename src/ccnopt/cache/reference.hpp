// Reference replacement-policy implementations: the original node-based
// LRU/LFU/FIFO structures (std::list / std::map / std::deque) retained as
// behavioural oracles for the flat intrusive rewrites in lru.hpp, lfu.hpp,
// and fifo.hpp.
//
// The contract: for any request stream, a reference policy and its flat
// counterpart produce identical hit/miss results, identical eviction and
// insertion counts, and identical resident sets (identical iteration order
// too for LRU and FIFO). tests/test_cache_equivalence.cpp replays random
// and adversarial streams through both; sim A/B tests run whole simulations
// on either side via NetworkConfig::use_reference_policies and require
// byte-identical reports, traces, and metric exports.
//
// These are not built for speed — do not use them on the simulator hot
// path outside A/B testing.
#pragma once

#include <deque>
#include <list>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

/// Classic list + hash-map LRU, O(1) per operation.
class ReferenceLruCache final : public CachePolicy {
 public:
  explicit ReferenceLruCache(std::size_t capacity) : CachePolicy(capacity) {}

  std::size_t size() const override { return index_.size(); }
  bool contains(ContentId id) const override { return index_.count(id) > 0; }
  std::vector<ContentId> contents() const override;
  void clear() override {
    order_.clear();
    index_.clear();
  }
  const char* name() const override { return "lru"; }

 protected:
  bool handle(ContentId id) override;

 private:
  // Front = most recently used.
  std::list<ContentId> order_;
  std::unordered_map<ContentId, std::list<ContentId>::iterator> index_;
};

/// Frequency-bucket LFU over std::map (ordered buckets), ties broken by
/// recency within each bucket.
class ReferenceLfuCache final : public CachePolicy {
 public:
  explicit ReferenceLfuCache(std::size_t capacity) : CachePolicy(capacity) {}

  std::size_t size() const override { return index_.size(); }
  bool contains(ContentId id) const override { return index_.count(id) > 0; }
  std::vector<ContentId> contents() const override;
  void clear() override {
    buckets_.clear();
    index_.clear();
  }
  const char* name() const override { return "lfu"; }

  /// Request count of `id` if cached, 0 otherwise (for tests).
  std::uint64_t frequency(ContentId id) const;

 protected:
  bool handle(ContentId id) override;

 private:
  struct Entry {
    std::uint64_t frequency;
    std::list<ContentId>::iterator position;
  };
  // frequency -> ids at that frequency, most recent at front.
  std::map<std::uint64_t, std::list<ContentId>> buckets_;
  std::unordered_map<ContentId, Entry> index_;

  void bump(ContentId id, Entry& entry);
};

/// Deque + hash-set FIFO.
class ReferenceFifoCache final : public CachePolicy {
 public:
  explicit ReferenceFifoCache(std::size_t capacity) : CachePolicy(capacity) {}

  std::size_t size() const override { return members_.size(); }
  bool contains(ContentId id) const override { return members_.count(id) > 0; }
  std::vector<ContentId> contents() const override {
    return {order_.begin(), order_.end()};
  }
  void clear() override {
    order_.clear();
    members_.clear();
  }
  const char* name() const override { return "fifo"; }

 protected:
  bool handle(ContentId id) override;

 private:
  std::deque<ContentId> order_;  // front = oldest
  std::unordered_set<ContentId> members_;
};

/// Factory mirroring make_policy() but returning the reference
/// implementation of `kind` (Random has no flat rewrite; both factories
/// return the same RandomCache).
std::unique_ptr<CachePolicy> make_reference_policy(PolicyKind kind,
                                                   std::size_t capacity,
                                                   std::uint64_t seed = 1);

}  // namespace ccnopt::cache
