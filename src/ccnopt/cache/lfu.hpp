// Least-frequently-used replacement with O(1) operations on an intrusive
// frequency list (the Ketabi/Shokrollahi structure flattened into arrays):
// entries are slots in contiguous vectors linked by index, frequency
// buckets are pool-allocated nodes chained in ascending frequency order,
// and membership is a dense ContentId -> slot table. No per-request heap
// allocation and no std::map — bump, insert, and evict all touch a handful
// of contiguous words.
//
// Semantics are identical to ReferenceLfuCache (reference.hpp): each
// frequency bucket is an LRU list (most recent at head), eviction takes the
// least-recent entry of the lowest-frequency bucket. Under a stationary
// Zipf stream the policy converges to holding the top-capacity ranks — the
// paper's steady-state non-coordinated store (Section II's "canonical
// caching policy based on frequency").
#pragma once

#include "ccnopt/cache/content_index.hpp"
#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class LfuCache final : public CachePolicy {
 public:
  explicit LfuCache(std::size_t capacity, IndexSpec index = {});

  std::size_t size() const override { return size_; }
  bool contains(ContentId id) const override {
    return slots_.find(id) != ContentIndex::kNoSlot;
  }
  std::vector<ContentId> contents() const override;
  void clear() override;
  void prefetch(ContentId id) const override { slots_.prefetch(id); }
  const char* name() const override { return "lfu"; }

  /// Request count of `id` if cached, 0 otherwise (for tests).
  std::uint64_t frequency(ContentId id) const;

  bool index_is_sparse() const { return slots_.sparse_active(); }

 protected:
  bool handle(ContentId id) override;

 private:
  static constexpr std::uint32_t kNull = ContentIndex::kNoSlot;

  /// One frequency bucket: an intrusive LRU list of entry slots plus its
  /// position in the ascending-frequency bucket chain.
  struct Bucket {
    std::uint64_t freq = 0;
    std::uint32_t head = kNull;  // most recent entry
    std::uint32_t tail = kNull;  // least recent entry
    std::uint32_t prev = kNull;  // bucket with next-lower frequency
    std::uint32_t next = kNull;  // bucket with next-higher frequency
  };

  void bump(std::uint32_t slot);
  void detach(std::uint32_t slot);
  void attach_front(std::uint32_t slot, std::uint32_t bucket);
  std::uint32_t alloc_bucket(std::uint64_t freq);
  void free_bucket(std::uint32_t bucket);

  // Entry state, slot-indexed.
  std::vector<ContentId> ids_;
  std::vector<std::uint32_t> prev_;    // within-bucket links
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> bucket_;  // slot -> owning bucket node
  // Bucket pool (free-listed); lowest_ is the minimum-frequency bucket.
  std::vector<Bucket> buckets_;
  std::vector<std::uint32_t> free_buckets_;
  std::uint32_t lowest_ = kNull;
  std::uint32_t size_ = 0;
  ContentIndex slots_;
};

}  // namespace ccnopt::cache
