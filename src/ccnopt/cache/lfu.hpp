// Least-frequently-used replacement with O(1) operations via frequency
// buckets (the Ketabi/Shokrollahi structure): each frequency maps to an LRU
// list, ties broken by recency. Under a stationary Zipf stream this policy
// converges to holding the top-capacity ranks, which is the paper's
// steady-state non-coordinated store (Section II's "canonical caching
// policy based on frequency").
#pragma once

#include <list>
#include <map>
#include <unordered_map>

#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class LfuCache final : public CachePolicy {
 public:
  explicit LfuCache(std::size_t capacity) : CachePolicy(capacity) {}

  std::size_t size() const override { return index_.size(); }
  bool contains(ContentId id) const override { return index_.count(id) > 0; }
  std::vector<ContentId> contents() const override;
  const char* name() const override { return "lfu"; }

  /// Request count of `id` if cached, 0 otherwise (for tests).
  std::uint64_t frequency(ContentId id) const;

 protected:
  bool handle(ContentId id) override;

 private:
  struct Entry {
    std::uint64_t frequency;
    std::list<ContentId>::iterator position;
  };
  // frequency -> ids at that frequency, most recent at front.
  std::map<std::uint64_t, std::list<ContentId>> buckets_;
  std::unordered_map<ContentId, Entry> index_;

  void bump(ContentId id, Entry& entry);
};

}  // namespace ccnopt::cache
