// Random replacement: a uniformly random resident is evicted on overflow.
// Serves as the no-information baseline in the policy ablation.
#pragma once

#include <unordered_map>

#include "ccnopt/cache/policy.hpp"
#include "ccnopt/common/random.hpp"

namespace ccnopt::cache {

class RandomCache final : public CachePolicy {
 public:
  RandomCache(std::size_t capacity, std::uint64_t seed)
      : CachePolicy(capacity), rng_(seed) {}

  std::size_t size() const override { return slots_.size(); }
  bool contains(ContentId id) const override { return index_.count(id) > 0; }
  std::vector<ContentId> contents() const override { return slots_; }
  void clear() override {
    slots_.clear();
    index_.clear();
  }
  const char* name() const override { return "random"; }

 protected:
  bool handle(ContentId id) override;

 private:
  // Dense slot vector enables O(1) uniform victim selection; the index maps
  // id -> slot and is patched on swap-remove.
  std::vector<ContentId> slots_;
  std::unordered_map<ContentId, std::size_t> index_;
  Rng rng_;
};

}  // namespace ccnopt::cache
