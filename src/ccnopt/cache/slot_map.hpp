// Dense ContentId -> slot table backing the flat cache policies.
//
// Simulator content ids are Zipf ranks: 1-based, contiguous, bounded by the
// catalog size. An array indexed by id therefore resolves membership with a
// single load instead of a hash + probe per request. The table grows on
// demand (amortized doubling), and ids beyond kDenseLimit — possible only in
// synthetic/adversarial streams, never in the simulator — spill into a hash
// map so correctness holds for arbitrary 64-bit ids without unbounded
// memory.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class SlotMap {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  std::uint32_t find(ContentId id) const {
    if (id < dense_.size()) return dense_[id];
    if (id < kDenseLimit) return kNoSlot;
    const auto it = overflow_.find(id);
    return it == overflow_.end() ? kNoSlot : it->second;
  }

  void insert(ContentId id, std::uint32_t slot) {
    if (id < kDenseLimit) {
      if (id >= dense_.size()) grow(id);
      dense_[id] = slot;
    } else {
      overflow_[id] = slot;
    }
  }

  void erase(ContentId id) {
    if (id < dense_.size()) {
      dense_[id] = kNoSlot;
    } else if (id >= kDenseLimit) {
      overflow_.erase(id);
    }
  }

  /// Hints the id's table cell into cache ahead of a find/insert.
  void prefetch(ContentId id) const {
#if defined(__GNUC__) || defined(__clang__)
    if (id < dense_.size()) __builtin_prefetch(&dense_[id]);
#else
    (void)id;
#endif
  }

 private:
  // 16M dense ids (64 MB worst case), reached only by actually admitting
  // ids that large; the simulator's catalogs sit far below this.
  static constexpr ContentId kDenseLimit = 1ull << 24;

  void grow(ContentId id) {
    std::size_t next = dense_.empty() ? 64 : dense_.size() * 2;
    while (next <= id) next *= 2;
    if (next > kDenseLimit) next = kDenseLimit;
    dense_.resize(next, kNoSlot);
  }

  std::vector<std::uint32_t> dense_;
  std::unordered_map<ContentId, std::uint32_t> overflow_;
};

}  // namespace ccnopt::cache
