// Least-recently-used replacement on an intrusive array-backed list: the
// recency chain lives in contiguous index vectors (no per-node heap
// allocation) and membership is a ContentIndex — dense id -> slot array for
// small catalogs, capacity-proportional robin-hood table when the catalog
// dwarfs the capacity — so every operation is O(1) with cache-friendly
// accesses. Slots are recycled in place on eviction, so the arrays never
// exceed `capacity` entries.
//
// ReferenceLruCache (reference.hpp) keeps the classic std::list + hash map
// implementation; the equivalence property tests replay identical request
// streams through both and require identical hit/miss/eviction sequences.
#pragma once

#include "ccnopt/cache/content_index.hpp"
#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::size_t capacity, IndexSpec index = {});

  std::size_t size() const override { return size_; }
  bool contains(ContentId id) const override {
    return slots_.find(id) != ContentIndex::kNoSlot;
  }
  /// Most recently used first (the ReferenceLruCache order).
  std::vector<ContentId> contents() const override;
  void clear() override;
  void prefetch(ContentId id) const override { slots_.prefetch(id); }
  const char* name() const override { return "lru"; }

  bool index_is_sparse() const { return slots_.sparse_active(); }

 protected:
  bool handle(ContentId id) override;

 private:
  static constexpr std::uint32_t kNull = ContentIndex::kNoSlot;

  void unlink(std::uint32_t slot);
  void push_front(std::uint32_t slot);

  std::vector<ContentId> ids_;       // slot -> content id
  std::vector<std::uint32_t> prev_;  // slot -> more recent neighbour
  std::vector<std::uint32_t> next_;  // slot -> less recent neighbour
  std::uint32_t head_ = kNull;       // most recently used
  std::uint32_t tail_ = kNull;       // least recently used
  std::uint32_t size_ = 0;
  ContentIndex slots_;
};

}  // namespace ccnopt::cache
