// Least-recently-used replacement: classic list + hash map, O(1) per
// operation.
#pragma once

#include <list>
#include <unordered_map>

#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::size_t capacity) : CachePolicy(capacity) {}

  std::size_t size() const override { return index_.size(); }
  bool contains(ContentId id) const override { return index_.count(id) > 0; }
  std::vector<ContentId> contents() const override;
  const char* name() const override { return "lru"; }

 protected:
  bool handle(ContentId id) override;

 private:
  // Front = most recently used.
  std::list<ContentId> order_;
  std::unordered_map<ContentId, std::list<ContentId>::iterator> index_;
};

}  // namespace ccnopt::cache
