#include "ccnopt/cache/che.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/numerics/roots.hpp"

namespace ccnopt::cache {
namespace {

double expected_occupancy(const std::vector<double>& pmf, double t_c) {
  double total = 0.0;
  for (const double p : pmf) total += -std::expm1(-p * t_c);  // 1 - e^{-pT}
  return total;
}

}  // namespace

Expected<CheApproximation> CheApproximation::create(
    const popularity::ZipfDistribution& popularity, std::size_t capacity) {
  const std::uint64_t catalog = popularity.catalog_size();
  if (capacity < 1 || capacity >= catalog) {
    return Status(ErrorCode::kInvalidArgument,
                  "che: need 1 <= capacity < catalog");
  }
  std::vector<double> pmf(catalog);
  for (std::uint64_t i = 0; i < catalog; ++i) {
    pmf[i] = popularity.pmf(i + 1);
  }

  // g(T) = sum_i (1 - e^{-p_i T}) - C: g(0) = -C < 0, g(inf) = N - C > 0.
  const auto g = [&pmf, capacity](double t) {
    return expected_occupancy(pmf, t) -
           static_cast<double>(capacity);
  };
  // Upper bracket: occupancy(T) >= C once every one of the top 2C contents
  // has p_i T >> 1; grow geometrically from C (the T ~ C ballpark of a
  // uniform catalog).
  double hi = static_cast<double>(capacity);
  int expansions = 0;
  while (g(hi) <= 0.0) {
    hi *= 2.0;
    if (++expansions > 200) {
      return Status(ErrorCode::kNumericalFailure,
                    "che: could not bracket the characteristic time");
    }
  }
  const auto root = numerics::brent(g, 0.0, hi,
                                    numerics::RootOptions{1e-9, 1e-9, 300});
  if (!root) return root.status();
  return CheApproximation(std::move(pmf), capacity, root->root);
}

CheApproximation::CheApproximation(std::vector<double> pmf,
                                   std::size_t capacity, double t_c)
    : pmf_(std::move(pmf)), capacity_(capacity), t_c_(t_c) {
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double h = -std::expm1(-pmf_[i] * t_c_);
    aggregate_ += pmf_[i] * h;
    if (i < capacity_) ideal_ += pmf_[i];
  }
}

double CheApproximation::hit_ratio(std::uint64_t rank) const {
  CCNOPT_EXPECTS(rank >= 1 && rank <= pmf_.size());
  return -std::expm1(-pmf_[rank - 1] * t_c_);
}

}  // namespace ccnopt::cache
