// Content-store replacement policies.
//
// A policy owns a bounded set of content ids (Zipf ranks). `admit` is the
// single entry point: it records a request, returns whether it hit, and on
// a miss inserts the content (evicting per policy). StaticCache is the
// exception — it never admits, modeling a provisioned (steady-state or
// coordinator-assigned) store.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/error.hpp"

namespace ccnopt::cache {

using ContentId = std::uint64_t;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  std::uint64_t requests() const { return hits + misses; }
  double hit_ratio() const {
    return requests() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(requests());
  }
  void reset() { *this = CacheStats{}; }
};

class CachePolicy {
 public:
  /// A zero-capacity policy is legal: every request misses and nothing is
  /// ever stored (router R0 in the paper's motivating example).
  explicit CachePolicy(std::size_t capacity) : capacity_(capacity) {}
  virtual ~CachePolicy() = default;
  CachePolicy(const CachePolicy&) = delete;
  CachePolicy& operator=(const CachePolicy&) = delete;

  std::size_t capacity() const { return capacity_; }
  virtual std::size_t size() const = 0;

  /// Non-mutating membership test (no recency/frequency update).
  virtual bool contains(ContentId id) const = 0;

  /// Records a request for `id`: returns true on hit (updating policy
  /// metadata), false on miss (inserting per policy, evicting if full).
  bool admit(ContentId id) {
    const bool hit = handle(id);
    if (hit) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
    CCNOPT_ENSURES(size() <= capacity());
    return hit;
  }

  /// Snapshot of the stored ids, in no particular order.
  virtual std::vector<ContentId> contents() const = 0;

  /// Removes every stored content, keeping capacity and accumulated stats.
  /// Cost is proportional to the policy's own state (O(capacity) at most),
  /// never to the id space: a sparse-indexed cache over a 10^7 catalog must
  /// not touch 10^7 words to reset (see cache/content_index.hpp).
  virtual void clear() = 0;

  /// Hints the membership-lookup state of `id` into cache ahead of an
  /// admit()/contains() — issued by the simulator's batched request engine
  /// one request ahead. Never mutates; default is a no-op.
  virtual void prefetch(ContentId id) const { (void)id; }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Policy name for reports ("lru", "lfu", ...).
  virtual const char* name() const = 0;

 protected:
  virtual bool handle(ContentId id) = 0;

  void count_insertion() { ++stats_.insertions; }
  void count_eviction() { ++stats_.evictions; }

 private:
  std::size_t capacity_;
  CacheStats stats_;
};

enum class PolicyKind { kLru, kLfu, kFifo, kRandom };

const char* to_string(PolicyKind kind);

/// Membership-index selection for the flat intrusive policies (LRU/LFU/
/// FIFO). Dense is an array indexed by content id — one load per lookup but
/// O(max id) memory; sparse is a robin-hood table sized by the cache
/// capacity — O(capacity) memory at a small constant per lookup. kAuto
/// picks sparse exactly when the declared catalog dwarfs the capacity.
enum class IndexMode { kAuto, kDense, kSparse };

const char* to_string(IndexMode mode);

struct IndexSpec {
  IndexMode mode = IndexMode::kAuto;
  /// Catalog size the ids are drawn from; 0 = unknown (kAuto then stays
  /// dense, the historical behaviour).
  std::uint64_t catalog_hint = 0;
};

/// Factory for the replacement policies (StaticCache and PartitionedStore
/// have richer constructors and are created directly). Random policies draw
/// from `seed`; `index` selects the membership index of the flat policies
/// (ignored by kRandom, which is hash-based either way).
std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, std::size_t capacity,
                                         std::uint64_t seed = 1,
                                         IndexSpec index = {});

}  // namespace ccnopt::cache
