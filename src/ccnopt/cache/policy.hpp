// Content-store replacement policies.
//
// A policy owns a bounded set of content ids (Zipf ranks). `admit` is the
// single entry point: it records a request, returns whether it hit, and on
// a miss inserts the content (evicting per policy). StaticCache is the
// exception — it never admits, modeling a provisioned (steady-state or
// coordinator-assigned) store.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/error.hpp"

namespace ccnopt::cache {

using ContentId = std::uint64_t;

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;

  std::uint64_t requests() const { return hits + misses; }
  double hit_ratio() const {
    return requests() == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(requests());
  }
  void reset() { *this = CacheStats{}; }
};

class CachePolicy {
 public:
  /// A zero-capacity policy is legal: every request misses and nothing is
  /// ever stored (router R0 in the paper's motivating example).
  explicit CachePolicy(std::size_t capacity) : capacity_(capacity) {}
  virtual ~CachePolicy() = default;
  CachePolicy(const CachePolicy&) = delete;
  CachePolicy& operator=(const CachePolicy&) = delete;

  std::size_t capacity() const { return capacity_; }
  virtual std::size_t size() const = 0;

  /// Non-mutating membership test (no recency/frequency update).
  virtual bool contains(ContentId id) const = 0;

  /// Records a request for `id`: returns true on hit (updating policy
  /// metadata), false on miss (inserting per policy, evicting if full).
  bool admit(ContentId id) {
    const bool hit = handle(id);
    if (hit) {
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
    CCNOPT_ENSURES(size() <= capacity());
    return hit;
  }

  /// Snapshot of the stored ids, in no particular order.
  virtual std::vector<ContentId> contents() const = 0;

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Policy name for reports ("lru", "lfu", ...).
  virtual const char* name() const = 0;

 protected:
  virtual bool handle(ContentId id) = 0;

  void count_insertion() { ++stats_.insertions; }
  void count_eviction() { ++stats_.evictions; }

 private:
  std::size_t capacity_;
  CacheStats stats_;
};

enum class PolicyKind { kLru, kLfu, kFifo, kRandom };

const char* to_string(PolicyKind kind);

/// Factory for the replacement policies (StaticCache and PartitionedStore
/// have richer constructors and are created directly). Random policies draw
/// from `seed`.
std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, std::size_t capacity,
                                         std::uint64_t seed = 1);

}  // namespace ccnopt::cache
