#include "ccnopt/cache/static_cache.hpp"

#include <numeric>

namespace ccnopt::cache {

StaticCache::StaticCache(std::vector<ContentId> ids)
    : CachePolicy(ids.size()), members_(ids.begin(), ids.end()) {
  CCNOPT_EXPECTS(members_.size() == ids.size());  // no duplicates
}

std::vector<ContentId> StaticCache::top_rank_ids(std::size_t k) {
  std::vector<ContentId> ids(k);
  std::iota(ids.begin(), ids.end(), ContentId{1});
  return ids;
}

void StaticCache::reprovision(std::vector<ContentId> ids) {
  CCNOPT_EXPECTS(ids.size() <= capacity());
  members_.clear();
  members_.insert(ids.begin(), ids.end());
  CCNOPT_EXPECTS(members_.size() == ids.size());
}

}  // namespace ccnopt::cache
