#include "ccnopt/cache/policy.hpp"

#include "ccnopt/cache/fifo.hpp"
#include "ccnopt/cache/lfu.hpp"
#include "ccnopt/cache/lru.hpp"
#include "ccnopt/cache/random_policy.hpp"

namespace ccnopt::cache {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return "lru";
    case PolicyKind::kLfu:
      return "lfu";
    case PolicyKind::kFifo:
      return "fifo";
    case PolicyKind::kRandom:
      return "random";
  }
  return "unknown";
}

const char* to_string(IndexMode mode) {
  switch (mode) {
    case IndexMode::kAuto:
      return "auto";
    case IndexMode::kDense:
      return "dense";
    case IndexMode::kSparse:
      return "sparse";
  }
  return "unknown";
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, std::size_t capacity,
                                         std::uint64_t seed, IndexSpec index) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruCache>(capacity, index);
    case PolicyKind::kLfu:
      return std::make_unique<LfuCache>(capacity, index);
    case PolicyKind::kFifo:
      return std::make_unique<FifoCache>(capacity, index);
    case PolicyKind::kRandom:
      // RandomCache keeps its hash-map index: victim selection already
      // requires a dense slot vector, so there is no O(id-space) storage.
      return std::make_unique<RandomCache>(capacity, seed);
  }
  CCNOPT_ASSERT(false);
  return nullptr;
}

}  // namespace ccnopt::cache
