#include "ccnopt/cache/policy.hpp"

#include "ccnopt/cache/fifo.hpp"
#include "ccnopt/cache/lfu.hpp"
#include "ccnopt/cache/lru.hpp"
#include "ccnopt/cache/random_policy.hpp"

namespace ccnopt::cache {

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return "lru";
    case PolicyKind::kLfu:
      return "lfu";
    case PolicyKind::kFifo:
      return "fifo";
    case PolicyKind::kRandom:
      return "random";
  }
  return "unknown";
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, std::size_t capacity,
                                         std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruCache>(capacity);
    case PolicyKind::kLfu:
      return std::make_unique<LfuCache>(capacity);
    case PolicyKind::kFifo:
      return std::make_unique<FifoCache>(capacity);
    case PolicyKind::kRandom:
      return std::make_unique<RandomCache>(capacity, seed);
  }
  CCNOPT_ASSERT(false);
  return nullptr;
}

}  // namespace ccnopt::cache
