#include "ccnopt/cache/lfu.hpp"

namespace ccnopt::cache {

LfuCache::LfuCache(std::size_t capacity, IndexSpec index)
    : CachePolicy(capacity), slots_(index, capacity) {
  CCNOPT_EXPECTS(capacity < kNull);
  ids_.resize(capacity);
  prev_.resize(capacity);
  next_.resize(capacity);
  bucket_.resize(capacity);
}

void LfuCache::clear() {
  // Slots [0, size_) are always live (evicted slots are reused
  // immediately), so the reset stays O(size + buckets), never O(catalog).
  slots_.clear(ids_.data(), size_);
  buckets_.clear();
  free_buckets_.clear();
  lowest_ = kNull;
  size_ = 0;
}

std::vector<ContentId> LfuCache::contents() const {
  std::vector<ContentId> out;
  out.reserve(size_);
  // Slots [0, size_) are always live: evicted slots are reused immediately.
  for (std::uint32_t slot = 0; slot < size_; ++slot) out.push_back(ids_[slot]);
  return out;
}

std::uint64_t LfuCache::frequency(ContentId id) const {
  const std::uint32_t slot = slots_.find(id);
  return slot == ContentIndex::kNoSlot ? 0 : buckets_[bucket_[slot]].freq;
}

std::uint32_t LfuCache::alloc_bucket(std::uint64_t freq) {
  std::uint32_t node;
  if (!free_buckets_.empty()) {
    node = free_buckets_.back();
    free_buckets_.pop_back();
  } else {
    node = static_cast<std::uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  buckets_[node] = Bucket{freq, kNull, kNull, kNull, kNull};
  return node;
}

void LfuCache::free_bucket(std::uint32_t bucket) {
  Bucket& b = buckets_[bucket];
  (b.prev == kNull ? lowest_ : buckets_[b.prev].next) = b.next;
  if (b.next != kNull) buckets_[b.next].prev = b.prev;
  free_buckets_.push_back(bucket);
}

void LfuCache::detach(std::uint32_t slot) {
  Bucket& b = buckets_[bucket_[slot]];
  const std::uint32_t p = prev_[slot];
  const std::uint32_t n = next_[slot];
  (p == kNull ? b.head : next_[p]) = n;
  (n == kNull ? b.tail : prev_[n]) = p;
}

void LfuCache::attach_front(std::uint32_t slot, std::uint32_t bucket) {
  Bucket& b = buckets_[bucket];
  prev_[slot] = kNull;
  next_[slot] = b.head;
  if (b.head != kNull) prev_[b.head] = slot;
  b.head = slot;
  if (b.tail == kNull) b.tail = slot;
  bucket_[slot] = bucket;
}

void LfuCache::bump(std::uint32_t slot) {
  const std::uint32_t from = bucket_[slot];
  const std::uint64_t freq = buckets_[from].freq;
  detach(slot);
  const bool emptied = buckets_[from].head == kNull;
  const std::uint32_t higher = buckets_[from].next;
  std::uint32_t target;
  if (higher != kNull && buckets_[higher].freq == freq + 1) {
    target = higher;
    if (emptied) free_bucket(from);
  } else if (emptied) {
    // Reuse the emptied bucket in place: its chain position stays valid
    // because the next bucket (if any) has frequency > freq + 1.
    buckets_[from].freq = freq + 1;
    target = from;
  } else {
    target = alloc_bucket(freq + 1);
    Bucket& t = buckets_[target];
    t.prev = from;
    t.next = higher;
    buckets_[from].next = target;
    if (higher != kNull) buckets_[higher].prev = target;
  }
  attach_front(slot, target);
}

bool LfuCache::handle(ContentId id) {
  const std::uint32_t found = slots_.find(id);
  if (found != ContentIndex::kNoSlot) {
    bump(found);
    return true;
  }
  if (capacity() == 0) return false;
  std::uint32_t slot;
  if (size_ == capacity()) {
    // Evict the least-frequent bucket's least-recent entry.
    slot = buckets_[lowest_].tail;
    detach(slot);
    if (buckets_[lowest_].head == kNull) free_bucket(lowest_);
    slots_.erase(ids_[slot]);
    count_eviction();
  } else {
    slot = size_++;
  }
  std::uint32_t target;
  if (lowest_ != kNull && buckets_[lowest_].freq == 1) {
    target = lowest_;
  } else {
    target = alloc_bucket(1);
    buckets_[target].next = lowest_;
    if (lowest_ != kNull) buckets_[lowest_].prev = target;
    lowest_ = target;
  }
  ids_[slot] = id;
  attach_front(slot, target);
  slots_.insert(id, slot);
  count_insertion();
  return false;
}

}  // namespace ccnopt::cache
