#include "ccnopt/cache/lfu.hpp"

namespace ccnopt::cache {

std::vector<ContentId> LfuCache::contents() const {
  std::vector<ContentId> out;
  out.reserve(index_.size());
  for (const auto& [id, entry] : index_) out.push_back(id);
  return out;
}

std::uint64_t LfuCache::frequency(ContentId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? 0 : it->second.frequency;
}

void LfuCache::bump(ContentId id, Entry& entry) {
  auto bucket = buckets_.find(entry.frequency);
  bucket->second.erase(entry.position);
  if (bucket->second.empty()) buckets_.erase(bucket);
  ++entry.frequency;
  auto& next = buckets_[entry.frequency];
  next.push_front(id);
  entry.position = next.begin();
}

bool LfuCache::handle(ContentId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    bump(id, it->second);
    return true;
  }
  if (capacity() == 0) return false;
  if (index_.size() == capacity()) {
    // Evict the least-frequent bucket's least-recent entry.
    auto lowest = buckets_.begin();
    const ContentId victim = lowest->second.back();
    lowest->second.pop_back();
    if (lowest->second.empty()) buckets_.erase(lowest);
    index_.erase(victim);
    count_eviction();
  }
  auto& bucket = buckets_[1];
  bucket.push_front(id);
  index_.emplace(id, Entry{1, bucket.begin()});
  count_insertion();
  return false;
}

}  // namespace ccnopt::cache
