// First-in-first-out replacement on a flat ring buffer: insertion order
// lives in a contiguous vector cycled by an `oldest` cursor, membership in
// a dense ContentId -> slot table. No recency update, no per-node
// allocation; every operation is O(1).
//
// ReferenceFifoCache (reference.hpp) keeps the deque + hash set
// implementation for the equivalence property tests.
#pragma once

#include "ccnopt/cache/content_index.hpp"
#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::size_t capacity, IndexSpec index = {});

  std::size_t size() const override { return size_; }
  bool contains(ContentId id) const override {
    return members_.find(id) != ContentIndex::kNoSlot;
  }
  /// Oldest first (the ReferenceFifoCache order).
  std::vector<ContentId> contents() const override;
  void clear() override;
  void prefetch(ContentId id) const override { members_.prefetch(id); }
  const char* name() const override { return "fifo"; }

  bool index_is_sparse() const { return members_.sparse_active(); }

 protected:
  bool handle(ContentId id) override;

 private:
  std::vector<ContentId> ring_;  // insertion ring, ring_[oldest_] = oldest
  std::size_t oldest_ = 0;
  std::size_t size_ = 0;
  ContentIndex members_;
};

}  // namespace ccnopt::cache
