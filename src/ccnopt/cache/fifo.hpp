// First-in-first-out replacement: insertion order only, no recency update.
#pragma once

#include <deque>
#include <unordered_set>

#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::size_t capacity) : CachePolicy(capacity) {}

  std::size_t size() const override { return members_.size(); }
  bool contains(ContentId id) const override { return members_.count(id) > 0; }
  std::vector<ContentId> contents() const override {
    return {order_.begin(), order_.end()};
  }
  const char* name() const override { return "fifo"; }

 protected:
  bool handle(ContentId id) override;

 private:
  std::deque<ContentId> order_;  // front = oldest
  std::unordered_set<ContentId> members_;
};

}  // namespace ccnopt::cache
