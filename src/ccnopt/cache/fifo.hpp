// First-in-first-out replacement on a flat ring buffer: insertion order
// lives in a contiguous vector cycled by an `oldest` cursor, membership in
// a dense ContentId -> slot table. No recency update, no per-node
// allocation; every operation is O(1).
//
// ReferenceFifoCache (reference.hpp) keeps the deque + hash set
// implementation for the equivalence property tests.
#pragma once

#include "ccnopt/cache/policy.hpp"
#include "ccnopt/cache/slot_map.hpp"

namespace ccnopt::cache {

class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::size_t capacity);

  std::size_t size() const override { return size_; }
  bool contains(ContentId id) const override {
    return members_.find(id) != SlotMap::kNoSlot;
  }
  /// Oldest first (the ReferenceFifoCache order).
  std::vector<ContentId> contents() const override;
  const char* name() const override { return "fifo"; }

 protected:
  bool handle(ContentId id) override;

 private:
  std::vector<ContentId> ring_;  // insertion ring, ring_[oldest_] = oldest
  std::size_t oldest_ = 0;
  std::size_t size_ = 0;
  SlotMap members_;
};

}  // namespace ccnopt::cache
