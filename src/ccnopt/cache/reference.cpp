#include "ccnopt/cache/reference.hpp"

#include "ccnopt/cache/random_policy.hpp"

namespace ccnopt::cache {

std::vector<ContentId> ReferenceLruCache::contents() const {
  return {order_.begin(), order_.end()};
}

bool ReferenceLruCache::handle(ContentId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (capacity() == 0) return false;
  if (index_.size() == capacity()) {
    index_.erase(order_.back());
    order_.pop_back();
    count_eviction();
  }
  order_.push_front(id);
  index_.emplace(id, order_.begin());
  count_insertion();
  return false;
}

std::vector<ContentId> ReferenceLfuCache::contents() const {
  std::vector<ContentId> out;
  out.reserve(index_.size());
  for (const auto& [id, entry] : index_) out.push_back(id);
  return out;
}

std::uint64_t ReferenceLfuCache::frequency(ContentId id) const {
  const auto it = index_.find(id);
  return it == index_.end() ? 0 : it->second.frequency;
}

void ReferenceLfuCache::bump(ContentId id, Entry& entry) {
  auto bucket = buckets_.find(entry.frequency);
  bucket->second.erase(entry.position);
  if (bucket->second.empty()) buckets_.erase(bucket);
  ++entry.frequency;
  auto& next = buckets_[entry.frequency];
  next.push_front(id);
  entry.position = next.begin();
}

bool ReferenceLfuCache::handle(ContentId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    bump(id, it->second);
    return true;
  }
  if (capacity() == 0) return false;
  if (index_.size() == capacity()) {
    // Evict the least-frequent bucket's least-recent entry.
    auto lowest = buckets_.begin();
    const ContentId victim = lowest->second.back();
    lowest->second.pop_back();
    if (lowest->second.empty()) buckets_.erase(lowest);
    index_.erase(victim);
    count_eviction();
  }
  auto& bucket = buckets_[1];
  bucket.push_front(id);
  index_.emplace(id, Entry{1, bucket.begin()});
  count_insertion();
  return false;
}

bool ReferenceFifoCache::handle(ContentId id) {
  if (members_.count(id) > 0) return true;
  if (capacity() == 0) return false;
  if (members_.size() == capacity()) {
    members_.erase(order_.front());
    order_.pop_front();
    count_eviction();
  }
  order_.push_back(id);
  members_.insert(id);
  count_insertion();
  return false;
}

std::unique_ptr<CachePolicy> make_reference_policy(PolicyKind kind,
                                                   std::size_t capacity,
                                                   std::uint64_t seed) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<ReferenceLruCache>(capacity);
    case PolicyKind::kLfu:
      return std::make_unique<ReferenceLfuCache>(capacity);
    case PolicyKind::kFifo:
      return std::make_unique<ReferenceFifoCache>(capacity);
    case PolicyKind::kRandom:
      return std::make_unique<RandomCache>(capacity, seed);
  }
  CCNOPT_ASSERT(false);
  return nullptr;
}

}  // namespace ccnopt::cache
