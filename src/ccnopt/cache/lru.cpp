#include "ccnopt/cache/lru.hpp"

namespace ccnopt::cache {

LruCache::LruCache(std::size_t capacity, IndexSpec index)
    : CachePolicy(capacity), slots_(index, capacity) {
  CCNOPT_EXPECTS(capacity < kNull);
  ids_.resize(capacity);
  prev_.resize(capacity);
  next_.resize(capacity);
}

void LruCache::clear() {
  // Slots [0, size_) are always live, so handing them to the index bounds
  // the reset at O(size) dense / O(capacity) sparse — never O(catalog).
  slots_.clear(ids_.data(), size_);
  head_ = kNull;
  tail_ = kNull;
  size_ = 0;
}

std::vector<ContentId> LruCache::contents() const {
  std::vector<ContentId> out;
  out.reserve(size_);
  for (std::uint32_t slot = head_; slot != kNull; slot = next_[slot]) {
    out.push_back(ids_[slot]);
  }
  return out;
}

void LruCache::unlink(std::uint32_t slot) {
  const std::uint32_t p = prev_[slot];
  const std::uint32_t n = next_[slot];
  (p == kNull ? head_ : next_[p]) = n;
  (n == kNull ? tail_ : prev_[n]) = p;
}

void LruCache::push_front(std::uint32_t slot) {
  prev_[slot] = kNull;
  next_[slot] = head_;
  if (head_ != kNull) prev_[head_] = slot;
  head_ = slot;
  if (tail_ == kNull) tail_ = slot;
}

bool LruCache::handle(ContentId id) {
  const std::uint32_t found = slots_.find(id);
  if (found != ContentIndex::kNoSlot) {
    if (head_ != found) {
      unlink(found);
      push_front(found);
    }
    return true;
  }
  if (capacity() == 0) return false;
  std::uint32_t slot;
  if (size_ == capacity()) {
    slot = tail_;
    unlink(slot);
    slots_.erase(ids_[slot]);
    count_eviction();
  } else {
    slot = size_++;
  }
  ids_[slot] = id;
  push_front(slot);
  slots_.insert(id, slot);
  count_insertion();
  return false;
}

}  // namespace ccnopt::cache
