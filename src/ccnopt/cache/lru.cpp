#include "ccnopt/cache/lru.hpp"

namespace ccnopt::cache {

std::vector<ContentId> LruCache::contents() const {
  return {order_.begin(), order_.end()};
}

bool LruCache::handle(ContentId id) {
  const auto it = index_.find(id);
  if (it != index_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }
  if (capacity() == 0) return false;
  if (index_.size() == capacity()) {
    index_.erase(order_.back());
    order_.pop_back();
    count_eviction();
  }
  order_.push_front(id);
  index_.emplace(id, order_.begin());
  count_insertion();
  return false;
}

}  // namespace ccnopt::cache
