// Provisioned content store: holds a fixed set, never admits on miss.
// Models the steady-state stores of the analytical model — the top-ranked
// local partition and the coordinator-assigned partition.
#pragma once

#include <unordered_set>

#include "ccnopt/cache/policy.hpp"

namespace ccnopt::cache {

class StaticCache final : public CachePolicy {
 public:
  /// Holds exactly `ids` (its size defines the capacity).
  explicit StaticCache(std::vector<ContentId> ids);

  /// The id set {1, ..., k}: the top k ranks (rank = popularity order),
  /// the steady-state non-coordinated store of Section III-A.
  static std::vector<ContentId> top_rank_ids(std::size_t k);

  /// Convenience factory for a store holding exactly the top `k` ranks.
  static std::unique_ptr<StaticCache> make_top(std::size_t k) {
    return std::make_unique<StaticCache>(top_rank_ids(k));
  }

  std::size_t size() const override { return members_.size(); }
  bool contains(ContentId id) const override { return members_.count(id) > 0; }
  std::vector<ContentId> contents() const override {
    return {members_.begin(), members_.end()};
  }
  void clear() override { members_.clear(); }
  const char* name() const override { return "static"; }

  /// Replaces the provisioned set (a coordinator epoch update).
  void reprovision(std::vector<ContentId> ids);

 protected:
  bool handle(ContentId id) override { return members_.count(id) > 0; }

 private:
  std::unordered_set<ContentId> members_;
};

}  // namespace ccnopt::cache
