#include "ccnopt/cache/fifo.hpp"

namespace ccnopt::cache {

FifoCache::FifoCache(std::size_t capacity, IndexSpec index)
    : CachePolicy(capacity), members_(index, capacity) {
  CCNOPT_EXPECTS(capacity < ContentIndex::kNoSlot);
  ring_.resize(capacity);
}

void FifoCache::clear() {
  // ring_[0..size_) are exactly the live ids: oldest_ only ever advances
  // once the ring is full, at which point size_ == capacity. The index
  // reset is therefore O(size) dense / O(capacity) sparse.
  members_.clear(ring_.data(), size_);
  oldest_ = 0;
  size_ = 0;
}

std::vector<ContentId> FifoCache::contents() const {
  std::vector<ContentId> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(oldest_ + i) % capacity()]);
  }
  return out;
}

bool FifoCache::handle(ContentId id) {
  if (members_.find(id) != ContentIndex::kNoSlot) return true;
  if (capacity() == 0) return false;
  std::size_t slot;
  if (size_ == capacity()) {
    slot = oldest_;
    members_.erase(ring_[slot]);
    oldest_ = (oldest_ + 1) % capacity();
    count_eviction();
  } else {
    slot = (oldest_ + size_) % capacity();
    ++size_;
  }
  ring_[slot] = id;
  members_.insert(id, static_cast<std::uint32_t>(slot));
  count_insertion();
  return false;
}

}  // namespace ccnopt::cache
