#include "ccnopt/cache/fifo.hpp"

namespace ccnopt::cache {

bool FifoCache::handle(ContentId id) {
  if (members_.count(id) > 0) return true;
  if (capacity() == 0) return false;
  if (members_.size() == capacity()) {
    members_.erase(order_.front());
    order_.pop_front();
    count_eviction();
  }
  order_.push_back(id);
  members_.insert(id);
  count_insertion();
  return false;
}

}  // namespace ccnopt::cache
