// Geographic helpers: great-circle distance and the distance -> latency
// model used to synthesize link latencies for the embedded topologies.
#pragma once

#include "ccnopt/topology/graph.hpp"

namespace ccnopt::topology {

/// Great-circle distance between two points (haversine), in kilometers.
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// Link latency model: one-way propagation at `km_per_ms` (signal speed in
/// fiber, ~200 km/ms) over `route_factor` x the great-circle distance
/// (fiber paths are not straight lines), plus fixed per-hop equipment
/// delay. All synthesized datasets use the defaults.
struct LatencyModel {
  double km_per_ms = 200.0;
  double route_factor = 1.0;
  double per_hop_overhead_ms = 0.1;

  double link_latency_ms(const GeoPoint& a, const GeoPoint& b) const;
};

/// Adds an undirected link between the nodes named `a` and `b`, with the
/// latency computed from their coordinates. Aborts on unknown names or
/// duplicate links (dataset construction is compile-time-authored data, so
/// failures are programming errors).
void add_geo_edge(Graph& g, const std::string& a, const std::string& b,
                  const LatencyModel& model = {});

}  // namespace ccnopt::topology
