#include "ccnopt/topology/generators.hpp"

#include <cmath>
#include <string>
#include <vector>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/topology/geo.hpp"

namespace ccnopt::topology {
namespace {

Graph make_named(const std::string& name, std::size_t n) {
  Graph g(name);
  for (std::size_t i = 0; i < n; ++i) {
    g.add_node(NodeInfo{name + "-" + std::to_string(i), GeoPoint{}});
  }
  return g;
}

void must_add(Graph& g, NodeId u, NodeId v, double latency_ms) {
  const Status status = g.add_edge(u, v, latency_ms);
  CCNOPT_ASSERT(status.is_ok());
}

}  // namespace

Graph make_ring(std::size_t n, double latency_ms) {
  CCNOPT_EXPECTS(n >= 3);
  Graph g = make_named("ring", n);
  for (std::size_t i = 0; i < n; ++i) {
    must_add(g, static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n),
             latency_ms);
  }
  return g;
}

Graph make_line(std::size_t n, double latency_ms) {
  CCNOPT_EXPECTS(n >= 2);
  Graph g = make_named("line", n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    must_add(g, static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
             latency_ms);
  }
  return g;
}

Graph make_star(std::size_t n, double latency_ms) {
  CCNOPT_EXPECTS(n >= 2);
  Graph g = make_named("star", n);
  for (std::size_t i = 1; i < n; ++i) {
    must_add(g, 0, static_cast<NodeId>(i), latency_ms);
  }
  return g;
}

Graph make_grid(std::size_t rows, std::size_t cols, double latency_ms) {
  CCNOPT_EXPECTS(rows >= 1 && cols >= 1);
  CCNOPT_EXPECTS(rows * cols >= 2);
  Graph g = make_named("grid", rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) must_add(g, id(r, c), id(r, c + 1), latency_ms);
      if (r + 1 < rows) must_add(g, id(r, c), id(r + 1, c), latency_ms);
    }
  }
  return g;
}

Graph make_full_mesh(std::size_t n, double latency_ms) {
  CCNOPT_EXPECTS(n >= 2);
  Graph g = make_named("mesh", n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      must_add(g, static_cast<NodeId>(i), static_cast<NodeId>(j), latency_ms);
    }
  }
  return g;
}

Graph make_waxman(std::size_t n, Rng& rng, const WaxmanOptions& options) {
  CCNOPT_EXPECTS(n >= 2);
  CCNOPT_EXPECTS(options.alpha > 0.0 && options.beta > 0.0);
  CCNOPT_EXPECTS(options.side_km > 0.0);

  Graph g("waxman");
  // Treat the square as a small flat patch: ~111 km per degree of latitude,
  // scaled longitude near the placement latitude band.
  const double deg_span = options.side_km / 111.0;
  std::vector<GeoPoint> points(n);
  for (std::size_t i = 0; i < n; ++i) {
    points[i] = GeoPoint{rng.uniform(0.0, deg_span),
                         rng.uniform(0.0, deg_span)};
    g.add_node(NodeInfo{"waxman-" + std::to_string(i), points[i]});
  }
  const LatencyModel latency_model{};

  // Spanning backbone: connect node i to its nearest already-placed node so
  // the graph is connected regardless of the random draws below.
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t nearest = 0;
    double best = haversine_km(points[i], points[0]);
    for (std::size_t j = 1; j < i; ++j) {
      const double d = haversine_km(points[i], points[j]);
      if (d < best) {
        best = d;
        nearest = j;
      }
    }
    must_add(g, static_cast<NodeId>(i), static_cast<NodeId>(nearest),
             latency_model.link_latency_ms(points[i], points[nearest]));
  }

  const double diagonal = options.side_km * std::sqrt(2.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (g.has_edge(static_cast<NodeId>(i), static_cast<NodeId>(j))) continue;
      const double d = haversine_km(points[i], points[j]);
      const double p = options.alpha * std::exp(-d / (options.beta * diagonal));
      if (rng.bernoulli(std::min(1.0, p))) {
        must_add(g, static_cast<NodeId>(i), static_cast<NodeId>(j),
                 latency_model.link_latency_ms(points[i], points[j]));
      }
    }
  }
  return g;
}

}  // namespace ccnopt::topology
