// Extraction of the paper's Table III parameters from a topology
// (Section V-A):
//   n          — number of routers, |V|
//   w          — unit coordination cost, max_{i,j} d_ij (max pairwise
//                shortest-path latency; coordination messages run in
//                parallel, so the slowest pair gates convergence)
//   d1 - d0    — mean shortest-path separation between routers, in both
//                milliseconds (1/|V|^2 * sum d_ij) and hops
//                (1/|V|^2 * sum h_ij); the |V|^2 denominator includes the
//                zero i = j terms, matching the paper's formula.
#pragma once

#include "ccnopt/topology/graph.hpp"
#include "ccnopt/topology/shortest_paths.hpp"

namespace ccnopt::topology {

struct TopologyParameters {
  std::string name;
  std::size_t n = 0;                 // |V|
  std::size_t directed_edges = 0;    // |E| in the paper's Table II convention
  double unit_cost_w_ms = 0.0;       // max pairwise latency
  double mean_latency_ms = 0.0;      // (d1 - d0) in milliseconds
  double mean_hops = 0.0;            // (d1 - d0) in hops
  double diameter_hops = 0.0;        // max pairwise hop count
};

/// Derives the Table III row for `g`. Precondition: g is connected and has
/// at least 2 nodes.
TopologyParameters derive_parameters(const Graph& g);

}  // namespace ccnopt::topology
