// Undirected weighted network graph: routers as nodes, links carrying a
// one-way latency in milliseconds. This is the substrate from which the
// paper's Table III parameters (n, w, d1 - d0) are derived.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ccnopt/common/error.hpp"

namespace ccnopt::topology {

using NodeId = std::uint32_t;

/// Geographic coordinates (degrees); used by the latency model.
struct GeoPoint {
  double lat_deg = 0.0;
  double lon_deg = 0.0;
};

struct NodeInfo {
  std::string name;
  GeoPoint location;
};

/// One directed half of an undirected link.
struct Edge {
  NodeId to = 0;
  double latency_ms = 0.0;
};

class Graph {
 public:
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a node and returns its id (ids are dense, 0-based).
  NodeId add_node(NodeInfo info);

  /// Adds an undirected link with a positive latency. Rejects self-loops,
  /// unknown endpoints, non-positive latency, and duplicate links.
  Status add_edge(NodeId u, NodeId v, double latency_ms);

  std::size_t node_count() const { return nodes_.size(); }
  /// Number of undirected links.
  std::size_t undirected_edge_count() const { return edge_count_; }
  /// Number of directed adjacency entries (= 2x undirected); this is the
  /// |E| convention of the paper's Table II.
  std::size_t directed_edge_count() const { return 2 * edge_count_; }

  /// Precondition: id < node_count().
  const NodeInfo& node(NodeId id) const;

  /// Adjacency list of `id`; precondition: id < node_count().
  std::span<const Edge> neighbors(NodeId id) const;

  bool has_edge(NodeId u, NodeId v) const;

  /// Latency of link (u, v); kNotFound if absent.
  Expected<double> edge_latency(NodeId u, NodeId v) const;

  /// Node id by exact name; kNotFound if absent.
  Expected<NodeId> find_node(const std::string& name) const;

  /// True iff every node is reachable from node 0 (or the graph is empty).
  bool is_connected() const;

  /// All undirected links as (u, v, latency) with u < v, in insertion order.
  struct Link {
    NodeId u;
    NodeId v;
    double latency_ms;
  };
  const std::vector<Link>& links() const { return links_; }

 private:
  std::string name_;
  std::vector<NodeInfo> nodes_;
  std::vector<std::vector<Edge>> adjacency_;
  std::vector<Link> links_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::size_t edge_count_ = 0;
};

}  // namespace ccnopt::topology
