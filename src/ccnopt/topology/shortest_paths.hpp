// Shortest-path computations: latency-weighted Dijkstra, hop-count BFS,
// all-pairs tables, and a Floyd-Warshall cross-check oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "ccnopt/common/matrix.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::topology {

inline constexpr double kUnreachable = 1e18;
inline constexpr std::uint32_t kUnreachableHops = 0xFFFFFFFFu;
inline constexpr NodeId kNoParent = 0xFFFFFFFFu;

/// Single-source latency-weighted shortest paths.
struct SsspResult {
  std::vector<double> latency_ms;  // kUnreachable where disconnected
  std::vector<NodeId> parent;      // kNoParent at source / unreachable
};
SsspResult dijkstra(const Graph& g, NodeId source);

/// Single-source hop counts (unweighted BFS); kUnreachableHops where
/// disconnected.
std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source);

/// Reconstructs the path source -> target from a Dijkstra parent array;
/// empty if target is unreachable. The result includes both endpoints.
std::vector<NodeId> extract_path(const SsspResult& sssp, NodeId source,
                                 NodeId target);

/// All-pairs latency and hop-count tables.
struct AllPairs {
  Matrix<double> latency_ms;
  Matrix<std::uint32_t> hops;
};
AllPairs all_pairs(const Graph& g);

/// Floyd-Warshall all-pairs latencies; O(V^3) oracle used by tests to
/// validate Dijkstra.
Matrix<double> floyd_warshall_latency(const Graph& g);

/// Dijkstra avoiding blocked nodes (failure injection): blocked nodes are
/// neither expanded nor relaxed into; a blocked source yields everything
/// unreachable. `blocked` must have node_count() entries.
SsspResult dijkstra_filtered(const Graph& g, NodeId source,
                             const std::vector<bool>& blocked);

/// BFS hop counts avoiding blocked nodes; same contract.
std::vector<std::uint32_t> bfs_hops_filtered(const Graph& g, NodeId source,
                                             const std::vector<bool>& blocked);

/// All-pairs tables over the surviving subgraph.
AllPairs all_pairs_filtered(const Graph& g, const std::vector<bool>& blocked);

}  // namespace ccnopt::topology
