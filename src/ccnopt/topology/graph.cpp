#include "ccnopt/topology/graph.hpp"

#include <algorithm>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::topology {

NodeId Graph::add_node(NodeInfo info) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_.emplace(info.name, id);
  nodes_.push_back(std::move(info));
  adjacency_.emplace_back();
  return id;
}

Status Graph::add_edge(NodeId u, NodeId v, double latency_ms) {
  if (u >= nodes_.size() || v >= nodes_.size()) {
    return Status(ErrorCode::kOutOfRange, "add_edge: unknown node id");
  }
  if (u == v) {
    return Status(ErrorCode::kInvalidArgument, "add_edge: self-loop");
  }
  if (latency_ms <= 0.0) {
    return Status(ErrorCode::kInvalidArgument,
                  "add_edge: latency must be positive");
  }
  if (has_edge(u, v)) {
    return Status(ErrorCode::kFailedPrecondition,
                  "add_edge: duplicate link " + nodes_[u].name + " <-> " +
                      nodes_[v].name);
  }
  adjacency_[u].push_back(Edge{v, latency_ms});
  adjacency_[v].push_back(Edge{u, latency_ms});
  links_.push_back(Link{std::min(u, v), std::max(u, v), latency_ms});
  ++edge_count_;
  return Status::ok();
}

const NodeInfo& Graph::node(NodeId id) const {
  CCNOPT_EXPECTS(id < nodes_.size());
  return nodes_[id];
}

std::span<const Edge> Graph::neighbors(NodeId id) const {
  CCNOPT_EXPECTS(id < adjacency_.size());
  return adjacency_[id];
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  if (u >= adjacency_.size()) return false;
  return std::any_of(adjacency_[u].begin(), adjacency_[u].end(),
                     [v](const Edge& e) { return e.to == v; });
}

Expected<double> Graph::edge_latency(NodeId u, NodeId v) const {
  if (u < adjacency_.size()) {
    for (const Edge& e : adjacency_[u]) {
      if (e.to == v) return e.latency_ms;
    }
  }
  return Status(ErrorCode::kNotFound, "edge_latency: no such link");
}

Expected<NodeId> Graph::find_node(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status(ErrorCode::kNotFound, "find_node: no node named " + name);
  }
  return it->second;
}

bool Graph::is_connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    for (const Edge& e : adjacency_[u]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++reached;
        stack.push_back(e.to);
      }
    }
  }
  return reached == nodes_.size();
}

}  // namespace ccnopt::topology
