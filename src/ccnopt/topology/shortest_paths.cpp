#include "ccnopt/topology/shortest_paths.hpp"

#include <algorithm>
#include <queue>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::topology {

SsspResult dijkstra(const Graph& g, NodeId source) {
  CCNOPT_EXPECTS(source < g.node_count());
  const std::size_t n = g.node_count();
  SsspResult result;
  result.latency_ms.assign(n, kUnreachable);
  result.parent.assign(n, kNoParent);
  result.latency_ms[source] = 0.0;

  using Entry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > result.latency_ms[u]) continue;  // stale entry
    for (const Edge& e : g.neighbors(u)) {
      const double candidate = dist + e.latency_ms;
      if (candidate < result.latency_ms[e.to]) {
        result.latency_ms[e.to] = candidate;
        result.parent[e.to] = u;
        heap.emplace(candidate, e.to);
      }
    }
  }
  return result;
}

std::vector<std::uint32_t> bfs_hops(const Graph& g, NodeId source) {
  CCNOPT_EXPECTS(source < g.node_count());
  std::vector<std::uint32_t> hops(g.node_count(), kUnreachableHops);
  hops[source] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Edge& e : g.neighbors(u)) {
      if (hops[e.to] == kUnreachableHops) {
        hops[e.to] = hops[u] + 1;
        frontier.push(e.to);
      }
    }
  }
  return hops;
}

std::vector<NodeId> extract_path(const SsspResult& sssp, NodeId source,
                                 NodeId target) {
  CCNOPT_EXPECTS(target < sssp.parent.size());
  if (sssp.latency_ms[target] >= kUnreachable) return {};
  std::vector<NodeId> path;
  for (NodeId v = target; v != source; v = sssp.parent[v]) {
    CCNOPT_ASSERT(v != kNoParent);
    path.push_back(v);
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

AllPairs all_pairs(const Graph& g) {
  const std::size_t n = g.node_count();
  AllPairs table{Matrix<double>(n, n, kUnreachable),
                 Matrix<std::uint32_t>(n, n, kUnreachableHops)};
  for (NodeId src = 0; src < n; ++src) {
    const SsspResult sssp = dijkstra(g, src);
    const std::vector<std::uint32_t> hops = bfs_hops(g, src);
    for (NodeId dst = 0; dst < n; ++dst) {
      table.latency_ms(src, dst) = sssp.latency_ms[dst];
      table.hops(src, dst) = hops[dst];
    }
  }
  return table;
}

SsspResult dijkstra_filtered(const Graph& g, NodeId source,
                             const std::vector<bool>& blocked) {
  CCNOPT_EXPECTS(source < g.node_count());
  CCNOPT_EXPECTS(blocked.size() == g.node_count());
  const std::size_t n = g.node_count();
  SsspResult result;
  result.latency_ms.assign(n, kUnreachable);
  result.parent.assign(n, kNoParent);
  if (blocked[source]) return result;
  result.latency_ms[source] = 0.0;

  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > result.latency_ms[u]) continue;
    for (const Edge& e : g.neighbors(u)) {
      if (blocked[e.to]) continue;
      const double candidate = dist + e.latency_ms;
      if (candidate < result.latency_ms[e.to]) {
        result.latency_ms[e.to] = candidate;
        result.parent[e.to] = u;
        heap.emplace(candidate, e.to);
      }
    }
  }
  return result;
}

std::vector<std::uint32_t> bfs_hops_filtered(
    const Graph& g, NodeId source, const std::vector<bool>& blocked) {
  CCNOPT_EXPECTS(source < g.node_count());
  CCNOPT_EXPECTS(blocked.size() == g.node_count());
  std::vector<std::uint32_t> hops(g.node_count(), kUnreachableHops);
  if (blocked[source]) return hops;
  hops[source] = 0;
  std::queue<NodeId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const Edge& e : g.neighbors(u)) {
      if (blocked[e.to]) continue;
      if (hops[e.to] == kUnreachableHops) {
        hops[e.to] = hops[u] + 1;
        frontier.push(e.to);
      }
    }
  }
  return hops;
}

AllPairs all_pairs_filtered(const Graph& g,
                            const std::vector<bool>& blocked) {
  const std::size_t n = g.node_count();
  AllPairs table{Matrix<double>(n, n, kUnreachable),
                 Matrix<std::uint32_t>(n, n, kUnreachableHops)};
  for (NodeId src = 0; src < n; ++src) {
    const SsspResult sssp = dijkstra_filtered(g, src, blocked);
    const std::vector<std::uint32_t> hops = bfs_hops_filtered(g, src, blocked);
    for (NodeId dst = 0; dst < n; ++dst) {
      table.latency_ms(src, dst) = sssp.latency_ms[dst];
      table.hops(src, dst) = hops[dst];
    }
  }
  return table;
}

Matrix<double> floyd_warshall_latency(const Graph& g) {
  const std::size_t n = g.node_count();
  Matrix<double> dist(n, n, kUnreachable);
  for (std::size_t i = 0; i < n; ++i) dist(i, i) = 0.0;
  for (const Graph::Link& link : g.links()) {
    dist(link.u, link.v) = std::min(dist(link.u, link.v), link.latency_ms);
    dist(link.v, link.u) = std::min(dist(link.v, link.u), link.latency_ms);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (dist(i, k) >= kUnreachable) continue;
      for (std::size_t j = 0; j < n; ++j) {
        const double via = dist(i, k) + dist(k, j);
        if (via < dist(i, j)) dist(i, j) = via;
      }
    }
  }
  return dist;
}

}  // namespace ccnopt::topology
