#include "ccnopt/topology/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "ccnopt/common/strings.hpp"

namespace ccnopt::topology {

void write_dot(const Graph& g, std::ostream& out) {
  out << "graph \"" << g.name() << "\" {\n";
  out << "  layout=neato;\n";
  for (NodeId id = 0; id < g.node_count(); ++id) {
    const NodeInfo& node = g.node(id);
    // DOT pos: x=longitude, y=latitude, loosely scaled for neato.
    out << "  \"" << node.name << "\" [pos=\""
        << format_double(node.location.lon_deg / 2.0, 3) << ","
        << format_double(node.location.lat_deg / 2.0, 3) << "!\"];\n";
  }
  for (const Graph::Link& link : g.links()) {
    out << "  \"" << g.node(link.u).name << "\" -- \"" << g.node(link.v).name
        << "\" [label=\"" << format_double(link.latency_ms, 1) << "\"];\n";
  }
  out << "}\n";
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# ccnopt edge list\n";
  out << "graph " << g.name() << "\n";
  for (NodeId id = 0; id < g.node_count(); ++id) {
    const NodeInfo& node = g.node(id);
    out << "node " << node.name << " "
        << format_double(node.location.lat_deg, 6) << " "
        << format_double(node.location.lon_deg, 6) << "\n";
  }
  for (const Graph::Link& link : g.links()) {
    out << "edge " << g.node(link.u).name << " " << g.node(link.v).name << " "
        << format_double(link.latency_ms, 6) << "\n";
  }
}

namespace {

Status parse_error(int line, const std::string& message) {
  return Status(ErrorCode::kParseError,
                "line " + std::to_string(line) + ": " + message);
}

Expected<double> parse_double(const std::string& token, int line) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    return parse_error(line, "expected a number, got '" + token + "'");
  }
  if (consumed != token.size()) {
    return parse_error(line, "trailing junk in number '" + token + "'");
  }
  return value;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

Expected<Graph> read_edge_list(std::istream& in) {
  Graph graph("unnamed");
  bool named = false;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const std::vector<std::string> tokens = tokenize(std::string(trimmed));

    if (tokens[0] == "graph") {
      if (tokens.size() != 2) {
        return parse_error(line_number, "graph takes exactly one name");
      }
      if (named) return parse_error(line_number, "duplicate graph line");
      graph = Graph(tokens[1]);
      named = true;
    } else if (tokens[0] == "node") {
      if (tokens.size() != 4) {
        return parse_error(line_number, "node takes: name lat lon");
      }
      if (graph.find_node(tokens[1]).has_value()) {
        return parse_error(line_number, "duplicate node " + tokens[1]);
      }
      const auto lat = parse_double(tokens[2], line_number);
      if (!lat) return lat.status();
      const auto lon = parse_double(tokens[3], line_number);
      if (!lon) return lon.status();
      graph.add_node(NodeInfo{tokens[1], GeoPoint{*lat, *lon}});
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 4) {
        return parse_error(line_number, "edge takes: a b latency_ms");
      }
      const auto a = graph.find_node(tokens[1]);
      if (!a) return parse_error(line_number, "unknown node " + tokens[1]);
      const auto b = graph.find_node(tokens[2]);
      if (!b) return parse_error(line_number, "unknown node " + tokens[2]);
      const auto latency = parse_double(tokens[3], line_number);
      if (!latency) return latency.status();
      if (const Status status = graph.add_edge(*a, *b, *latency);
          !status.is_ok()) {
        return parse_error(line_number, status.message());
      }
    } else {
      return parse_error(line_number, "unknown directive " + tokens[0]);
    }
  }
  return graph;
}

Expected<Graph> read_edge_list_string(const std::string& text) {
  std::istringstream stream(text);
  return read_edge_list(stream);
}

}  // namespace ccnopt::topology
