// Topology serialization: Graphviz DOT export (for figures/inspection) and
// a line-oriented edge-list format for loading custom topologies into the
// planner and benches.
//
// Edge-list format (UTF-8 text, '#' comments, blank lines ignored):
//   graph <name>
//   node <name> <lat_deg> <lon_deg>
//   edge <name_a> <name_b> <latency_ms>
// Nodes must be declared before edges reference them.
#pragma once

#include <iosfwd>
#include <string>

#include "ccnopt/common/error.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::topology {

/// Writes `g` as an undirected Graphviz DOT graph with latency labels and
/// geographic positions as node attributes.
void write_dot(const Graph& g, std::ostream& out);

/// Writes `g` in the edge-list format above; read_edge_list inverts it.
void write_edge_list(const Graph& g, std::ostream& out);

/// Parses the edge-list format. Fails with kParseError (carrying the line
/// number) on malformed input, unknown node references, duplicate nodes or
/// edges, or non-positive latencies.
Expected<Graph> read_edge_list(std::istream& in);

/// Convenience: parse from a string.
Expected<Graph> read_edge_list_string(const std::string& text);

}  // namespace ccnopt::topology
