// Synthetic topology generators: structured families (ring, line, star,
// grid, full mesh) with constant link latency, and Waxman random geometric
// graphs. Used by property tests and by sensitivity experiments that vary
// the network size n beyond the four embedded datasets.
#pragma once

#include <cstddef>

#include "ccnopt/common/random.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::topology {

/// Ring of n >= 3 nodes, each link with `latency_ms`.
Graph make_ring(std::size_t n, double latency_ms = 1.0);

/// Path of n >= 2 nodes.
Graph make_line(std::size_t n, double latency_ms = 1.0);

/// Star: node 0 is the hub, nodes 1..n-1 are leaves. Requires n >= 2.
Graph make_star(std::size_t n, double latency_ms = 1.0);

/// rows x cols grid, 4-neighborhood. Requires rows, cols >= 1 and
/// rows * cols >= 2.
Graph make_grid(std::size_t rows, std::size_t cols, double latency_ms = 1.0);

/// Complete graph on n >= 2 nodes.
Graph make_full_mesh(std::size_t n, double latency_ms = 1.0);

/// Waxman random geometric graph: n nodes uniform in a `side_km` square;
/// link probability alpha * exp(-dist / (beta * L)) with L the diagonal.
/// A spanning tree over nearest neighbors is added first so the result is
/// always connected. Latencies follow the geographic LatencyModel.
struct WaxmanOptions {
  double alpha = 0.4;
  double beta = 0.2;
  double side_km = 4000.0;
};
Graph make_waxman(std::size_t n, Rng& rng, const WaxmanOptions& options = {});

}  // namespace ccnopt::topology
