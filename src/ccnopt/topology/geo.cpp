#include "ccnopt/topology/geo.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::topology {
namespace {

constexpr double kEarthRadiusKm = 6371.0;
constexpr double kDegToRad = 3.14159265358979323846 / 180.0;

}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlon = (b.lon_deg - a.lon_deg) * kDegToRad;
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double LatencyModel::link_latency_ms(const GeoPoint& a,
                                     const GeoPoint& b) const {
  const double km = haversine_km(a, b) * route_factor;
  return km / km_per_ms + per_hop_overhead_ms;
}

void add_geo_edge(Graph& g, const std::string& a, const std::string& b,
                  const LatencyModel& model) {
  const auto ida = g.find_node(a);
  const auto idb = g.find_node(b);
  CCNOPT_ASSERT(ida.has_value());
  CCNOPT_ASSERT(idb.has_value());
  const double latency =
      model.link_latency_ms(g.node(*ida).location, g.node(*idb).location);
  const Status status = g.add_edge(*ida, *idb, latency);
  CCNOPT_ASSERT(status.is_ok());
}

}  // namespace ccnopt::topology
