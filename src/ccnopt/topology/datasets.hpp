// The four evaluation topologies of the paper's Table II.
//
// Abilene is the real Internet2/Abilene backbone (11 PoPs, 14 links; the
// paper's |E| = 28 counts directed edges). CERNET, GEANT and US-A are
// geographically faithful synthetics: real city coordinates, hand-authored
// link sets matched to the paper's |V| and |E|, link latencies from the
// great-circle LatencyModel. See DESIGN.md "Substitutions".
#pragma once

#include <string>
#include <vector>

#include "ccnopt/common/error.hpp"
#include "ccnopt/topology/graph.hpp"

namespace ccnopt::topology {

/// Internet2/Abilene backbone: 11 nodes, 28 directed edges, North America.
Graph abilene();

/// CERNET (China Education and Research Network): 36 nodes, 112 directed
/// edges, East Asia. Synthetic link set.
Graph cernet();

/// GEANT pan-European research network: 23 nodes, 74 directed edges.
/// Synthetic link set.
Graph geant();

/// Anonymized North-American tier-1 commercial carrier: 20 nodes, 80
/// directed edges. Synthetic link set.
Graph us_a();

/// Names accepted by `dataset_by_name`, in the paper's Table II order.
std::vector<std::string> dataset_names();

/// Case-insensitive lookup: "abilene", "cernet", "geant", "us-a" (or "usa").
Expected<Graph> dataset_by_name(const std::string& name);

/// All four datasets in Table II order.
std::vector<Graph> all_datasets();

}  // namespace ccnopt::topology
