#include "ccnopt/topology/datasets.hpp"

#include <initializer_list>
#include <utility>

#include "ccnopt/common/assert.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/topology/geo.hpp"

namespace ccnopt::topology {
namespace {

struct City {
  const char* name;
  double lat;
  double lon;
};

Graph build(const std::string& name, std::initializer_list<City> cities,
            std::initializer_list<std::pair<const char*, const char*>> links,
            std::size_t expected_links) {
  Graph g(name);
  for (const City& c : cities) {
    g.add_node(NodeInfo{c.name, GeoPoint{c.lat, c.lon}});
  }
  const LatencyModel model{};
  for (const auto& [a, b] : links) add_geo_edge(g, a, b, model);
  CCNOPT_ENSURES(g.undirected_edge_count() == expected_links);
  CCNOPT_ENSURES(g.is_connected());
  return g;
}

}  // namespace

Graph abilene() {
  return build(
      "Abilene",
      {
          {"Seattle", 47.61, -122.33},
          {"Sunnyvale", 37.37, -122.04},
          {"LosAngeles", 34.05, -118.24},
          {"Denver", 39.74, -104.99},
          {"KansasCity", 39.10, -94.58},
          {"Houston", 29.76, -95.37},
          {"Indianapolis", 39.77, -86.16},
          {"Atlanta", 33.75, -84.39},
          {"Chicago", 41.88, -87.63},
          {"WashingtonDC", 38.91, -77.04},
          {"NewYork", 40.71, -74.01},
      },
      {
          {"Seattle", "Sunnyvale"},
          {"Seattle", "Denver"},
          {"Sunnyvale", "LosAngeles"},
          {"Sunnyvale", "Denver"},
          {"LosAngeles", "Houston"},
          {"Denver", "KansasCity"},
          {"KansasCity", "Houston"},
          {"KansasCity", "Indianapolis"},
          {"Houston", "Atlanta"},
          {"Indianapolis", "Atlanta"},
          {"Indianapolis", "Chicago"},
          {"Chicago", "NewYork"},
          {"Atlanta", "WashingtonDC"},
          {"NewYork", "WashingtonDC"},
      },
      14);
}

Graph cernet() {
  return build(
      "CERNET",
      {
          {"Beijing", 39.90, 116.40},   {"Shanghai", 31.23, 121.47},
          {"Guangzhou", 23.13, 113.26}, {"Wuhan", 30.59, 114.31},
          {"Nanjing", 32.06, 118.80},   {"Xian", 34.34, 108.94},
          {"Chengdu", 30.57, 104.07},   {"Shenyang", 41.80, 123.43},
          {"Tianjin", 39.13, 117.20},   {"Jinan", 36.65, 117.12},
          {"Hefei", 31.82, 117.23},     {"Hangzhou", 30.27, 120.15},
          {"Fuzhou", 26.07, 119.30},    {"Xiamen", 24.48, 118.09},
          {"Changsha", 28.23, 112.94},  {"Chongqing", 29.56, 106.55},
          {"Kunming", 25.04, 102.72},   {"Guiyang", 26.65, 106.63},
          {"Nanning", 22.82, 108.32},   {"Haikou", 20.04, 110.32},
          {"Zhengzhou", 34.75, 113.63}, {"Shijiazhuang", 38.04, 114.51},
          {"Taiyuan", 37.87, 112.55},   {"Hohhot", 40.84, 111.75},
          {"Lanzhou", 36.06, 103.83},   {"Xining", 36.62, 101.78},
          {"Yinchuan", 38.49, 106.23},  {"Urumqi", 43.83, 87.62},
          {"Harbin", 45.80, 126.53},    {"Changchun", 43.82, 125.32},
          {"Dalian", 38.91, 121.61},    {"Qingdao", 36.07, 120.38},
          {"Suzhou", 31.30, 120.58},    {"Ningbo", 29.87, 121.54},
          {"Nanchang", 28.68, 115.86},  {"Lhasa", 29.65, 91.14},
      },
      {
          {"Beijing", "Shanghai"},     {"Beijing", "Wuhan"},
          {"Beijing", "Xian"},         {"Beijing", "Shenyang"},
          {"Beijing", "Tianjin"},      {"Shanghai", "Nanjing"},
          {"Shanghai", "Wuhan"},       {"Shanghai", "Guangzhou"},
          {"Shanghai", "Hangzhou"},    {"Guangzhou", "Wuhan"},
          {"Guangzhou", "Changsha"},   {"Guangzhou", "Nanning"},
          {"Guangzhou", "Haikou"},     {"Guangzhou", "Xiamen"},
          {"Wuhan", "Changsha"},       {"Wuhan", "Zhengzhou"},
          {"Wuhan", "Nanchang"},       {"Wuhan", "Chongqing"},
          {"Nanjing", "Hefei"},        {"Nanjing", "Suzhou"},
          {"Nanjing", "Jinan"},        {"Xian", "Chengdu"},
          {"Xian", "Lanzhou"},         {"Xian", "Zhengzhou"},
          {"Xian", "Taiyuan"},         {"Chengdu", "Chongqing"},
          {"Chengdu", "Kunming"},      {"Chengdu", "Lhasa"},
          {"Shenyang", "Changchun"},   {"Changchun", "Harbin"},
          {"Shenyang", "Dalian"},      {"Tianjin", "Jinan"},
          {"Jinan", "Qingdao"},        {"Hangzhou", "Ningbo"},
          {"Hangzhou", "Fuzhou"},      {"Fuzhou", "Xiamen"},
          {"Changsha", "Guiyang"},     {"Guiyang", "Kunming"},
          {"Guiyang", "Chongqing"},    {"Zhengzhou", "Shijiazhuang"},
          {"Shijiazhuang", "Beijing"}, {"Taiyuan", "Shijiazhuang"},
          {"Hohhot", "Beijing"},       {"Hohhot", "Taiyuan"},
          {"Lanzhou", "Xining"},       {"Lanzhou", "Yinchuan"},
          {"Yinchuan", "Hohhot"},      {"Urumqi", "Lanzhou"},
          {"Urumqi", "Xian"},          {"Hefei", "Wuhan"},
          {"Nanchang", "Changsha"},    {"Nanchang", "Fuzhou"},
          {"Suzhou", "Shanghai"},      {"Qingdao", "Shanghai"},
          {"Haikou", "Nanning"},       {"Xining", "Chengdu"},
      },
      56);
}

Graph geant() {
  return build(
      "GEANT",
      {
          {"London", 51.51, -0.13},    {"Paris", 48.86, 2.35},
          {"Frankfurt", 50.11, 8.68},  {"Milan", 45.46, 9.19},
          {"Madrid", 40.42, -3.70},    {"Lisbon", 38.72, -9.14},
          {"Dublin", 53.35, -6.26},    {"Amsterdam", 52.37, 4.90},
          {"Brussels", 50.85, 4.35},   {"Luxembourg", 49.61, 6.13},
          {"Geneva", 46.20, 6.14},     {"Vienna", 48.21, 16.37},
          {"Prague", 50.08, 14.44},    {"Poznan", 52.41, 16.93},
          {"Bratislava", 48.15, 17.11},{"Budapest", 47.50, 19.04},
          {"Ljubljana", 46.06, 14.51}, {"Zagreb", 45.81, 15.98},
          {"Athens", 37.98, 23.73},    {"Bucharest", 44.43, 26.10},
          {"Stockholm", 59.33, 18.07}, {"Copenhagen", 55.68, 12.57},
          {"Tallinn", 59.44, 24.75},
      },
      {
          {"London", "Paris"},        {"London", "Amsterdam"},
          {"London", "Dublin"},       {"London", "Frankfurt"},
          {"Paris", "Madrid"},        {"Paris", "Geneva"},
          {"Paris", "Brussels"},      {"Paris", "Frankfurt"},
          {"Frankfurt", "Amsterdam"}, {"Frankfurt", "Geneva"},
          {"Frankfurt", "Prague"},    {"Frankfurt", "Vienna"},
          {"Frankfurt", "Copenhagen"},{"Frankfurt", "Poznan"},
          {"Amsterdam", "Brussels"},  {"Amsterdam", "Copenhagen"},
          {"Brussels", "Luxembourg"}, {"Luxembourg", "Frankfurt"},
          {"Geneva", "Milan"},        {"Milan", "Vienna"},
          {"Milan", "Madrid"},        {"Madrid", "Lisbon"},
          {"Lisbon", "London"},       {"Vienna", "Prague"},
          {"Vienna", "Budapest"},     {"Vienna", "Bratislava"},
          {"Vienna", "Ljubljana"},    {"Prague", "Poznan"},
          {"Poznan", "Stockholm"},    {"Bratislava", "Budapest"},
          {"Budapest", "Zagreb"},     {"Budapest", "Bucharest"},
          {"Ljubljana", "Zagreb"},    {"Stockholm", "Tallinn"},
          {"Athens", "Milan"},        {"Bucharest", "Athens"},
          {"Stockholm", "Copenhagen"},
      },
      37);
}

Graph us_a() {
  return build(
      "US-A",
      {
          {"Seattle", 47.61, -122.33},     {"SanFrancisco", 37.77, -122.42},
          {"LosAngeles", 34.05, -118.24},  {"SanDiego", 32.72, -117.16},
          {"Phoenix", 33.45, -112.07},     {"SaltLakeCity", 40.76, -111.89},
          {"Denver", 39.74, -104.99},      {"Dallas", 32.78, -96.80},
          {"Houston", 29.76, -95.37},      {"KansasCity", 39.10, -94.58},
          {"Minneapolis", 44.98, -93.27},  {"Chicago", 41.88, -87.63},
          {"StLouis", 38.63, -90.20},      {"Atlanta", 33.75, -84.39},
          {"Miami", 25.76, -80.19},        {"Charlotte", 35.23, -80.84},
          {"WashingtonDC", 38.91, -77.04}, {"Philadelphia", 39.95, -75.17},
          {"NewYork", 40.71, -74.01},      {"Boston", 42.36, -71.06},
      },
      {
          {"Seattle", "SanFrancisco"},    {"Seattle", "SaltLakeCity"},
          {"Seattle", "Minneapolis"},     {"SanFrancisco", "LosAngeles"},
          {"SanFrancisco", "SaltLakeCity"},{"SanFrancisco", "Denver"},
          {"LosAngeles", "SanDiego"},     {"LosAngeles", "Phoenix"},
          {"LosAngeles", "Dallas"},       {"SanDiego", "Phoenix"},
          {"Phoenix", "Dallas"},          {"Phoenix", "Denver"},
          {"SaltLakeCity", "Denver"},     {"Denver", "KansasCity"},
          {"Denver", "Dallas"},           {"Dallas", "Houston"},
          {"Dallas", "KansasCity"},       {"Dallas", "Atlanta"},
          {"Houston", "Atlanta"},         {"Houston", "Miami"},
          {"KansasCity", "StLouis"},      {"KansasCity", "Chicago"},
          {"Minneapolis", "Chicago"},     {"Minneapolis", "KansasCity"},
          {"Chicago", "StLouis"},         {"Chicago", "NewYork"},
          {"Chicago", "WashingtonDC"},    {"Chicago", "Boston"},
          {"StLouis", "Atlanta"},         {"Atlanta", "Charlotte"},
          {"Atlanta", "Miami"},           {"Atlanta", "WashingtonDC"},
          {"Charlotte", "WashingtonDC"},  {"Miami", "WashingtonDC"},
          {"WashingtonDC", "Philadelphia"},{"Philadelphia", "NewYork"},
          {"NewYork", "Boston"},          {"NewYork", "WashingtonDC"},
          {"Boston", "Philadelphia"},     {"Seattle", "Denver"},
      },
      40);
}

std::vector<std::string> dataset_names() {
  return {"Abilene", "CERNET", "GEANT", "US-A"};
}

Expected<Graph> dataset_by_name(const std::string& name) {
  const std::string key = to_lower(name);
  if (key == "abilene") return abilene();
  if (key == "cernet") return cernet();
  if (key == "geant") return geant();
  if (key == "us-a" || key == "usa" || key == "us_a") return us_a();
  return Status(ErrorCode::kNotFound, "unknown dataset: " + name);
}

std::vector<Graph> all_datasets() {
  std::vector<Graph> out;
  out.push_back(abilene());
  out.push_back(cernet());
  out.push_back(geant());
  out.push_back(us_a());
  return out;
}

}  // namespace ccnopt::topology
