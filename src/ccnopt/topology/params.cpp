#include "ccnopt/topology/params.hpp"

#include <algorithm>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::topology {

TopologyParameters derive_parameters(const Graph& g) {
  CCNOPT_EXPECTS(g.node_count() >= 2);
  CCNOPT_EXPECTS(g.is_connected());

  const AllPairs table = all_pairs(g);
  const std::size_t n = g.node_count();

  TopologyParameters params;
  params.name = g.name();
  params.n = n;
  params.directed_edges = g.directed_edge_count();

  double max_latency = 0.0;
  double sum_latency = 0.0;
  double sum_hops = 0.0;
  std::uint32_t max_hops = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double d = table.latency_ms(i, j);
      const std::uint32_t h = table.hops(i, j);
      CCNOPT_ASSERT(d < kUnreachable);
      max_latency = std::max(max_latency, d);
      sum_latency += d;
      sum_hops += static_cast<double>(h);
      max_hops = std::max(max_hops, h);
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n);
  params.unit_cost_w_ms = max_latency;
  params.mean_latency_ms = sum_latency / pairs;
  params.mean_hops = sum_hops / pairs;
  params.diameter_hops = static_cast<double>(max_hops);
  return params;
}

}  // namespace ccnopt::topology
