// Small string utilities used by the CSV/table writers and topology parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ccnopt {

/// Splits `text` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Joins `parts` with `sep` between consecutive elements.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats `value` with `precision` digits after the decimal point.
std::string format_double(double value, int precision);

/// Formats a fraction in [0,1] as a percentage string, e.g. 0.336 -> "33.6%".
std::string format_percent(double fraction, int precision = 1);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view text);

}  // namespace ccnopt
