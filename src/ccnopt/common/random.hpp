// Deterministic RNG wrapper. All stochastic components (workload samplers,
// topology generators, randomized cache policies) take an Rng& so experiments
// are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>

#include "ccnopt/common/assert.hpp"

namespace ccnopt {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi); requires lo < hi.
  double uniform(double lo, double hi) {
    CCNOPT_EXPECTS(lo < hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi]; requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    CCNOPT_EXPECTS(lo <= hi);
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool bernoulli(double p) {
    CCNOPT_EXPECTS(p >= 0.0 && p <= 1.0);
    return uniform() < p;
  }

  /// Exponential draw with the given rate (> 0).
  double exponential(double rate) {
    CCNOPT_EXPECTS(rate > 0.0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// One step of the splitmix64 generator: advances `state` and returns the
/// mixed output. Weyl-sequence state with a two-round finalizer; every seed
/// gives a full-period 2^64 stream.
std::uint64_t splitmix64(std::uint64_t& state);

/// The `index`-th output of the splitmix64 stream seeded with `master` —
/// O(1) in `index`. This is the canonical way to derive independent
/// sub-stream seeds (per-router clocks, per-replication runs) from one
/// master seed: derived seeds are deterministic, well-mixed, and do not
/// collide across nearby indices the way xor-multiply folklore mixes can.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index);

}  // namespace ccnopt
