// Minimal command-line argument parser for the tools: positional words
// plus --key=value / --key value options and --flag switches.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ccnopt/common/error.hpp"

namespace ccnopt {

class ArgParser {
 public:
  /// Parses argv[1..); "--key=value" and "--key value" set options,
  /// "--flag" (no value-looking successor) sets a flag, everything else is
  /// positional. A standalone "--" ends option parsing.
  static Expected<ArgParser> parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  bool has(const std::string& key) const;

  /// String value of --key, or `fallback` when absent.
  std::string get(const std::string& key, const std::string& fallback) const;

  /// Numeric value of --key; kParseError on malformed numbers.
  Expected<double> get_double(const std::string& key, double fallback) const;
  Expected<std::int64_t> get_int(const std::string& key,
                                 std::int64_t fallback) const;

  /// Keys that were supplied but never read — typo detection for tools.
  std::vector<std::string> unused_keys() const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace ccnopt
