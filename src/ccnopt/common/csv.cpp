#include "ccnopt/common/csv.hpp"

#include "ccnopt/common/strings.hpp"

namespace ccnopt {

std::string CsvWriter::escape(std::string_view field, char sep) {
  const bool needs_quoting =
      field.find(sep) != std::string_view::npos ||
      field.find('"') != std::string_view::npos ||
      field.find('\n') != std::string_view::npos;
  if (!needs_quoting) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char ch : field) {
    if (ch == '"') out.push_back('"');
    out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) (*out_) << sep_;
    (*out_) << escape(fields[i], sep_);
  }
  (*out_) << '\n';
  ++rows_;
}

void CsvWriter::write_numeric_row(const std::vector<double>& values,
                                  int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (double v : values) fields.push_back(format_double(v, precision));
  write_row(fields);
}

}  // namespace ccnopt
