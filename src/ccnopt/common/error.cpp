#include "ccnopt/common/error.hpp"

namespace ccnopt {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "ok";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kOutOfRange:
      return "out_of_range";
    case ErrorCode::kFailedPrecondition:
      return "failed_precondition";
    case ErrorCode::kNotFound:
      return "not_found";
    case ErrorCode::kNumericalFailure:
      return "numerical_failure";
    case ErrorCode::kParseError:
      return "parse_error";
  }
  return "unknown";
}

}  // namespace ccnopt
