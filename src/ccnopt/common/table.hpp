// Aligned plain-text table printer used by the benches to render the
// paper's tables and figure series on the console.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ccnopt {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  /// Adds one body row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> row);

  /// Convenience: first column is a label, the rest are doubles.
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 4);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with column alignment and a rule under the header.
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccnopt
