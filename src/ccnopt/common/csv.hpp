// Minimal CSV emitter for experiment output. Fields containing the
// separator, quotes or newlines are quoted per RFC 4180.
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ccnopt {

class CsvWriter {
 public:
  /// Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out, char sep = ',') : out_(&out), sep_(sep) {}

  /// Writes one row of already-formatted fields.
  void write_row(const std::vector<std::string>& fields);

  /// Writes a header row; identical to write_row, named for readability.
  void write_header(const std::vector<std::string>& fields) { write_row(fields); }

  /// Writes a row of doubles formatted with `precision` digits.
  void write_numeric_row(const std::vector<double>& values, int precision = 6);

  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(std::string_view field, char sep);

  std::ostream* out_;
  char sep_;
  std::size_t rows_ = 0;
};

}  // namespace ccnopt
