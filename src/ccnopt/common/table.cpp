#include "ccnopt/common/table.hpp"

#include <algorithm>

#include "ccnopt/common/strings.hpp"

namespace ccnopt {

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_row(const std::string& label,
                        const std::vector<double>& values, int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) width[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "" : "  ");
      out << row[i];
      out << std::string(width[i] - row[i].size(), ' ');
    }
    out << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w;
  out << std::string(total + 2 * (width.size() - 1), '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace ccnopt
