#include "ccnopt/common/strings.hpp"

#include <cctype>
#include <cstdio>

namespace ccnopt {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_percent(double fraction, int precision) {
  return format_double(fraction * 100.0, precision) + "%";
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& ch : out) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return out;
}

}  // namespace ccnopt
