#include "ccnopt/common/args.hpp"

#include <cstdlib>

#include "ccnopt/common/strings.hpp"

namespace ccnopt {

Expected<ArgParser> ArgParser::parse(int argc, const char* const* argv) {
  ArgParser parser;
  bool options_done = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Only "--name" tokens are options; single-dash tokens (including
    // negative numbers) are positional.
    if (options_done || !starts_with(arg, "--")) {
      parser.positional_.push_back(arg);
      continue;
    }
    if (arg == "--") {
      options_done = true;
      continue;
    }
    const std::string body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      parser.options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" consumes the next token unless it is another option;
    // otherwise the key is a bare flag. Note the ambiguity this buys:
    // a bare flag directly before a positional swallows it — use
    // "--flag=" or option order to disambiguate.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      parser.options_[body] = argv[++i];
    } else {
      parser.options_[body] = "";
    }
  }
  return parser;
}

bool ArgParser::has(const std::string& key) const {
  const bool present = options_.count(key) > 0;
  if (present) consumed_[key] = true;
  return present;
}

std::string ArgParser::get(const std::string& key,
                           const std::string& fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

Expected<double> ArgParser::get_double(const std::string& key,
                                       double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  consumed_[key] = true;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status(ErrorCode::kParseError,
                  "--" + key + " expects a number, got '" + it->second + "'");
  }
  return value;
}

Expected<std::int64_t> ArgParser::get_int(const std::string& key,
                                          std::int64_t fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  consumed_[key] = true;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status(ErrorCode::kParseError,
                  "--" + key + " expects an integer, got '" + it->second +
                      "'");
  }
  return static_cast<std::int64_t>(value);
}

std::vector<std::string> ArgParser::unused_keys() const {
  std::vector<std::string> unused;
  for (const auto& [key, value] : options_) {
    if (consumed_.count(key) == 0) unused.push_back(key);
  }
  return unused;
}

}  // namespace ccnopt
