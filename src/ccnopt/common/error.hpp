// Recoverable-error vocabulary: Status (code + message) and Expected<T>
// (value-or-Status). Used for operations whose failure is a legitimate
// runtime outcome (parse errors, infeasible parameters, non-bracketed roots)
// rather than a contract violation.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "ccnopt/common/assert.hpp"

namespace ccnopt {

enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   // caller-supplied parameter outside the documented domain
  kOutOfRange,        // index/rank/capacity outside a container or interval
  kFailedPrecondition,// object state does not admit the operation
  kNotFound,          // lookup miss (topology name, content id, ...)
  kNumericalFailure,  // solver did not converge / lost its bracket
  kParseError,        // malformed textual input
};

/// Human-readable name of an ErrorCode ("invalid_argument", ...).
const char* to_string(ErrorCode code);

/// A success/failure result with an optional diagnostic message.
class [[nodiscard]] Status {
 public:
  /// Success.
  Status() = default;
  /// Failure with a diagnostic message. `code` must not be kOk.
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    CCNOPT_EXPECTS(code != ErrorCode::kOk);
  }

  static Status ok() { return Status(); }

  bool is_ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const {
    if (is_ok()) return "ok";
    return std::string(ccnopt::to_string(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Value-or-error result, modeled on std::expected (not yet in C++20).
template <typename T>
class [[nodiscard]] Expected {
 public:
  /// Successful result.
  Expected(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  /// Failed result. `status` must not be ok.
  Expected(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    CCNOPT_EXPECTS(!std::get<Status>(rep_).is_ok());
  }

  bool has_value() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return has_value(); }

  /// The contained value; precondition: has_value().
  const T& value() const& {
    CCNOPT_EXPECTS(has_value());
    return std::get<T>(rep_);
  }
  T& value() & {
    CCNOPT_EXPECTS(has_value());
    return std::get<T>(rep_);
  }
  T&& value() && {
    CCNOPT_EXPECTS(has_value());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  /// The contained value, or `fallback` on error.
  T value_or(T fallback) const {
    return has_value() ? std::get<T>(rep_) : std::move(fallback);
  }

  /// The error; precondition: !has_value().
  const Status& status() const {
    CCNOPT_EXPECTS(!has_value());
    return std::get<Status>(rep_);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace ccnopt
