// Dense row-major matrix with bounds-checked access, used for all-pairs
// shortest-path tables.
#pragma once

#include <cstddef>
#include <vector>

#include "ccnopt/common/assert.hpp"

namespace ccnopt {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    CCNOPT_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    CCNOPT_EXPECTS(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<T>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

}  // namespace ccnopt
