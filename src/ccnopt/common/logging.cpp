#include "ccnopt/common/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>

namespace ccnopt {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Flips once the level has been decided — either explicitly through
// set_log_level or by the lazy CCNOPT_LOG_LEVEL lookup — so the env var
// never overrides an explicit choice.
std::atomic<bool> g_level_decided{false};

// Serializes sink writes so worker threads (runtime::ThreadPool tasks) can
// log without interleaving lines. The level check stays lock-free.
std::mutex g_sink_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level_decided.store(true);
  g_level.store(level);
}

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

void init_log_level_from_env() {
  g_level_decided.store(true);
  const char* value = std::getenv("CCNOPT_LOG_LEVEL");
  if (value == nullptr || value[0] == '\0') return;
  g_level.store(parse_log_level(value));
}

std::string format_log_timestamp(
    std::chrono::system_clock::time_point when) {
  using namespace std::chrono;
  const auto since_epoch = when.time_since_epoch();
  auto secs = duration_cast<seconds>(since_epoch);
  auto millis = duration_cast<milliseconds>(since_epoch) - secs;
  if (millis.count() < 0) {  // pre-epoch times still format sanely
    secs -= seconds(1);
    millis += seconds(1);
  }
  const std::time_t as_time_t = static_cast<std::time_t>(secs.count());
  std::tm utc{};
  gmtime_r(&as_time_t, &utc);
  char buffer[96];  // worst-case snprintf bound for int-ranged fields
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", utc.tm_year + 1900,
                utc.tm_mon + 1, utc.tm_mday, utc.tm_hour, utc.tm_min,
                utc.tm_sec, static_cast<int>(millis.count()));
  return buffer;
}

void log_message(LogLevel level, const std::string& message) {
  if (!g_level_decided.load() && !g_level_decided.exchange(true)) {
    init_log_level_from_env();
  }
  if (level < g_level.load()) return;
  const std::string timestamp =
      format_log_timestamp(std::chrono::system_clock::now());
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s ccnopt %s] %s\n", timestamp.c_str(), tag(level),
               message.c_str());
}

}  // namespace ccnopt
