#include "ccnopt/common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ccnopt {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes sink writes so worker threads (runtime::ThreadPool tasks) can
// log without interleaving lines. The level check stays lock-free.
std::mutex g_sink_mutex;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[ccnopt %s] %s\n", tag(level), message.c_str());
}

}  // namespace ccnopt
