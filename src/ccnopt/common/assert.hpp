// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6/I.8). Violations are programming errors, so they
// terminate via std::abort after printing the failed condition; they are not
// recoverable error paths (those use Status/Expected in error.hpp).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ccnopt::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* cond,
                                          const char* file, int line) {
  std::fprintf(stderr, "ccnopt: %s violated: (%s) at %s:%d\n", kind, cond,
               file, line);
  std::abort();
}

}  // namespace ccnopt::detail

/// Precondition check: argument/state requirements at function entry.
#define CCNOPT_EXPECTS(cond)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::ccnopt::detail::contract_failure("precondition", #cond,       \
                                         __FILE__, __LINE__);         \
  } while (false)

/// Postcondition check: guarantees at function exit.
#define CCNOPT_ENSURES(cond)                                          \
  do {                                                                \
    if (!(cond))                                                      \
      ::ccnopt::detail::contract_failure("postcondition", #cond,      \
                                         __FILE__, __LINE__);         \
  } while (false)

/// Internal invariant check.
#define CCNOPT_ASSERT(cond)                                           \
  do {                                                                \
    if (!(cond))                                                      \
      ::ccnopt::detail::contract_failure("invariant", #cond,          \
                                         __FILE__, __LINE__);         \
  } while (false)
