// Leveled stderr logger. Experiments default to kInfo; tests silence it.
#pragma once

#include <sstream>
#include <string>

namespace ccnopt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `message` at `level` to stderr with a level tag.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ccnopt

#define CCNOPT_LOG(level) ::ccnopt::detail::LogLine(::ccnopt::LogLevel::level)
