// Leveled stderr logger. Experiments default to kInfo; tests silence it.
// Lines carry an ISO-8601 UTC timestamp; the initial level can come from
// the CCNOPT_LOG_LEVEL environment variable (debug|info|warn|error|off).
#pragma once

#include <chrono>
#include <sstream>
#include <string>
#include <string_view>

namespace ccnopt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped. An explicit
/// call wins over CCNOPT_LOG_LEVEL.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses a level name, case-insensitive ("debug", "info", "warn" or
/// "warning", "error", "off"). Unrecognized input yields kInfo.
LogLevel parse_log_level(std::string_view name);

/// Applies CCNOPT_LOG_LEVEL if set; no-op otherwise. Runs automatically
/// before the first message, but may be called again (e.g. after setenv).
void init_log_level_from_env();

/// "2026-08-06T12:34:56.789Z" — ISO-8601 UTC with millisecond precision.
std::string format_log_timestamp(std::chrono::system_clock::time_point when);

/// Emits `message` at `level` to stderr with a timestamp and level tag.
void log_message(LogLevel level, const std::string& message);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace ccnopt

#define CCNOPT_LOG(level) ::ccnopt::detail::LogLine(::ccnopt::LogLevel::level)
