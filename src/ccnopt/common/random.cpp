#include "ccnopt/common/random.hpp"

namespace ccnopt {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) {
  // The splitmix64 state is a Weyl sequence (state += golden gamma), so the
  // state before the index-th draw is master + index * gamma; one step from
  // there yields exactly the index-th output of the stream.
  std::uint64_t state = master + index * 0x9E3779B97F4A7C15ULL;
  return splitmix64(state);
}

}  // namespace ccnopt
