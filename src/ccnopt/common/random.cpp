#include "ccnopt/common/random.hpp"

// Rng is header-only today; this TU anchors the library target and reserves
// a home for out-of-line distributions if they grow.
