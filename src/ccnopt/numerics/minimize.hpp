// One-dimensional minimization over an interval. Eq. 5 (min of the convex
// objective T_w over [0, c]) is solved through these; golden-section needs
// only unimodality, which Lemma 1 guarantees.
#pragma once

#include <functional>

#include "ccnopt/common/error.hpp"

namespace ccnopt::numerics {

struct MinimizeOptions {
  double x_tolerance = 1e-10;  // relative to the interval width
  int max_iterations = 200;
};

struct MinimizeResult {
  double x_min = 0.0;
  double f_min = 0.0;
  int iterations = 0;
};

using Objective = std::function<double(double)>;

/// Golden-section search on [lo, hi]; requires lo < hi and f unimodal on the
/// interval (convex suffices). Endpoint minima are returned correctly.
Expected<MinimizeResult> golden_section(const Objective& f, double lo,
                                        double hi,
                                        const MinimizeOptions& options = {});

/// Brent's parabolic-interpolation minimizer on [lo, hi]; same requirements
/// as golden_section, faster on smooth objectives.
Expected<MinimizeResult> brent_minimize(const Objective& f, double lo,
                                        double hi,
                                        const MinimizeOptions& options = {});

/// Exhaustive grid scan followed by golden-section refinement around the
/// best grid cell. Robust against mild non-unimodality; used as the
/// cross-check oracle in tests.
Expected<MinimizeResult> grid_refine(const Objective& f, double lo, double hi,
                                     int grid_points = 512,
                                     const MinimizeOptions& options = {});

}  // namespace ccnopt::numerics
