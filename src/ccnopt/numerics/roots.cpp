#include "ccnopt/numerics/roots.hpp"

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>

#include "ccnopt/obs/registry.hpp"

namespace ccnopt::numerics {
namespace {

// Root-finder usage counters land in the deterministic registry: call and
// iteration counts are pure functions of the solver inputs.
Expected<RootResult> count_root(const char* name,
                                Expected<RootResult> result) {
  obs::MetricsRegistry& registry = obs::metrics();
  registry.incr(std::string("numerics.roots.") + name + ".calls");
  if (result) {
    registry.incr(std::string("numerics.roots.") + name + ".iterations",
                  static_cast<std::uint64_t>(
                      result->iterations < 0 ? 0 : result->iterations));
  }
  return result;
}

bool opposite_signs(double a, double b) {
  return (a <= 0.0 && b >= 0.0) || (a >= 0.0 && b <= 0.0);
}

Status bad_bracket(double lo, double hi, double flo, double fhi) {
  return Status(ErrorCode::kInvalidArgument,
                "no sign change on bracket [" + std::to_string(lo) + ", " +
                    std::to_string(hi) + "]: f(lo)=" + std::to_string(flo) +
                    ", f(hi)=" + std::to_string(fhi));
}

Expected<RootResult> bisect_impl(const Fn& f, double lo, double hi,
                                 const RootOptions& options) {
  if (!(lo < hi)) {
    return Status(ErrorCode::kInvalidArgument, "bisect: lo must be < hi");
  }
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return RootResult{lo, 0.0, 0};
  if (fhi == 0.0) return RootResult{hi, 0.0, 0};
  if (!opposite_signs(flo, fhi)) return bad_bracket(lo, hi, flo, fhi);

  RootResult result;
  for (int it = 0; it < options.max_iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    result = RootResult{mid, fmid, it + 1};
    if (fmid == 0.0 || (hi - lo) < options.x_tolerance ||
        (options.f_tolerance > 0.0 && std::abs(fmid) < options.f_tolerance)) {
      return result;
    }
    if (opposite_signs(flo, fmid)) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  return result;  // best effort after max_iterations
}

Expected<RootResult> brent_impl(const Fn& f, double lo, double hi,
                                const RootOptions& options) {
  if (!(lo < hi)) {
    return Status(ErrorCode::kInvalidArgument, "brent: lo must be < hi");
  }
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return RootResult{a, 0.0, 0};
  if (fb == 0.0) return RootResult{b, 0.0, 0};
  if (!opposite_signs(fa, fb)) return bad_bracket(lo, hi, fa, fb);

  // Keep b the best iterate (smallest |f|), c the previous b.
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa;
  bool used_bisection = true;
  double d = 0.0;  // step before last, for the interpolation guard

  for (int it = 0; it < options.max_iterations; ++it) {
    double s;
    if (fa != fc && fb != fc) {
      // Inverse quadratic interpolation.
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      // Secant step.
      s = b - fb * (b - a) / (fb - fa);
    }

    const double mid = 0.5 * (a + b);
    const bool s_outside = !((s > std::min(mid, b)) && (s < std::max(mid, b)));
    const bool step_too_small =
        used_bisection ? std::abs(s - b) >= 0.5 * std::abs(b - c)
                       : std::abs(s - b) >= 0.5 * std::abs(c - d);
    if (s_outside || step_too_small) {
      s = mid;
      used_bisection = true;
    } else {
      used_bisection = false;
    }

    const double fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (opposite_signs(fa, fs)) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
    if (fb == 0.0 || std::abs(b - a) < options.x_tolerance ||
        (options.f_tolerance > 0.0 && std::abs(fb) < options.f_tolerance)) {
      return RootResult{b, fb, it + 1};
    }
  }
  return RootResult{b, fb, options.max_iterations};
}

Expected<RootResult> newton_impl(const Fn& f, const Fn& df, double lo,
                                 double hi, const RootOptions& options) {
  if (!(lo < hi)) {
    return Status(ErrorCode::kInvalidArgument, "newton: lo must be < hi");
  }
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return RootResult{lo, 0.0, 0};
  if (fhi == 0.0) return RootResult{hi, 0.0, 0};
  if (!opposite_signs(flo, fhi)) return bad_bracket(lo, hi, flo, fhi);

  double x = 0.5 * (lo + hi);
  for (int it = 0; it < options.max_iterations; ++it) {
    const double fx = f(x);
    if (fx == 0.0 ||
        (options.f_tolerance > 0.0 && std::abs(fx) < options.f_tolerance)) {
      return RootResult{x, fx, it};
    }
    // Shrink the bracket around the sign change.
    if (opposite_signs(flo, fx)) {
      hi = x;
    } else {
      lo = x;
      flo = fx;
    }
    if ((hi - lo) < options.x_tolerance) return RootResult{x, fx, it};

    const double dfx = df(x);
    double next = (dfx != 0.0) ? x - fx / dfx : 0.5 * (lo + hi);
    // Fall back to bisection when Newton escapes the bracket.
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    x = next;
  }
  return RootResult{x, f(x), options.max_iterations};
}

}  // namespace

Expected<RootResult> bisect(const Fn& f, double lo, double hi,
                            const RootOptions& options) {
  return count_root("bisect", bisect_impl(f, lo, hi, options));
}

Expected<RootResult> brent(const Fn& f, double lo, double hi,
                           const RootOptions& options) {
  return count_root("brent", brent_impl(f, lo, hi, options));
}

Expected<RootResult> newton_safeguarded(const Fn& f, const Fn& df, double lo,
                                        double hi,
                                        const RootOptions& options) {
  return count_root("newton", newton_impl(f, df, lo, hi, options));
}

Expected<std::pair<double, double>> expand_bracket(const Fn& f, double lo,
                                                   double hi, double limit_lo,
                                                   double limit_hi,
                                                   int max_expansions) {
  if (!(lo < hi) || !(limit_lo <= lo) || !(hi <= limit_hi)) {
    return Status(ErrorCode::kInvalidArgument,
                  "expand_bracket: need limit_lo <= lo < hi <= limit_hi");
  }
  double flo = f(lo);
  double fhi = f(hi);
  for (int i = 0; i < max_expansions; ++i) {
    if (opposite_signs(flo, fhi)) return std::make_pair(lo, hi);
    const double width = hi - lo;
    // Expand the side with the larger |f| (heuristic: the root is likely
    // beyond the flatter side).
    if (std::abs(flo) < std::abs(fhi)) {
      lo = std::max(limit_lo, lo - width);
      flo = f(lo);
    } else {
      hi = std::min(limit_hi, hi + width);
      fhi = f(hi);
    }
    if (lo == limit_lo && hi == limit_hi && !opposite_signs(flo, fhi)) break;
  }
  if (opposite_signs(flo, fhi)) return std::make_pair(lo, hi);
  return Status(ErrorCode::kNumericalFailure,
                "expand_bracket: no sign change found within limits");
}

}  // namespace ccnopt::numerics
