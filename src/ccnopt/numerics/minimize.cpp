#include "ccnopt/numerics/minimize.hpp"

#include <cmath>
#include <cstdint>
#include <string>

#include "ccnopt/obs/registry.hpp"

namespace ccnopt::numerics {
namespace {

// Iteration counts are a pure function of the objective and options, so
// they live in the deterministic obs::metrics() domain.
void count_minimize(const char* name, int iterations) {
  obs::metrics().incr(std::string("numerics.minimize.") + name + ".calls");
  obs::metrics().incr(std::string("numerics.minimize.") + name + ".iterations",
                      static_cast<std::uint64_t>(iterations < 0 ? 0 : iterations));
}

constexpr double kGolden = 0.6180339887498949;  // (sqrt(5) - 1) / 2

Status bad_interval() {
  return Status(ErrorCode::kInvalidArgument, "minimize: lo must be < hi");
}

MinimizeResult pick_best(const Objective& f, double a, double b, double x,
                         double fx, int iterations) {
  // The interior estimate can be beaten by an endpoint when the true
  // minimum sits on the boundary; compare explicitly.
  MinimizeResult best{x, fx, iterations};
  const double fa = f(a);
  if (fa < best.f_min) best = MinimizeResult{a, fa, iterations};
  const double fb = f(b);
  if (fb < best.f_min) best = MinimizeResult{b, fb, iterations};
  return best;
}

}  // namespace

Expected<MinimizeResult> golden_section(const Objective& f, double lo,
                                        double hi,
                                        const MinimizeOptions& options) {
  if (!(lo < hi)) return bad_interval();
  const double width0 = hi - lo;
  double a = lo, b = hi;
  double x1 = b - kGolden * (b - a);
  double x2 = a + kGolden * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  int it = 0;
  for (; it < options.max_iterations; ++it) {
    if ((b - a) <= options.x_tolerance * width0) break;
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kGolden * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kGolden * (b - a);
      f2 = f(x2);
    }
  }
  const double x = (f1 <= f2) ? x1 : x2;
  const double fx = std::min(f1, f2);
  count_minimize("golden", it);
  return pick_best(f, lo, hi, x, fx, it);
}

Expected<MinimizeResult> brent_minimize(const Objective& f, double lo,
                                        double hi,
                                        const MinimizeOptions& options) {
  if (!(lo < hi)) return bad_interval();
  // Numerical Recipes-style Brent minimizer.
  const double tol = std::max(options.x_tolerance, 1e-14);
  double a = lo, b = hi;
  double x = a + kGolden * (b - a);
  double w = x, v = x;
  double fx = f(x), fw = fx, fv = fx;
  double d = 0.0, e = 0.0;
  int it = 0;
  for (; it < options.max_iterations; ++it) {
    const double xm = 0.5 * (a + b);
    const double tol1 = tol * std::abs(x) + 1e-15;
    const double tol2 = 2.0 * tol1;
    if (std::abs(x - xm) <= tol2 - 0.5 * (b - a)) break;
    bool take_golden = true;
    if (std::abs(e) > tol1) {
      // Parabolic fit through x, v, w.
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::abs(q);
      const double e_prev = e;
      e = d;
      if (std::abs(p) < std::abs(0.5 * q * e_prev) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) {
          d = (xm >= x) ? tol1 : -tol1;
        }
        take_golden = false;
      }
    }
    if (take_golden) {
      e = (x >= xm) ? a - x : b - x;
      d = (1.0 - kGolden) * e;
    }
    const double u = (std::abs(d) >= tol1) ? x + d : x + ((d >= 0) ? tol1 : -tol1);
    const double fu = f(u);
    if (fu <= fx) {
      if (u >= x) {
        a = x;
      } else {
        b = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  count_minimize("brent", it);
  return pick_best(f, lo, hi, x, fx, it);
}

Expected<MinimizeResult> grid_refine(const Objective& f, double lo, double hi,
                                     int grid_points,
                                     const MinimizeOptions& options) {
  if (!(lo < hi)) return bad_interval();
  if (grid_points < 3) {
    return Status(ErrorCode::kInvalidArgument,
                  "grid_refine: need at least 3 grid points");
  }
  const double step = (hi - lo) / (grid_points - 1);
  double best_x = lo;
  double best_f = f(lo);
  for (int i = 1; i < grid_points; ++i) {
    const double x = lo + step * i;
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  obs::metrics().incr("numerics.minimize.grid.calls");
  const double refine_lo = std::max(lo, best_x - step);
  const double refine_hi = std::min(hi, best_x + step);
  auto refined = golden_section(f, refine_lo, refine_hi, options);
  if (!refined) return refined;
  if (refined->f_min <= best_f) return refined;
  return MinimizeResult{best_x, best_f, refined->iterations};
}

}  // namespace ccnopt::numerics
