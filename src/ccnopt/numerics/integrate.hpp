// Numerical quadrature. Used to validate the paper's Eq. 6 continuous
// approximation against direct integration and by tests of the harmonic
// machinery.
#pragma once

#include <functional>

#include "ccnopt/common/error.hpp"

namespace ccnopt::numerics {

using Integrand = std::function<double(double)>;

/// Composite trapezoid rule with `intervals` uniform panels on [lo, hi].
/// Requires lo <= hi and intervals >= 1.
double trapezoid(const Integrand& f, double lo, double hi, int intervals);

/// Composite Simpson's rule; `intervals` is rounded up to the next even
/// number. Requires lo <= hi and intervals >= 2.
double simpson(const Integrand& f, double lo, double hi, int intervals);

struct AdaptiveOptions {
  double tolerance = 1e-10;
  int max_depth = 40;
};

/// Adaptive Simpson quadrature with Richardson error control.
Expected<double> adaptive_simpson(const Integrand& f, double lo, double hi,
                                  const AdaptiveOptions& options = {});

}  // namespace ccnopt::numerics
