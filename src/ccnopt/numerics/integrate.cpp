#include "ccnopt/numerics/integrate.hpp"

#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::numerics {

double trapezoid(const Integrand& f, double lo, double hi, int intervals) {
  CCNOPT_EXPECTS(lo <= hi);
  CCNOPT_EXPECTS(intervals >= 1);
  if (lo == hi) return 0.0;
  const double h = (hi - lo) / intervals;
  double sum = 0.5 * (f(lo) + f(hi));
  for (int i = 1; i < intervals; ++i) sum += f(lo + h * i);
  return sum * h;
}

double simpson(const Integrand& f, double lo, double hi, int intervals) {
  CCNOPT_EXPECTS(lo <= hi);
  CCNOPT_EXPECTS(intervals >= 2);
  if (lo == hi) return 0.0;
  if (intervals % 2 != 0) ++intervals;
  const double h = (hi - lo) / intervals;
  double sum = f(lo) + f(hi);
  for (int i = 1; i < intervals; ++i) {
    sum += f(lo + h * i) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

namespace {

double adaptive_step(const Integrand& f, double lo, double hi, double flo,
                     double fmid, double fhi, double whole, double tolerance,
                     int depth, int max_depth, bool& converged) {
  const double mid = 0.5 * (lo + hi);
  const double lmid = 0.5 * (lo + mid);
  const double rmid = 0.5 * (mid + hi);
  const double flmid = f(lmid);
  const double frmid = f(rmid);
  const double h = hi - lo;
  const double left = h / 12.0 * (flo + 4.0 * flmid + fmid);
  const double right = h / 12.0 * (fmid + 4.0 * frmid + fhi);
  const double delta = left + right - whole;
  if (depth >= max_depth) {
    converged = false;
    return left + right + delta / 15.0;
  }
  if (std::abs(delta) <= 15.0 * tolerance) {
    return left + right + delta / 15.0;  // Richardson extrapolation
  }
  return adaptive_step(f, lo, mid, flo, flmid, fmid, left, tolerance / 2.0,
                       depth + 1, max_depth, converged) +
         adaptive_step(f, mid, hi, fmid, frmid, fhi, right, tolerance / 2.0,
                       depth + 1, max_depth, converged);
}

}  // namespace

Expected<double> adaptive_simpson(const Integrand& f, double lo, double hi,
                                  const AdaptiveOptions& options) {
  if (!(lo <= hi)) {
    return Status(ErrorCode::kInvalidArgument,
                  "adaptive_simpson: lo must be <= hi");
  }
  if (lo == hi) return 0.0;
  const double mid = 0.5 * (lo + hi);
  const double flo = f(lo), fmid = f(mid), fhi = f(hi);
  const double whole = (hi - lo) / 6.0 * (flo + 4.0 * fmid + fhi);
  bool converged = true;
  const double value =
      adaptive_step(f, lo, hi, flo, fmid, fhi, whole, options.tolerance, 0,
                    options.max_depth, converged);
  if (!converged) {
    return Status(ErrorCode::kNumericalFailure,
                  "adaptive_simpson: max recursion depth reached");
  }
  return value;
}

}  // namespace ccnopt::numerics
