// One-dimensional root finding over a bracket. Lemma 2's fixed-point
// equation a*l^{-s} = (1-l)^{-s} + b and the exact first-order condition of
// Eq. 4 are both solved through these.
#pragma once

#include <functional>

#include "ccnopt/common/error.hpp"

namespace ccnopt::numerics {

struct RootOptions {
  double x_tolerance = 1e-12;   // stop when the bracket is this narrow
  double f_tolerance = 0.0;     // stop when |f| falls below this (0 = off)
  int max_iterations = 200;
};

struct RootResult {
  double root = 0.0;
  double f_at_root = 0.0;
  int iterations = 0;
};

using Fn = std::function<double(double)>;

/// Bisection on [lo, hi]. Requires lo < hi and f(lo)*f(hi) <= 0; returns
/// kInvalidArgument otherwise (callers may not have a guaranteed bracket).
Expected<RootResult> bisect(const Fn& f, double lo, double hi,
                            const RootOptions& options = {});

/// Brent's method (inverse quadratic interpolation + secant + bisection
/// fallback) on [lo, hi]; same bracket requirement as bisect, superlinear
/// convergence on smooth f.
Expected<RootResult> brent(const Fn& f, double lo, double hi,
                           const RootOptions& options = {});

/// Newton's method with a bisection safeguard: iterates stay inside
/// [lo, hi] and the bracket shrinks monotonically, so convergence is
/// guaranteed for continuous f with a sign change.
Expected<RootResult> newton_safeguarded(const Fn& f, const Fn& df, double lo,
                                        double hi,
                                        const RootOptions& options = {});

/// Expands (geometrically) a candidate bracket [lo, hi] towards `limit_lo`
/// and `limit_hi` until f changes sign; returns the bracket or
/// kNumericalFailure if none is found within max_expansions.
Expected<std::pair<double, double>> expand_bracket(const Fn& f, double lo,
                                                   double hi, double limit_lo,
                                                   double limit_hi,
                                                   int max_expansions = 64);

}  // namespace ccnopt::numerics
