#include "ccnopt/numerics/neldermead.hpp"

#include <algorithm>
#include <cmath>

namespace ccnopt::numerics {
namespace {

void clamp_into(std::vector<double>& x, const std::vector<double>& lower,
                const std::vector<double>& upper) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}

}  // namespace

Expected<NelderMeadResult> nelder_mead(const ObjectiveNd& f,
                                       std::vector<double> start,
                                       const std::vector<double>& lower,
                                       const std::vector<double>& upper,
                                       const NelderMeadOptions& options) {
  const std::size_t dim = start.size();
  if (dim == 0 || lower.size() != dim || upper.size() != dim) {
    return Status(ErrorCode::kInvalidArgument,
                  "nelder_mead: dimension mismatch or empty");
  }
  for (std::size_t i = 0; i < dim; ++i) {
    if (!(lower[i] < upper[i])) {
      return Status(ErrorCode::kInvalidArgument,
                    "nelder_mead: need lower < upper in every coordinate");
    }
  }
  clamp_into(start, lower, upper);

  int evaluations = 0;
  const auto eval = [&](const std::vector<double>& x) {
    ++evaluations;
    return f(x);
  };

  // Initial simplex: start plus one vertex per coordinate, stepped inward
  // if the step would leave the box.
  struct Vertex {
    std::vector<double> x;
    double f;
  };
  std::vector<Vertex> simplex;
  simplex.reserve(dim + 1);
  simplex.push_back(Vertex{start, eval(start)});
  for (std::size_t i = 0; i < dim; ++i) {
    std::vector<double> x = start;
    const double step = options.initial_step * (upper[i] - lower[i]);
    x[i] = (x[i] + step <= upper[i]) ? x[i] + step : x[i] - step;
    clamp_into(x, lower, upper);
    simplex.push_back(Vertex{x, eval(x)});
  }
  const auto by_f = [](const Vertex& a, const Vertex& b) {
    return a.f < b.f;
  };

  while (evaluations < options.max_evaluations) {
    std::sort(simplex.begin(), simplex.end(), by_f);
    if (simplex.back().f - simplex.front().f <=
        options.f_tolerance * (std::abs(simplex.front().f) + 1.0)) {
      return NelderMeadResult{simplex.front().x, simplex.front().f,
                              evaluations, true};
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(dim, 0.0);
    for (std::size_t v = 0; v < dim; ++v) {
      for (std::size_t i = 0; i < dim; ++i) centroid[i] += simplex[v].x[i];
    }
    for (double& c : centroid) c /= static_cast<double>(dim);

    Vertex& worst = simplex.back();
    const auto step_from_centroid = [&](double coefficient) {
      std::vector<double> x(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        x[i] = centroid[i] + coefficient * (centroid[i] - worst.x[i]);
      }
      clamp_into(x, lower, upper);
      return x;
    };

    const std::vector<double> reflected =
        step_from_centroid(options.reflection);
    const double f_reflected = eval(reflected);

    if (f_reflected < simplex.front().f) {
      // Try expanding past the reflection.
      const std::vector<double> expanded =
          step_from_centroid(options.expansion);
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected) {
        worst = Vertex{expanded, f_expanded};
      } else {
        worst = Vertex{reflected, f_reflected};
      }
      continue;
    }
    if (f_reflected < simplex[dim - 1].f) {
      worst = Vertex{reflected, f_reflected};
      continue;
    }
    // Contract toward the centroid.
    const std::vector<double> contracted =
        step_from_centroid(-options.contraction);
    const double f_contracted = eval(contracted);
    if (f_contracted < worst.f) {
      worst = Vertex{contracted, f_contracted};
      continue;
    }
    // Shrink everything toward the best vertex.
    for (std::size_t v = 1; v <= dim; ++v) {
      for (std::size_t i = 0; i < dim; ++i) {
        simplex[v].x[i] = simplex[0].x[i] +
                          options.shrink * (simplex[v].x[i] - simplex[0].x[i]);
      }
      clamp_into(simplex[v].x, lower, upper);
      simplex[v].f = eval(simplex[v].x);
    }
  }
  std::sort(simplex.begin(), simplex.end(), by_f);
  return NelderMeadResult{simplex.front().x, simplex.front().f, evaluations,
                          false};
}

}  // namespace ccnopt::numerics
