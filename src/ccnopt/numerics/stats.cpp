#include "ccnopt/numerics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::numerics {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  CCNOPT_EXPECTS(count_ >= 1);
  return mean_;
}

double RunningStats::variance() const {
  CCNOPT_EXPECTS(count_ >= 2);
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  CCNOPT_EXPECTS(count_ >= 1);
  return min_;
}

double RunningStats::max() const {
  CCNOPT_EXPECTS(count_ >= 1);
  return max_;
}

double RunningStats::mean_ci_half_width(double z) const {
  CCNOPT_EXPECTS(z > 0.0);
  return z * stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats merge_tree(std::span<const RunningStats> parts) {
  if (parts.empty()) return RunningStats{};
  if (parts.size() == 1) return parts[0];
  const std::size_t half = parts.size() / 2;
  RunningStats left = merge_tree(parts.first(half));
  left.merge(merge_tree(parts.subspan(half)));
  return left;
}

double mean(std::span<const double> xs) {
  CCNOPT_EXPECTS(!xs.empty());
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  CCNOPT_EXPECTS(xs.size() >= 2);
  const double m = mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size() - 1);
}

double quantile(std::span<const double> xs, double q) {
  CCNOPT_EXPECTS(!xs.empty());
  CCNOPT_EXPECTS(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected) {
  CCNOPT_EXPECTS(observed.size() == expected.size());
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] < 1e-12) continue;
    const double diff = static_cast<double>(observed[i]) - expected[i];
    stat += diff * diff / expected[i];
  }
  return stat;
}

double ks_distance(std::span<const double> cdf_a,
                   std::span<const double> cdf_b) {
  CCNOPT_EXPECTS(cdf_a.size() == cdf_b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < cdf_a.size(); ++i) {
    d = std::max(d, std::abs(cdf_a[i] - cdf_b[i]));
  }
  return d;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  CCNOPT_EXPECTS(x.size() == y.size());
  CCNOPT_EXPECTS(x.size() >= 2);
  const double mx = mean(x);
  const double my = mean(y);
  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
    syy += (y[i] - my) * (y[i] - my);
  }
  CCNOPT_EXPECTS(sxx > 0.0);
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace ccnopt::numerics
