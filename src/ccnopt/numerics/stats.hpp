// Summary statistics and small inference helpers used by the simulator's
// metrics and by distribution tests of the Zipf samplers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ccnopt::numerics {

/// Streaming mean/variance accumulator (Welford). Numerically stable for
/// long simulation runs.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  /// Requires count() >= 1.
  double mean() const;
  /// Sample variance (n-1 denominator); requires count() >= 2.
  double variance() const;
  double stddev() const;
  /// Requires count() >= 1.
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// Merges another accumulator into this one with Chan's parallel
  /// update: mean' = mean + delta * n2 / n, m2' = m2_a + m2_b +
  /// delta^2 * n1 * n2 / n. Exact in the sense that the result is a pure
  /// function of the two operand states — merging the same pair always
  /// produces the same bits — and an empty operand is an identity element
  /// (merging it changes nothing; merging INTO it adopts the other's
  /// state verbatim). Merge is NOT bit-associative in general; when a
  /// reduction must be independent of how partials are grouped, fix the
  /// grouping with merge_tree() below.
  void merge(const RunningStats& other);

  /// Half-width of a normal-approximation confidence interval on the mean,
  /// z * stddev / sqrt(n) (z = 1.96 ~ 95%); requires count() >= 2.
  double mean_ci_half_width(double z = 1.96) const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Deterministic fixed-shape pairwise reduction of `parts` under
/// RunningStats::merge: the merge tree splits [0, n) at n/2 and recurses,
/// so the grouping — and therefore every bit of the combined moments —
/// depends only on parts.size(), never on how many threads or shards
/// produced the partials. Empty accumulators are identity elements, but
/// their POSITIONS still shape the tree, so callers that need
/// run-to-run bit-identity must present a fixed-size slot array (e.g.
/// one slot per router, empty slots included). Returns an empty
/// accumulator for empty input.
RunningStats merge_tree(std::span<const RunningStats> parts);

/// Arithmetic mean; requires non-empty input.
double mean(std::span<const double> xs);

/// Sample variance (n-1); requires size >= 2.
double variance(std::span<const double> xs);

/// Linearly-interpolated quantile, q in [0, 1]; requires non-empty input.
/// Sorts a copy; O(n log n).
double quantile(std::span<const double> xs, double q);

/// Pearson chi-square statistic of observed counts against expected counts.
/// Bins with expected < 1e-12 are skipped. Sizes must match.
double chi_square_statistic(std::span<const std::uint64_t> observed,
                            std::span<const double> expected);

/// Maximum absolute difference between two empirical CDF vectors
/// (Kolmogorov-Smirnov distance on pre-binned data). Sizes must match.
double ks_distance(std::span<const double> cdf_a, std::span<const double> cdf_b);

/// Least-squares slope and intercept of y against x; requires >= 2 points
/// and non-constant x. Used to estimate Zipf exponents from log-log data.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

}  // namespace ccnopt::numerics
