// Nelder-Mead downhill simplex: derivative-free N-dimensional minimization
// with box constraints (coordinates clamped into [lower, upper]). Used as
// the independent cross-check oracle for the heterogeneous model's
// coordinate-descent optimizer.
#pragma once

#include <functional>
#include <vector>

#include "ccnopt/common/error.hpp"

namespace ccnopt::numerics {

using ObjectiveNd = std::function<double(const std::vector<double>&)>;

struct NelderMeadOptions {
  int max_evaluations = 20000;
  double f_tolerance = 1e-12;   // stop when the simplex's f-spread is below
  double initial_step = 0.1;    // relative to each box width
  // Standard coefficients.
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

struct NelderMeadResult {
  std::vector<double> x;
  double f = 0.0;
  int evaluations = 0;
  bool converged = false;
};

/// Minimizes f over the box [lower, upper] starting at `start` (clamped
/// in). Requires matching non-empty dimensions with lower < upper.
Expected<NelderMeadResult> nelder_mead(const ObjectiveNd& f,
                                       std::vector<double> start,
                                       const std::vector<double>& lower,
                                       const std::vector<double>& upper,
                                       const NelderMeadOptions& options = {});

}  // namespace ccnopt::numerics
