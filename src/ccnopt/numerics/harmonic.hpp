// Generalized harmonic numbers H_{k,s} = sum_{j=1..k} j^{-s}, the building
// block of the paper's Zipf machinery (Eq. 1) and its continuous
// approximation (Eq. 6).
//
// Three evaluation strategies are provided:
//   * harmonic_exact      — direct summation, O(k); ground truth for tests.
//   * harmonic_euler_maclaurin — Euler–Maclaurin expansion, O(1) after a
//     short prefix sum; accurate to ~1e-12 for k >= 10. Used when k is in
//     the paper's range (up to N = 10^12) where direct summation is
//     impossible.
//   * harmonic_integral   — the pure integral approximation
//     (x^{1-s} - 1)/(1 - s) the paper substitutes in Eq. 6.
#pragma once

#include <cstdint>
#include <vector>

namespace ccnopt::numerics {

/// H_{k,s} by direct summation (summed smallest-term-first for accuracy).
/// Requires k >= 0; H_{0,s} = 0.
double harmonic_exact(std::uint64_t k, double s);

/// H_{k,s} via the Euler–Maclaurin expansion around the integral
/// \int_1^k t^{-s} dt. Requires k >= 1. Valid for any real s (s = 1 uses the
/// log form of the integral). Absolute error < 1e-10 for k >= 16.
double harmonic_euler_maclaurin(std::uint64_t k, double s);

/// H_{k,s} choosing exact summation for small k and Euler–Maclaurin above
/// `exact_threshold`. This is the default used by the popularity module.
double harmonic(std::uint64_t k, double s,
                std::uint64_t exact_threshold = 4096);

/// Log-weighted harmonic number L_{k,s} = sum_{j=1..k} j^{-s} ln j — the
/// numerator of the Zipf expected log-rank E[ln rank] = L/H that the MLE
/// exponent fit matches to data. Same three-strategy split as H_{k,s}.
double harmonic_log_exact(std::uint64_t k, double s);

/// L_{k,s} via Euler–Maclaurin on f(t) = t^{-s} ln t. Requires k >= 1.
double harmonic_log_euler_maclaurin(std::uint64_t k, double s);

/// L_{k,s} choosing exact summation below `exact_threshold`, Euler–Maclaurin
/// above — keeps the MLE fit O(1) per solver iteration at web-scale catalogs.
double harmonic_log(std::uint64_t k, double s,
                    std::uint64_t exact_threshold = 4096);

/// The continuous-approximation numerator of Eq. 6:
/// \int_1^x t^{-s} dt = (x^{1-s} - 1)/(1 - s)  (ln x when s = 1).
/// Requires x >= 1 (callers clamp; F(x<1) := 0 upstream).
double harmonic_integral(double x, double s);

/// Derivative of harmonic_integral with respect to x, i.e. x^{-s}.
double harmonic_integral_derivative(double x, double s);

/// Memoized exact harmonic prefix sums for one fixed exponent s; O(1) lookup
/// after an O(max_k) build. Used by exact-Zipf CDF evaluation and samplers.
class HarmonicTable {
 public:
  /// Builds prefix sums H_{0,s} .. H_{max_k,s}. Requires max_k >= 1.
  HarmonicTable(std::uint64_t max_k, double s);

  double s() const { return s_; }
  std::uint64_t max_k() const { return prefix_.size() - 1; }

  /// H_{k,s}; requires k <= max_k().
  double at(std::uint64_t k) const;

  /// Smallest k with H_{k,s} >= target (inverse CDF helper); returns max_k()
  /// if the target exceeds H_{max_k,s}.
  std::uint64_t lower_bound(double target) const;

 private:
  double s_;
  // prefix_[k] = H_{k,s}; kept as a flat vector for cache-friendly lookup.
  std::vector<double> prefix_;
};

}  // namespace ccnopt::numerics
