#include "ccnopt/numerics/harmonic.hpp"

#include <algorithm>
#include <cmath>

#include "ccnopt/common/assert.hpp"

namespace ccnopt::numerics {

double harmonic_exact(std::uint64_t k, double s) {
  // Sum smallest terms first so tiny tail terms are not absorbed into a
  // large running sum.
  double sum = 0.0;
  for (std::uint64_t j = k; j >= 1; --j) {
    sum += std::pow(static_cast<double>(j), -s);
  }
  return sum;
}

double harmonic_integral(double x, double s) {
  CCNOPT_EXPECTS(x >= 1.0);
  if (std::abs(s - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}

double harmonic_integral_derivative(double x, double s) {
  CCNOPT_EXPECTS(x > 0.0);
  return std::pow(x, -s);
}

double harmonic_euler_maclaurin(std::uint64_t k, double s) {
  CCNOPT_EXPECTS(k >= 1);
  // For small k the expansion's remainder is not negligible; sum directly.
  constexpr std::uint64_t kPrefix = 16;
  if (k <= kPrefix) return harmonic_exact(k, s);

  // H_{k,s} = H_{m,s} + sum_{j=m+1..k} j^{-s}, with the tail evaluated by
  // Euler-Maclaurin between m and k:
  //   sum_{j=m+1..k} f(j) = \int_m^k f + (f(k) - f(m))/2
  //                         + B2/2! (f'(k) - f'(m)) + B4/4! (f'''(k) - f'''(m)) + ...
  // with f(t) = t^{-s}. Using the closed-form derivatives of t^{-s}.
  const double m = static_cast<double>(kPrefix);
  const double x = static_cast<double>(k);
  double result = harmonic_exact(kPrefix, s);

  // Integral term.
  if (std::abs(s - 1.0) < 1e-12) {
    result += std::log(x / m);
  } else {
    result += (std::pow(x, 1.0 - s) - std::pow(m, 1.0 - s)) / (1.0 - s);
  }
  // Boundary term (f(k) - f(m))/2, counting k but not m.
  result += 0.5 * (std::pow(x, -s) - std::pow(m, -s));

  // Bernoulli corrections: B2 = 1/6, B4 = -1/30, B6 = 1/42.
  // f'(t)    = -s t^{-s-1}
  // f'''(t)  = -s(s+1)(s+2) t^{-s-3}
  // f^(5)(t) = -s(s+1)(s+2)(s+3)(s+4) t^{-s-5}
  const double b2 = 1.0 / 6.0, b4 = -1.0 / 30.0, b6 = 1.0 / 42.0;
  auto fd1 = [&](double t) { return -s * std::pow(t, -s - 1.0); };
  auto fd3 = [&](double t) {
    return -s * (s + 1.0) * (s + 2.0) * std::pow(t, -s - 3.0);
  };
  auto fd5 = [&](double t) {
    return -s * (s + 1.0) * (s + 2.0) * (s + 3.0) * (s + 4.0) *
           std::pow(t, -s - 5.0);
  };
  result += b2 / 2.0 * (fd1(x) - fd1(m));          // B2/2!
  result += b4 / 24.0 * (fd3(x) - fd3(m));         // B4/4!
  result += b6 / 720.0 * (fd5(x) - fd5(m));        // B6/6!
  return result;
}

double harmonic(std::uint64_t k, double s, std::uint64_t exact_threshold) {
  if (k == 0) return 0.0;
  if (k <= exact_threshold) return harmonic_exact(k, s);
  return harmonic_euler_maclaurin(k, s);
}

double harmonic_log_exact(std::uint64_t k, double s) {
  // Smallest terms first, as in harmonic_exact (ln 1 = 0, so j = 1
  // contributes nothing).
  double sum = 0.0;
  for (std::uint64_t j = k; j >= 2; --j) {
    const double t = static_cast<double>(j);
    sum += std::pow(t, -s) * std::log(t);
  }
  return sum;
}

double harmonic_log_euler_maclaurin(std::uint64_t k, double s) {
  CCNOPT_EXPECTS(k >= 1);
  constexpr std::uint64_t kPrefix = 16;
  if (k <= kPrefix) return harmonic_log_exact(k, s);

  // Euler-Maclaurin on f(t) = t^{-s} ln t between m = kPrefix and k, same
  // scheme as harmonic_euler_maclaurin. Antiderivative:
  //   \int t^{-s} ln t dt = t^{1-s}((1-s) ln t - 1)/(1-s)^2   (s != 1)
  //                       = (ln t)^2 / 2                       (s = 1)
  // Derivatives follow the closed recurrence
  //   f^(n)(t) = t^{-s-n} (a_n ln t + c_n),
  //   a_{n+1} = -(s+n) a_n,  c_{n+1} = a_n - (s+n) c_n,  a_0 = 1, c_0 = 0.
  const double m = static_cast<double>(kPrefix);
  const double x = static_cast<double>(k);
  double result = harmonic_log_exact(kPrefix, s);

  if (std::abs(s - 1.0) < 1e-12) {
    const double lx = std::log(x), lm = std::log(m);
    result += 0.5 * (lx * lx - lm * lm);
  } else {
    const double inv = 1.0 / (1.0 - s);
    const auto antiderivative = [&](double t) {
      return std::pow(t, 1.0 - s) * ((1.0 - s) * std::log(t) - 1.0) * inv *
             inv;
    };
    result += antiderivative(x) - antiderivative(m);
  }
  // Boundary term (f(k) - f(m))/2, counting k but not m.
  const auto f0 = [&](double t) { return std::pow(t, -s) * std::log(t); };
  result += 0.5 * (f0(x) - f0(m));

  // a_n, c_n up to n = 5 for the B2/B4/B6 corrections.
  double a[6], c[6];
  a[0] = 1.0;
  c[0] = 0.0;
  for (int n = 0; n < 5; ++n) {
    const double sn = s + static_cast<double>(n);
    a[n + 1] = -sn * a[n];
    c[n + 1] = a[n] - sn * c[n];
  }
  const auto fd = [&](int n, double t) {
    return std::pow(t, -s - static_cast<double>(n)) *
           (a[n] * std::log(t) + c[n]);
  };
  const double b2 = 1.0 / 6.0, b4 = -1.0 / 30.0, b6 = 1.0 / 42.0;
  result += b2 / 2.0 * (fd(1, x) - fd(1, m));    // B2/2!
  result += b4 / 24.0 * (fd(3, x) - fd(3, m));   // B4/4!
  result += b6 / 720.0 * (fd(5, x) - fd(5, m));  // B6/6!
  return result;
}

double harmonic_log(std::uint64_t k, double s, std::uint64_t exact_threshold) {
  if (k == 0) return 0.0;
  if (k <= exact_threshold) return harmonic_log_exact(k, s);
  return harmonic_log_euler_maclaurin(k, s);
}

HarmonicTable::HarmonicTable(std::uint64_t max_k, double s) : s_(s) {
  CCNOPT_EXPECTS(max_k >= 1);
  prefix_.resize(max_k + 1);
  prefix_[0] = 0.0;
  for (std::uint64_t k = 1; k <= max_k; ++k) {
    prefix_[k] = prefix_[k - 1] + std::pow(static_cast<double>(k), -s);
  }
}

double HarmonicTable::at(std::uint64_t k) const {
  CCNOPT_EXPECTS(k < prefix_.size());
  return prefix_[k];
}

std::uint64_t HarmonicTable::lower_bound(double target) const {
  const auto it = std::lower_bound(prefix_.begin() + 1, prefix_.end(), target);
  if (it == prefix_.end()) return max_k();
  return static_cast<std::uint64_t>(it - prefix_.begin());
}

}  // namespace ccnopt::numerics
