// Regenerates Figure 5: optimal strategy l* vs the Zipf exponent s, one
// series per alpha in {0.2,...,1.0}; s = 1 is the singular point and is
// excluded from the grid.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 5: l* vs s",
                             "s in [0.1,1) U (1,1.9], alpha in {0.2..1.0}");
  bench::BenchReporter reporter("fig5_zipf");
  const auto data = experiments::sweep_vs_zipf(base);
  return bench::run_figure_bench(reporter, data, experiments::Metric::kEllStar,
                                 argc, argv);
}
