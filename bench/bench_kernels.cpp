// google-benchmark microbenchmarks of the library's hot kernels: harmonic
// evaluation, Zipf sampling, cache policy operations, shortest paths, the
// optimizer, and the simulator's serve path.
#include <benchmark/benchmark.h>

#include "ccnopt/cache/policy.hpp"
#include "ccnopt/model/optimizer.hpp"
#include "ccnopt/numerics/harmonic.hpp"
#include "ccnopt/popularity/sampler.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/topology/datasets.hpp"
#include "ccnopt/topology/shortest_paths.hpp"

namespace {

using namespace ccnopt;

void BM_HarmonicExact(benchmark::State& state) {
  const auto k = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::harmonic_exact(k, 0.8));
  }
}
BENCHMARK(BM_HarmonicExact)->Arg(1000)->Arg(100000);

void BM_HarmonicEulerMaclaurin(benchmark::State& state) {
  const auto k = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(numerics::harmonic_euler_maclaurin(k, 0.8));
  }
}
BENCHMARK(BM_HarmonicEulerMaclaurin)->Arg(100000)->Arg(1000000000);

void BM_ZipfAliasSample(benchmark::State& state) {
  const popularity::ZipfDistribution zipf(
      static_cast<std::uint64_t>(state.range(0)), 0.8);
  popularity::AliasSampler sampler(zipf);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_ZipfAliasSample)->Arg(10000)->Arg(1000000);

void BM_ZipfInverseCdfSample(benchmark::State& state) {
  popularity::InverseCdfSampler sampler(popularity::ZipfDistribution(
      static_cast<std::uint64_t>(state.range(0)), 0.8));
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(rng));
  }
}
BENCHMARK(BM_ZipfInverseCdfSample)->Arg(10000)->Arg(1000000);

void BM_CachePolicyAdmit(benchmark::State& state) {
  const auto kind = static_cast<cache::PolicyKind>(state.range(0));
  auto policy = cache::make_policy(kind, 1024, 7);
  popularity::AliasSampler sampler(popularity::ZipfDistribution(16384, 0.8));
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->admit(sampler.sample(rng)));
  }
  state.SetLabel(to_string(kind));
}
BENCHMARK(BM_CachePolicyAdmit)->DenseRange(0, 3);

void BM_DijkstraCernet(benchmark::State& state) {
  const topology::Graph graph = topology::cernet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::dijkstra(graph, 0));
  }
}
BENCHMARK(BM_DijkstraCernet);

void BM_AllPairsCernet(benchmark::State& state) {
  const topology::Graph graph = topology::cernet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology::all_pairs(graph));
  }
}
BENCHMARK(BM_AllPairsCernet);

void BM_OptimizeExactFirstOrder(benchmark::State& state) {
  const model::SystemParams params =
      model::with_alpha(model::SystemParams::paper_defaults(), 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::solve_exact_first_order(params));
  }
}
BENCHMARK(BM_OptimizeExactFirstOrder);

void BM_OptimizeDirect(benchmark::State& state) {
  const model::SystemParams params =
      model::with_alpha(model::SystemParams::paper_defaults(), 0.6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model::solve_direct(params));
  }
}
BENCHMARK(BM_OptimizeDirect);

void BM_NetworkServe(benchmark::State& state) {
  sim::NetworkConfig config;
  config.catalog_size = 20000;
  config.capacity_c = 200;
  config.local_mode = sim::LocalStoreMode::kStaticTop;
  sim::CcnNetwork network(topology::us_a(), config);
  network.provision(static_cast<std::size_t>(state.range(0)));
  popularity::AliasSampler sampler(popularity::ZipfDistribution(20000, 0.8));
  Rng rng(3);
  topology::NodeId router = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(network.serve(router, sampler.sample(rng)));
    router = (router + 1) % static_cast<topology::NodeId>(network.router_count());
  }
}
BENCHMARK(BM_NetworkServe)->Arg(0)->Arg(100);

}  // namespace
