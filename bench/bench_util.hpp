// Shared plumbing for the figure benches: prints the Table IV parameter
// row, renders one metric of a sweep as an aligned table, and optionally
// dumps the full-resolution CSV when a path is passed as argv[1].
#pragma once

#include <fstream>
#include <iostream>
#include <string>

#include "ccnopt/experiments/figures.hpp"
#include "ccnopt/experiments/report.hpp"
#include "ccnopt/model/params.hpp"

namespace ccnopt::bench {

inline void print_params_banner(const model::SystemParams& p,
                                const std::string& figure,
                                const std::string& varied) {
  std::cout << "=== " << figure << " ===\n"
            << "Table IV row: s=" << p.s << " n=" << p.n
            << " N=" << p.catalog_n << " c=" << p.capacity_c
            << " gamma=" << p.latency.gamma()
            << " w=" << p.cost.unit_cost_w << "ms"
            << " d1-d0=" << (p.latency.d1 - p.latency.d0)
            << " amortization=" << p.cost.amortization
            << " | varied: " << varied << "\n\n";
}

inline int run_figure_bench(const experiments::FigureData& data,
                            experiments::Metric metric, int argc,
                            char** argv) {
  experiments::print_series_table(data, metric, std::cout);
  if (argc > 1) {
    std::ofstream csv(argv[1]);
    if (!csv) {
      std::cerr << "cannot open CSV path " << argv[1] << "\n";
      return 1;
    }
    experiments::write_series_csv(data, csv);
    std::cout << "\nfull-resolution CSV written to " << argv[1] << "\n";
  }
  return 0;
}

}  // namespace ccnopt::bench
