// Shared plumbing for the figure benches: prints the Table IV parameter
// row, renders one metric of a sweep as an aligned table, optionally dumps
// the full-resolution CSV when a path is passed as argv[1], and records a
// machine-readable BENCH_<name>.json (schema "ccnopt-bench-v1") holding
// wall-clock timings, key outputs, and the observability registry
// snapshots. The record lands in $CCNOPT_BENCH_DIR (default: the working
// directory); tools/check_bench_json.py validates it.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ccnopt/experiments/figures.hpp"
#include "ccnopt/experiments/report.hpp"
#include "ccnopt/model/params.hpp"
#include "ccnopt/obs/export.hpp"
#include "ccnopt/obs/process.hpp"
#include "ccnopt/obs/registry.hpp"
#include "ccnopt/obs/span.hpp"

namespace ccnopt::bench {

/// Steady-clock stopwatch, replacing the start/stop/duration_cast
/// boilerplate every bench used to hand-roll. Starts at construction;
/// restart() re-zeros; elapsed_ms() reads without stopping.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void restart() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }
  double elapsed_seconds() const { return elapsed_ms() / 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_params_banner(const model::SystemParams& p,
                                const std::string& figure,
                                const std::string& varied) {
  std::cout << "=== " << figure << " ===\n"
            << "Table IV row: s=" << p.s << " n=" << p.n
            << " N=" << p.catalog_n << " c=" << p.capacity_c
            << " gamma=" << p.latency.gamma()
            << " w=" << p.cost.unit_cost_w << "ms"
            << " d1-d0=" << (p.latency.d1 - p.latency.d0)
            << " amortization=" << p.cost.amortization
            << " | varied: " << varied << "\n\n";
}

/// Collects timings and key outputs of one bench run and writes them as
/// BENCH_<name>.json on finish(). Construction starts the total wall clock.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}

  void add_timing_ms(const std::string& label, double ms) {
    timings_[label] = ms;
  }

  void set_output(const std::string& key, const std::string& value) {
    std::string rendered = "\"";
    rendered += obs::json_escape(value);
    rendered += '"';
    outputs_[key] = std::move(rendered);
  }
  void set_output(const std::string& key, const char* value) {
    set_output(key, std::string(value));
  }
  void set_output(const std::string& key, bool value) {
    outputs_[key] = value ? "true" : "false";
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  void set_output(const std::string& key, T value) {
    outputs_[key] = std::to_string(static_cast<long long>(value));
  }
  template <typename T,
            std::enable_if_t<std::is_floating_point_v<T>, int> = 0>
  void set_output(const std::string& key, T value) {
    outputs_[key] = obs::json_number(static_cast<double>(value));
  }

  /// Writes BENCH_<name>.json and returns `exit_code` (or 1 when the write
  /// fails and the bench itself succeeded). Every record carries the
  /// process peak RSS (sampled here, so it bounds the whole bench) and a
  /// `catalog_size` output (0 unless the bench set one) — the scaling
  /// benches compare footprints across catalog sizes through these.
  int finish(int exit_code = 0) {
    timings_["total_ms"] = total_.elapsed_ms();
    const std::uint64_t peak_rss = obs::peak_rss_bytes();
    set_output("peak_rss_bytes", peak_rss);
    obs::perf().set_gauge("process.peak_rss_bytes",
                          static_cast<double>(peak_rss));
    if (outputs_.find("catalog_size") == outputs_.end()) {
      set_output("catalog_size", 0);
    }
    const char* dir = std::getenv("CCNOPT_BENCH_DIR");
    const std::string path =
        std::string(dir && *dir ? dir : ".") + "/BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (out) write_json(out);
    if (!out) {
      std::cerr << "cannot write bench record " << path << "\n";
      return exit_code == 0 ? 1 : exit_code;
    }
    std::cout << "bench record written to " << path << "\n";
    return exit_code;
  }

 private:
  void write_json(std::ostream& out) const {
    out << "{\n  \"schema\": \"ccnopt-bench-v1\",\n  \"name\": \""
        << obs::json_escape(name_) << "\",\n  \"timings_ms\": {";
    bool first = true;
    for (const auto& [label, ms] : timings_) {
      out << (first ? "" : ",") << "\n    \"" << obs::json_escape(label)
          << "\": " << obs::json_number(ms);
      first = false;
    }
    out << "\n  },\n  \"outputs\": {";
    first = true;
    for (const auto& [key, rendered] : outputs_) {
      out << (first ? "" : ",") << "\n    \"" << obs::json_escape(key)
          << "\": " << rendered;
      first = false;
    }
    out << "\n  },\n  \"registry\": ";
    obs::write_registry_json(out, obs::metrics().snapshot(), 2);
    out << ",\n  \"perf\": ";
    obs::write_registry_json(out, obs::perf().snapshot(), 2);
    out << ",\n  \"spans\": ";
    obs::write_spans_json(out, obs::SpanProfiler::instance().snapshot(), 2);
    out << "\n}\n";
  }

  std::string name_;
  WallTimer total_;
  std::map<std::string, double> timings_;
  std::map<std::string, std::string> outputs_;  // key -> rendered JSON value
};

inline int run_figure_bench(BenchReporter& reporter,
                            const experiments::FigureData& data,
                            experiments::Metric metric, int argc,
                            char** argv) {
  experiments::print_series_table(data, metric, std::cout);
  std::size_t points = 0;
  for (const auto& series : data.series) points += series.points.size();
  reporter.set_output("figure_id", data.id);
  reporter.set_output("metric", experiments::to_string(metric));
  reporter.set_output("series", data.series.size());
  reporter.set_output("points", points);
  int code = 0;
  if (argc > 1) {
    std::ofstream csv(argv[1]);
    if (!csv) {
      std::cerr << "cannot open CSV path " << argv[1] << "\n";
      code = 1;
    } else {
      experiments::write_series_csv(data, csv);
      std::cout << "\nfull-resolution CSV written to " << argv[1] << "\n";
    }
  }
  return reporter.finish(code);
}

}  // namespace ccnopt::bench
