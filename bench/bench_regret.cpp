// Misestimation regret: the objective cost of provisioning against a wrong
// Zipf exponent or tiered latency ratio — the stability question behind
// Sections I and V-B, quantified, and the motivation for the adaptive
// controller (its per-epoch estimation error maps through these curves).
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/model/robustness.hpp"
#include "ccnopt/model/sensitivity.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("regret");
  using namespace ccnopt;
  using namespace ccnopt::model;

  std::cout << "=== Regret of parameter misestimation (Table IV defaults, "
               "alpha=0.7) ===\n\n";
  const SystemParams base = with_alpha(SystemParams::paper_defaults(), 0.7);

  std::cout << "Zipf exponent: truth per column, belief per row "
               "(relative regret)\n";
  const std::vector<double> truths = {0.5, 0.8, 1.2, 1.5};
  const std::vector<double> beliefs = {0.3, 0.5, 0.8, 1.2, 1.5, 1.8};
  TextTable zipf_table({"believed \\ true", "s=0.5", "s=0.8", "s=1.2",
                        "s=1.5"});
  for (const double belief : beliefs) {
    std::vector<std::string> row{format_double(belief, 1)};
    for (const double truth : truths) {
      const auto regret = misestimation_regret(with_zipf(base, belief),
                                               with_zipf(base, truth));
      row.push_back(regret ? format_percent(regret->relative, 2) : "-");
    }
    zipf_table.add_row(std::move(row));
  }
  zipf_table.print(std::cout);

  std::cout << "\nTiered latency ratio gamma: truth 5, beliefs swept\n";
  const auto curve = gamma_regret_curve(base, linspace(1.0, 10.0, 10));
  if (curve) {
    TextTable gamma_table({"believed gamma", "relative regret",
                           "x believed", "x true"});
    for (const auto& point : *curve) {
      gamma_table.add_row({format_double(point.believed_parameter, 1),
                           format_percent(point.regret.relative, 2),
                           format_double(point.regret.x_believed, 0),
                           format_double(point.regret.x_true, 0)});
    }
    gamma_table.print(std::cout);
  }
  std::cout << "\n(regret vanishes at the truth and grows asymmetrically: "
               "underestimating s — believing demand flatter than it is — "
               "is the costlier direction, e.g. believing 0.5 against a "
               "true 1.5 costs ~59% while the reverse costs ~3%)\n";
  return reporter.finish();
}
