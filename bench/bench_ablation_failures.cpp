// Ablation: router failures — the flip side of coordination the paper
// does not evaluate. Coordinated pools hold *unique* contents, so losing
// a router loses its pool share until the coordinator re-provisions
// ("repair"); non-coordinated networks only lose topology. Measured on
// US-A with the same request stream across scenarios.
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/sim/workload.hpp"
#include "ccnopt/topology/datasets.hpp"

namespace {

using namespace ccnopt;

struct Measurement {
  double origin_load = 0.0;
  double mean_latency_ms = 0.0;
};

Measurement measure(sim::CcnNetwork& network, std::uint64_t requests,
                    std::uint64_t seed) {
  sim::ZipfWorkload workload(network.router_count(),
                             network.config().catalog_size, 0.8, seed);
  double latency = 0.0;
  std::uint64_t origin = 0;
  std::uint64_t served = 0;
  for (std::uint64_t r = 0; r < requests; ++r) {
    const auto router =
        static_cast<topology::NodeId>(r % network.router_count());
    if (network.is_failed(router)) continue;  // clients of dead routers
    const sim::ServeResult result =
        network.serve(router, workload.next(router));
    latency += result.latency_ms;
    origin += (result.tier == sim::ServeTier::kOrigin) ? 1 : 0;
    ++served;
  }
  return Measurement{static_cast<double>(origin) / static_cast<double>(served),
                     latency / static_cast<double>(served)};
}

}  // namespace

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_failures");
  std::cout << "=== Ablation: router failures vs coordination level (US-A, "
               "N=20000, c=200, s=0.8) ===\n\n";
  sim::NetworkConfig config;
  config.catalog_size = 20000;
  config.capacity_c = 200;
  config.local_mode = sim::LocalStoreMode::kStaticTop;
  config.origin_gateway = 0;
  config.origin_extra_ms = 50.0;

  // Fail well-connected non-gateway routers (Atlanta, Dallas, Kansas City,
  // Phoenix) in an order that keeps the survivors connected to the
  // Seattle gateway.
  const std::vector<topology::NodeId> failure_order = {13, 7, 9, 4};

  for (const std::size_t x : {std::size_t{0}, std::size_t{100},
                              std::size_t{200}}) {
    std::cout << "coordinated x = " << x << " per router (l = "
              << format_double(static_cast<double>(x) / 200.0, 2) << ")\n";
    TextTable table({"failed routers", "origin load", "mean latency ms",
                     "pool contents lost", "origin after repair",
                     "latency after repair"});
    sim::CcnNetwork network(topology::us_a(), config);
    network.provision(x);
    const Measurement healthy = measure(network, 120000, 1);
    table.add_row({"0", format_double(healthy.origin_load, 4),
                   format_double(healthy.mean_latency_ms, 2), "0", "-", "-"});
    for (std::size_t k = 1; k <= failure_order.size(); ++k) {
      sim::CcnNetwork damaged(topology::us_a(), config);
      damaged.provision(x);
      for (std::size_t i = 0; i < k; ++i) {
        damaged.set_router_failed(failure_order[i], true);
      }
      const std::size_t lost = damaged.coordinated_contents_lost();
      const Measurement broken = measure(damaged, 120000, 1);
      damaged.provision(x);  // repair: redistribute over survivors
      const Measurement repaired = measure(damaged, 120000, 1);
      table.add_row({std::to_string(k), format_double(broken.origin_load, 4),
                     format_double(broken.mean_latency_ms, 2),
                     std::to_string(lost),
                     format_double(repaired.origin_load, 4),
                     format_double(repaired.mean_latency_ms, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(higher coordination -> more unique contents lost per "
               "failure -> larger origin spike, but repair recovers nearly "
               "all of it by reassigning the pool over survivors)\n";
  return reporter.finish();
}
