// Regenerates Figure 11: origin load reduction G_O vs the unit
// coordination cost w (drops fast for small alpha, invariant at alpha = 1).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 11: G_O vs w",
                             "w in [10,100] ms, alpha in {0.2..1.0}");
  bench::BenchReporter reporter("fig11_go_unitcost");
  const auto data = experiments::sweep_vs_unit_cost(base);
  return bench::run_figure_bench(reporter, data,
                                 experiments::Metric::kOriginGain, argc, argv);
}
