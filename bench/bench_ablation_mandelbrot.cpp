// Ablation: robustness of the paper's conclusions to the popularity law's
// head shape. The analysis assumes pure Zipf; real web/video catalogs are
// often Zipf-Mandelbrot, f(i) ~ (i+q)^{-s}. The generalized model (any
// CDF) re-optimizes l* as the plateau q grows.
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/model/general.hpp"
#include "ccnopt/popularity/mandelbrot.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_mandelbrot");
  using namespace ccnopt;
  using namespace ccnopt::model;

  std::cout << "=== Ablation: Zipf-Mandelbrot popularity (s=0.8, n=20, "
               "N=1e6, c=1e3) ===\n"
            << "f(i) ~ (i+q)^{-s}; q = 0 is the paper's pure Zipf\n\n";

  for (const double alpha : {1.0, 0.6}) {
    const SystemParams p =
        with_alpha(SystemParams::paper_defaults(), alpha);
    std::cout << "alpha = " << alpha << "\n";
    TextTable table({"plateau q", "l*", "G_O", "G_R", "F(c) head mass"});
    for (const double q : {0.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
      const popularity::ContinuousZipfMandelbrot zm(p.catalog_n, p.s, q);
      const GeneralPerformanceModel general(
          GeneralParams::from_system(p),
          [zm](double x) { return zm.cdf(x); });
      const auto strategy = general.optimize(1024);
      if (!strategy) continue;
      const auto gains = general.gains(strategy->x_star);
      table.add_row({format_double(q, 0),
                     format_double(strategy->ell_star, 4),
                     format_double(gains.origin_load_reduction, 4),
                     format_double(gains.routing_improvement, 4),
                     format_double(zm.cdf(p.capacity_c), 4)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(a mild plateau barely moves the optimum — the paper's "
               "conclusions are robust; a catalog-scale plateau erodes the "
               "head mass caching feeds on and the gains collapse)\n";
  return reporter.finish();
}
