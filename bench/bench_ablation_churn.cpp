// Ablation: catalog churn. The paper provisions once against a stationary
// Zipf; real catalogs turn over (news, releases). Under a sliding popular
// set, the static-top local stores the model assumes decay, dynamic
// policies track the drift, and periodic re-provisioning (the coordinator
// epoch) recovers the static scheme — quantifying how often the paper's
// scheme must re-run its provisioning step.
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/sim/workload.hpp"
#include "ccnopt/topology/datasets.hpp"

namespace {

using namespace ccnopt;

struct Row {
  double origin_load;
  double mean_latency_ms;
};

// One experiment: serve `total` requests with optional re-provisioning of
// the static stores every `reprovision_every` requests (0 = never). The
// coordinator re-provisions by shifting the static top to the current
// popular window (it knows the drift from its own observation plane).
Row run(sim::LocalStoreMode mode, std::uint64_t reprovision_every,
        std::uint64_t drift_interval) {
  sim::NetworkConfig config;
  config.catalog_size = 50000;
  config.capacity_c = 200;
  config.local_mode = mode;
  config.origin_extra_ms = 50.0;
  sim::CcnNetwork network(topology::us_a(), config);
  network.provision(100);

  const std::uint64_t total = 200000;
  sim::SlidingZipfWorkload workload(network.router_count(), 50000, 0.8,
                                    /*active_window=*/2000, drift_interval,
                                    77);
  double latency = 0.0;
  std::uint64_t origin = 0;
  for (std::uint64_t r = 0; r < total; ++r) {
    if (reprovision_every != 0 && r > 0 && r % reprovision_every == 0) {
      // An epoch: rebuild stores. Static tops snap back to ranks 1..m of
      // the *original* numbering — they cannot follow the drift, which is
      // exactly the gap a rank-aware coordinator would close.
      network.provision(100);
    }
    const auto router =
        static_cast<topology::NodeId>(r % network.router_count());
    const sim::ServeResult result =
        network.serve(router, workload.next(router));
    latency += result.latency_ms;
    origin += (result.tier == sim::ServeTier::kOrigin) ? 1 : 0;
  }
  return Row{static_cast<double>(origin) / static_cast<double>(total),
             latency / static_cast<double>(total)};
}

}  // namespace

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_churn");
  std::cout << "=== Ablation: catalog churn (US-A, sliding Zipf window 2000 "
               "of 50000, x=100) ===\n\n";
  TextTable table({"local stores", "drift 1/req", "drift 1/10 req",
                   "drift 1/100 req", "no drift"});
  const std::uint64_t intervals[] = {1, 10, 100, 1000000000ULL};
  const sim::LocalStoreMode modes[] = {
      sim::LocalStoreMode::kStaticTop, sim::LocalStoreMode::kLru,
      sim::LocalStoreMode::kLfu};
  for (const sim::LocalStoreMode mode : modes) {
    std::vector<std::string> row{to_string(mode)};
    for (const std::uint64_t interval : intervals) {
      const Row result = run(mode, 0, interval);
      row.push_back(format_double(result.origin_load, 3) + " / " +
                    format_double(result.mean_latency_ms, 1) + "ms");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(cells: origin load / mean latency. The model's "
               "frequency-ideal static stores hold up only while the drift "
               "is slow relative to the provisioning epoch; LRU locals "
               "degrade gracefully because admission follows the stream)\n";
  return reporter.finish();
}
