// Regenerates Figure 12: routing performance improvement G_R vs alpha, per
// gamma. Note (EXPERIMENTS.md): the paper quotes 60-90% improvement for
// alpha >= 0.5, gamma >= 8; the stated Table IV parameters bound G_R well
// below that — the monotone ordering in alpha and gamma is what reproduces.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 12: G_R vs alpha",
                             "alpha in (0,1], gamma in {2,4,6,8,10}");
  bench::BenchReporter reporter("fig12_gr_alpha");
  const auto data = experiments::sweep_vs_alpha(base);
  return bench::run_figure_bench(reporter, data,
                                 experiments::Metric::kRoutingGain, argc, argv);
}
