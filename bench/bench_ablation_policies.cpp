// Ablation: local replacement policies in the simulator. The analytical
// model assumes frequency-ideal (static-top) local stores; this measures
// how far LRU/LFU/FIFO/Random fall from that ideal, with and without the
// coordinated partition, plus the opportunistic peer-replica lookup the
// model omits, plus every registered caching strategy head-to-head (the
// roster is enumerated from the strategy registry, so newly registered
// strategies show up here without touching this bench).
//
// The warmup split is measured, not guessed: a probe run through
// sim::run_to_steady_state detects where the LRU/coordinated baseline
// converges and every ablation cell warms up for that long (the old
// hard-coded 150000 remains only as the no-convergence fallback).
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "ccnopt/cache/che.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/popularity/sampler.hpp"
#include "ccnopt/sim/simulation.hpp"
#include "ccnopt/sim/steady_state.hpp"
#include "ccnopt/strategy/registry.hpp"
#include "ccnopt/topology/datasets.hpp"

namespace {

// Warmup budget shared by every cell; overwritten by the detection probe
// in main() before any table runs.
std::uint64_t g_warmup_requests = 150000;

ccnopt::sim::SimConfig base_config(ccnopt::sim::LocalStoreMode mode,
                                   std::size_t coordinated_x) {
  using namespace ccnopt;
  sim::SimConfig config;
  config.network.catalog_size = 20000;
  config.network.capacity_c = 200;
  config.network.local_mode = mode;
  config.network.origin_extra_ms = 50.0;
  config.coordinated_x = coordinated_x;
  config.zipf_s = 0.8;
  config.warmup_requests = g_warmup_requests;
  config.measured_requests = 150000;
  config.seed = 99;
  return config;
}

ccnopt::sim::SimReport run(ccnopt::sim::LocalStoreMode mode,
                           std::size_t coordinated_x, bool peer_fetch) {
  using namespace ccnopt;
  sim::SimConfig config = base_config(mode, coordinated_x);
  config.network.allow_peer_local_fetch = peer_fetch;
  sim::Simulation simulation(topology::us_a(), config);
  return simulation.run();
}

ccnopt::sim::SimReport run_strategy(const std::string& strategy) {
  using namespace ccnopt;
  sim::SimConfig config =
      base_config(sim::LocalStoreMode::kLru, /*coordinated_x=*/100);
  config.network.strategy = strategy;
  sim::Simulation simulation(topology::us_a(), config);
  return simulation.run();
}

}  // namespace

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_policies");
  using namespace ccnopt;
  using sim::LocalStoreMode;
  std::cout << "=== Ablation: local store policies (US-A, N=20000, c=200, "
               "s=0.8) ===\n\n";

  // Detection probe on the LRU/coordinated baseline every other table is
  // compared against; its convergence point becomes the shared warmup.
  {
    sim::SimConfig probe =
        base_config(LocalStoreMode::kLru, /*coordinated_x=*/100);
    probe.warmup_requests = 0;
    probe.measured_requests = 300000;
    const bench::WallTimer probe_timer;
    const sim::SteadyStateRun steady =
        sim::run_to_steady_state(topology::us_a(), std::move(probe));
    reporter.add_timing_ms("steady_probe_ms", probe_timer.elapsed_ms());
    if (steady.steady.converged) {
      g_warmup_requests = steady.steady_state_requests;
    }
    reporter.set_output("converged", steady.steady.converged);
    reporter.set_output("steady_state_requests", steady.steady_state_requests);
    reporter.set_output("warmup_requests", g_warmup_requests);
    std::cout << "detected warmup: " << g_warmup_requests << " requests ("
              << (steady.steady.converged ? "converged"
                                          : "no convergence, fallback 150000")
              << ")\n\n";
  }

  const LocalStoreMode modes[] = {LocalStoreMode::kStaticTop,
                                  LocalStoreMode::kLfu, LocalStoreMode::kLru,
                                  LocalStoreMode::kFifo,
                                  LocalStoreMode::kRandom};

  for (const std::size_t x : {std::size_t{0}, std::size_t{100}}) {
    std::cout << "coordinated x = " << x << " per router\n";
    TextTable table({"local policy", "local frac", "network frac",
                     "origin load", "mean latency ms", "mean hops"});
    for (const LocalStoreMode mode : modes) {
      const sim::SimReport report = run(mode, x, /*peer_fetch=*/false);
      table.add_row({to_string(mode), format_double(report.local_fraction, 4),
                     format_double(report.network_fraction, 4),
                     format_double(report.origin_load, 4),
                     format_double(report.mean_latency_ms, 2),
                     format_double(report.mean_hops, 3)});
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "Che's approximation vs measured LRU local hit ratio "
               "(analytic LRU without simulation):\n";
  {
    TextTable che_table({"capacity", "Che aggregate h", "measured LRU h",
                         "static-top ideal F(C)"});
    for (const std::size_t capacity : {std::size_t{100}, std::size_t{200},
                                       std::size_t{400}}) {
      const popularity::ZipfDistribution zipf(20000, 0.8);
      const auto che = cache::CheApproximation::create(zipf, capacity);
      auto lru = cache::make_policy(cache::PolicyKind::kLru, capacity, 5);
      popularity::AliasSampler sampler(zipf);
      Rng rng(31337);
      for (int i = 0; i < 200000; ++i) lru->admit(sampler.sample(rng));
      lru->reset_stats();
      for (int i = 0; i < 200000; ++i) lru->admit(sampler.sample(rng));
      che_table.add_row({std::to_string(capacity),
                         format_double(che->aggregate_hit_ratio(), 4),
                         format_double(lru->stats().hit_ratio(), 4),
                         format_double(che->ideal_hit_ratio(), 4)});
    }
    che_table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << "opportunistic peer-replica lookup (x = 0, the mechanism the "
               "model's mid tier replaces):\n";
  TextTable peer_table({"local policy", "origin load (no peer)",
                        "origin load (peer fetch)", "latency (no peer)",
                        "latency (peer fetch)"});
  for (const LocalStoreMode mode : {LocalStoreMode::kLru,
                                    LocalStoreMode::kLfu}) {
    const sim::SimReport plain = run(mode, 0, false);
    const sim::SimReport peer = run(mode, 0, true);
    peer_table.add_row({to_string(mode), format_double(plain.origin_load, 4),
                        format_double(peer.origin_load, 4),
                        format_double(plain.mean_latency_ms, 2),
                        format_double(peer.mean_latency_ms, 2)});
  }
  peer_table.print(std::cout);
  std::cout << "(non-coordinated stores replicate the same top contents, so "
               "peer lookup barely helps — the paper's Section II point)\n\n";

  std::cout << "caching strategies head-to-head (registry-enumerated, LRU "
               "local stores, x=100 where coordinated):\n";
  TextTable strategy_table({"strategy", "local frac", "network frac",
                            "origin load", "mean latency ms", "coord msgs"});
  for (const std::string& name : strategy::strategy_names()) {
    const sim::SimReport report = run_strategy(name);
    strategy_table.add_row(
        {name, format_double(report.local_fraction, 4),
         format_double(report.network_fraction, 4),
         format_double(report.origin_load, 4),
         format_double(report.mean_latency_ms, 2),
         std::to_string(report.coordination_messages)});
  }
  strategy_table.print(std::cout);
  std::cout << "(en-route strategies pay zero coordination messages but "
               "give up the split's guaranteed coverage)\n";
  return reporter.finish();
}
