// Regenerates Figure 4: optimal strategy l* vs the trade-off weight alpha,
// one series per tiered latency ratio gamma in {2,4,6,8,10}.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 4: l* vs alpha",
                             "alpha in (0,1], gamma in {2,4,6,8,10}");
  bench::BenchReporter reporter("fig4_alpha");
  const auto data = experiments::sweep_vs_alpha(base);
  return bench::run_figure_bench(reporter, data, experiments::Metric::kEllStar,
                                 argc, argv);
}
