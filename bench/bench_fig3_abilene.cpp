// Regenerates Figure 3: the Abilene topology. Prints the adjacency with
// link latencies and emits Graphviz DOT (pass a path to write it; render
// with `neato -Tpng`).
#include <fstream>
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/topology/datasets.hpp"
#include "ccnopt/topology/io.hpp"

int main(int argc, char** argv) {
  ccnopt::bench::BenchReporter reporter("fig3_abilene");
  using namespace ccnopt;
  const topology::Graph g = topology::abilene();
  std::cout << "=== Figure 3: the Abilene network (" << g.node_count()
            << " nodes, " << g.directed_edge_count()
            << " directed edges) ===\n\n";
  TextTable table({"link", "latency ms"});
  for (const topology::Graph::Link& link : g.links()) {
    table.add_row({g.node(link.u).name + " -- " + g.node(link.v).name,
                   format_double(link.latency_ms, 2)});
  }
  table.print(std::cout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    if (!out) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return reporter.finish(1);
    }
    topology::write_dot(g, out);
    std::cout << "\nDOT written to " << argv[1]
              << " (render: neato -Tpng)\n";
  }
  return reporter.finish();
}
