// Regenerates Figure 10: origin load reduction G_O vs the network size n
// (flat for small alpha, rising with n as alpha -> 1).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 10: G_O vs n",
                             "n in [10,500], alpha in {0.2..1.0}");
  bench::BenchReporter reporter("fig10_go_netsize");
  const auto data = experiments::sweep_vs_routers(base);
  return bench::run_figure_bench(reporter, data,
                                 experiments::Metric::kOriginGain, argc, argv);
}
