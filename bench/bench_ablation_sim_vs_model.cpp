// Ablation: the analytical model (Eq. 2, tier splits, origin load) against
// the discrete-event simulator on all four evaluation topologies. The
// simulator never touches the formulas — agreement here validates the
// model end to end.
//
// The x-point sweeps are independent simulations, so each topology's sweep
// also runs point-parallel on a hardware-sized ThreadPool; the serial and
// parallel results are checked identical (the determinism contract) and
// the wall-clock speedup is printed.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/experiments/sim_vs_model.hpp"
#include "ccnopt/runtime/thread_pool.hpp"
#include "ccnopt/topology/datasets.hpp"

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start,
                  std::chrono::steady_clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

bool same_points(const ccnopt::experiments::SimVsModelResult& a,
                 const ccnopt::experiments::SimVsModelResult& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (a.points[i].sim_latency_ms != b.points[i].sim_latency_ms ||
        a.points[i].sim_origin_load != b.points[i].sim_origin_load ||
        a.points[i].sim_local_fraction != b.points[i].sim_local_fraction) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace ccnopt;
  using Clock = std::chrono::steady_clock;
  bench::BenchReporter reporter("ablation_sim_vs_model");
  runtime::ThreadPool pool;
  std::cout << "=== Ablation: analytical model vs discrete-event simulation "
               "===\n"
            << "(N=50000, c=500, s=0.8, static-top local stores, 200k "
               "requests per point; x points run on "
            << pool.thread_count() << " threads)\n\n";
  double serial_total_ms = 0.0;
  double parallel_total_ms = 0.0;
  bool all_identical = true;
  double max_origin_err = 0.0;
  double max_latency_rel_err = 0.0;
  std::size_t topologies = 0;
  for (const topology::Graph& graph : topology::all_datasets()) {
    const auto serial_start = Clock::now();
    const experiments::SimVsModelResult serial =
        experiments::run_sim_vs_model(graph);
    const auto serial_stop = Clock::now();
    const experiments::SimVsModelResult result =
        experiments::run_sim_vs_model(graph, {}, &pool);
    const auto parallel_stop = Clock::now();
    serial_total_ms += elapsed_ms(serial_start, serial_stop);
    parallel_total_ms += elapsed_ms(serial_stop, parallel_stop);
    all_identical = all_identical && same_points(serial, result);

    std::cout << graph.name() << " (n=" << graph.node_count()
              << ", derived gamma="
              << format_double(result.params.latency.gamma(), 2) << ")\n";
    TextTable table({"l=x/c", "T model", "T sim", "origin model",
                     "origin sim", "local model", "local sim"});
    for (const auto& point : result.points) {
      table.add_row({format_double(point.ell, 2),
                     format_double(point.model_latency_ms, 2),
                     format_double(point.sim_latency_ms, 2),
                     format_double(point.model_origin_load, 4),
                     format_double(point.sim_origin_load, 4),
                     format_double(point.model_local_fraction, 4),
                     format_double(point.sim_local_fraction, 4)});
    }
    table.print(std::cout);
    std::cout << "max |origin error| = "
              << format_double(result.max_origin_load_abs_error, 4)
              << ", max latency rel error = "
              << format_percent(result.max_latency_rel_error) << "\n\n";
    max_origin_err = std::max(max_origin_err, result.max_origin_load_abs_error);
    max_latency_rel_err =
        std::max(max_latency_rel_err, result.max_latency_rel_error);
    ++topologies;
  }
  std::cout << "total sim wall-clock: serial "
            << format_double(serial_total_ms, 0) << " ms, parallel "
            << format_double(parallel_total_ms, 0) << " ms (speedup "
            << format_double(serial_total_ms / parallel_total_ms, 2)
            << "x), serial/parallel results "
            << (all_identical ? "identical" : "DIVERGED") << "\n";
  reporter.add_timing_ms("sim_serial_ms", serial_total_ms);
  reporter.add_timing_ms("sim_parallel_ms", parallel_total_ms);
  reporter.set_output("topologies", topologies);
  reporter.set_output("threads", pool.thread_count());
  reporter.set_output("serial_parallel_identical", all_identical);
  reporter.set_output("max_origin_load_abs_error", max_origin_err);
  reporter.set_output("max_latency_rel_error", max_latency_rel_err);
  return reporter.finish(all_identical ? 0 : 1);
}
