// Ablation: the analytical model (Eq. 2, tier splits, origin load) against
// the discrete-event simulator on all four evaluation topologies. The
// simulator never touches the formulas — agreement here validates the
// model end to end.
#include <iostream>

#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/experiments/sim_vs_model.hpp"
#include "ccnopt/topology/datasets.hpp"

int main() {
  using namespace ccnopt;
  std::cout << "=== Ablation: analytical model vs discrete-event simulation "
               "===\n"
            << "(N=50000, c=500, s=0.8, static-top local stores, 200k "
               "requests per point)\n\n";
  for (const topology::Graph& graph : topology::all_datasets()) {
    const experiments::SimVsModelResult result =
        experiments::run_sim_vs_model(graph);
    std::cout << graph.name() << " (n=" << graph.node_count()
              << ", derived gamma="
              << format_double(result.params.latency.gamma(), 2) << ")\n";
    TextTable table({"l=x/c", "T model", "T sim", "origin model",
                     "origin sim", "local model", "local sim"});
    for (const auto& point : result.points) {
      table.add_row({format_double(point.ell, 2),
                     format_double(point.model_latency_ms, 2),
                     format_double(point.sim_latency_ms, 2),
                     format_double(point.model_origin_load, 4),
                     format_double(point.sim_origin_load, 4),
                     format_double(point.model_local_fraction, 4),
                     format_double(point.sim_local_fraction, 4)});
    }
    table.print(std::cout);
    std::cout << "max |origin error| = "
              << format_double(result.max_origin_load_abs_error, 4)
              << ", max latency rel error = "
              << format_percent(result.max_latency_rel_error) << "\n\n";
  }
  return 0;
}
