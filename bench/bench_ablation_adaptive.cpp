// Ablation: the online self-adaptive coordination controller (the paper's
// future-work direction) under a drifting Zipf workload, against a static
// provisioning and a true-exponent oracle — all three serving the
// identical request stream on GEANT.
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/experiments/adaptive_loop.hpp"
#include "ccnopt/topology/datasets.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_adaptive");
  using namespace ccnopt;
  experiments::AdaptiveLoopOptions options;
  options.requests_per_epoch = 40000;

  std::cout << "=== Ablation: online adaptive coordination under Zipf drift "
               "(GEANT, N=20000, c=200) ===\n"
            << "epoch exponents:";
  for (const double s : options.s_per_epoch) std::cout << " " << s;
  std::cout << "\n\n";

  const auto result =
      experiments::run_adaptive_loop(topology::geant(), options);
  if (!result) {
    std::cerr << "adaptive loop failed: " << result.status().to_string()
              << "\n";
    return reporter.finish(1);
  }

  TextTable table({"epoch", "true s", "estimated s", "belief s", "l* adaptive",
                   "l* oracle", "latency adaptive", "latency static",
                   "latency oracle"});
  for (const experiments::AdaptiveEpochReport& epoch : result->epochs) {
    table.add_row({std::to_string(epoch.epoch), format_double(epoch.true_s, 2),
                   format_double(epoch.estimated_s, 3),
                   format_double(epoch.smoothed_s, 3),
                   format_double(epoch.ell_adaptive, 3),
                   format_double(epoch.ell_oracle, 3),
                   format_double(epoch.latency_adaptive_ms, 2),
                   format_double(epoch.latency_static_ms, 2),
                   format_double(epoch.latency_oracle_ms, 2)});
  }
  table.print(std::cout);

  std::cout << "\nmean latency: adaptive "
            << format_double(result->mean_latency_adaptive_ms, 2)
            << " ms, static "
            << format_double(result->mean_latency_static_ms, 2)
            << " ms, oracle "
            << format_double(result->mean_latency_oracle_ms, 2) << " ms\n"
            << "adaptive closes "
            << format_percent(
                   1.0 - (result->mean_latency_adaptive_ms -
                          result->mean_latency_oracle_ms) /
                             (result->mean_latency_static_ms -
                              result->mean_latency_oracle_ms))
            << " of the static-to-oracle gap\n";
  return reporter.finish();
}
