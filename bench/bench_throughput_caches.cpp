// Throughput bench: raw replacement-policy admit loops, flat intrusive
// implementations vs their node-based reference oracles, on a shared Zipf
// request stream. The headline requests_per_sec is the flat LRU rate; the
// per-policy rates land in outputs as <policy>_rps / <policy>_reference_rps
// so regressions in any one rewrite are visible.
//
// Usage: bench_throughput_caches [ops] [capacity] [catalog]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "ccnopt/cache/policy.hpp"
#include "ccnopt/cache/reference.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/popularity/sampler.hpp"

namespace {

using namespace ccnopt;

double admit_loop_rps(cache::CachePolicy& policy,
                      const std::vector<cache::ContentId>& stream) {
  const bench::WallTimer timer;
  for (const cache::ContentId id : stream) policy.admit(id);
  const double seconds = timer.elapsed_seconds();
  return static_cast<double>(stream.size()) / (seconds > 0.0 ? seconds : 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchReporter reporter("throughput_caches");
  const std::size_t ops = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 400000;
  const std::size_t capacity = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                        : 2000;
  const std::uint64_t catalog = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                         : 50000;
  std::cout << "=== Cache admit throughput (ops=" << ops
            << ", capacity=" << capacity << ", catalog=" << catalog
            << ", Zipf s=0.8) ===\n\n";

  // One shared stream so every policy sees identical requests.
  popularity::AliasSampler sampler(popularity::ZipfDistribution(catalog, 0.8));
  Rng rng(20240806);
  std::vector<cache::ContentId> stream(ops);
  for (auto& id : stream) id = sampler.sample(rng);

  const cache::PolicyKind kinds[] = {cache::PolicyKind::kLru,
                                     cache::PolicyKind::kLfu,
                                     cache::PolicyKind::kFifo};
  TextTable table({"policy", "flat Mreq/s", "reference Mreq/s", "speedup"});
  double lru_rps = 0.0;
  for (const cache::PolicyKind kind : kinds) {
    auto flat = cache::make_policy(kind, capacity, 7);
    auto reference = cache::make_reference_policy(kind, capacity, 7);
    const double flat_rps = admit_loop_rps(*flat, stream);
    const double ref_rps = admit_loop_rps(*reference, stream);
    if (kind == cache::PolicyKind::kLru) lru_rps = flat_rps;
    const std::string name = flat->name();
    table.add_row({name, format_double(flat_rps / 1e6, 2),
                   format_double(ref_rps / 1e6, 2),
                   format_double(flat_rps / ref_rps, 2)});
    reporter.set_output(name + "_rps", flat_rps);
    reporter.set_output(name + "_reference_rps", ref_rps);
  }
  table.print(std::cout);

  reporter.set_output("requests_per_sec", lru_rps);
  reporter.set_output("threads", 1);
  reporter.set_output("catalog_size", catalog);
  reporter.set_output("ops", ops);
  reporter.set_output("capacity", capacity);
  return reporter.finish();
}
