// Ablation: heterogeneous storage (the paper's future-work extension).
// Total network storage is held fixed while per-router capacities spread
// out; three provisioning families are compared:
//   uniform-level     x_i = l * c_i          (the homogeneous rule, ported)
//   equal-coverage    c_i - x_i = m          (dead-zone-free)
//   coordinate descent                        (general optimizer)
// The punchline: unequal capacities penalize the naive uniform rule, and
// the general optimum equalizes local coverage.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/model/heterogeneous.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_heterogeneous");
  using namespace ccnopt;
  using namespace ccnopt::model;
  const SystemParams homo = with_alpha(SystemParams::paper_defaults(), 1.0);

  std::cout << "=== Ablation: heterogeneous capacities (alpha=1, s=0.8, "
               "gamma=5, n=20, total storage fixed at 20000) ===\n\n";
  TextTable table({"capacity spread", "T uniform-level", "T equal-coverage",
                   "T coordinate-descent", "baseline T(0)",
                   "uniform penalty"});
  // spread r: half the routers at (1-r)*1000, half at (1+r)*1000.
  for (const double spread : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    HeterogeneousParams hp = HeterogeneousParams::from_homogeneous(homo);
    for (std::size_t i = 0; i < hp.capacities.size(); ++i) {
      hp.capacities[i] = (i % 2 == 0) ? 1000.0 * (1.0 - spread)
                                      : 1000.0 * (1.0 + spread);
    }
    const HeterogeneousModel hetero(hp);
    const auto uniform = hetero.optimize_uniform_level();
    const auto equal = hetero.optimize_equal_coverage();
    const auto descent = hetero.optimize_coordinate_descent();
    table.add_row(
        {format_percent(spread, 0), format_double(uniform->objective, 4),
         format_double(equal->objective, 4),
         format_double(descent->objective, 4),
         format_double(hetero.baseline_performance(), 4),
         format_percent(uniform->objective / descent->objective - 1.0, 2)});
  }
  table.print(std::cout);

  std::cout << "\noptimal structure at spread 50% (capacities 500/1500):\n";
  HeterogeneousParams hp = HeterogeneousParams::from_homogeneous(homo);
  for (std::size_t i = 0; i < hp.capacities.size(); ++i) {
    hp.capacities[i] = (i % 2 == 0) ? 500.0 : 1500.0;
  }
  const HeterogeneousModel hetero(hp);
  const auto descent = hetero.optimize_coordinate_descent();
  TextTable structure({"router class", "capacity c_i", "coordinated x_i",
                       "local coverage c_i - x_i"});
  structure.add_row({"small", "500", format_double(descent->x[0], 1),
                     format_double(500.0 - descent->x[0], 1)});
  structure.add_row({"large", "1500", format_double(descent->x[1], 1),
                     format_double(1500.0 - descent->x[1], 1)});
  structure.print(std::cout);
  std::cout << "(equal local coverage: all spare capacity of large routers "
               "goes to coordination)\n";
  return reporter.finish();
}
