// Theorem 2 check: the (corrected) closed form l* = 1/(gamma^{-1/s}
// n^{1-1/s} + 1) against the exact first-order optimum at alpha = 1, and
// the latency-scale-free property. See the erratum note in
// src/ccnopt/model/optimizer.cpp: the paper prints gamma^{+1/s}, which
// contradicts its own Appendix Eq. 10 and Figures 4/5.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/model/optimizer.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("theorem2_closedform");
  using namespace ccnopt;
  using namespace ccnopt::model;
  const SystemParams base = with_alpha(SystemParams::paper_defaults(), 1.0);

  std::cout << "=== Theorem 2: closed form vs exact optimum (alpha = 1) ===\n";
  TextTable table({"s", "gamma", "n", "closed form l*", "exact l*",
                   "paper-printed form", "|closed-exact|"});
  for (double s : {0.3, 0.5, 0.8, 1.2, 1.5, 1.9}) {
    for (double gamma : {2.0, 5.0, 10.0}) {
      for (double n : {20.0, 100.0}) {
        const SystemParams p = with_routers(with_gamma(with_zipf(base, s), gamma), n);
        const auto closed = closed_form_alpha1(p);
        const auto exact = solve_exact_first_order(p);
        const double printed =
            1.0 / (std::pow(gamma, 1.0 / s) * std::pow(n, 1.0 - 1.0 / s) + 1.0);
        table.add_row({format_double(s, 1), format_double(gamma, 0),
                       format_double(n, 0), format_double(*closed, 4),
                       format_double(exact->ell_star, 4),
                       format_double(printed, 4),
                       format_double(std::abs(*closed - exact->ell_star), 4)});
      }
    }
  }
  table.print(std::cout);

  std::cout << "\n=== Latency scale-free property ===\n";
  TextTable scale({"latency scale", "exact l* (gamma=5, s=0.8, n=20)"});
  for (double factor : {0.1, 1.0, 10.0, 1000.0}) {
    SystemParams p = base;
    p.latency.d0 *= factor;
    p.latency.d1 *= factor;
    p.latency.d2 *= factor;
    const auto exact = solve_exact_first_order(p);
    scale.add_row({format_double(factor, 1),
                   format_double(exact->ell_star, 10)});
  }
  scale.print(std::cout);
  return reporter.finish();
}
