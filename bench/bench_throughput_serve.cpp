// Throughput bench: the raw CcnNetwork::serve() hot path — dense owner
// table, precomputed origin routes, flat LRU local partitions — on a real
// topology, with the request stream pre-generated so only the data plane
// is on the clock.
//
// The local-hit fraction is also tracked per epoch (requests/64) and run
// through the sliding-window steady-state detector, so the record carries
// the measured convergence point of the LRU partitions instead of assuming
// the whole loop is steady.
//
// Usage: bench_throughput_serve [requests] [catalog] [capacity]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/obs/timeline.hpp"
#include "ccnopt/popularity/sampler.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/topology/datasets.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  bench::BenchReporter reporter("throughput_serve");
  const std::size_t requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                        : 500000;
  const std::uint64_t catalog = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                         : 20000;
  const std::size_t capacity = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                        : 200;
  std::cout << "=== serve() throughput (US-A, requests=" << requests
            << ", catalog=" << catalog << ", c=" << capacity
            << ", x=c/2, LRU local) ===\n\n";

  sim::NetworkConfig config;
  config.catalog_size = catalog;
  config.capacity_c = capacity;
  config.local_mode = sim::LocalStoreMode::kLru;
  config.seed = 7;
  sim::CcnNetwork network(topology::us_a(), config);
  network.provision(capacity / 2);

  // Pre-generate (router, content) pairs so sampling stays off the clock.
  popularity::AliasSampler sampler(popularity::ZipfDistribution(catalog, 0.8));
  Rng rng(411);
  std::vector<cache::ContentId> contents(requests);
  std::vector<topology::NodeId> routers(requests);
  const auto router_count =
      static_cast<topology::NodeId>(network.router_count());
  for (std::size_t i = 0; i < requests; ++i) {
    contents[i] = sampler.sample(rng);
    routers[i] = static_cast<topology::NodeId>(i % router_count);
  }

  // Per-epoch local-hit counts, folded into the timed loop as one integer
  // increment per request (epoch bookkeeping happens 64 times total).
  const std::size_t epoch_requests = std::max<std::size_t>(requests / 64, 1);
  std::vector<double> epoch_hit_ratio;
  epoch_hit_ratio.reserve(requests / epoch_requests + 1);

  const bench::WallTimer timer;
  std::uint64_t local_hits = 0;
  std::uint64_t epoch_hits = 0;
  std::size_t epoch_seen = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    const sim::ServeResult result = network.serve(routers[i], contents[i]);
    const std::uint64_t hit = result.tier == sim::ServeTier::kLocal ? 1 : 0;
    local_hits += hit;
    epoch_hits += hit;
    if (++epoch_seen == epoch_requests) {
      epoch_hit_ratio.push_back(static_cast<double>(epoch_hits) /
                                static_cast<double>(epoch_seen));
      epoch_hits = 0;
      epoch_seen = 0;
    }
  }
  const double seconds = timer.elapsed_seconds();
  const double rps =
      static_cast<double>(requests) / (seconds > 0.0 ? seconds : 1e-9);

  const obs::SteadyStateResult steady =
      obs::detect_steady_state(epoch_hit_ratio);
  const std::size_t steady_requests = steady.epoch * epoch_requests;

  std::cout << "serve: " << rps / 1e6 << " Mreq/s, local-hit fraction "
            << static_cast<double>(local_hits) /
                   static_cast<double>(requests)
            << "\n"
            << "local-hit ratio " << (steady.converged ? "steady" : "NOT steady")
            << " after " << steady_requests << " requests (epoch "
            << steady.epoch << " of " << epoch_hit_ratio.size() << ")\n";
  reporter.add_timing_ms("serve_loop_ms", seconds * 1000.0);
  reporter.set_output("requests_per_sec", rps);
  reporter.set_output("threads", 1);
  reporter.set_output("catalog_size", catalog);
  reporter.set_output("requests", requests);
  reporter.set_output("local_hits", local_hits);
  reporter.set_output("converged", steady.converged);
  reporter.set_output("steady_state_epoch", steady.epoch);
  reporter.set_output("steady_state_requests", steady_requests);
  return reporter.finish();
}
