// Throughput bench: the raw CcnNetwork::serve() hot path — dense owner
// table, precomputed origin routes, flat LRU local partitions — on a real
// topology, with the request stream pre-generated so only the data plane
// is on the clock.
//
// Usage: bench_throughput_serve [requests] [catalog] [capacity]
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/popularity/sampler.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/topology/datasets.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  bench::BenchReporter reporter("throughput_serve");
  const std::size_t requests = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                        : 500000;
  const std::uint64_t catalog = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                         : 20000;
  const std::size_t capacity = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                        : 200;
  std::cout << "=== serve() throughput (US-A, requests=" << requests
            << ", catalog=" << catalog << ", c=" << capacity
            << ", x=c/2, LRU local) ===\n\n";

  sim::NetworkConfig config;
  config.catalog_size = catalog;
  config.capacity_c = capacity;
  config.local_mode = sim::LocalStoreMode::kLru;
  config.seed = 7;
  sim::CcnNetwork network(topology::us_a(), config);
  network.provision(capacity / 2);

  // Pre-generate (router, content) pairs so sampling stays off the clock.
  popularity::AliasSampler sampler(popularity::ZipfDistribution(catalog, 0.8));
  Rng rng(411);
  std::vector<cache::ContentId> contents(requests);
  std::vector<topology::NodeId> routers(requests);
  const auto router_count =
      static_cast<topology::NodeId>(network.router_count());
  for (std::size_t i = 0; i < requests; ++i) {
    contents[i] = sampler.sample(rng);
    routers[i] = static_cast<topology::NodeId>(i % router_count);
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t local_hits = 0;
  for (std::size_t i = 0; i < requests; ++i) {
    const sim::ServeResult result = network.serve(routers[i], contents[i]);
    local_hits += result.tier == sim::ServeTier::kLocal ? 1 : 0;
  }
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  const double rps =
      static_cast<double>(requests) / (seconds > 0.0 ? seconds : 1e-9);

  std::cout << "serve: " << rps / 1e6 << " Mreq/s, local-hit fraction "
            << static_cast<double>(local_hits) /
                   static_cast<double>(requests)
            << "\n";
  reporter.add_timing_ms("serve_loop_ms", seconds * 1000.0);
  reporter.set_output("requests_per_sec", rps);
  reporter.set_output("threads", 1);
  reporter.set_output("catalog_size", catalog);
  reporter.set_output("requests", requests);
  reporter.set_output("local_hits", local_hits);
  return reporter.finish();
}
