// Ablation: CCN interest aggregation (PIT). The paper's IRM model has no
// notion of in-flight time, so it cannot see that concurrent requests for
// the same content share one upstream fetch. At realistic arrival rates
// this cuts upstream fetches for the popular tail of misses — measured
// here as a function of the per-router request rate.
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/sim/simulation.hpp"
#include "ccnopt/topology/datasets.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_aggregation");
  using namespace ccnopt;
  std::cout << "=== Ablation: interest aggregation vs arrival rate (GEANT, "
               "N=5000, c=50, x=25, origin 50 ms away) ===\n\n";

  TextTable table({"req/ms per router", "aggregated share",
                   "upstream fetches (PIT)", "upstream fetches (no PIT)",
                   "latency PIT ms", "latency no-PIT ms"});
  for (const double rate : {0.02, 0.1, 0.5, 2.0, 10.0}) {
    sim::SimConfig config;
    config.network.catalog_size = 5000;
    config.network.capacity_c = 50;
    config.network.local_mode = sim::LocalStoreMode::kStaticTop;
    config.network.origin_extra_ms = 50.0;
    config.coordinated_x = 25;
    config.zipf_s = 0.8;
    config.measured_requests = 100000;
    config.arrival_rate_per_router = rate;
    config.seed = 8;

    sim::SimConfig with = config;
    with.interest_aggregation = true;
    sim::Simulation sim_with(topology::geant(), with);
    sim::Simulation sim_without(topology::geant(), config);
    const sim::SimReport r_with = sim_with.run();
    const sim::SimReport r_without = sim_without.run();

    table.add_row(
        {format_double(rate, 2),
         format_percent(static_cast<double>(r_with.aggregated_requests) /
                        static_cast<double>(r_with.total_requests)),
         std::to_string(r_with.upstream_fetches),
         std::to_string(r_without.upstream_fetches),
         format_double(r_with.mean_latency_ms, 2),
         format_double(r_without.mean_latency_ms, 2)});
  }
  table.print(std::cout);
  std::cout << "\n(at low rates fetches never overlap and PIT is inert; as "
               "the rate grows an increasing share of misses ride an "
               "in-flight fetch, cutting upstream traffic and tail "
               "latency)\n";
  return reporter.finish();
}
