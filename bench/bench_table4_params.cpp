// Regenerates Table IV: the parameter settings behind Figures 4-13, plus
// the one normalization constant the paper leaves implicit (the
// coordination-cost amortization; see DESIGN.md "Substitutions").
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/experiments/figures.hpp"
#include "ccnopt/model/params.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("table4_params");
  using namespace ccnopt;
  const model::SystemParams p = model::SystemParams::paper_defaults();
  std::cout << "=== Table IV: system parameters used in the analysis ===\n\n";

  TextTable ranges({"parameter", "empirical range", "default"});
  ranges.add_row({"alpha", "[0, 1]", "per figure"});
  ranges.add_row({"gamma", "1 ~ 10", format_double(p.latency.gamma(), 0)});
  ranges.add_row({"s", "(0,1) U (1,2)", format_double(p.s, 1)});
  ranges.add_row({"n", "10 ~ 500", format_double(p.n, 0)});
  ranges.add_row({"N", "1e9 ~ 1e12 (paper); 1e6 here", "1e6"});
  ranges.add_row({"c", "1e6 ~ 1e9 (paper); 1e3 here", "1e3"});
  ranges.add_row({"w (ms)", "10 ~ 100", format_double(p.cost.unit_cost_w, 1)});
  ranges.add_row({"d1-d0 (hops)", "1 ~ 10",
                  format_double(p.latency.d1 - p.latency.d0, 4)});
  ranges.print(std::cout);

  std::cout << "\nper-figure rows:\n";
  TextTable rows({"figures", "alpha", "gamma", "s", "n", "w (ms)"});
  rows.add_row({"4, 8, 12", "(0,1]", "{2,4,6,8,10}", "0.8", "20", "26.7"});
  rows.add_row({"5, 9, 13", "{0.2..1}", "5", "[0.1,1)U(1,1.9]", "20",
                "26.7"});
  rows.add_row({"6, 10", "{0.2..1}", "5", "0.8", "10 ~ 500", "26.7"});
  rows.add_row({"7, 11", "{0.2..1}", "5", "0.8", "20", "10 ~ 100"});
  rows.print(std::cout);

  std::cout << "\ncalibrated normalization: coordination cost amortized "
               "over "
            << format_double(p.cost.amortization, 0)
            << " requests/epoch (makes Lemma 2's b equal a at alpha = 0.5; "
               "the paper's Figure 4 is unreproducible without a common "
               "scale — see EXPERIMENTS.md)\n";
  return reporter.finish();
}
