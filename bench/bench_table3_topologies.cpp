// Regenerates Tables II and III: structural statistics and derived model
// parameters of the four evaluation topologies, side by side with the
// paper's published values.
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/experiments/tables.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("table3_topologies");
  using namespace ccnopt;
  const auto measured = experiments::table3_rows();
  const auto paper = experiments::paper_table3();

  std::cout << "=== Table II: topologies ===\n";
  TextTable table2({"topology", "|V|", "|E| (directed)"});
  for (const auto& row : measured) {
    table2.add_row({row.name, std::to_string(row.n),
                    std::to_string(row.directed_edges)});
  }
  table2.print(std::cout);

  std::cout << "\n=== Table III: derived parameters (measured vs paper) ===\n"
            << "(CERNET/GEANT/US-A links are geographically faithful "
               "synthetics; see DESIGN.md)\n";
  TextTable table3({"topology", "n", "w ms", "w ms (paper)", "d1-d0 ms",
                    "d1-d0 ms (paper)", "d1-d0 hops", "d1-d0 hops (paper)"});
  for (std::size_t i = 0; i < measured.size(); ++i) {
    table3.add_row({measured[i].name, std::to_string(measured[i].n),
                    format_double(measured[i].unit_cost_w_ms, 1),
                    format_double(paper[i].w_ms, 1),
                    format_double(measured[i].mean_latency_ms, 1),
                    format_double(paper[i].d1_minus_d0_ms, 1),
                    format_double(measured[i].mean_hops, 4),
                    format_double(paper[i].d1_minus_d0_hops, 4)});
  }
  table3.print(std::cout);
  return reporter.finish();
}
