// Regenerates Figure 8: origin load reduction G_O vs alpha, per gamma.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 8: G_O vs alpha",
                             "alpha in (0,1], gamma in {2,4,6,8,10}");
  bench::BenchReporter reporter("fig8_go_alpha");
  const auto data = experiments::sweep_vs_alpha(base);
  return bench::run_figure_bench(reporter, data,
                                 experiments::Metric::kOriginGain, argc, argv);
}
