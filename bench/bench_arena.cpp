// Strategy arena bench: every registered caching strategy head-to-head on
// the default topology roster (four embedded datasets + grid + Waxman),
// same seeded workload per topology so the comparison is paired. Prints
// per-topology comparison tables and writes the machine-readable
// ARENA_results.{json,csv} (schema ccnopt-arena-v1, validated by
// tools/check_bench_json.py) next to the BENCH_arena.json record.
//
// Usage: bench_arena [--measured R] [--warmup R] [--catalog N]
//                    [--capacity C] [--x X] [--threads T] [--seed S]
//                    [--strategies a,b,c]
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ccnopt/experiments/arena.hpp"
#include "ccnopt/runtime/thread_pool.hpp"
#include "ccnopt/strategy/registry.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccnopt;
  experiments::ArenaOptions options;
  options.measured_requests = 100000;
  options.warmup_requests = 100000;
  std::size_t threads = std::min<std::size_t>(
      8, std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--measured") == 0 && i + 1 < argc) {
      options.measured_requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      options.warmup_requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--catalog") == 0 && i + 1 < argc) {
      options.catalog_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--capacity") == 0 && i + 1 < argc) {
      options.capacity_c = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--x") == 0 && i + 1 < argc) {
      options.coordinated_x = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--strategies") == 0 && i + 1 < argc) {
      options.strategies = split_csv(argv[++i]);
    }
  }
  if (threads == 0) threads = 1;

  // Validate requested strategies up front with the registry's own error
  // message (it lists every registered name).
  for (const std::string& name : options.strategies) {
    const auto bundle = strategy::make_strategy(name);
    if (!bundle) {
      std::cerr << "bench_arena: " << bundle.status().to_string() << "\n";
      return 2;
    }
  }

  bench::BenchReporter reporter("arena");
  std::cout << "=== Strategy arena (N=" << options.catalog_size
            << ", c=" << options.capacity_c << ", x=" << options.coordinated_x
            << ", s=" << options.zipf_s << ", "
            << options.measured_requests << " measured requests) ===\n\n";

  runtime::ThreadPool pool(threads);
  const auto start = std::chrono::steady_clock::now();
  const experiments::ArenaResult result =
      experiments::run_arena(options, &pool);
  const auto stop = std::chrono::steady_clock::now();
  reporter.add_timing_ms(
      "arena_ms",
      std::chrono::duration<double, std::milli>(stop - start).count());

  experiments::print_arena_tables(result, std::cout);
  experiments::record_arena_metrics(result);

  const char* dir_env = std::getenv("CCNOPT_BENCH_DIR");
  const std::string dir = dir_env && *dir_env ? dir_env : ".";
  int code = 0;
  {
    const std::string path = dir + "/ARENA_results.json";
    std::ofstream out(path);
    if (out) experiments::write_arena_json(result, out);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      code = 1;
    } else {
      std::cout << "\narena JSON written to " << path << "\n";
    }
  }
  {
    const std::string path = dir + "/ARENA_results.csv";
    std::ofstream out(path);
    if (out) experiments::write_arena_csv(result, out);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      code = 1;
    } else {
      std::cout << "arena CSV written to " << path << "\n";
    }
  }

  reporter.set_output("strategies", result.strategies.size());
  reporter.set_output("topologies", result.topologies.size());
  reporter.set_output("cells", result.cells.size());
  reporter.set_output("threads", threads);
  reporter.set_output("catalog_size", options.catalog_size);

  // The arena's whole point is breadth: a run that compares fewer than 5
  // strategies or 4 topologies is a configuration error, not a result.
  if (result.strategies.size() < 5 || result.topologies.size() < 4) {
    std::cerr << "bench_arena: expected >= 5 strategies and >= 4 topologies, "
              << "got " << result.strategies.size() << " x "
              << result.topologies.size() << "\n";
    code = 1;
  }
  return reporter.finish(code);
}
