// Strategy arena bench: every registered caching strategy head-to-head on
// the default topology roster (four embedded datasets + grid + Waxman),
// same seeded workload per topology so the comparison is paired. Prints
// per-topology comparison tables and writes the machine-readable
// ARENA_results.{json,csv} (schema ccnopt-arena-v1, validated by
// tools/check_bench_json.py) next to the BENCH_arena.json record, plus
// one TOPO_arena_<topology>_<strategy>.json flight-recorder export
// (ccnopt-topo-v1) per cell for tools/render_topo.py heatmaps.
//
// Steady state is detected, not asserted: by default each cell runs its
// whole warmup+measured budget through the sliding-window convergence
// detector (sim::run_to_steady_state) and reports the post-convergence
// epochs, with a per-strategy "steady after req" column;
// --fixed-warmup restores the hard-coded split.
//
// Usage: bench_arena [--measured R] [--warmup R] [--catalog N]
//                    [--capacity C] [--x X] [--threads T] [--seed S]
//                    [--strategies a,b,c] [--fixed-warmup]
#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "ccnopt/experiments/arena.hpp"
#include "ccnopt/obs/topo.hpp"
#include "ccnopt/runtime/thread_pool.hpp"
#include "ccnopt/strategy/registry.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

// "US-A" / "coordinated-split" -> filename-safe lowercase slug.
std::string slug(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else {
      out.push_back('-');
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccnopt;
  experiments::ArenaOptions options;
  options.measured_requests = 100000;
  options.warmup_requests = 100000;
  options.detect_steady_state = true;
  std::size_t threads = std::min<std::size_t>(
      8, std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--measured") == 0 && i + 1 < argc) {
      options.measured_requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--warmup") == 0 && i + 1 < argc) {
      options.warmup_requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--catalog") == 0 && i + 1 < argc) {
      options.catalog_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--capacity") == 0 && i + 1 < argc) {
      options.capacity_c = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--x") == 0 && i + 1 < argc) {
      options.coordinated_x = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      options.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--strategies") == 0 && i + 1 < argc) {
      options.strategies = split_csv(argv[++i]);
    } else if (std::strcmp(argv[i], "--fixed-warmup") == 0) {
      options.detect_steady_state = false;
    }
  }
  if (threads == 0) threads = 1;

  // Validate requested strategies up front with the registry's own error
  // message (it lists every registered name).
  for (const std::string& name : options.strategies) {
    const auto bundle = strategy::make_strategy(name);
    if (!bundle) {
      std::cerr << "bench_arena: " << bundle.status().to_string() << "\n";
      return 2;
    }
  }

  bench::BenchReporter reporter("arena");
  std::cout << "=== Strategy arena (N=" << options.catalog_size
            << ", c=" << options.capacity_c << ", x=" << options.coordinated_x
            << ", s=" << options.zipf_s << ", "
            << options.measured_requests << " measured requests) ===\n\n";

  runtime::ThreadPool pool(threads);
  const bench::WallTimer timer;
  const experiments::ArenaResult result =
      experiments::run_arena(options, &pool);
  reporter.add_timing_ms("arena_ms", timer.elapsed_ms());

  experiments::print_arena_tables(result, std::cout);
  experiments::record_arena_metrics(result);

  const char* dir_env = std::getenv("CCNOPT_BENCH_DIR");
  const std::string dir = dir_env && *dir_env ? dir_env : ".";
  int code = 0;
  {
    const std::string path = dir + "/ARENA_results.json";
    std::ofstream out(path);
    if (out) experiments::write_arena_json(result, out);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      code = 1;
    } else {
      std::cout << "\narena JSON written to " << path << "\n";
    }
  }
  {
    const std::string path = dir + "/ARENA_results.csv";
    std::ofstream out(path);
    if (out) experiments::write_arena_csv(result, out);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      code = 1;
    } else {
      std::cout << "arena CSV written to " << path << "\n";
    }
  }
  // Per-cell flight-recorder exports (ccnopt-topo-v1), one per
  // strategy x topology, so heatmaps come straight from the arena:
  //   tools/render_topo.py TOPO_arena_geant_lcd.json --out geant_lcd.dot
  {
    std::size_t written = 0;
    for (const experiments::ArenaCell& cell : result.cells) {
      const std::string path = dir + "/TOPO_arena_" + slug(cell.topology) +
                               "_" + slug(cell.strategy) + ".json";
      std::ofstream out(path);
      if (out) obs::write_topo_json(out, cell.topo);
      if (!out) {
        std::cerr << "cannot write " << path << "\n";
        code = 1;
      } else {
        ++written;
      }
    }
    std::cout << "arena topo telemetry written to " << dir << "/TOPO_arena_*"
              << ".json (" << written << " cells)\n";
  }

  reporter.set_output("strategies", result.strategies.size());
  reporter.set_output("topologies", result.topologies.size());
  reporter.set_output("cells", result.cells.size());
  reporter.set_output("threads", threads);
  reporter.set_output("catalog_size", options.catalog_size);
  reporter.set_output("detect_steady_state", options.detect_steady_state);
  if (options.detect_steady_state) {
    std::size_t converged = 0;
    std::uint64_t max_steady = 0;
    for (const experiments::ArenaCell& cell : result.cells) {
      if (cell.converged) ++converged;
      max_steady = std::max(max_steady, cell.steady_state_requests);
    }
    reporter.set_output("converged_cells", converged);
    reporter.set_output("max_steady_state_requests", max_steady);
  }

  // The arena's whole point is breadth: a run that compares fewer than 5
  // strategies or 4 topologies is a configuration error, not a result.
  if (result.strategies.size() < 5 || result.topologies.size() < 4) {
    std::cerr << "bench_arena: expected >= 5 strategies and >= 4 topologies, "
              << "got " << result.strategies.size() << " x "
              << result.topologies.size() << "\n";
    code = 1;
  }
  return reporter.finish(code);
}
