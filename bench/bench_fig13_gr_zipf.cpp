// Regenerates Figure 13: routing performance improvement G_R vs the Zipf
// exponent s (maximum near s = 1, small far from it).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 13: G_R vs s",
                             "s in [0.1,1) U (1,1.9], alpha in {0.2..1.0}");
  bench::BenchReporter reporter("fig13_gr_zipf");
  const auto data = experiments::sweep_vs_zipf(base);
  return bench::run_figure_bench(reporter, data,
                                 experiments::Metric::kRoutingGain, argc, argv);
}
