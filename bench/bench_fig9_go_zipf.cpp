// Regenerates Figure 9: origin load reduction G_O vs the Zipf exponent s
// (the paper's reported maximum sits around s ~ 1.3 for partial alpha).
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 9: G_O vs s",
                             "s in [0.1,1) U (1,1.9], alpha in {0.2..1.0}");
  bench::BenchReporter reporter("fig9_go_zipf");
  const auto data = experiments::sweep_vs_zipf(base);
  return bench::run_figure_bench(reporter, data,
                                 experiments::Metric::kOriginGain, argc, argv);
}
