// Regenerates Figure 6: optimal strategy l* vs the network size n.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 6: l* vs n",
                             "n in [10,500], alpha in {0.2..1.0}");
  const auto data = experiments::sweep_vs_routers(base);
  return bench::run_figure_bench(data, experiments::Metric::kEllStar, argc,
                                 argv);
}
