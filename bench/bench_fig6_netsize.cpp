// Regenerates Figure 6: optimal strategy l* vs the network size n.
//
// Also measures the parallel runtime: the sweep is run serially and then
// point-parallel on a hardware-sized ThreadPool, the two outputs are
// checked byte-identical (the determinism contract), and the wall-clock
// speedup is printed.
#include <sstream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/runtime/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 6: l* vs n",
                             "n in [10,500], alpha in {0.2..1.0}");
  bench::BenchReporter reporter("fig6_netsize");

  bench::WallTimer timer;
  const auto serial = experiments::sweep_vs_routers(base);
  const double serial_ms = timer.elapsed_ms();

  runtime::ThreadPool pool;
  timer.restart();
  const auto parallel = experiments::sweep_vs_routers(base, &pool);
  const double parallel_ms = timer.elapsed_ms();

  std::ostringstream serial_csv, parallel_csv;
  experiments::write_series_csv(serial, serial_csv);
  experiments::write_series_csv(parallel, parallel_csv);
  const bool identical = serial_csv.str() == parallel_csv.str();

  reporter.add_timing_ms("sweep_serial_ms", serial_ms);
  reporter.add_timing_ms("sweep_parallel_ms", parallel_ms);
  reporter.set_output("threads", pool.thread_count());
  reporter.set_output("serial_parallel_identical", identical);
  std::cout << "sweep wall-clock: serial " << format_double(serial_ms, 1)
            << " ms, parallel " << format_double(parallel_ms, 1) << " ms ("
            << pool.thread_count() << " threads, speedup "
            << format_double(serial_ms / parallel_ms, 2) << "x), outputs "
            << (identical ? "byte-identical" : "DIVERGED") << "\n\n";
  if (!identical) {
    std::cerr << "determinism violation: serial and parallel sweeps "
                 "produced different CSV output\n";
    return reporter.finish(1);
  }
  return bench::run_figure_bench(reporter, parallel,
                                 experiments::Metric::kEllStar, argc, argv);
}
