// Throughput bench: whole-simulator replay — discrete-event loop, PIT,
// workload sampling, metrics — reported as steady-state requests/sec,
// serial and fanned out over the pool with ReplicationRunner (which keeps
// results bit-identical for any thread count; this bench only times it).
//
// Usage: bench_throughput_replay [--threads N] [--requests R]
//                                [--replications K] [--catalog N]
//                                [--capacity C] [--coordinated X]
//                                [--shards S] [--label SUFFIX]
//
// Besides the replication fan-out, the bench times ONE big run through the
// sharded request engine (--shards, default 8) against the same run at
// shards=1, reporting requests_per_sec_sharded and sharded_speedup — both
// runs are bit-identical by construction (see DESIGN.md §14), so this is a
// pure like-for-like timing. The sharded run is additionally repeated with
// parallel_record = false to isolate the record pass (DESIGN.md §15):
// record_pass_seconds_serial / record_pass_seconds_parallel and their
// ratio record_speedup. Per-phase throughput (warmup vs measured) of the
// single-thread run is reported from Simulation::last_phase_seconds().
//
// --catalog scales the content catalog (default 20000); at web-scale
// catalogs the auto-selected rejection sampler and sparse cache indexes
// keep memory ~O(capacity), which the recorded peak_rss_bytes output
// demonstrates (compare a --catalog 100000 --label small run against
// --catalog 10000000 --label large). --label suffixes the bench record
// name so the two runs produce distinct BENCH_*.json files.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "ccnopt/runtime/replication_runner.hpp"
#include "ccnopt/runtime/shard_scheduler.hpp"
#include "ccnopt/runtime/thread_pool.hpp"
#include "ccnopt/sim/simulation.hpp"
#include "ccnopt/sim/steady_state.hpp"
#include "ccnopt/topology/datasets.hpp"

namespace {

double replications_rps(ccnopt::runtime::ThreadPool& pool,
                        const ccnopt::sim::SimConfig& config,
                        std::size_t replications, double* out_ms) {
  using namespace ccnopt;
  const bench::WallTimer timer;
  const runtime::ReplicationRunner runner(pool);
  const runtime::ReplicationSummary summary =
      runner.run(topology::us_a(), config, replications);
  const double seconds = timer.elapsed_seconds();
  if (out_ms != nullptr) *out_ms = seconds * 1000.0;
  const double total_requests =
      static_cast<double>(config.warmup_requests + config.measured_requests) *
      static_cast<double>(summary.replications());
  return total_requests / (seconds > 0.0 ? seconds : 1e-9);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ccnopt;
  std::size_t threads = std::min<std::size_t>(
      8, std::max<std::size_t>(2, std::thread::hardware_concurrency()));
  std::uint64_t requests = 60000;
  std::size_t replications = 8;
  std::uint64_t catalog = 20000;
  std::size_t capacity = 200;
  std::size_t coordinated = 100;
  std::size_t shards = 8;
  std::string label;
  for (int i = 1; i + 1 < argc + 1; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--replications") == 0 && i + 1 < argc) {
      replications = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--catalog") == 0 && i + 1 < argc) {
      catalog = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--capacity") == 0 && i + 1 < argc) {
      capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--coordinated") == 0 && i + 1 < argc) {
      coordinated = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--label") == 0 && i + 1 < argc) {
      label = argv[++i];
    }
  }
  if (threads == 0) threads = 1;
  if (shards == 0) shards = 1;
  bench::BenchReporter reporter(
      label.empty() ? std::string("throughput_replay")
                    : "throughput_replay_" + label);

  sim::SimConfig config;
  config.network.catalog_size = catalog;
  config.network.capacity_c = capacity;
  config.network.local_mode = sim::LocalStoreMode::kLru;
  config.coordinated_x = coordinated;
  config.zipf_s = 0.8;
  config.seed = 20240806;

  std::cout << "=== Simulator replay throughput (US-A, N=" << catalog
            << ", c=" << capacity << ", " << replications
            << " replications x " << requests << " requests) ===\n\n";

  // Probe run: detect when the LRU partitions actually converge on this
  // config and use that as the warmup split for the timed replications —
  // replacing the old hard-coded requests/3 guess.
  {
    sim::SimConfig probe = config;
    probe.warmup_requests = 0;
    probe.measured_requests = requests;
    const bench::WallTimer probe_timer;
    const sim::SteadyStateRun steady =
        sim::run_to_steady_state(topology::us_a(), std::move(probe));
    reporter.add_timing_ms("steady_probe_ms", probe_timer.elapsed_ms());
    // Fall back to the historical requests/3 split only if detection says
    // the run never settles (tiny request budgets).
    config.warmup_requests = steady.steady.converged
                                 ? steady.steady_state_requests
                                 : requests / 3;
    config.measured_requests = requests - config.warmup_requests;
    reporter.set_output("converged", steady.steady.converged);
    reporter.set_output("steady_state_requests", steady.steady_state_requests);
    reporter.set_output("warmup_requests", config.warmup_requests);
    std::cout << "detected warmup: " << config.warmup_requests << " requests ("
              << (steady.steady.converged ? "converged"
                                          : "no convergence, requests/3")
              << ")\n\n";
  }

  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  double serial_rps = 0.0;
  {
    runtime::ThreadPool pool(1);
    serial_rps = replications_rps(pool, config, replications, &serial_ms);
  }
  double parallel_rps = 0.0;
  {
    runtime::ThreadPool pool(threads);
    parallel_rps = replications_rps(pool, config, replications, &parallel_ms);
  }

  // Same workload with the per-router/per-link flight recorder on: the gap
  // between requests_per_sec and requests_per_sec_topo is the tentpole's
  // enabled-path cost, while the baseline gate on requests_per_sec keeps
  // the disabled path (one null-pointer branch) honest.
  double topo_ms = 0.0;
  double topo_rps = 0.0;
  {
    sim::SimConfig topo_config = config;
    topo_config.record_topo = true;
    runtime::ThreadPool pool(threads);
    topo_rps = replications_rps(pool, topo_config, replications, &topo_ms);
  }

  // Sharded engine on ONE big run: the same request budget as a single
  // replication, shards=1 (batched engine) vs shards=S on a real pool.
  // Both produce bit-identical outputs, so the ratio is pure engine cost.
  double single_ms = 0.0;
  double single_rps = 0.0;
  double sharded_ms = 0.0;
  double sharded_rps = 0.0;
  double warmup_phase_rps = 0.0;
  double measured_phase_rps = 0.0;
  double record_serial_s = 0.0;
  double record_parallel_s = 0.0;
  {
    const double total_requests =
        static_cast<double>(config.warmup_requests + config.measured_requests);
    {
      sim::Simulation single(topology::us_a(), config);
      const bench::WallTimer timer;
      single.run();
      single_ms = timer.elapsed_ms();
      single_rps = total_requests / (single_ms > 0.0 ? single_ms / 1000.0
                                                     : 1e-9);
      const sim::Simulation::PhaseSeconds phases = single.last_phase_seconds();
      warmup_phase_rps = static_cast<double>(config.warmup_requests) /
                         (phases.warmup > 0.0 ? phases.warmup : 1e-9);
      measured_phase_rps = static_cast<double>(config.measured_requests) /
                           (phases.measured > 0.0 ? phases.measured : 1e-9);
    }
    {
      sim::SimConfig sharded_config = config;
      sharded_config.shards = shards;
      runtime::ThreadPool pool(std::min(threads, shards));
      runtime::ShardScheduler scheduler(pool);
      // Record-pass A/B on the same pool: parallel_record=false runs the
      // identical per-shard record bodies serially in shard order, so the
      // two runs differ only in where the record work executes — the
      // seconds ratio is the record pass's own speedup.
      {
        sim::SimConfig serial_record = sharded_config;
        serial_record.parallel_record = false;
        sim::Simulation sharded(topology::us_a(), serial_record);
        sharded.set_shard_executor(&scheduler);
        sharded.run();
        record_serial_s = sharded.last_record_seconds();
      }
      sim::Simulation sharded(topology::us_a(), sharded_config);
      sharded.set_shard_executor(&scheduler);
      const bench::WallTimer timer;
      sharded.run();
      sharded_ms = timer.elapsed_ms();
      sharded_rps = total_requests / (sharded_ms > 0.0 ? sharded_ms / 1000.0
                                                       : 1e-9);
      record_parallel_s = sharded.last_record_seconds();
    }
  }

  std::cout << "serial   (1 thread):  " << serial_rps / 1e6 << " Mreq/s\n"
            << "parallel (" << threads << " threads): " << parallel_rps / 1e6
            << " Mreq/s (speedup " << parallel_rps / serial_rps << "x)\n"
            << "topo on  (" << threads << " threads): " << topo_rps / 1e6
            << " Mreq/s (" << topo_rps / parallel_rps
            << "x of topo-off)\n"
            << "one run  (1 thread):  " << single_rps / 1e6
            << " Mreq/s (warmup phase " << warmup_phase_rps / 1e6
            << ", measured phase " << measured_phase_rps / 1e6 << ")\n"
            << "one run  (" << shards << " shards):  " << sharded_rps / 1e6
            << " Mreq/s (speedup " << sharded_rps / single_rps << "x)\n"
            << "record pass: serial " << record_serial_s * 1000.0
            << " ms, parallel " << record_parallel_s * 1000.0
            << " ms (speedup "
            << record_serial_s / (record_parallel_s > 0.0 ? record_parallel_s
                                                          : 1e-9)
            << "x)\n";

  reporter.add_timing_ms("serial_ms", serial_ms);
  reporter.add_timing_ms("parallel_ms", parallel_ms);
  reporter.add_timing_ms("topo_ms", topo_ms);
  reporter.add_timing_ms("single_run_ms", single_ms);
  reporter.add_timing_ms("sharded_run_ms", sharded_ms);
  reporter.set_output("requests_per_sec", parallel_rps);
  reporter.set_output("requests_per_sec_serial", serial_rps);
  reporter.set_output("requests_per_sec_topo", topo_rps);
  reporter.set_output("requests_per_sec_warmup_phase", warmup_phase_rps);
  reporter.set_output("requests_per_sec_measured_phase", measured_phase_rps);
  reporter.set_output("requests_per_sec_sharded", sharded_rps);
  reporter.set_output("sharded_speedup", sharded_rps / single_rps);
  reporter.set_output("record_pass_seconds_serial", record_serial_s);
  reporter.set_output("record_pass_seconds_parallel", record_parallel_s);
  reporter.set_output("record_speedup",
                      record_serial_s /
                          (record_parallel_s > 0.0 ? record_parallel_s : 1e-9));
  reporter.set_output("shards", shards);
  reporter.set_output("threads", threads);
  reporter.set_output("catalog_size", config.network.catalog_size);
  reporter.set_output("replications", replications);
  reporter.set_output("requests_per_replication", requests);
  return reporter.finish();
}
