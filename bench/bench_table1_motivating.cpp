// Regenerates Table I: the Section II motivating example, replayed by the
// simulator (two {a,a,b} flows at R1/R2, origin behind R0).
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/experiments/motivating.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("table1_motivating");
  using namespace ccnopt;
  std::cout << "=== Table I: coordinated vs non-coordinated strategies ===\n"
            << "(simulated: 3 routers, origin behind R0, flows {a,a,b} at "
               "R1 and R2)\n\n";
  const experiments::MotivatingResult result =
      experiments::run_motivating_example(/*cycles=*/10000);

  TextTable table({"metric", "non-coordinated", "coordinated", "paper"});
  table.add_row({"load on origin",
                 format_percent(result.non_coordinated.origin_load),
                 format_percent(result.coordinated.origin_load),
                 "33% -> 0%"});
  table.add_row({"routing hop count",
                 format_double(result.non_coordinated.mean_hops, 3),
                 format_double(result.coordinated.mean_hops, 3),
                 "~0.67 -> 0.5"});
  table.add_row({"coordination cost (messages)",
                 std::to_string(result.non_coordinated.coordination_messages),
                 std::to_string(result.coordinated.coordination_messages),
                 "0 -> >=1 (ours: n*x=2)"});
  table.print(std::cout);
  return reporter.finish();
}
