// Ablation of the paper's two analytical approximations:
//  (1) Eq. 6's continuous F vs the exact harmonic CDF (Eq. 1), across N
//      and s — accurate for s < 1, head-distorted for s > 1;
//  (2) Lemma 2's n-1 ~ n / 1+(n-1)l ~ nl root vs the exact first-order
//      optimum, across n — the error the paper's closed characterization
//      carries at realistic network sizes.
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/model/exact.hpp"
#include "ccnopt/model/optimizer.hpp"
#include "ccnopt/popularity/zipf.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_approximation");
  using namespace ccnopt;
  using namespace ccnopt::model;

  std::cout << "=== Ablation 1: continuous F (Eq. 6) vs exact Zipf CDF ===\n";
  TextTable cdf_table({"s", "N=1e3", "N=1e4", "N=1e5", "N=1e6 (max |dF|)"});
  for (double s : {0.3, 0.6, 0.8, 0.95, 1.05, 1.2, 1.5, 1.8}) {
    std::vector<std::string> row{format_double(s, 2)};
    for (std::uint64_t n : {1000ULL, 10000ULL, 100000ULL, 1000000ULL}) {
      row.push_back(format_double(
          popularity::continuous_approximation_error(
              popularity::ZipfDistribution(n, s)),
          4));
    }
    cdf_table.add_row(std::move(row));
  }
  cdf_table.print(std::cout);
  std::cout << "(for s > 1 the head error persists with N: Eq. 6 assigns "
               "F(1)=0 while rank 1 holds pmf(1) mass)\n\n";

  std::cout << "=== Ablation 2: Lemma 2 root vs exact optimum vs discrete "
               "brute force ===\n";
  TextTable root_table({"n", "lemma2 l*", "exact l*", "discrete l*",
                        "|lemma2-exact|"});
  for (double n : {5.0, 10.0, 20.0, 50.0, 100.0, 200.0}) {
    SystemParams p = with_alpha(SystemParams::paper_defaults(), 0.6);
    p.n = n;
    p.catalog_n = 50000.0;
    p.capacity_c = 200.0;
    p.cost.amortization = 1.0;
    p.cost.amortization = calibrate_amortization(p);
    p = with_alpha(p, 0.6);
    const auto lemma = solve_lemma2(p);
    const auto exact = solve_exact_first_order(p);
    const ExactDiscreteModel discrete(p, 50000,
                                      static_cast<std::uint64_t>(n), 200);
    const auto brute = discrete.brute_force_optimum();
    root_table.add_row(
        {format_double(n, 0), format_double(lemma->ell_star, 4),
         format_double(exact->ell_star, 4), format_double(brute.ell_star, 4),
         format_double(std::abs(lemma->ell_star - exact->ell_star), 4)});
  }
  root_table.print(std::cout);
  return reporter.finish();
}
