// Regenerates Figure 7: optimal strategy l* vs the unit coordination cost w.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace ccnopt;
  const auto base = model::SystemParams::paper_defaults();
  bench::print_params_banner(base, "Figure 7: l* vs w",
                             "w in [10,100] ms, alpha in {0.2..1.0}");
  bench::BenchReporter reporter("fig7_unitcost");
  const auto data = experiments::sweep_vs_unit_cost(base);
  return bench::run_figure_bench(reporter, data, experiments::Metric::kEllStar,
                                 argc, argv);
}
