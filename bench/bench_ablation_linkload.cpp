// Ablation: link-level traffic. The paper's metrics are end-to-end
// (latency, hops, origin load); a carrier also watches where the bytes
// flow. Coordination replaces the gateway-bound origin funnel with
// peer-to-peer exchange, spreading load off the hottest links — measured
// here per link on US-A as the coordination level rises.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "ccnopt/common/strings.hpp"
#include "ccnopt/common/table.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/sim/workload.hpp"
#include "ccnopt/topology/datasets.hpp"

int main() {
  ccnopt::bench::BenchReporter reporter("ablation_linkload");
  using namespace ccnopt;
  std::cout << "=== Ablation: per-link traffic vs coordination level (US-A, "
               "N=20000, c=200, s=0.8, 200k requests) ===\n\n";

  sim::NetworkConfig config;
  config.catalog_size = 20000;
  config.capacity_c = 200;
  config.local_mode = sim::LocalStoreMode::kStaticTop;
  config.origin_gateway = 0;  // Seattle
  config.origin_extra_ms = 50.0;
  config.track_link_load = true;

  TextTable table({"l = x/c", "total link traversals", "max link load",
                   "max/total", "p95 link load", "busiest link"});
  for (const std::size_t x : {std::size_t{0}, std::size_t{50},
                              std::size_t{100}, std::size_t{150},
                              std::size_t{200}}) {
    sim::CcnNetwork network(topology::us_a(), config);
    network.provision(x);
    sim::ZipfWorkload workload(network.router_count(), config.catalog_size,
                               0.8, 21);
    for (std::uint64_t r = 0; r < 200000; ++r) {
      const auto router =
          static_cast<topology::NodeId>(r % network.router_count());
      (void)network.serve(router, workload.next(router));
    }
    auto loads = network.link_load();
    std::sort(loads.begin(), loads.end(),
              [](const auto& a, const auto& b) {
                return a.traversals < b.traversals;
              });
    const auto& busiest = loads.back();
    const double p95 = static_cast<double>(
        loads[loads.size() * 95 / 100].traversals);
    const double total =
        static_cast<double>(network.total_link_traversals());
    table.add_row(
        {format_double(static_cast<double>(x) / 200.0, 2),
         std::to_string(network.total_link_traversals()),
         std::to_string(network.max_link_load()),
         format_percent(static_cast<double>(network.max_link_load()) / total),
         format_double(p95, 0),
         network.graph().node(busiest.u).name + "--" +
             network.graph().node(busiest.v).name});
  }
  table.print(std::cout);
  std::cout << "\n(x = 0 funnels every miss toward the Seattle gateway; "
               "full coordination trades total traversals up but spreads "
               "them, cutting the hottest link's share)\n";
  return reporter.finish();
}
