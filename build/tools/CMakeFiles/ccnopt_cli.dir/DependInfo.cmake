
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ccnopt_cli.cpp" "tools/CMakeFiles/ccnopt_cli.dir/ccnopt_cli.cpp.o" "gcc" "tools/CMakeFiles/ccnopt_cli.dir/ccnopt_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccnopt/experiments/CMakeFiles/ccnopt_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/model/CMakeFiles/ccnopt_model.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/common/CMakeFiles/ccnopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
