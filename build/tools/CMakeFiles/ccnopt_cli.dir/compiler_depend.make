# Empty compiler generated dependencies file for ccnopt_cli.
# This may be replaced when dependencies are built.
