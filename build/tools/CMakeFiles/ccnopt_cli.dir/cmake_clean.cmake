file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_cli.dir/ccnopt_cli.cpp.o"
  "CMakeFiles/ccnopt_cli.dir/ccnopt_cli.cpp.o.d"
  "ccnopt"
  "ccnopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
