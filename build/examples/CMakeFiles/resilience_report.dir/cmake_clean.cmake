file(REMOVE_RECURSE
  "CMakeFiles/resilience_report.dir/resilience_report.cpp.o"
  "CMakeFiles/resilience_report.dir/resilience_report.cpp.o.d"
  "resilience_report"
  "resilience_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resilience_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
