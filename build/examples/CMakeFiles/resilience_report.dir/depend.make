# Empty dependencies file for resilience_report.
# This may be replaced when dependencies are built.
