file(REMOVE_RECURSE
  "CMakeFiles/provisioning_planner.dir/provisioning_planner.cpp.o"
  "CMakeFiles/provisioning_planner.dir/provisioning_planner.cpp.o.d"
  "provisioning_planner"
  "provisioning_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provisioning_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
