# Empty dependencies file for provisioning_planner.
# This may be replaced when dependencies are built.
