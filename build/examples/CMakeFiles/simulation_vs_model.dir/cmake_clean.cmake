file(REMOVE_RECURSE
  "CMakeFiles/simulation_vs_model.dir/simulation_vs_model.cpp.o"
  "CMakeFiles/simulation_vs_model.dir/simulation_vs_model.cpp.o.d"
  "simulation_vs_model"
  "simulation_vs_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
