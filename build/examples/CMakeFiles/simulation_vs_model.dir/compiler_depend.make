# Empty compiler generated dependencies file for simulation_vs_model.
# This may be replaced when dependencies are built.
