file(REMOVE_RECURSE
  "CMakeFiles/adaptive_provisioning.dir/adaptive_provisioning.cpp.o"
  "CMakeFiles/adaptive_provisioning.dir/adaptive_provisioning.cpp.o.d"
  "adaptive_provisioning"
  "adaptive_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
