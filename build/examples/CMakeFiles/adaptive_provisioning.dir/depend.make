# Empty dependencies file for adaptive_provisioning.
# This may be replaced when dependencies are built.
