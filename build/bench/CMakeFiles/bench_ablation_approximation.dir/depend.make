# Empty dependencies file for bench_ablation_approximation.
# This may be replaced when dependencies are built.
