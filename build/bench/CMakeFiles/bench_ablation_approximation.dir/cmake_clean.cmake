file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_approximation.dir/bench_ablation_approximation.cpp.o"
  "CMakeFiles/bench_ablation_approximation.dir/bench_ablation_approximation.cpp.o.d"
  "bench_ablation_approximation"
  "bench_ablation_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
