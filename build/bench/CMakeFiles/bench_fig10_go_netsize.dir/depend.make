# Empty dependencies file for bench_fig10_go_netsize.
# This may be replaced when dependencies are built.
