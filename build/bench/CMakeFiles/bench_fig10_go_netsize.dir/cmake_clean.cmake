file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_go_netsize.dir/bench_fig10_go_netsize.cpp.o"
  "CMakeFiles/bench_fig10_go_netsize.dir/bench_fig10_go_netsize.cpp.o.d"
  "bench_fig10_go_netsize"
  "bench_fig10_go_netsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_go_netsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
