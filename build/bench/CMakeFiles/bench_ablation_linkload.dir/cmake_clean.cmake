file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_linkload.dir/bench_ablation_linkload.cpp.o"
  "CMakeFiles/bench_ablation_linkload.dir/bench_ablation_linkload.cpp.o.d"
  "bench_ablation_linkload"
  "bench_ablation_linkload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_linkload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
