# Empty dependencies file for bench_ablation_linkload.
# This may be replaced when dependencies are built.
