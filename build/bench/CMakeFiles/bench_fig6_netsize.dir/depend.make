# Empty dependencies file for bench_fig6_netsize.
# This may be replaced when dependencies are built.
