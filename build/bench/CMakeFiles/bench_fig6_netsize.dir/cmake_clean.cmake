file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_netsize.dir/bench_fig6_netsize.cpp.o"
  "CMakeFiles/bench_fig6_netsize.dir/bench_fig6_netsize.cpp.o.d"
  "bench_fig6_netsize"
  "bench_fig6_netsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_netsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
