file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_go_zipf.dir/bench_fig9_go_zipf.cpp.o"
  "CMakeFiles/bench_fig9_go_zipf.dir/bench_fig9_go_zipf.cpp.o.d"
  "bench_fig9_go_zipf"
  "bench_fig9_go_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_go_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
