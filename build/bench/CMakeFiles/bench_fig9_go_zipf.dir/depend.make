# Empty dependencies file for bench_fig9_go_zipf.
# This may be replaced when dependencies are built.
