file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_motivating.dir/bench_table1_motivating.cpp.o"
  "CMakeFiles/bench_table1_motivating.dir/bench_table1_motivating.cpp.o.d"
  "bench_table1_motivating"
  "bench_table1_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
