# Empty dependencies file for bench_table1_motivating.
# This may be replaced when dependencies are built.
