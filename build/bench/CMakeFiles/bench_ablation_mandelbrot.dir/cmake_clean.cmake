file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mandelbrot.dir/bench_ablation_mandelbrot.cpp.o"
  "CMakeFiles/bench_ablation_mandelbrot.dir/bench_ablation_mandelbrot.cpp.o.d"
  "bench_ablation_mandelbrot"
  "bench_ablation_mandelbrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mandelbrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
