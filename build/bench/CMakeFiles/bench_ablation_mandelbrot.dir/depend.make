# Empty dependencies file for bench_ablation_mandelbrot.
# This may be replaced when dependencies are built.
