# Empty dependencies file for bench_fig13_gr_zipf.
# This may be replaced when dependencies are built.
