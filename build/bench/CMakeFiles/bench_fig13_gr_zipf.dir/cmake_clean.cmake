file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_gr_zipf.dir/bench_fig13_gr_zipf.cpp.o"
  "CMakeFiles/bench_fig13_gr_zipf.dir/bench_fig13_gr_zipf.cpp.o.d"
  "bench_fig13_gr_zipf"
  "bench_fig13_gr_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_gr_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
