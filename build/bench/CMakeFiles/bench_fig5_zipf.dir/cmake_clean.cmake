file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_zipf.dir/bench_fig5_zipf.cpp.o"
  "CMakeFiles/bench_fig5_zipf.dir/bench_fig5_zipf.cpp.o.d"
  "bench_fig5_zipf"
  "bench_fig5_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
