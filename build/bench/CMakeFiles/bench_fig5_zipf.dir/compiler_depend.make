# Empty compiler generated dependencies file for bench_fig5_zipf.
# This may be replaced when dependencies are built.
