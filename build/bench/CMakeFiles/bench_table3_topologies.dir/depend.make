# Empty dependencies file for bench_table3_topologies.
# This may be replaced when dependencies are built.
