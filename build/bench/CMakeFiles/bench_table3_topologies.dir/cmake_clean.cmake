file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_topologies.dir/bench_table3_topologies.cpp.o"
  "CMakeFiles/bench_table3_topologies.dir/bench_table3_topologies.cpp.o.d"
  "bench_table3_topologies"
  "bench_table3_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
