# Empty compiler generated dependencies file for bench_ablation_churn.
# This may be replaced when dependencies are built.
