file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_abilene.dir/bench_fig3_abilene.cpp.o"
  "CMakeFiles/bench_fig3_abilene.dir/bench_fig3_abilene.cpp.o.d"
  "bench_fig3_abilene"
  "bench_fig3_abilene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_abilene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
