# Empty dependencies file for bench_fig3_abilene.
# This may be replaced when dependencies are built.
