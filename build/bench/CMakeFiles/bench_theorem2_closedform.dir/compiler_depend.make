# Empty compiler generated dependencies file for bench_theorem2_closedform.
# This may be replaced when dependencies are built.
