file(REMOVE_RECURSE
  "CMakeFiles/bench_theorem2_closedform.dir/bench_theorem2_closedform.cpp.o"
  "CMakeFiles/bench_theorem2_closedform.dir/bench_theorem2_closedform.cpp.o.d"
  "bench_theorem2_closedform"
  "bench_theorem2_closedform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem2_closedform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
