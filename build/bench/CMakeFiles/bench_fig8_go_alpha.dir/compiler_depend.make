# Empty compiler generated dependencies file for bench_fig8_go_alpha.
# This may be replaced when dependencies are built.
