# Empty dependencies file for bench_table4_params.
# This may be replaced when dependencies are built.
