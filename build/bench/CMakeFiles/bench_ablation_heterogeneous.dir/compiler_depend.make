# Empty compiler generated dependencies file for bench_ablation_heterogeneous.
# This may be replaced when dependencies are built.
