file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_heterogeneous.dir/bench_ablation_heterogeneous.cpp.o"
  "CMakeFiles/bench_ablation_heterogeneous.dir/bench_ablation_heterogeneous.cpp.o.d"
  "bench_ablation_heterogeneous"
  "bench_ablation_heterogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
