# Empty dependencies file for bench_fig4_alpha.
# This may be replaced when dependencies are built.
