file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_go_unitcost.dir/bench_fig11_go_unitcost.cpp.o"
  "CMakeFiles/bench_fig11_go_unitcost.dir/bench_fig11_go_unitcost.cpp.o.d"
  "bench_fig11_go_unitcost"
  "bench_fig11_go_unitcost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_go_unitcost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
