# Empty dependencies file for bench_fig11_go_unitcost.
# This may be replaced when dependencies are built.
