file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_experiments.dir/adaptive_loop.cpp.o"
  "CMakeFiles/ccnopt_experiments.dir/adaptive_loop.cpp.o.d"
  "CMakeFiles/ccnopt_experiments.dir/figures.cpp.o"
  "CMakeFiles/ccnopt_experiments.dir/figures.cpp.o.d"
  "CMakeFiles/ccnopt_experiments.dir/motivating.cpp.o"
  "CMakeFiles/ccnopt_experiments.dir/motivating.cpp.o.d"
  "CMakeFiles/ccnopt_experiments.dir/report.cpp.o"
  "CMakeFiles/ccnopt_experiments.dir/report.cpp.o.d"
  "CMakeFiles/ccnopt_experiments.dir/sim_vs_model.cpp.o"
  "CMakeFiles/ccnopt_experiments.dir/sim_vs_model.cpp.o.d"
  "CMakeFiles/ccnopt_experiments.dir/tables.cpp.o"
  "CMakeFiles/ccnopt_experiments.dir/tables.cpp.o.d"
  "libccnopt_experiments.a"
  "libccnopt_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
