# Empty dependencies file for ccnopt_experiments.
# This may be replaced when dependencies are built.
