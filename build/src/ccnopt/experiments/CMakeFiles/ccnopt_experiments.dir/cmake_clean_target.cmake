file(REMOVE_RECURSE
  "libccnopt_experiments.a"
)
