file(REMOVE_RECURSE
  "libccnopt_popularity.a"
)
