# Empty compiler generated dependencies file for ccnopt_popularity.
# This may be replaced when dependencies are built.
