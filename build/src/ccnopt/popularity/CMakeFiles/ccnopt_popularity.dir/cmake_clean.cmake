file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_popularity.dir/estimator.cpp.o"
  "CMakeFiles/ccnopt_popularity.dir/estimator.cpp.o.d"
  "CMakeFiles/ccnopt_popularity.dir/mandelbrot.cpp.o"
  "CMakeFiles/ccnopt_popularity.dir/mandelbrot.cpp.o.d"
  "CMakeFiles/ccnopt_popularity.dir/sampler.cpp.o"
  "CMakeFiles/ccnopt_popularity.dir/sampler.cpp.o.d"
  "CMakeFiles/ccnopt_popularity.dir/zipf.cpp.o"
  "CMakeFiles/ccnopt_popularity.dir/zipf.cpp.o.d"
  "libccnopt_popularity.a"
  "libccnopt_popularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_popularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
