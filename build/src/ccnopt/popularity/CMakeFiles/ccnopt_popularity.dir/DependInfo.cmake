
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccnopt/popularity/estimator.cpp" "src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/estimator.cpp.o" "gcc" "src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/estimator.cpp.o.d"
  "/root/repo/src/ccnopt/popularity/mandelbrot.cpp" "src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/mandelbrot.cpp.o" "gcc" "src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/mandelbrot.cpp.o.d"
  "/root/repo/src/ccnopt/popularity/sampler.cpp" "src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/sampler.cpp.o" "gcc" "src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/sampler.cpp.o.d"
  "/root/repo/src/ccnopt/popularity/zipf.cpp" "src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/zipf.cpp.o" "gcc" "src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccnopt/common/CMakeFiles/ccnopt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
