# Empty compiler generated dependencies file for ccnopt_common.
# This may be replaced when dependencies are built.
