file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_common.dir/args.cpp.o"
  "CMakeFiles/ccnopt_common.dir/args.cpp.o.d"
  "CMakeFiles/ccnopt_common.dir/csv.cpp.o"
  "CMakeFiles/ccnopt_common.dir/csv.cpp.o.d"
  "CMakeFiles/ccnopt_common.dir/error.cpp.o"
  "CMakeFiles/ccnopt_common.dir/error.cpp.o.d"
  "CMakeFiles/ccnopt_common.dir/logging.cpp.o"
  "CMakeFiles/ccnopt_common.dir/logging.cpp.o.d"
  "CMakeFiles/ccnopt_common.dir/random.cpp.o"
  "CMakeFiles/ccnopt_common.dir/random.cpp.o.d"
  "CMakeFiles/ccnopt_common.dir/strings.cpp.o"
  "CMakeFiles/ccnopt_common.dir/strings.cpp.o.d"
  "CMakeFiles/ccnopt_common.dir/table.cpp.o"
  "CMakeFiles/ccnopt_common.dir/table.cpp.o.d"
  "libccnopt_common.a"
  "libccnopt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
