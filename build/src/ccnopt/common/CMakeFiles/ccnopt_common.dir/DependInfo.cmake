
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccnopt/common/args.cpp" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/args.cpp.o" "gcc" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/args.cpp.o.d"
  "/root/repo/src/ccnopt/common/csv.cpp" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/csv.cpp.o" "gcc" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/csv.cpp.o.d"
  "/root/repo/src/ccnopt/common/error.cpp" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/error.cpp.o" "gcc" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/error.cpp.o.d"
  "/root/repo/src/ccnopt/common/logging.cpp" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/logging.cpp.o" "gcc" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/logging.cpp.o.d"
  "/root/repo/src/ccnopt/common/random.cpp" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/random.cpp.o" "gcc" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/random.cpp.o.d"
  "/root/repo/src/ccnopt/common/strings.cpp" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/strings.cpp.o" "gcc" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/strings.cpp.o.d"
  "/root/repo/src/ccnopt/common/table.cpp" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/table.cpp.o" "gcc" "src/ccnopt/common/CMakeFiles/ccnopt_common.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
