file(REMOVE_RECURSE
  "libccnopt_common.a"
)
