file(REMOVE_RECURSE
  "libccnopt_sim.a"
)
