# Empty dependencies file for ccnopt_sim.
# This may be replaced when dependencies are built.
