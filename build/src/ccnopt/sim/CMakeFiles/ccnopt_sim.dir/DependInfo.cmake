
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccnopt/sim/coordinator.cpp" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/coordinator.cpp.o" "gcc" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/coordinator.cpp.o.d"
  "/root/repo/src/ccnopt/sim/event.cpp" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/event.cpp.o" "gcc" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/event.cpp.o.d"
  "/root/repo/src/ccnopt/sim/metrics.cpp" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/metrics.cpp.o" "gcc" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/ccnopt/sim/network.cpp" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/network.cpp.o" "gcc" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/network.cpp.o.d"
  "/root/repo/src/ccnopt/sim/simulation.cpp" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/simulation.cpp.o" "gcc" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/ccnopt/sim/workload.cpp" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/workload.cpp.o" "gcc" "src/ccnopt/sim/CMakeFiles/ccnopt_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccnopt/common/CMakeFiles/ccnopt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
