file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_sim.dir/coordinator.cpp.o"
  "CMakeFiles/ccnopt_sim.dir/coordinator.cpp.o.d"
  "CMakeFiles/ccnopt_sim.dir/event.cpp.o"
  "CMakeFiles/ccnopt_sim.dir/event.cpp.o.d"
  "CMakeFiles/ccnopt_sim.dir/metrics.cpp.o"
  "CMakeFiles/ccnopt_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/ccnopt_sim.dir/network.cpp.o"
  "CMakeFiles/ccnopt_sim.dir/network.cpp.o.d"
  "CMakeFiles/ccnopt_sim.dir/simulation.cpp.o"
  "CMakeFiles/ccnopt_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/ccnopt_sim.dir/workload.cpp.o"
  "CMakeFiles/ccnopt_sim.dir/workload.cpp.o.d"
  "libccnopt_sim.a"
  "libccnopt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
