file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_numerics.dir/harmonic.cpp.o"
  "CMakeFiles/ccnopt_numerics.dir/harmonic.cpp.o.d"
  "CMakeFiles/ccnopt_numerics.dir/integrate.cpp.o"
  "CMakeFiles/ccnopt_numerics.dir/integrate.cpp.o.d"
  "CMakeFiles/ccnopt_numerics.dir/minimize.cpp.o"
  "CMakeFiles/ccnopt_numerics.dir/minimize.cpp.o.d"
  "CMakeFiles/ccnopt_numerics.dir/neldermead.cpp.o"
  "CMakeFiles/ccnopt_numerics.dir/neldermead.cpp.o.d"
  "CMakeFiles/ccnopt_numerics.dir/roots.cpp.o"
  "CMakeFiles/ccnopt_numerics.dir/roots.cpp.o.d"
  "CMakeFiles/ccnopt_numerics.dir/stats.cpp.o"
  "CMakeFiles/ccnopt_numerics.dir/stats.cpp.o.d"
  "libccnopt_numerics.a"
  "libccnopt_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
