file(REMOVE_RECURSE
  "libccnopt_numerics.a"
)
