# Empty dependencies file for ccnopt_numerics.
# This may be replaced when dependencies are built.
