
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccnopt/numerics/harmonic.cpp" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/harmonic.cpp.o" "gcc" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/harmonic.cpp.o.d"
  "/root/repo/src/ccnopt/numerics/integrate.cpp" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/integrate.cpp.o" "gcc" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/integrate.cpp.o.d"
  "/root/repo/src/ccnopt/numerics/minimize.cpp" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/minimize.cpp.o" "gcc" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/minimize.cpp.o.d"
  "/root/repo/src/ccnopt/numerics/neldermead.cpp" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/neldermead.cpp.o" "gcc" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/neldermead.cpp.o.d"
  "/root/repo/src/ccnopt/numerics/roots.cpp" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/roots.cpp.o" "gcc" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/roots.cpp.o.d"
  "/root/repo/src/ccnopt/numerics/stats.cpp" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/stats.cpp.o" "gcc" "src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccnopt/common/CMakeFiles/ccnopt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
