
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccnopt/model/adaptive.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/adaptive.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/adaptive.cpp.o.d"
  "/root/repo/src/ccnopt/model/exact.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/exact.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/exact.cpp.o.d"
  "/root/repo/src/ccnopt/model/gains.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/gains.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/gains.cpp.o.d"
  "/root/repo/src/ccnopt/model/general.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/general.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/general.cpp.o.d"
  "/root/repo/src/ccnopt/model/heterogeneous.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/heterogeneous.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/heterogeneous.cpp.o.d"
  "/root/repo/src/ccnopt/model/optimizer.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/optimizer.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/optimizer.cpp.o.d"
  "/root/repo/src/ccnopt/model/params.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/params.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/params.cpp.o.d"
  "/root/repo/src/ccnopt/model/performance.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/performance.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/performance.cpp.o.d"
  "/root/repo/src/ccnopt/model/robustness.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/robustness.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/robustness.cpp.o.d"
  "/root/repo/src/ccnopt/model/sensitivity.cpp" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/sensitivity.cpp.o" "gcc" "src/ccnopt/model/CMakeFiles/ccnopt_model.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccnopt/common/CMakeFiles/ccnopt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
