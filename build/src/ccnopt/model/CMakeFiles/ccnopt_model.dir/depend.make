# Empty dependencies file for ccnopt_model.
# This may be replaced when dependencies are built.
