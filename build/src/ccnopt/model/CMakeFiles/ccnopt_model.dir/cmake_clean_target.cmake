file(REMOVE_RECURSE
  "libccnopt_model.a"
)
