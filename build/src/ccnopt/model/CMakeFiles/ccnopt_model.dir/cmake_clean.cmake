file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_model.dir/adaptive.cpp.o"
  "CMakeFiles/ccnopt_model.dir/adaptive.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/exact.cpp.o"
  "CMakeFiles/ccnopt_model.dir/exact.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/gains.cpp.o"
  "CMakeFiles/ccnopt_model.dir/gains.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/general.cpp.o"
  "CMakeFiles/ccnopt_model.dir/general.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/heterogeneous.cpp.o"
  "CMakeFiles/ccnopt_model.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/optimizer.cpp.o"
  "CMakeFiles/ccnopt_model.dir/optimizer.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/params.cpp.o"
  "CMakeFiles/ccnopt_model.dir/params.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/performance.cpp.o"
  "CMakeFiles/ccnopt_model.dir/performance.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/robustness.cpp.o"
  "CMakeFiles/ccnopt_model.dir/robustness.cpp.o.d"
  "CMakeFiles/ccnopt_model.dir/sensitivity.cpp.o"
  "CMakeFiles/ccnopt_model.dir/sensitivity.cpp.o.d"
  "libccnopt_model.a"
  "libccnopt_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
