file(REMOVE_RECURSE
  "libccnopt_cache.a"
)
