# Empty compiler generated dependencies file for ccnopt_cache.
# This may be replaced when dependencies are built.
