file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_cache.dir/che.cpp.o"
  "CMakeFiles/ccnopt_cache.dir/che.cpp.o.d"
  "CMakeFiles/ccnopt_cache.dir/fifo.cpp.o"
  "CMakeFiles/ccnopt_cache.dir/fifo.cpp.o.d"
  "CMakeFiles/ccnopt_cache.dir/lfu.cpp.o"
  "CMakeFiles/ccnopt_cache.dir/lfu.cpp.o.d"
  "CMakeFiles/ccnopt_cache.dir/lru.cpp.o"
  "CMakeFiles/ccnopt_cache.dir/lru.cpp.o.d"
  "CMakeFiles/ccnopt_cache.dir/partitioned.cpp.o"
  "CMakeFiles/ccnopt_cache.dir/partitioned.cpp.o.d"
  "CMakeFiles/ccnopt_cache.dir/policy.cpp.o"
  "CMakeFiles/ccnopt_cache.dir/policy.cpp.o.d"
  "CMakeFiles/ccnopt_cache.dir/random_policy.cpp.o"
  "CMakeFiles/ccnopt_cache.dir/random_policy.cpp.o.d"
  "CMakeFiles/ccnopt_cache.dir/static_cache.cpp.o"
  "CMakeFiles/ccnopt_cache.dir/static_cache.cpp.o.d"
  "libccnopt_cache.a"
  "libccnopt_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
