
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccnopt/cache/che.cpp" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/che.cpp.o" "gcc" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/che.cpp.o.d"
  "/root/repo/src/ccnopt/cache/fifo.cpp" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/fifo.cpp.o" "gcc" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/fifo.cpp.o.d"
  "/root/repo/src/ccnopt/cache/lfu.cpp" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/lfu.cpp.o" "gcc" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/lfu.cpp.o.d"
  "/root/repo/src/ccnopt/cache/lru.cpp" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/lru.cpp.o" "gcc" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/lru.cpp.o.d"
  "/root/repo/src/ccnopt/cache/partitioned.cpp" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/partitioned.cpp.o" "gcc" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/partitioned.cpp.o.d"
  "/root/repo/src/ccnopt/cache/policy.cpp" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/policy.cpp.o" "gcc" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/policy.cpp.o.d"
  "/root/repo/src/ccnopt/cache/random_policy.cpp" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/random_policy.cpp.o" "gcc" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/random_policy.cpp.o.d"
  "/root/repo/src/ccnopt/cache/static_cache.cpp" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/static_cache.cpp.o" "gcc" "src/ccnopt/cache/CMakeFiles/ccnopt_cache.dir/static_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccnopt/common/CMakeFiles/ccnopt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/popularity/CMakeFiles/ccnopt_popularity.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
