
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccnopt/topology/datasets.cpp" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/datasets.cpp.o" "gcc" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/datasets.cpp.o.d"
  "/root/repo/src/ccnopt/topology/generators.cpp" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/generators.cpp.o" "gcc" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/generators.cpp.o.d"
  "/root/repo/src/ccnopt/topology/geo.cpp" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/geo.cpp.o" "gcc" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/geo.cpp.o.d"
  "/root/repo/src/ccnopt/topology/graph.cpp" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/graph.cpp.o" "gcc" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/graph.cpp.o.d"
  "/root/repo/src/ccnopt/topology/io.cpp" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/io.cpp.o" "gcc" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/io.cpp.o.d"
  "/root/repo/src/ccnopt/topology/params.cpp" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/params.cpp.o" "gcc" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/params.cpp.o.d"
  "/root/repo/src/ccnopt/topology/shortest_paths.cpp" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/shortest_paths.cpp.o" "gcc" "src/ccnopt/topology/CMakeFiles/ccnopt_topology.dir/shortest_paths.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ccnopt/common/CMakeFiles/ccnopt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ccnopt/numerics/CMakeFiles/ccnopt_numerics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
