file(REMOVE_RECURSE
  "CMakeFiles/ccnopt_topology.dir/datasets.cpp.o"
  "CMakeFiles/ccnopt_topology.dir/datasets.cpp.o.d"
  "CMakeFiles/ccnopt_topology.dir/generators.cpp.o"
  "CMakeFiles/ccnopt_topology.dir/generators.cpp.o.d"
  "CMakeFiles/ccnopt_topology.dir/geo.cpp.o"
  "CMakeFiles/ccnopt_topology.dir/geo.cpp.o.d"
  "CMakeFiles/ccnopt_topology.dir/graph.cpp.o"
  "CMakeFiles/ccnopt_topology.dir/graph.cpp.o.d"
  "CMakeFiles/ccnopt_topology.dir/io.cpp.o"
  "CMakeFiles/ccnopt_topology.dir/io.cpp.o.d"
  "CMakeFiles/ccnopt_topology.dir/params.cpp.o"
  "CMakeFiles/ccnopt_topology.dir/params.cpp.o.d"
  "CMakeFiles/ccnopt_topology.dir/shortest_paths.cpp.o"
  "CMakeFiles/ccnopt_topology.dir/shortest_paths.cpp.o.d"
  "libccnopt_topology.a"
  "libccnopt_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccnopt_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
