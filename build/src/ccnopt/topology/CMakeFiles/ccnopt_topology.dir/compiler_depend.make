# Empty compiler generated dependencies file for ccnopt_topology.
# This may be replaced when dependencies are built.
