file(REMOVE_RECURSE
  "libccnopt_topology.a"
)
