file(REMOVE_RECURSE
  "CMakeFiles/test_model_lemma_properties.dir/test_model_lemma_properties.cpp.o"
  "CMakeFiles/test_model_lemma_properties.dir/test_model_lemma_properties.cpp.o.d"
  "test_model_lemma_properties"
  "test_model_lemma_properties.pdb"
  "test_model_lemma_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_lemma_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
