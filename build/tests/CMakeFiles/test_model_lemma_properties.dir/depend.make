# Empty dependencies file for test_model_lemma_properties.
# This may be replaced when dependencies are built.
