file(REMOVE_RECURSE
  "CMakeFiles/test_common_logging.dir/test_common_logging.cpp.o"
  "CMakeFiles/test_common_logging.dir/test_common_logging.cpp.o.d"
  "test_common_logging"
  "test_common_logging.pdb"
  "test_common_logging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
