file(REMOVE_RECURSE
  "CMakeFiles/test_common_matrix.dir/test_common_matrix.cpp.o"
  "CMakeFiles/test_common_matrix.dir/test_common_matrix.cpp.o.d"
  "test_common_matrix"
  "test_common_matrix.pdb"
  "test_common_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
