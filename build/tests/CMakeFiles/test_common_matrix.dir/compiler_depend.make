# Empty compiler generated dependencies file for test_common_matrix.
# This may be replaced when dependencies are built.
