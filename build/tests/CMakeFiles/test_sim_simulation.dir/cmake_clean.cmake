file(REMOVE_RECURSE
  "CMakeFiles/test_sim_simulation.dir/test_sim_simulation.cpp.o"
  "CMakeFiles/test_sim_simulation.dir/test_sim_simulation.cpp.o.d"
  "test_sim_simulation"
  "test_sim_simulation.pdb"
  "test_sim_simulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
