# Empty dependencies file for test_sim_simulation.
# This may be replaced when dependencies are built.
