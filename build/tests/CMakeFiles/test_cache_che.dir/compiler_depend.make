# Empty compiler generated dependencies file for test_cache_che.
# This may be replaced when dependencies are built.
