file(REMOVE_RECURSE
  "CMakeFiles/test_cache_che.dir/test_cache_che.cpp.o"
  "CMakeFiles/test_cache_che.dir/test_cache_che.cpp.o.d"
  "test_cache_che"
  "test_cache_che.pdb"
  "test_cache_che[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_che.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
