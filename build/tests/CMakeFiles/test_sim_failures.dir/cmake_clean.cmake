file(REMOVE_RECURSE
  "CMakeFiles/test_sim_failures.dir/test_sim_failures.cpp.o"
  "CMakeFiles/test_sim_failures.dir/test_sim_failures.cpp.o.d"
  "test_sim_failures"
  "test_sim_failures.pdb"
  "test_sim_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
