# Empty dependencies file for test_popularity_estimator.
# This may be replaced when dependencies are built.
