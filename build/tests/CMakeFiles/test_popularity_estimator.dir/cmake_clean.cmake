file(REMOVE_RECURSE
  "CMakeFiles/test_popularity_estimator.dir/test_popularity_estimator.cpp.o"
  "CMakeFiles/test_popularity_estimator.dir/test_popularity_estimator.cpp.o.d"
  "test_popularity_estimator"
  "test_popularity_estimator.pdb"
  "test_popularity_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_popularity_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
