file(REMOVE_RECURSE
  "CMakeFiles/test_sim_heterogeneous.dir/test_sim_heterogeneous.cpp.o"
  "CMakeFiles/test_sim_heterogeneous.dir/test_sim_heterogeneous.cpp.o.d"
  "test_sim_heterogeneous"
  "test_sim_heterogeneous.pdb"
  "test_sim_heterogeneous[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
