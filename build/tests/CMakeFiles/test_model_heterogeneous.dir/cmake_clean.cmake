file(REMOVE_RECURSE
  "CMakeFiles/test_model_heterogeneous.dir/test_model_heterogeneous.cpp.o"
  "CMakeFiles/test_model_heterogeneous.dir/test_model_heterogeneous.cpp.o.d"
  "test_model_heterogeneous"
  "test_model_heterogeneous.pdb"
  "test_model_heterogeneous[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_heterogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
