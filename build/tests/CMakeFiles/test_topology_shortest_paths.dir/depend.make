# Empty dependencies file for test_topology_shortest_paths.
# This may be replaced when dependencies are built.
