file(REMOVE_RECURSE
  "CMakeFiles/test_topology_shortest_paths.dir/test_topology_shortest_paths.cpp.o"
  "CMakeFiles/test_topology_shortest_paths.dir/test_topology_shortest_paths.cpp.o.d"
  "test_topology_shortest_paths"
  "test_topology_shortest_paths.pdb"
  "test_topology_shortest_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_shortest_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
