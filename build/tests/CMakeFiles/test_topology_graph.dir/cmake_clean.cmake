file(REMOVE_RECURSE
  "CMakeFiles/test_topology_graph.dir/test_topology_graph.cpp.o"
  "CMakeFiles/test_topology_graph.dir/test_topology_graph.cpp.o.d"
  "test_topology_graph"
  "test_topology_graph.pdb"
  "test_topology_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
