# Empty dependencies file for test_topology_graph.
# This may be replaced when dependencies are built.
