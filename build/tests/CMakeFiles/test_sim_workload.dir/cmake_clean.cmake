file(REMOVE_RECURSE
  "CMakeFiles/test_sim_workload.dir/test_sim_workload.cpp.o"
  "CMakeFiles/test_sim_workload.dir/test_sim_workload.cpp.o.d"
  "test_sim_workload"
  "test_sim_workload.pdb"
  "test_sim_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
