file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_neldermead.dir/test_numerics_neldermead.cpp.o"
  "CMakeFiles/test_numerics_neldermead.dir/test_numerics_neldermead.cpp.o.d"
  "test_numerics_neldermead"
  "test_numerics_neldermead.pdb"
  "test_numerics_neldermead[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_neldermead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
