# Empty dependencies file for test_numerics_neldermead.
# This may be replaced when dependencies are built.
