file(REMOVE_RECURSE
  "CMakeFiles/test_cache_properties.dir/test_cache_properties.cpp.o"
  "CMakeFiles/test_cache_properties.dir/test_cache_properties.cpp.o.d"
  "test_cache_properties"
  "test_cache_properties.pdb"
  "test_cache_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
