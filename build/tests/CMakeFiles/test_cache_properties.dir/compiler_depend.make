# Empty compiler generated dependencies file for test_cache_properties.
# This may be replaced when dependencies are built.
