file(REMOVE_RECURSE
  "CMakeFiles/test_topology_generators.dir/test_topology_generators.cpp.o"
  "CMakeFiles/test_topology_generators.dir/test_topology_generators.cpp.o.d"
  "test_topology_generators"
  "test_topology_generators.pdb"
  "test_topology_generators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_generators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
