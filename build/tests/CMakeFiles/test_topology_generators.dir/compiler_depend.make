# Empty compiler generated dependencies file for test_topology_generators.
# This may be replaced when dependencies are built.
