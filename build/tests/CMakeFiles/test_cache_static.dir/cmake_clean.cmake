file(REMOVE_RECURSE
  "CMakeFiles/test_cache_static.dir/test_cache_static.cpp.o"
  "CMakeFiles/test_cache_static.dir/test_cache_static.cpp.o.d"
  "test_cache_static"
  "test_cache_static.pdb"
  "test_cache_static[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
