# Empty compiler generated dependencies file for test_cache_static.
# This may be replaced when dependencies are built.
