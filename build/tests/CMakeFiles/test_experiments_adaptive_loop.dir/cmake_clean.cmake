file(REMOVE_RECURSE
  "CMakeFiles/test_experiments_adaptive_loop.dir/test_experiments_adaptive_loop.cpp.o"
  "CMakeFiles/test_experiments_adaptive_loop.dir/test_experiments_adaptive_loop.cpp.o.d"
  "test_experiments_adaptive_loop"
  "test_experiments_adaptive_loop.pdb"
  "test_experiments_adaptive_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments_adaptive_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
