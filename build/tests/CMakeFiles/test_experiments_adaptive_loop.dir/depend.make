# Empty dependencies file for test_experiments_adaptive_loop.
# This may be replaced when dependencies are built.
