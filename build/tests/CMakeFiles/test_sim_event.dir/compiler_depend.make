# Empty compiler generated dependencies file for test_sim_event.
# This may be replaced when dependencies are built.
