file(REMOVE_RECURSE
  "CMakeFiles/test_sim_event.dir/test_sim_event.cpp.o"
  "CMakeFiles/test_sim_event.dir/test_sim_event.cpp.o.d"
  "test_sim_event"
  "test_sim_event.pdb"
  "test_sim_event[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_event.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
