file(REMOVE_RECURSE
  "CMakeFiles/test_model_sensitivity.dir/test_model_sensitivity.cpp.o"
  "CMakeFiles/test_model_sensitivity.dir/test_model_sensitivity.cpp.o.d"
  "test_model_sensitivity"
  "test_model_sensitivity.pdb"
  "test_model_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
