# Empty dependencies file for test_model_sensitivity.
# This may be replaced when dependencies are built.
