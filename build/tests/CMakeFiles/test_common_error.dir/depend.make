# Empty dependencies file for test_common_error.
# This may be replaced when dependencies are built.
