file(REMOVE_RECURSE
  "CMakeFiles/test_common_error.dir/test_common_error.cpp.o"
  "CMakeFiles/test_common_error.dir/test_common_error.cpp.o.d"
  "test_common_error"
  "test_common_error.pdb"
  "test_common_error[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
