# Empty compiler generated dependencies file for test_sim_drifting_workload.
# This may be replaced when dependencies are built.
