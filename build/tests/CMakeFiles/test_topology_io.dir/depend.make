# Empty dependencies file for test_topology_io.
# This may be replaced when dependencies are built.
