file(REMOVE_RECURSE
  "CMakeFiles/test_topology_io.dir/test_topology_io.cpp.o"
  "CMakeFiles/test_topology_io.dir/test_topology_io.cpp.o.d"
  "test_topology_io"
  "test_topology_io.pdb"
  "test_topology_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
