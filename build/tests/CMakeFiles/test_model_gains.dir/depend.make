# Empty dependencies file for test_model_gains.
# This may be replaced when dependencies are built.
