file(REMOVE_RECURSE
  "CMakeFiles/test_model_gains.dir/test_model_gains.cpp.o"
  "CMakeFiles/test_model_gains.dir/test_model_gains.cpp.o.d"
  "test_model_gains"
  "test_model_gains.pdb"
  "test_model_gains[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
