file(REMOVE_RECURSE
  "CMakeFiles/test_topology_params.dir/test_topology_params.cpp.o"
  "CMakeFiles/test_topology_params.dir/test_topology_params.cpp.o.d"
  "test_topology_params"
  "test_topology_params.pdb"
  "test_topology_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
