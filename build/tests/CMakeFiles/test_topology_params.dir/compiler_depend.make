# Empty compiler generated dependencies file for test_topology_params.
# This may be replaced when dependencies are built.
