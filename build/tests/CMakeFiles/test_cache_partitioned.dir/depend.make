# Empty dependencies file for test_cache_partitioned.
# This may be replaced when dependencies are built.
