file(REMOVE_RECURSE
  "CMakeFiles/test_cache_partitioned.dir/test_cache_partitioned.cpp.o"
  "CMakeFiles/test_cache_partitioned.dir/test_cache_partitioned.cpp.o.d"
  "test_cache_partitioned"
  "test_cache_partitioned.pdb"
  "test_cache_partitioned[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
