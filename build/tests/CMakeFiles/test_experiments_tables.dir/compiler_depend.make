# Empty compiler generated dependencies file for test_experiments_tables.
# This may be replaced when dependencies are built.
