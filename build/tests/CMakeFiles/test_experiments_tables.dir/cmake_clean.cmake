file(REMOVE_RECURSE
  "CMakeFiles/test_experiments_tables.dir/test_experiments_tables.cpp.o"
  "CMakeFiles/test_experiments_tables.dir/test_experiments_tables.cpp.o.d"
  "test_experiments_tables"
  "test_experiments_tables.pdb"
  "test_experiments_tables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
