# Empty dependencies file for test_model_optimizer.
# This may be replaced when dependencies are built.
