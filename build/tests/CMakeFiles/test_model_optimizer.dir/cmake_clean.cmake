file(REMOVE_RECURSE
  "CMakeFiles/test_model_optimizer.dir/test_model_optimizer.cpp.o"
  "CMakeFiles/test_model_optimizer.dir/test_model_optimizer.cpp.o.d"
  "test_model_optimizer"
  "test_model_optimizer.pdb"
  "test_model_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
