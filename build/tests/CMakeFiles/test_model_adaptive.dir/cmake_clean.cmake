file(REMOVE_RECURSE
  "CMakeFiles/test_model_adaptive.dir/test_model_adaptive.cpp.o"
  "CMakeFiles/test_model_adaptive.dir/test_model_adaptive.cpp.o.d"
  "test_model_adaptive"
  "test_model_adaptive.pdb"
  "test_model_adaptive[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
