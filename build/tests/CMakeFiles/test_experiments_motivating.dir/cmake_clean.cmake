file(REMOVE_RECURSE
  "CMakeFiles/test_experiments_motivating.dir/test_experiments_motivating.cpp.o"
  "CMakeFiles/test_experiments_motivating.dir/test_experiments_motivating.cpp.o.d"
  "test_experiments_motivating"
  "test_experiments_motivating.pdb"
  "test_experiments_motivating[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
