# Empty dependencies file for test_experiments_motivating.
# This may be replaced when dependencies are built.
