# Empty compiler generated dependencies file for test_sim_aggregation.
# This may be replaced when dependencies are built.
