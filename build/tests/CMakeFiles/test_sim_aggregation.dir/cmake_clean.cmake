file(REMOVE_RECURSE
  "CMakeFiles/test_sim_aggregation.dir/test_sim_aggregation.cpp.o"
  "CMakeFiles/test_sim_aggregation.dir/test_sim_aggregation.cpp.o.d"
  "test_sim_aggregation"
  "test_sim_aggregation.pdb"
  "test_sim_aggregation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
