file(REMOVE_RECURSE
  "CMakeFiles/test_sim_sliding_workload.dir/test_sim_sliding_workload.cpp.o"
  "CMakeFiles/test_sim_sliding_workload.dir/test_sim_sliding_workload.cpp.o.d"
  "test_sim_sliding_workload"
  "test_sim_sliding_workload.pdb"
  "test_sim_sliding_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_sliding_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
