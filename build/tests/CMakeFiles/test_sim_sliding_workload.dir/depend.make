# Empty dependencies file for test_sim_sliding_workload.
# This may be replaced when dependencies are built.
