# Empty compiler generated dependencies file for test_model_robustness.
# This may be replaced when dependencies are built.
