file(REMOVE_RECURSE
  "CMakeFiles/test_model_robustness.dir/test_model_robustness.cpp.o"
  "CMakeFiles/test_model_robustness.dir/test_model_robustness.cpp.o.d"
  "test_model_robustness"
  "test_model_robustness.pdb"
  "test_model_robustness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
