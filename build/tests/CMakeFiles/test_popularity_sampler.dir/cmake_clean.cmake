file(REMOVE_RECURSE
  "CMakeFiles/test_popularity_sampler.dir/test_popularity_sampler.cpp.o"
  "CMakeFiles/test_popularity_sampler.dir/test_popularity_sampler.cpp.o.d"
  "test_popularity_sampler"
  "test_popularity_sampler.pdb"
  "test_popularity_sampler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_popularity_sampler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
