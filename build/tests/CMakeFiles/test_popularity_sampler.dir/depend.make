# Empty dependencies file for test_popularity_sampler.
# This may be replaced when dependencies are built.
