# Empty compiler generated dependencies file for test_topology_geo.
# This may be replaced when dependencies are built.
