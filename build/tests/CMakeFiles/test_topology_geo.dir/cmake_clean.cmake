file(REMOVE_RECURSE
  "CMakeFiles/test_topology_geo.dir/test_topology_geo.cpp.o"
  "CMakeFiles/test_topology_geo.dir/test_topology_geo.cpp.o.d"
  "test_topology_geo"
  "test_topology_geo.pdb"
  "test_topology_geo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
