file(REMOVE_RECURSE
  "CMakeFiles/test_model_performance.dir/test_model_performance.cpp.o"
  "CMakeFiles/test_model_performance.dir/test_model_performance.cpp.o.d"
  "test_model_performance"
  "test_model_performance.pdb"
  "test_model_performance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
