# Empty compiler generated dependencies file for test_model_performance.
# This may be replaced when dependencies are built.
