# Empty dependencies file for test_cache_fifo.
# This may be replaced when dependencies are built.
