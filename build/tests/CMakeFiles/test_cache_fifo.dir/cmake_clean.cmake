file(REMOVE_RECURSE
  "CMakeFiles/test_cache_fifo.dir/test_cache_fifo.cpp.o"
  "CMakeFiles/test_cache_fifo.dir/test_cache_fifo.cpp.o.d"
  "test_cache_fifo"
  "test_cache_fifo.pdb"
  "test_cache_fifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
