# Empty compiler generated dependencies file for test_cache_lfu.
# This may be replaced when dependencies are built.
