file(REMOVE_RECURSE
  "CMakeFiles/test_cache_lfu.dir/test_cache_lfu.cpp.o"
  "CMakeFiles/test_cache_lfu.dir/test_cache_lfu.cpp.o.d"
  "test_cache_lfu"
  "test_cache_lfu.pdb"
  "test_cache_lfu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_lfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
