# Empty dependencies file for test_model_general.
# This may be replaced when dependencies are built.
