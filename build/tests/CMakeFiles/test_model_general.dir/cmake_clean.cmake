file(REMOVE_RECURSE
  "CMakeFiles/test_model_general.dir/test_model_general.cpp.o"
  "CMakeFiles/test_model_general.dir/test_model_general.cpp.o.d"
  "test_model_general"
  "test_model_general.pdb"
  "test_model_general[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_general.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
