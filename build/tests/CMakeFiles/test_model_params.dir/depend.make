# Empty dependencies file for test_model_params.
# This may be replaced when dependencies are built.
