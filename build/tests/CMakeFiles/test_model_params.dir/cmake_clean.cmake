file(REMOVE_RECURSE
  "CMakeFiles/test_model_params.dir/test_model_params.cpp.o"
  "CMakeFiles/test_model_params.dir/test_model_params.cpp.o.d"
  "test_model_params"
  "test_model_params.pdb"
  "test_model_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
