# Empty compiler generated dependencies file for test_numerics_roots.
# This may be replaced when dependencies are built.
