file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_roots.dir/test_numerics_roots.cpp.o"
  "CMakeFiles/test_numerics_roots.dir/test_numerics_roots.cpp.o.d"
  "test_numerics_roots"
  "test_numerics_roots.pdb"
  "test_numerics_roots[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_roots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
