file(REMOVE_RECURSE
  "CMakeFiles/test_cache_random.dir/test_cache_random.cpp.o"
  "CMakeFiles/test_cache_random.dir/test_cache_random.cpp.o.d"
  "test_cache_random"
  "test_cache_random.pdb"
  "test_cache_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
