# Empty dependencies file for test_cache_random.
# This may be replaced when dependencies are built.
