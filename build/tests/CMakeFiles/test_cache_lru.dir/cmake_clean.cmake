file(REMOVE_RECURSE
  "CMakeFiles/test_cache_lru.dir/test_cache_lru.cpp.o"
  "CMakeFiles/test_cache_lru.dir/test_cache_lru.cpp.o.d"
  "test_cache_lru"
  "test_cache_lru.pdb"
  "test_cache_lru[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_lru.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
