# Empty compiler generated dependencies file for test_cache_lru.
# This may be replaced when dependencies are built.
