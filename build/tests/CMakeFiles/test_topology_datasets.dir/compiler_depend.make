# Empty compiler generated dependencies file for test_topology_datasets.
# This may be replaced when dependencies are built.
