file(REMOVE_RECURSE
  "CMakeFiles/test_topology_datasets.dir/test_topology_datasets.cpp.o"
  "CMakeFiles/test_topology_datasets.dir/test_topology_datasets.cpp.o.d"
  "test_topology_datasets"
  "test_topology_datasets.pdb"
  "test_topology_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
