file(REMOVE_RECURSE
  "CMakeFiles/test_experiments_figures.dir/test_experiments_figures.cpp.o"
  "CMakeFiles/test_experiments_figures.dir/test_experiments_figures.cpp.o.d"
  "test_experiments_figures"
  "test_experiments_figures.pdb"
  "test_experiments_figures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
