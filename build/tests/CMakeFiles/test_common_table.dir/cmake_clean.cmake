file(REMOVE_RECURSE
  "CMakeFiles/test_common_table.dir/test_common_table.cpp.o"
  "CMakeFiles/test_common_table.dir/test_common_table.cpp.o.d"
  "test_common_table"
  "test_common_table.pdb"
  "test_common_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
