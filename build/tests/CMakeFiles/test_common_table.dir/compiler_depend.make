# Empty compiler generated dependencies file for test_common_table.
# This may be replaced when dependencies are built.
