file(REMOVE_RECURSE
  "CMakeFiles/test_common_strings.dir/test_common_strings.cpp.o"
  "CMakeFiles/test_common_strings.dir/test_common_strings.cpp.o.d"
  "test_common_strings"
  "test_common_strings.pdb"
  "test_common_strings[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
