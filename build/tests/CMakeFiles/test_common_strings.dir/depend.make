# Empty dependencies file for test_common_strings.
# This may be replaced when dependencies are built.
