file(REMOVE_RECURSE
  "CMakeFiles/test_experiments_sim_vs_model.dir/test_experiments_sim_vs_model.cpp.o"
  "CMakeFiles/test_experiments_sim_vs_model.dir/test_experiments_sim_vs_model.cpp.o.d"
  "test_experiments_sim_vs_model"
  "test_experiments_sim_vs_model.pdb"
  "test_experiments_sim_vs_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiments_sim_vs_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
