# Empty compiler generated dependencies file for test_experiments_sim_vs_model.
# This may be replaced when dependencies are built.
