file(REMOVE_RECURSE
  "CMakeFiles/test_sim_link_load.dir/test_sim_link_load.cpp.o"
  "CMakeFiles/test_sim_link_load.dir/test_sim_link_load.cpp.o.d"
  "test_sim_link_load"
  "test_sim_link_load.pdb"
  "test_sim_link_load[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_link_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
