# Empty compiler generated dependencies file for test_sim_link_load.
# This may be replaced when dependencies are built.
