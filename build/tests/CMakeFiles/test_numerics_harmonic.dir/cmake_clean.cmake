file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_harmonic.dir/test_numerics_harmonic.cpp.o"
  "CMakeFiles/test_numerics_harmonic.dir/test_numerics_harmonic.cpp.o.d"
  "test_numerics_harmonic"
  "test_numerics_harmonic.pdb"
  "test_numerics_harmonic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_harmonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
