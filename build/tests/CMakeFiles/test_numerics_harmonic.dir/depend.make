# Empty dependencies file for test_numerics_harmonic.
# This may be replaced when dependencies are built.
