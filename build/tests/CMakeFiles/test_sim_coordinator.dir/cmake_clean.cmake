file(REMOVE_RECURSE
  "CMakeFiles/test_sim_coordinator.dir/test_sim_coordinator.cpp.o"
  "CMakeFiles/test_sim_coordinator.dir/test_sim_coordinator.cpp.o.d"
  "test_sim_coordinator"
  "test_sim_coordinator.pdb"
  "test_sim_coordinator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_coordinator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
