file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_stats.dir/test_numerics_stats.cpp.o"
  "CMakeFiles/test_numerics_stats.dir/test_numerics_stats.cpp.o.d"
  "test_numerics_stats"
  "test_numerics_stats.pdb"
  "test_numerics_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
