# Empty compiler generated dependencies file for test_numerics_stats.
# This may be replaced when dependencies are built.
