# Empty dependencies file for test_common_random.
# This may be replaced when dependencies are built.
