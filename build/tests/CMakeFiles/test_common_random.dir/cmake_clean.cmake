file(REMOVE_RECURSE
  "CMakeFiles/test_common_random.dir/test_common_random.cpp.o"
  "CMakeFiles/test_common_random.dir/test_common_random.cpp.o.d"
  "test_common_random"
  "test_common_random.pdb"
  "test_common_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
