# Empty dependencies file for test_popularity_mandelbrot.
# This may be replaced when dependencies are built.
