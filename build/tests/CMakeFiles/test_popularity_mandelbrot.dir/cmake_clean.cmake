file(REMOVE_RECURSE
  "CMakeFiles/test_popularity_mandelbrot.dir/test_popularity_mandelbrot.cpp.o"
  "CMakeFiles/test_popularity_mandelbrot.dir/test_popularity_mandelbrot.cpp.o.d"
  "test_popularity_mandelbrot"
  "test_popularity_mandelbrot.pdb"
  "test_popularity_mandelbrot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_popularity_mandelbrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
