file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_minimize.dir/test_numerics_minimize.cpp.o"
  "CMakeFiles/test_numerics_minimize.dir/test_numerics_minimize.cpp.o.d"
  "test_numerics_minimize"
  "test_numerics_minimize.pdb"
  "test_numerics_minimize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
