# Empty dependencies file for test_numerics_minimize.
# This may be replaced when dependencies are built.
