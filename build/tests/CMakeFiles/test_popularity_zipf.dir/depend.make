# Empty dependencies file for test_popularity_zipf.
# This may be replaced when dependencies are built.
