file(REMOVE_RECURSE
  "CMakeFiles/test_popularity_zipf.dir/test_popularity_zipf.cpp.o"
  "CMakeFiles/test_popularity_zipf.dir/test_popularity_zipf.cpp.o.d"
  "test_popularity_zipf"
  "test_popularity_zipf.pdb"
  "test_popularity_zipf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_popularity_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
