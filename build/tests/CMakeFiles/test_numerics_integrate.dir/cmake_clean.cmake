file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_integrate.dir/test_numerics_integrate.cpp.o"
  "CMakeFiles/test_numerics_integrate.dir/test_numerics_integrate.cpp.o.d"
  "test_numerics_integrate"
  "test_numerics_integrate.pdb"
  "test_numerics_integrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_integrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
