# Empty compiler generated dependencies file for test_numerics_integrate.
# This may be replaced when dependencies are built.
