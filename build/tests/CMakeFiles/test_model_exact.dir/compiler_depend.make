# Empty compiler generated dependencies file for test_model_exact.
# This may be replaced when dependencies are built.
