file(REMOVE_RECURSE
  "CMakeFiles/test_model_exact.dir/test_model_exact.cpp.o"
  "CMakeFiles/test_model_exact.dir/test_model_exact.cpp.o.d"
  "test_model_exact"
  "test_model_exact.pdb"
  "test_model_exact[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_exact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
