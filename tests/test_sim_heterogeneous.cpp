// Heterogeneous provisioning in the simulator: weighted coordinator
// assignment, provision_heterogeneous store layout, and agreement with the
// heterogeneous analytical model.
#include <gtest/gtest.h>

#include <numeric>

#include "ccnopt/model/heterogeneous.hpp"
#include "ccnopt/sim/network.hpp"
#include "ccnopt/sim/workload.hpp"
#include "ccnopt/topology/generators.hpp"

namespace ccnopt::sim {
namespace {

TEST(CoordinatorWeighted, ExactQuotas) {
  const Coordinator coordinator({10, 20, 30});
  const auto assignment = coordinator.assign_weighted(100, {1, 3, 2});
  EXPECT_EQ(assignment.per_router[0].size(), 1u);
  EXPECT_EQ(assignment.per_router[1].size(), 3u);
  EXPECT_EQ(assignment.per_router[2].size(), 2u);
  EXPECT_EQ(assignment.owner.size(), 6u);
  EXPECT_EQ(assignment.messages, 6u);
  // Contiguous range 100..105, each rank owned exactly once.
  for (cache::ContentId rank = 100; rank <= 105; ++rank) {
    EXPECT_EQ(assignment.owner.count(rank), 1u);
  }
}

TEST(CoordinatorWeighted, RoundRobinSpreadsPopularRanks) {
  const Coordinator coordinator({0, 1});
  const auto assignment = coordinator.assign_weighted(1, {2, 2});
  // Dealt alternately: router 0 gets ranks {1, 3}, router 1 gets {2, 4}.
  EXPECT_EQ(assignment.per_router[0],
            (std::vector<cache::ContentId>{1, 3}));
  EXPECT_EQ(assignment.per_router[1],
            (std::vector<cache::ContentId>{2, 4}));
}

TEST(CoordinatorWeighted, ZeroQuotaRouterSkipped) {
  const Coordinator coordinator({5, 6, 7});
  const auto assignment = coordinator.assign_weighted(10, {0, 3, 0});
  EXPECT_TRUE(assignment.per_router[0].empty());
  EXPECT_EQ(assignment.per_router[1].size(), 3u);
  EXPECT_TRUE(assignment.per_router[2].empty());
}

TEST(CoordinatorWeighted, MatchesUniformAssignWhenEqual) {
  const Coordinator coordinator({1, 2, 3});
  const auto uniform = coordinator.assign(7, 4);
  const auto weighted = coordinator.assign_weighted(7, {4, 4, 4});
  EXPECT_EQ(uniform.per_router, weighted.per_router);
  EXPECT_EQ(uniform.messages, weighted.messages);
}

NetworkConfig hetero_config() {
  NetworkConfig config;
  config.catalog_size = 5000;
  config.capacity_c = 0;  // overridden per router
  config.capacity_overrides = {50, 150, 50, 150};
  config.local_mode = LocalStoreMode::kStaticTop;
  config.origin_extra_ms = 40.0;
  return config;
}

TEST(ProvisionHeterogeneous, StoreLayout) {
  CcnNetwork network(topology::make_ring(4, 2.0), hetero_config());
  // Equal coverage m = 30: x = {20, 120, 20, 120}, pool ranks 31..310.
  const std::uint64_t messages =
      network.provision_heterogeneous({20, 120, 20, 120});
  EXPECT_EQ(messages, 280u);
  for (topology::NodeId id = 0; id < 4; ++id) {
    EXPECT_TRUE(network.store(id).contains(30));   // local coverage
    EXPECT_FALSE(network.store(id).local().contains(31));
  }
  // Every pool rank owned exactly once.
  for (cache::ContentId rank = 31; rank <= 310; ++rank) {
    int holders = 0;
    for (topology::NodeId id = 0; id < 4; ++id) {
      if (network.store(id).coordinated_contains(rank)) ++holders;
    }
    EXPECT_EQ(holders, 1) << "rank=" << rank;
  }
  // Quotas respected.
  EXPECT_EQ(network.store(0).coordinated_contents().size(), 20u);
  EXPECT_EQ(network.store(1).coordinated_contents().size(), 120u);
}

TEST(ProvisionHeterogeneous, UnequalCoverageCreatesDeadZone) {
  CcnNetwork network(topology::make_ring(4, 2.0), hetero_config());
  // Uniform fraction 0.4: x = {20, 60, 20, 60} -> m = {30, 90, 30, 90};
  // L = 90, pool starts at rank 91. Ranks 31..90 at small routers are a
  // dead zone: not local, not in the pool -> origin.
  network.provision_heterogeneous({20, 60, 20, 60});
  const ServeResult dead = network.serve(0, 50);
  EXPECT_EQ(dead.tier, ServeTier::kOrigin);
  // The same rank at a big router is a local hit.
  EXPECT_EQ(network.serve(1, 50).tier, ServeTier::kLocal);
}

TEST(ProvisionHeterogeneous, AgreesWithHeterogeneousModel) {
  // Tier fractions measured from the simulator track the analytic
  // heterogeneous model on the same provisioning.
  const std::vector<std::size_t> x_sim = {20, 120, 20, 120};
  CcnNetwork network(topology::make_ring(4, 2.0), hetero_config());
  network.provision_heterogeneous(x_sim);

  model::HeterogeneousParams hp;
  hp.alpha = 1.0;
  hp.s = 0.8;
  hp.catalog_n = 5000.0;
  hp.capacities = {50.0, 150.0, 50.0, 150.0};
  hp.latency = model::LatencyProfile{1.0, 2.0, 3.0};  // tiers unused here
  const model::HeterogeneousModel analytic(hp);
  const std::vector<double> x_model = {20.0, 120.0, 20.0, 120.0};

  ZipfWorkload workload(4, 5000, 0.8, 77);
  std::array<std::uint64_t, 4> local{}, origin{};
  std::array<std::uint64_t, 4> requests{};
  for (std::uint64_t r = 0; r < 160000; ++r) {
    const auto router = static_cast<topology::NodeId>(r % 4);
    const ServeResult served = network.serve(router, workload.next(router));
    ++requests[router];
    if (served.tier == ServeTier::kLocal && !served.own_coordinated_hit) {
      ++local[router];
    }
    if (served.tier == ServeTier::kOrigin) ++origin[router];
  }
  // Tolerance covers sampling noise plus Eq. 6's continuous-F error at the
  // small local coverage (m = 30 of a 5000 catalog).
  for (std::size_t i = 0; i < 4; ++i) {
    const auto split = analytic.tier_split(i, x_model);
    EXPECT_NEAR(static_cast<double>(local[i]) / static_cast<double>(requests[i]),
                split.local, 0.035)
        << "router " << i;
    EXPECT_NEAR(static_cast<double>(origin[i]) / static_cast<double>(requests[i]),
                split.origin, 0.035)
        << "router " << i;
  }
}

TEST(ProvisionHeterogeneousDeath, QuotaExceedsCapacity) {
  CcnNetwork network(topology::make_ring(4, 2.0), hetero_config());
  EXPECT_DEATH((void)network.provision_heterogeneous({60, 0, 0, 0}),
               "precondition");
}

TEST(ProvisionHeterogeneousDeath, WrongVectorLength) {
  CcnNetwork network(topology::make_ring(4, 2.0), hetero_config());
  EXPECT_DEATH((void)network.provision_heterogeneous({10, 10}),
               "precondition");
}

}  // namespace
}  // namespace ccnopt::sim
