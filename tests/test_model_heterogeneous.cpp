#include "ccnopt/model/heterogeneous.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ccnopt/model/optimizer.hpp"
#include "ccnopt/model/performance.hpp"

namespace ccnopt::model {
namespace {

SystemParams homogeneous_base() {
  return with_alpha(SystemParams::paper_defaults(), 1.0);
}

HeterogeneousParams skewed_params() {
  HeterogeneousParams hp =
      HeterogeneousParams::from_homogeneous(homogeneous_base());
  for (std::size_t i = 0; i < hp.capacities.size(); ++i) {
    hp.capacities[i] = (i % 2 == 0) ? 500.0 : 1500.0;  // same total as 1000
  }
  return hp;
}

TEST(HeterogeneousParams, FromHomogeneousReplicates) {
  const HeterogeneousParams hp =
      HeterogeneousParams::from_homogeneous(homogeneous_base());
  EXPECT_EQ(hp.capacities.size(), 20u);
  for (const double c : hp.capacities) EXPECT_DOUBLE_EQ(c, 1000.0);
  EXPECT_TRUE(hp.validate().is_ok());
}

TEST(HeterogeneousParams, ValidationRules) {
  HeterogeneousParams hp = skewed_params();
  EXPECT_TRUE(hp.validate().is_ok());

  HeterogeneousParams one_router = hp;
  one_router.capacities = {100.0};
  EXPECT_FALSE(one_router.validate().is_ok());

  HeterogeneousParams zero_capacity = hp;
  zero_capacity.capacities[3] = 0.0;
  EXPECT_FALSE(zero_capacity.validate().is_ok());

  HeterogeneousParams tiny_catalog = hp;
  tiny_catalog.catalog_n = 100.0;
  EXPECT_FALSE(tiny_catalog.validate().is_ok());

  HeterogeneousParams bad_share = hp;
  bad_share.request_share.assign(hp.capacities.size(), 0.01);  // sums to 0.2
  EXPECT_FALSE(bad_share.validate().is_ok());

  HeterogeneousParams good_share = hp;
  good_share.request_share.assign(hp.capacities.size(),
                                  1.0 / static_cast<double>(hp.capacities.size()));
  EXPECT_TRUE(good_share.validate().is_ok());
}

TEST(HeterogeneousModel, ReducesToHomogeneousEquationTwo) {
  // Equal capacities and equal x: T must equal the homogeneous Eq. 2.
  const SystemParams homo = homogeneous_base();
  const HeterogeneousModel hetero(
      HeterogeneousParams::from_homogeneous(homo));
  const PerformanceModel reference(homo);
  for (double x : {0.0, 250.0, 600.0, 1000.0}) {
    const std::vector<double> xs(20, x);
    EXPECT_NEAR(hetero.routing_performance(xs),
                reference.routing_performance(x), 1e-12)
        << "x=" << x;
    EXPECT_NEAR(hetero.coordination_cost(xs), reference.coordination_cost(x),
                1e-12);
  }
  EXPECT_NEAR(hetero.baseline_performance(),
              reference.baseline_performance(), 1e-12);
}

TEST(HeterogeneousModel, TierSplitSumsToOne) {
  const HeterogeneousModel model(skewed_params());
  std::vector<double> x(20);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.3 * model.params().capacities[i];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto split = model.tier_split(i, x);
    EXPECT_NEAR(split.local + split.network + split.origin, 1.0, 1e-12);
    EXPECT_GE(split.dead_zone, -1e-12);
    EXPECT_LE(split.dead_zone, split.origin + 1e-12);
  }
}

TEST(HeterogeneousModel, DeadZoneAppearsWithUnequalCoverage) {
  const HeterogeneousModel model(skewed_params());
  // Uniform level 0.5: small routers keep 250 local, big keep 750 ->
  // small routers have a (250, 750] dead zone; big routers none.
  std::vector<double> x(20);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 0.5 * model.params().capacities[i];
  }
  EXPECT_GT(model.tier_split(0, x).dead_zone, 0.0);   // capacity 500
  EXPECT_NEAR(model.tier_split(1, x).dead_zone, 0.0, 1e-12);  // capacity 1500
}

TEST(HeterogeneousModel, EqualCoverageEliminatesDeadZones) {
  const HeterogeneousModel model(skewed_params());
  const auto strategy = model.optimize_equal_coverage();
  ASSERT_TRUE(strategy.has_value());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(model.tier_split(i, strategy->x).dead_zone, 0.0, 1e-9);
  }
}

TEST(HeterogeneousModel, StrategyFamilyOrdering) {
  // Coordinate descent refines the 1-D families, never loses to them.
  const HeterogeneousModel model(skewed_params());
  const auto uniform = model.optimize_uniform_level();
  const auto equal = model.optimize_equal_coverage();
  const auto descent = model.optimize_coordinate_descent();
  ASSERT_TRUE(uniform.has_value());
  ASSERT_TRUE(equal.has_value());
  ASSERT_TRUE(descent.has_value());
  EXPECT_LE(descent->objective, uniform->objective + 1e-9);
  EXPECT_LE(descent->objective, equal->objective + 1e-9);
  // With skewed capacities, exploiting the dead-zone structure wins.
  EXPECT_LT(equal->objective, uniform->objective);
}

TEST(HeterogeneousModel, DescentFindsEqualCoverageStructure) {
  // The optimal x equalizes local coverage: m_i = c_i - x_i equal across
  // routers (the insight the dead-zone term forces).
  const HeterogeneousModel model(skewed_params());
  const auto descent = model.optimize_coordinate_descent();
  ASSERT_TRUE(descent.has_value());
  const double m0 = model.params().capacities[0] - descent->x[0];
  for (std::size_t i = 1; i < descent->x.size(); ++i) {
    const double mi = model.params().capacities[i] - descent->x[i];
    EXPECT_NEAR(mi, m0, 2.0) << "router " << i;  // within a couple contents
  }
}

TEST(HeterogeneousModel, MatchesHomogeneousOptimizerOnEqualCapacities) {
  const SystemParams homo = with_alpha(SystemParams::paper_defaults(), 0.7);
  const HeterogeneousModel hetero(
      HeterogeneousParams::from_homogeneous(homo));
  const auto homo_result = optimize(homo);
  const auto hetero_result = hetero.optimize_coordinate_descent();
  ASSERT_TRUE(homo_result.has_value());
  ASSERT_TRUE(hetero_result.has_value());
  EXPECT_NEAR(hetero_result->objective, homo_result->objective,
              1e-4 * homo_result->objective);
  EXPECT_NEAR(hetero_result->coordination_level(hetero.params()),
              homo_result->ell_star, 0.01);
}

TEST(HeterogeneousModel, RequestShareWeighting) {
  // Pushing all traffic onto one router makes only its tier split matter.
  HeterogeneousParams hp = skewed_params();
  hp.request_share.assign(hp.capacities.size(), 0.0);
  hp.request_share[1] = 1.0;  // the 1500-capacity router
  const HeterogeneousModel model(hp);
  std::vector<double> x(20, 0.0);
  const auto split = model.tier_split(1, x);
  const double expected = split.local * hp.latency.d0 +
                          split.network * hp.latency.d1 +
                          split.origin * hp.latency.d2;
  EXPECT_NEAR(model.routing_performance(x), expected, 1e-12);
}

TEST(HeterogeneousModel, CoordinationBeatsBaselineAtAlphaOne) {
  const HeterogeneousModel model(skewed_params());
  const auto descent = model.optimize_coordinate_descent();
  ASSERT_TRUE(descent.has_value());
  EXPECT_LT(descent->routing, model.baseline_performance());
  EXPECT_GT(descent->total_coordinated(), 0.0);
  EXPECT_GT(descent->coordination_level(model.params()), 0.0);
  EXPECT_LE(descent->coordination_level(model.params()), 1.0);
}

TEST(ParseCapacitySpec, GroupsAndSingles) {
  const auto spec = parse_capacity_spec("500x3,1500x2,42");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(*spec, (std::vector<double>{500, 500, 500, 1500, 1500, 42}));
}

TEST(ParseCapacitySpec, WhitespaceTolerated) {
  const auto spec = parse_capacity_spec(" 100 , 200x2 ");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->size(), 3u);
}

TEST(ParseCapacitySpec, Rejections) {
  EXPECT_FALSE(parse_capacity_spec("").has_value());
  EXPECT_FALSE(parse_capacity_spec("100,,200").has_value());
  EXPECT_FALSE(parse_capacity_spec("abc").has_value());
  EXPECT_FALSE(parse_capacity_spec("100x0").has_value());
  EXPECT_FALSE(parse_capacity_spec("100xtwo").has_value());
  EXPECT_FALSE(parse_capacity_spec("-5").has_value());
  EXPECT_FALSE(parse_capacity_spec("0x3").has_value());
  for (const char* bad : {"", "100,,200", "abc", "100x0", "-5"}) {
    EXPECT_EQ(parse_capacity_spec(bad).status().code(),
              ErrorCode::kParseError)
        << bad;
  }
}

TEST(HeterogeneousModelDeath, InvalidParamsRejected) {
  HeterogeneousParams hp = skewed_params();
  hp.s = 1.0;
  EXPECT_DEATH(HeterogeneousModel{hp}, "precondition");
}

}  // namespace
}  // namespace ccnopt::model
