#include "ccnopt/cache/che.hpp"

#include <gtest/gtest.h>

#include "ccnopt/cache/lru.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/popularity/sampler.hpp"

namespace ccnopt::cache {
namespace {

TEST(Che, CharacteristicTimeSatisfiesOccupancyConstraint) {
  const popularity::ZipfDistribution zipf(1000, 0.8);
  const auto che = CheApproximation::create(zipf, 100);
  ASSERT_TRUE(che.has_value());
  // sum_i h_i == capacity at T_C by construction.
  double occupancy = 0.0;
  for (std::uint64_t rank = 1; rank <= 1000; ++rank) {
    occupancy += che->hit_ratio(rank);
  }
  EXPECT_NEAR(occupancy, 100.0, 1e-5);
  EXPECT_GT(che->characteristic_time(), 0.0);
}

TEST(Che, HitRatioMonotoneInPopularity) {
  const popularity::ZipfDistribution zipf(500, 1.0);
  const auto che = CheApproximation::create(zipf, 50);
  ASSERT_TRUE(che.has_value());
  for (std::uint64_t rank = 1; rank < 500; ++rank) {
    EXPECT_GE(che->hit_ratio(rank), che->hit_ratio(rank + 1));
  }
  EXPECT_GT(che->hit_ratio(1), 0.99);  // the top content is near-pinned
}

TEST(Che, AggregateBelowFrequencyIdeal) {
  // LRU cannot beat the static top-C store under IRM.
  for (double s : {0.6, 0.9, 1.3}) {
    const popularity::ZipfDistribution zipf(800, s);
    const auto che = CheApproximation::create(zipf, 80);
    ASSERT_TRUE(che.has_value());
    EXPECT_LT(che->aggregate_hit_ratio(), che->ideal_hit_ratio()) << s;
    EXPECT_GT(che->aggregate_hit_ratio(), 0.0);
  }
}

TEST(Che, LargerCacheHigherHitRatioAndTime) {
  const popularity::ZipfDistribution zipf(1000, 0.8);
  const auto small = CheApproximation::create(zipf, 50);
  const auto large = CheApproximation::create(zipf, 200);
  ASSERT_TRUE(small.has_value());
  ASSERT_TRUE(large.has_value());
  EXPECT_GT(large->aggregate_hit_ratio(), small->aggregate_hit_ratio());
  EXPECT_GT(large->characteristic_time(), small->characteristic_time());
}

TEST(Che, PredictsSimulatedLruHitRatio) {
  // The headline validation: Che vs a long LRU simulation, within a point.
  const std::uint64_t catalog = 2000;
  const std::size_t capacity = 150;
  for (double s : {0.7, 1.1}) {
    const popularity::ZipfDistribution zipf(catalog, s);
    const auto che = CheApproximation::create(zipf, capacity);
    ASSERT_TRUE(che.has_value());

    LruCache lru(capacity);
    popularity::AliasSampler sampler(zipf);
    Rng rng(2024);
    for (int i = 0; i < 150000; ++i) lru.admit(sampler.sample(rng));
    lru.reset_stats();
    for (int i = 0; i < 300000; ++i) lru.admit(sampler.sample(rng));
    EXPECT_NEAR(lru.stats().hit_ratio(), che->aggregate_hit_ratio(), 0.012)
        << "s=" << s;
  }
}

TEST(Che, UniformPopularityGivesUniformHitRatio) {
  // Degenerate check via a nearly-flat Zipf: all h_i approach C/N.
  const popularity::ZipfDistribution zipf(200, 0.01);
  const auto che = CheApproximation::create(zipf, 20);
  ASSERT_TRUE(che.has_value());
  EXPECT_NEAR(che->hit_ratio(1), che->hit_ratio(200), 0.02);
  EXPECT_NEAR(che->aggregate_hit_ratio(), 0.1, 0.02);
}

TEST(Che, RejectsDegenerateCapacities) {
  const popularity::ZipfDistribution zipf(100, 0.8);
  EXPECT_FALSE(CheApproximation::create(zipf, 0).has_value());
  EXPECT_FALSE(CheApproximation::create(zipf, 100).has_value());
  EXPECT_TRUE(CheApproximation::create(zipf, 99).has_value());
}

TEST(CheDeath, HitRatioRankBounds) {
  const popularity::ZipfDistribution zipf(100, 0.8);
  const auto che = CheApproximation::create(zipf, 10);
  ASSERT_TRUE(che.has_value());
  EXPECT_DEATH((void)che->hit_ratio(0), "precondition");
  EXPECT_DEATH((void)che->hit_ratio(101), "precondition");
}

}  // namespace
}  // namespace ccnopt::cache
