#include "ccnopt/runtime/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace ccnopt::runtime {
namespace {

TEST(StaticChunks, PartitionCoversRangeContiguously) {
  const auto chunks = static_chunks(10, 3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks.front().begin, 0u);
  EXPECT_EQ(chunks.back().end, 10u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].begin, chunks[i - 1].end);
  }
  // Near-equal sizes: 4 + 3 + 3.
  EXPECT_EQ(chunks[0].end - chunks[0].begin, 4u);
  EXPECT_EQ(chunks[1].end - chunks[1].begin, 3u);
  EXPECT_EQ(chunks[2].end - chunks[2].begin, 3u);
}

TEST(StaticChunks, MoreChunksThanItemsClampsToItems) {
  const auto chunks = static_chunks(2, 8);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].end - chunks[0].begin, 1u);
  EXPECT_EQ(chunks[1].end - chunks[1].begin, 1u);
}

TEST(ParallelFor, VisitsEachIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(257);
  parallel_for(pool, visits.size(),
               [&visits](std::size_t i) { ++visits[i]; });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for(pool, 0, [&calls](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(4);
  const auto run = [&pool] {
    parallel_for(pool, 100, [](std::size_t i) {
      if (i == 37) throw std::runtime_error("index 37 failed");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
}

TEST(ParallelFor, OtherChunksCompleteDespiteException) {
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  try {
    parallel_for(pool, 64, [&visited](std::size_t i) {
      if (i == 0) throw std::runtime_error("first chunk dies immediately");
      ++visited;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  // The throwing chunk skipped its remaining items, but every other
  // chunk ran to completion before parallel_for returned.
  const auto chunks = static_chunks(64, 4);
  const int first_chunk_size =
      static_cast<int>(chunks[0].end - chunks[0].begin);
  EXPECT_EQ(visited.load(), 64 - first_chunk_size);
}

TEST(FixedBlocks, BlocksAreThreadCountInvariantBySize) {
  // Unlike static_chunks (which divides by worker count), fixed_blocks cuts
  // by a constant block size — the partition a sweep runner uses so results
  // group identically no matter how many threads execute them.
  const auto blocks = fixed_blocks(20, 8);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0].begin, 0u);
  EXPECT_EQ(blocks[0].end, 8u);
  EXPECT_EQ(blocks[1].begin, 8u);
  EXPECT_EQ(blocks[1].end, 16u);
  EXPECT_EQ(blocks[2].begin, 16u);
  EXPECT_EQ(blocks[2].end, 20u);  // short tail
}

TEST(FixedBlocks, EdgeCases) {
  EXPECT_TRUE(fixed_blocks(0, 8).empty());
  const auto one = fixed_blocks(5, 100);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0u);
  EXPECT_EQ(one[0].end, 5u);
  const auto singles = fixed_blocks(3, 1);
  ASSERT_EQ(singles.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(singles[i].begin, i);
    EXPECT_EQ(singles[i].end, i + 1);
  }
}

TEST(ParallelForBlocked, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(101);
  parallel_for_blocked(pool, visits.size(), 7, [&visits](ChunkRange block) {
    for (std::size_t i = block.begin; i < block.end; ++i) ++visits[i];
  });
  for (const auto& count : visits) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForBlocked, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallel_for_blocked(pool, 0, 8,
                       [&calls](ChunkRange) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForBlocked, PropagatesBodyException) {
  ThreadPool pool(4);
  const auto run = [&pool] {
    parallel_for_blocked(pool, 100, 10, [](ChunkRange block) {
      if (block.begin == 30) throw std::runtime_error("block at 30 failed");
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
}

TEST(ParallelMap, PreservesItemOrder) {
  ThreadPool pool(4);
  std::vector<int> items(100);
  std::iota(items.begin(), items.end(), 0);
  const std::vector<std::string> mapped = parallel_map(
      pool, items, [](const int& x) { return std::to_string(x * x); });
  ASSERT_EQ(mapped.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(mapped[i], std::to_string(static_cast<int>(i * i)));
  }
}

TEST(ParallelMap, FineChunkingMatchesDefault) {
  ThreadPool pool(3);
  const std::vector<int> items{5, 4, 3, 2, 1};
  const auto coarse =
      parallel_map(pool, items, [](const int& x) { return x * 10; });
  const auto fine = parallel_map(
      pool, items, [](const int& x) { return x * 10; }, 16);
  EXPECT_EQ(coarse, fine);
}

}  // namespace
}  // namespace ccnopt::runtime
