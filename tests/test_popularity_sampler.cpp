#include "ccnopt/popularity/sampler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ccnopt/numerics/stats.hpp"

namespace ccnopt::popularity {
namespace {

// Both samplers must realize the same distribution; run the same
// frequency-vs-pmf check against each.
enum class Kind { kAlias, kInverse };

std::unique_ptr<RankSampler> make(Kind kind, std::uint64_t n, double s) {
  const ZipfDistribution zipf(n, s);
  if (kind == Kind::kAlias) return std::make_unique<AliasSampler>(zipf);
  return std::make_unique<InverseCdfSampler>(zipf);
}

class Samplers : public ::testing::TestWithParam<Kind> {};

TEST_P(Samplers, RanksInCatalog) {
  auto sampler = make(GetParam(), 50, 0.8);
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t rank = sampler->sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 50u);
  }
}

TEST_P(Samplers, FrequenciesMatchPmf) {
  const std::uint64_t n = 100;
  const double s = 0.8;
  const ZipfDistribution zipf(n, s);
  auto sampler = make(GetParam(), n, s);
  Rng rng(7);
  const std::uint64_t draws = 200000;
  std::vector<std::uint64_t> counts(n, 0);
  for (std::uint64_t i = 0; i < draws; ++i) ++counts[sampler->sample(rng) - 1];

  // Chi-square against the exact pmf; 99 dof -> 99.9th percentile ~ 149.
  std::vector<double> expected(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    expected[i] = zipf.pmf(i + 1) * static_cast<double>(draws);
  }
  const double stat = numerics::chi_square_statistic(counts, expected);
  EXPECT_LT(stat, 160.0);
}

TEST_P(Samplers, TopRankMostFrequent) {
  auto sampler = make(GetParam(), 20, 1.2);
  Rng rng(3);
  std::vector<int> counts(21, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler->sample(rng)];
  for (int rank = 2; rank <= 20; ++rank) {
    EXPECT_GT(counts[1], counts[rank]) << "rank=" << rank;
  }
}

TEST_P(Samplers, Deterministic) {
  auto a = make(GetParam(), 64, 0.9);
  auto b = make(GetParam(), 64, 0.9);
  Rng rng_a(99), rng_b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a->sample(rng_a), b->sample(rng_b));
  }
}

std::string sampler_name(const ::testing::TestParamInfo<Kind>& param_info) {
  return param_info.param == Kind::kAlias ? "alias" : "inverse_cdf";
}

INSTANTIATE_TEST_SUITE_P(BothSamplers, Samplers,
                         ::testing::Values(Kind::kAlias, Kind::kInverse),
                         sampler_name);

TEST(AliasSampler, ExplicitWeights) {
  // 3 categories with weights 1:2:1 -> rank 2 about half the draws.
  AliasSampler sampler(std::vector<double>{1.0, 2.0, 1.0});
  Rng rng(5);
  std::vector<int> counts(4, 0);
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.25, 0.02);
}

TEST(AliasSampler, ZeroWeightCategoryNeverDrawn) {
  AliasSampler sampler(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_NE(sampler.sample(rng), 2u);
  }
}

TEST(AliasSampler, SingleCategory) {
  AliasSampler sampler(std::vector<double>{3.0});
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(AliasSamplerDeath, RejectsInvalidWeights) {
  EXPECT_DEATH(AliasSampler(std::vector<double>{}), "precondition");
  EXPECT_DEATH(AliasSampler(std::vector<double>{0.0, 0.0}), "precondition");
  EXPECT_DEATH(AliasSampler(std::vector<double>{1.0, -1.0}), "precondition");
}

}  // namespace
}  // namespace ccnopt::popularity
