#include "ccnopt/popularity/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "ccnopt/numerics/stats.hpp"

namespace ccnopt::popularity {
namespace {

// All samplers must realize the same distribution; run the same
// frequency-vs-pmf check against each.
enum class Kind { kAlias, kInverse, kRejection };

std::unique_ptr<RankSampler> make(Kind kind, std::uint64_t n, double s) {
  if (kind == Kind::kRejection) {
    return std::make_unique<ZipfRejectionSampler>(n, s);
  }
  const ZipfDistribution zipf(n, s);
  if (kind == Kind::kAlias) return std::make_unique<AliasSampler>(zipf);
  return std::make_unique<InverseCdfSampler>(zipf);
}

class Samplers : public ::testing::TestWithParam<Kind> {};

TEST_P(Samplers, RanksInCatalog) {
  auto sampler = make(GetParam(), 50, 0.8);
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t rank = sampler->sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 50u);
  }
}

TEST_P(Samplers, FrequenciesMatchPmf) {
  const std::uint64_t n = 100;
  const double s = 0.8;
  const ZipfDistribution zipf(n, s);
  auto sampler = make(GetParam(), n, s);
  Rng rng(7);
  const std::uint64_t draws = 200000;
  std::vector<std::uint64_t> counts(n, 0);
  for (std::uint64_t i = 0; i < draws; ++i) ++counts[sampler->sample(rng) - 1];

  // Chi-square against the exact pmf; 99 dof -> 99.9th percentile ~ 149.
  std::vector<double> expected(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    expected[i] = zipf.pmf(i + 1) * static_cast<double>(draws);
  }
  const double stat = numerics::chi_square_statistic(counts, expected);
  EXPECT_LT(stat, 160.0);
}

TEST_P(Samplers, TopRankMostFrequent) {
  auto sampler = make(GetParam(), 20, 1.2);
  Rng rng(3);
  std::vector<int> counts(21, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler->sample(rng)];
  for (int rank = 2; rank <= 20; ++rank) {
    EXPECT_GT(counts[1], counts[rank]) << "rank=" << rank;
  }
}

TEST_P(Samplers, Deterministic) {
  auto a = make(GetParam(), 64, 0.9);
  auto b = make(GetParam(), 64, 0.9);
  Rng rng_a(99), rng_b(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a->sample(rng_a), b->sample(rng_b));
  }
}

std::string sampler_name(const ::testing::TestParamInfo<Kind>& param_info) {
  switch (param_info.param) {
    case Kind::kAlias:
      return "alias";
    case Kind::kInverse:
      return "inverse_cdf";
    case Kind::kRejection:
      return "rejection";
  }
  return "unknown";
}

INSTANTIATE_TEST_SUITE_P(AllSamplers, Samplers,
                         ::testing::Values(Kind::kAlias, Kind::kInverse,
                                           Kind::kRejection),
                         sampler_name);

// Distribution equivalence across the exponent grid the paper sweeps: both
// O(1) production samplers (alias and rejection-inversion) against the
// exact pmf, by chi-square and by total-variation distance.
class SamplerEquivalence
    : public ::testing::TestWithParam<std::tuple<Kind, double>> {};

TEST_P(SamplerEquivalence, MatchesExactPmf) {
  const auto [kind, s] = GetParam();
  const std::uint64_t n = 100;
  const ZipfDistribution zipf(n, s);
  auto sampler = make(kind, n, s);
  Rng rng(20240806);
  const std::uint64_t draws = 200000;
  std::vector<std::uint64_t> counts(n, 0);
  for (std::uint64_t i = 0; i < draws; ++i) ++counts[sampler->sample(rng) - 1];

  std::vector<double> expected(n);
  double tv = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    expected[i] = zipf.pmf(i + 1) * static_cast<double>(draws);
    tv += std::abs(static_cast<double>(counts[i]) /
                       static_cast<double>(draws) -
                   zipf.pmf(i + 1));
  }
  tv *= 0.5;
  // 99 dof -> 99.9th percentile ~ 149; TV of a faithful sampler at these
  // draw counts concentrates well below 0.01.
  const double stat = numerics::chi_square_statistic(counts, expected);
  EXPECT_LT(stat, 160.0) << "s=" << s;
  EXPECT_LT(tv, 0.01) << "s=" << s;
}

std::string equivalence_name(
    const ::testing::TestParamInfo<std::tuple<Kind, double>>& param_info) {
  const auto [kind, s] = param_info.param;
  std::string name = kind == Kind::kAlias ? "alias" : "rejection";
  name += "_s";
  name += std::to_string(static_cast<int>(s * 10.0 + 0.5));
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    ExponentGrid, SamplerEquivalence,
    ::testing::Combine(::testing::Values(Kind::kAlias, Kind::kRejection),
                       ::testing::Values(0.6, 0.8, 1.0, 1.2)),
    equivalence_name);

TEST(ZipfRejectionSampler, ConstantMemoryAtHugeCatalog) {
  // 10^12 contents: any tabulated sampler would need terabytes; the
  // rejection sampler is three doubles. Draws must stay in range and the
  // head of the distribution must dominate.
  const std::uint64_t n = 1000000000000ull;
  ZipfRejectionSampler sampler(n, 0.8);
  Rng rng(11);
  std::uint64_t head = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t rank = sampler.sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, n);
    if (rank <= n / 1000) ++head;
  }
  // F(N/1000) ~= (10^1.8 - 1)/(10^2.4 - 1) ~= 0.248, so ~4960 of 20000
  // draws in expectation (sd ~61); require a clearly super-uniform head
  // mass (uniform would give ~20 of 20000).
  EXPECT_GT(head, 4600u);
}

TEST(ZipfRejectionSampler, SingleContentCatalog) {
  ZipfRejectionSampler sampler(1, 0.8);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(MakeZipfSampler, AutoSelectsByCatalogSize) {
  // Below the threshold kAuto keeps the alias sampler (bit-compatible
  // streams with every historical run); at/above it, rejection-inversion.
  const auto small = make_zipf_sampler(1000, 0.8);
  EXPECT_NE(dynamic_cast<AliasSampler*>(small.get()), nullptr);
  const auto large = make_zipf_sampler(kRejectionAutoThreshold, 0.8);
  EXPECT_NE(dynamic_cast<ZipfRejectionSampler*>(large.get()), nullptr);
  const auto forced =
      make_zipf_sampler(1000, 0.8, SamplerKind::kRejectionInversion);
  EXPECT_NE(dynamic_cast<ZipfRejectionSampler*>(forced.get()), nullptr);
  const auto forced_alias =
      make_zipf_sampler(kRejectionAutoThreshold, 0.8, SamplerKind::kAlias);
  EXPECT_NE(dynamic_cast<AliasSampler*>(forced_alias.get()), nullptr);
}

TEST(AliasSampler, ExplicitWeights) {
  // 3 categories with weights 1:2:1 -> rank 2 about half the draws.
  AliasSampler sampler(std::vector<double>{1.0, 2.0, 1.0});
  Rng rng(5);
  std::vector<int> counts(4, 0);
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[2] / static_cast<double>(draws), 0.5, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.25, 0.02);
}

TEST(AliasSampler, ZeroWeightCategoryNeverDrawn) {
  AliasSampler sampler(std::vector<double>{1.0, 0.0, 1.0});
  Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_NE(sampler.sample(rng), 2u);
  }
}

TEST(AliasSampler, SingleCategory) {
  AliasSampler sampler(std::vector<double>{3.0});
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.sample(rng), 1u);
}

TEST(AliasSamplerDeath, RejectsInvalidWeights) {
  EXPECT_DEATH(AliasSampler(std::vector<double>{}), "precondition");
  EXPECT_DEATH(AliasSampler(std::vector<double>{0.0, 0.0}), "precondition");
  EXPECT_DEATH(AliasSampler(std::vector<double>{1.0, -1.0}), "precondition");
}

}  // namespace
}  // namespace ccnopt::popularity
