#include "ccnopt/popularity/mandelbrot.hpp"

#include <gtest/gtest.h>

#include "ccnopt/common/random.hpp"
#include "ccnopt/popularity/sampler.hpp"

namespace ccnopt::popularity {
namespace {

TEST(ZipfMandelbrot, PmfSumsToOne) {
  const ZipfMandelbrot zm(300, 0.8, 25.0);
  double total = 0.0;
  for (std::uint64_t i = 1; i <= 300; ++i) total += zm.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfMandelbrot, ZeroPlateauEqualsPureZipf) {
  const ZipfMandelbrot zm(200, 0.9, 0.0);
  const ZipfDistribution zipf(200, 0.9);
  for (std::uint64_t rank : {1ULL, 10ULL, 100ULL, 200ULL}) {
    EXPECT_NEAR(zm.pmf(rank), zipf.pmf(rank), 1e-12);
    EXPECT_NEAR(zm.cdf(rank), zipf.cdf(rank), 1e-12);
  }
}

TEST(ZipfMandelbrot, PlateauFlattensTheHead) {
  const ZipfMandelbrot sharp(500, 1.0, 0.0);
  const ZipfMandelbrot flat(500, 1.0, 100.0);
  // Ratio between ranks 1 and 10 shrinks as q grows.
  EXPECT_GT(sharp.pmf(1) / sharp.pmf(10), flat.pmf(1) / flat.pmf(10));
  // Head mass shrinks, tail mass grows.
  EXPECT_GT(sharp.cdf(10), flat.cdf(10));
}

TEST(ZipfMandelbrot, CdfMonotoneAndClamped) {
  const ZipfMandelbrot zm(100, 0.7, 5.0);
  EXPECT_DOUBLE_EQ(zm.cdf(0), 0.0);
  double prev = 0.0;
  for (std::uint64_t k = 1; k <= 100; ++k) {
    EXPECT_GT(zm.cdf(k), prev);
    prev = zm.cdf(k);
  }
  EXPECT_NEAR(zm.cdf(100), 1.0, 1e-12);
  EXPECT_NEAR(zm.cdf(500), 1.0, 1e-12);
}

TEST(ZipfMandelbrot, WeightsDriveAliasSampler) {
  const ZipfMandelbrot zm(50, 1.2, 10.0);
  AliasSampler sampler(zm.weights());
  Rng rng(55);
  std::vector<int> counts(51, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / draws, zm.pmf(1), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[25]) / draws, zm.pmf(25), 0.01);
}

TEST(ContinuousZipfMandelbrot, MatchesDiscreteAtScale) {
  const std::uint64_t n = 50000;
  const ZipfMandelbrot exact(n, 0.8, 50.0);
  const ContinuousZipfMandelbrot approx(static_cast<double>(n), 0.8, 50.0);
  for (std::uint64_t rank : {100ULL, 1000ULL, 10000ULL}) {
    EXPECT_NEAR(approx.cdf(static_cast<double>(rank)), exact.cdf(rank), 0.02)
        << rank;
  }
}

TEST(ContinuousZipfMandelbrot, ZeroPlateauMatchesEquationSix) {
  const ContinuousZipfMandelbrot zm(1e6, 0.8, 0.0);
  const ContinuousZipf zipf(1e6, 0.8);
  for (double x : {10.0, 1e3, 1e5}) {
    EXPECT_NEAR(zm.cdf(x), zipf.cdf(x), 1e-12);
  }
}

TEST(ContinuousZipfMandelbrot, InverseRoundTrips) {
  const ContinuousZipfMandelbrot zm(1e5, 1.3, 20.0);
  for (double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(zm.cdf(zm.inverse_cdf(p)), p, 1e-10);
  }
}

TEST(ContinuousZipfMandelbrot, EndpointsClamped) {
  const ContinuousZipfMandelbrot zm(1e4, 0.8, 30.0);
  EXPECT_DOUBLE_EQ(zm.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(zm.cdf(1e4), 1.0);
  EXPECT_DOUBLE_EQ(zm.cdf(1e6), 1.0);
}

TEST(ZipfMandelbrotDeath, Preconditions) {
  EXPECT_DEATH(ZipfMandelbrot(0, 0.8, 1.0), "precondition");
  EXPECT_DEATH(ZipfMandelbrot(10, 0.0, 1.0), "precondition");
  EXPECT_DEATH(ZipfMandelbrot(10, 0.8, -1.0), "precondition");
  EXPECT_DEATH(ContinuousZipfMandelbrot(1e4, 1.0, 1.0), "precondition");
}

}  // namespace
}  // namespace ccnopt::popularity
