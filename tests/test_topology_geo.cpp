#include "ccnopt/topology/geo.hpp"

#include <gtest/gtest.h>

namespace ccnopt::topology {
namespace {

constexpr GeoPoint kNewYork{40.71, -74.01};
constexpr GeoPoint kLondon{51.51, -0.13};
constexpr GeoPoint kSeattle{47.61, -122.33};

TEST(Haversine, ZeroForIdenticalPoints) {
  EXPECT_DOUBLE_EQ(haversine_km(kNewYork, kNewYork), 0.0);
}

TEST(Haversine, Symmetric) {
  EXPECT_DOUBLE_EQ(haversine_km(kNewYork, kLondon),
                   haversine_km(kLondon, kNewYork));
}

TEST(Haversine, KnownDistances) {
  // NY <-> London ~ 5570 km; Seattle <-> NY ~ 3870 km.
  EXPECT_NEAR(haversine_km(kNewYork, kLondon), 5570.0, 60.0);
  EXPECT_NEAR(haversine_km(kSeattle, kNewYork), 3870.0, 60.0);
}

TEST(Haversine, OneDegreeOfLatitude) {
  const GeoPoint a{10.0, 20.0};
  const GeoPoint b{11.0, 20.0};
  EXPECT_NEAR(haversine_km(a, b), 111.2, 0.5);
}

TEST(Haversine, AntipodalIsHalfCircumference) {
  const GeoPoint a{0.0, 0.0};
  const GeoPoint b{0.0, 180.0};
  EXPECT_NEAR(haversine_km(a, b), 20015.0, 10.0);
}

TEST(LatencyModel, ProportionalToDistancePlusOverhead) {
  const LatencyModel model{200.0, 1.0, 0.1};
  const double km = haversine_km(kSeattle, kNewYork);
  EXPECT_NEAR(model.link_latency_ms(kSeattle, kNewYork), km / 200.0 + 0.1,
              1e-9);
}

TEST(LatencyModel, RouteFactorScalesDistanceOnly) {
  const LatencyModel straight{200.0, 1.0, 0.0};
  const LatencyModel detour{200.0, 1.3, 0.0};
  EXPECT_NEAR(detour.link_latency_ms(kSeattle, kNewYork),
              1.3 * straight.link_latency_ms(kSeattle, kNewYork), 1e-9);
}

TEST(AddGeoEdge, ComputesLatencyFromCoordinates) {
  Graph g("geo");
  g.add_node({"ny", kNewYork});
  g.add_node({"sea", kSeattle});
  add_geo_edge(g, "ny", "sea");
  ASSERT_EQ(g.undirected_edge_count(), 1u);
  const LatencyModel model{};
  EXPECT_NEAR(*g.edge_latency(0, 1),
              model.link_latency_ms(kNewYork, kSeattle), 1e-9);
}

TEST(AddGeoEdgeDeath, UnknownNameAborts) {
  Graph g("geo");
  g.add_node({"ny", kNewYork});
  EXPECT_DEATH(add_geo_edge(g, "ny", "nowhere"), "invariant");
}

}  // namespace
}  // namespace ccnopt::topology
