#include "ccnopt/numerics/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ccnopt::numerics {
namespace {

// The three solvers share a contract; exercise each against the same
// catalogue of functions via a parameterized suite.
struct SolverCase {
  const char* name;
  Fn f;
  Fn df;
  double lo;
  double hi;
  double root;
};

std::vector<SolverCase> cases() {
  return {
      {"linear", [](double x) { return 2.0 * x - 3.0; },
       [](double) { return 2.0; }, 0.0, 5.0, 1.5},
      {"quadratic", [](double x) { return x * x - 2.0; },
       [](double x) { return 2.0 * x; }, 0.0, 2.0, std::sqrt(2.0)},
      {"cubic", [](double x) { return x * x * x - x - 2.0; },
       [](double x) { return 3.0 * x * x - 1.0; }, 1.0, 2.0,
       1.5213797068045676},
      {"transcendental", [](double x) { return std::cos(x) - x; },
       [](double x) { return -std::sin(x) - 1.0; }, 0.0, 1.0,
       0.7390851332151607},
      {"steep", [](double x) { return std::pow(x, -0.8) - 10.0; },
       [](double x) { return -0.8 * std::pow(x, -1.8); }, 1e-6, 1.0,
       std::pow(10.0, -1.25)},
  };
}

class RootSolvers : public ::testing::TestWithParam<int> {};

Expected<RootResult> solve(int solver, const SolverCase& c) {
  switch (solver) {
    case 0:
      return bisect(c.f, c.lo, c.hi);
    case 1:
      return brent(c.f, c.lo, c.hi);
    default:
      return newton_safeguarded(c.f, c.df, c.lo, c.hi);
  }
}

TEST_P(RootSolvers, FindsKnownRoots) {
  for (const SolverCase& c : cases()) {
    const auto result = solve(GetParam(), c);
    ASSERT_TRUE(result.has_value()) << c.name;
    EXPECT_NEAR(result->root, c.root, 1e-8) << c.name;
  }
}

TEST_P(RootSolvers, RejectsNonBracketingInterval) {
  const auto result = solve(GetParam(), {"nobracket",
                                         [](double x) { return x * x + 1.0; },
                                         [](double x) { return 2.0 * x; },
                                         -1.0,
                                         1.0,
                                         0.0});
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST_P(RootSolvers, RejectsInvertedInterval) {
  const auto result = solve(GetParam(), {"inverted",
                                         [](double x) { return x; },
                                         [](double) { return 1.0; },
                                         1.0,
                                         -1.0,
                                         0.0});
  EXPECT_FALSE(result.has_value());
}

TEST_P(RootSolvers, RootAtEndpointReturnsImmediately) {
  const SolverCase c{"endpoint", [](double x) { return x - 1.0; },
                     [](double) { return 1.0; }, 1.0, 2.0, 1.0};
  const auto result = solve(GetParam(), c);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->root, 1.0);
  EXPECT_EQ(result->iterations, 0);
}

std::string solver_name(const ::testing::TestParamInfo<int>& param_info) {
  static const char* const kNames[] = {"bisect", "brent", "newton"};
  return kNames[param_info.param];
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, RootSolvers, ::testing::Values(0, 1, 2),
                         solver_name);

TEST(Brent, ConvergesFasterThanBisection) {
  const Fn f = [](double x) { return std::cos(x) - x; };
  const auto via_brent = brent(f, 0.0, 1.0);
  const auto via_bisect = bisect(f, 0.0, 1.0);
  ASSERT_TRUE(via_brent.has_value());
  ASSERT_TRUE(via_bisect.has_value());
  EXPECT_LT(via_brent->iterations, via_bisect->iterations);
}

TEST(Newton, FlatDerivativeFallsBackToBisection) {
  // df = 0 at the midpoint start: the safeguard must not divide by zero.
  const Fn f = [](double x) { return x * x * x - 0.001; };
  const Fn df = [](double x) { return 3.0 * x * x; };
  const auto result = newton_safeguarded(f, df, -1.0, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->root, 0.1, 1e-6);
}

TEST(ExpandBracket, GrowsUntilSignChange) {
  const Fn f = [](double x) { return x - 10.0; };
  const auto bracket = expand_bracket(f, 0.0, 1.0, -100.0, 100.0);
  ASSERT_TRUE(bracket.has_value());
  EXPECT_LE(bracket->first, 10.0);
  EXPECT_GE(bracket->second, 10.0);
}

TEST(ExpandBracket, FailsWhenNoRootInLimits) {
  const Fn f = [](double x) { return x * x + 1.0; };
  const auto bracket = expand_bracket(f, -1.0, 1.0, -10.0, 10.0);
  EXPECT_FALSE(bracket.has_value());
  EXPECT_EQ(bracket.status().code(), ErrorCode::kNumericalFailure);
}

TEST(RootOptions, FToleranceStopsEarly) {
  const Fn f = [](double x) { return x; };
  RootOptions options;
  options.f_tolerance = 0.25;
  const auto result = bisect(f, -1.0, 3.0, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(std::abs(result->f_at_root), 0.25);
}

}  // namespace
}  // namespace ccnopt::numerics
