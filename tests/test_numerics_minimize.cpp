#include "ccnopt/numerics/minimize.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ccnopt::numerics {
namespace {

struct MinCase {
  const char* name;
  Objective f;
  double lo;
  double hi;
  double x_min;
  // Attainable x accuracy: limited by how flat f is at the minimum (the
  // quartic's floating-point plateau is ~(eps*f)^(1/4) wide).
  double x_tol;
};

std::vector<MinCase> cases() {
  return {
      {"parabola", [](double x) { return (x - 2.0) * (x - 2.0); }, 0.0, 5.0,
       2.0, 1e-5},
      {"quartic", [](double x) { return std::pow(x - 1.0, 4.0) + 3.0; }, -2.0,
       4.0, 1.0, 5e-3},
      {"cosh", [](double x) { return std::cosh(x - 0.5); }, -3.0, 3.0, 0.5,
       1e-5},
      {"abs", [](double x) { return std::abs(x + 1.0); }, -4.0, 2.0, -1.0,
       1e-5},
      {"left_boundary", [](double x) { return x; }, 1.0, 3.0, 1.0, 1e-9},
      {"right_boundary", [](double x) { return -x; }, 1.0, 3.0, 3.0, 1e-9},
  };
}

class Minimizers : public ::testing::TestWithParam<int> {};

Expected<MinimizeResult> minimize(int which, const MinCase& c) {
  switch (which) {
    case 0:
      return golden_section(c.f, c.lo, c.hi);
    case 1:
      return brent_minimize(c.f, c.lo, c.hi);
    default:
      return grid_refine(c.f, c.lo, c.hi);
  }
}

TEST_P(Minimizers, FindsKnownMinima) {
  for (const MinCase& c : cases()) {
    const auto result = minimize(GetParam(), c);
    ASSERT_TRUE(result.has_value()) << c.name;
    EXPECT_NEAR(result->x_min, c.x_min, c.x_tol) << c.name;
    EXPECT_NEAR(result->f_min, c.f(c.x_min), 1e-9) << c.name;
  }
}

TEST_P(Minimizers, RejectsInvertedInterval) {
  const auto result = minimize(
      GetParam(), {"bad", [](double x) { return x * x; }, 2.0, 1.0, 0.0, 0.0});
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

std::string minimizer_name(const ::testing::TestParamInfo<int>& param_info) {
  static const char* const kNames[] = {"golden", "brent", "grid"};
  return kNames[param_info.param];
}

INSTANTIATE_TEST_SUITE_P(AllMinimizers, Minimizers, ::testing::Values(0, 1, 2),
                         minimizer_name);

TEST(GoldenSection, FlatFunctionReturnsSomePoint) {
  const auto result = golden_section([](double) { return 7.0; }, 0.0, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->f_min, 7.0);
  EXPECT_GE(result->x_min, 0.0);
  EXPECT_LE(result->x_min, 1.0);
}

TEST(GridRefine, SurvivesMildNonUnimodality) {
  // Two local minima; the global one (at x = 3, value -2) must win even
  // though golden-section alone could settle into the x = 0 basin.
  const Objective f = [](double x) {
    return std::min((x - 0.0) * (x - 0.0) - 1.0,
                    (x - 3.0) * (x - 3.0) - 2.0);
  };
  const auto result = grid_refine(f, -1.0, 4.0, 256);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->x_min, 3.0, 1e-3);
}

TEST(GridRefine, RejectsTooFewPoints) {
  const auto result = grid_refine([](double x) { return x; }, 0.0, 1.0, 2);
  EXPECT_FALSE(result.has_value());
}

TEST(BrentMinimize, TighterToleranceImprovesAccuracy) {
  const Objective f = [](double x) { return std::pow(x - 1.23456789, 2.0); };
  MinimizeOptions loose;
  loose.x_tolerance = 1e-3;
  MinimizeOptions tight;
  tight.x_tolerance = 1e-12;
  const auto coarse = brent_minimize(f, 0.0, 3.0, loose);
  const auto fine = brent_minimize(f, 0.0, 3.0, tight);
  ASSERT_TRUE(coarse.has_value());
  ASSERT_TRUE(fine.has_value());
  EXPECT_LE(std::abs(fine->x_min - 1.23456789),
            std::abs(coarse->x_min - 1.23456789) + 1e-12);
}

}  // namespace
}  // namespace ccnopt::numerics
