// Simulator-wide property suite: invariants that must hold for every
// combination of topology family, local store mode, and coordination
// level (TEST_P sweep).
#include <gtest/gtest.h>

#include "ccnopt/sim/simulation.hpp"
#include "ccnopt/topology/datasets.hpp"
#include "ccnopt/topology/generators.hpp"

namespace ccnopt::sim {
namespace {

struct SimCase {
  const char* topology;  // "ring", "grid", "abilene", "geant"
  LocalStoreMode mode;
  std::size_t coordinated_x;  // out of capacity 40
};

topology::Graph build_topology(const std::string& name) {
  if (name == "ring") return topology::make_ring(6, 2.0);
  if (name == "grid") return topology::make_grid(3, 3, 1.5);
  const auto graph = topology::dataset_by_name(name);
  CCNOPT_ASSERT(graph.has_value());
  return *graph;
}

class SimInvariants : public ::testing::TestWithParam<SimCase> {
 protected:
  SimReport run(std::uint64_t seed = 5) const {
    SimConfig config;
    config.network.catalog_size = 4000;
    config.network.capacity_c = 40;
    config.network.local_mode = GetParam().mode;
    config.network.origin_extra_ms = 40.0;
    config.coordinated_x = GetParam().coordinated_x;
    config.zipf_s = 0.8;
    config.warmup_requests = 5000;
    config.measured_requests = 15000;
    config.seed = seed;
    Simulation simulation(build_topology(GetParam().topology), config);
    return simulation.run();
  }
};

TEST_P(SimInvariants, TierFractionsFormADistribution) {
  const SimReport report = run();
  EXPECT_NEAR(report.local_fraction + report.network_fraction +
                  report.origin_load,
              1.0, 1e-12);
  EXPECT_GE(report.local_fraction, 0.0);
  EXPECT_GE(report.network_fraction, 0.0);
  EXPECT_GE(report.origin_load, 0.0);
}

TEST_P(SimInvariants, LatencyBoundedByTierStructure) {
  const SimReport report = run();
  // Every request costs at least the access latency; nothing exceeds the
  // worst origin path by construction.
  EXPECT_GE(report.mean_latency_ms, 1.0);
  EXPECT_LT(report.mean_latency_ms, 200.0);
  if (report.network_fraction > 0.0 && report.local_fraction > 0.0) {
    EXPECT_GT(report.mean_network_latency_ms, report.mean_local_latency_ms);
  }
  if (report.origin_load > 0.0 && report.network_fraction > 0.0) {
    EXPECT_GT(report.mean_origin_latency_ms, report.mean_network_latency_ms);
  }
}

TEST_P(SimInvariants, CoordinationMessagesMatchEquationThree) {
  const SimReport report = run();
  const std::size_t n = build_topology(GetParam().topology).node_count();
  EXPECT_EQ(report.coordination_messages,
            static_cast<std::uint64_t>(n) * GetParam().coordinated_x);
}

TEST_P(SimInvariants, DeterministicReplay) {
  const SimReport a = run(7);
  const SimReport b = run(7);
  EXPECT_DOUBLE_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_DOUBLE_EQ(a.origin_load, b.origin_load);
  EXPECT_EQ(a.total_requests, b.total_requests);
}

TEST_P(SimInvariants, CoordinationNeverRaisesOriginLoad) {
  if (GetParam().coordinated_x == 0) GTEST_SKIP();
  SimConfig config;
  config.network.catalog_size = 4000;
  config.network.capacity_c = 40;
  config.network.local_mode = GetParam().mode;
  config.network.origin_extra_ms = 40.0;
  config.zipf_s = 0.8;
  config.warmup_requests = 5000;
  config.measured_requests = 15000;
  config.seed = 5;
  Simulation plain(build_topology(GetParam().topology), config);
  config.coordinated_x = GetParam().coordinated_x;
  Simulation coordinated(build_topology(GetParam().topology), config);
  // Same streams: coordination can only widen the set of contents served
  // inside the network.
  EXPECT_LE(coordinated.run().origin_load, plain.run().origin_load + 0.01);
}

std::string sim_case_name(const ::testing::TestParamInfo<SimCase>& info) {
  return std::string(info.param.topology) + "_" +
         to_string(info.param.mode) + "_x" +
         std::to_string(info.param.coordinated_x);
}

INSTANTIATE_TEST_SUITE_P(
    AcrossConfigurations, SimInvariants,
    ::testing::Values(
        SimCase{"ring", LocalStoreMode::kStaticTop, 0},
        SimCase{"ring", LocalStoreMode::kStaticTop, 20},
        SimCase{"ring", LocalStoreMode::kLru, 20},
        SimCase{"ring", LocalStoreMode::kLfu, 40},
        SimCase{"grid", LocalStoreMode::kStaticTop, 20},
        SimCase{"grid", LocalStoreMode::kFifo, 10},
        SimCase{"grid", LocalStoreMode::kRandom, 30},
        SimCase{"abilene", LocalStoreMode::kStaticTop, 0},
        SimCase{"abilene", LocalStoreMode::kStaticTop, 40},
        SimCase{"abilene", LocalStoreMode::kLfu, 20},
        SimCase{"geant", LocalStoreMode::kStaticTop, 20},
        SimCase{"geant", LocalStoreMode::kLru, 40}),
    sim_case_name);

}  // namespace
}  // namespace ccnopt::sim
