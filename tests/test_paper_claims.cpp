// Every qualitative claim of the paper's Section V, asserted against the
// regenerated figure sweeps. Where the paper's text contradicts itself or
// its own formulas, EXPERIMENTS.md records the discrepancy and the test
// asserts the behavior that follows from the model (the erratum notes).
#include <gtest/gtest.h>

#include <algorithm>

#include "ccnopt/experiments/figures.hpp"
#include "ccnopt/model/sensitivity.hpp"

namespace ccnopt::experiments {
namespace {

model::SystemParams base() { return model::SystemParams::paper_defaults(); }

const FigureData& alpha_sweep() {
  static const FigureData data = sweep_vs_alpha(base());
  return data;
}

const FigureData& zipf_sweep() {
  static const FigureData data = sweep_vs_zipf(base());
  return data;
}

const FigureData& router_sweep() {
  static const FigureData data = sweep_vs_routers(base());
  return data;
}

const FigureData& cost_sweep() {
  static const FigureData data = sweep_vs_unit_cost(base());
  return data;
}

double peak_parameter(const Series& series, Metric metric) {
  const auto it = std::max_element(
      series.points.begin(), series.points.end(),
      [metric](const model::SweepPoint& a, const model::SweepPoint& b) {
        return metric_value(a, metric) < metric_value(b, metric);
      });
  return it->parameter;
}

// --- Figure 4 -------------------------------------------------------------

TEST(Figure4, EllStarMonotoneInAlphaFromZeroToOne) {
  for (const Series& series : alpha_sweep().series) {
    for (std::size_t i = 1; i < series.points.size(); ++i) {
      EXPECT_GE(series.points[i].ell_star,
                series.points[i - 1].ell_star - 1e-9)
          << series.label;
    }
    EXPECT_LT(series.points.front().ell_star, 0.05) << series.label;
    EXPECT_GT(series.points.back().ell_star, 0.8) << series.label;
  }
}

TEST(Figure4, HigherGammaHigherCoordination) {
  // "for the same alpha, a higher gamma leads to a higher level of
  // coordination"
  const auto& series = alpha_sweep().series;
  for (std::size_t s = 1; s < series.size(); ++s) {
    for (std::size_t i = 0; i < series[s].points.size(); ++i) {
      EXPECT_GE(series[s].points[i].ell_star,
                series[s - 1].points[i].ell_star - 1e-9)
          << series[s].label << " at alpha="
          << series[s].points[i].parameter;
    }
  }
}

TEST(Figure4, SlowThenRapidGrowth) {
  // "when alpha is relatively small, l* increases slowly ... when alpha is
  // sufficiently large, l* grows rapidly"
  // gamma = 2 tops out around l* ~ 0.82 at alpha = 1; probe the
  // 0.1 -> 0.7 swing it does traverse.
  const Series& gamma2 = alpha_sweep().series.front();
  const auto range = model::sensitive_range(gamma2.points, 0.1, 0.7);
  ASSERT_TRUE(range.has_value());
  EXPECT_GT(range->low, 0.2);  // flat early phase exists
  EXPECT_LT(range->width(), 0.6);  // the swing is concentrated
}

TEST(Figure4, SensitiveRangeShiftsWithGamma) {
  // The paper's example quotes [0.2,0.4] for gamma=2 and [0.6,0.8] for
  // gamma=10, which contradicts its own series ordering (higher gamma sits
  // above, so it must cross earlier); the model gives the consistent
  // direction: higher gamma -> earlier sensitive range.
  const auto range_g2 =
      model::sensitive_range(alpha_sweep().series[0].points, 0.1, 0.7);
  const auto range_g10 =
      model::sensitive_range(alpha_sweep().series[4].points, 0.1, 0.7);
  ASSERT_TRUE(range_g2.has_value());
  ASSERT_TRUE(range_g10.has_value());
  EXPECT_LT(range_g10->low, range_g2->low);
  EXPECT_LT(range_g10->high, range_g2->high);
}

// --- Figure 5 -------------------------------------------------------------

TEST(Figure5, AlphaOneDecreasesAcrossS) {
  // "for alpha = 1 ... l* decreases from 1 to ~0.35 as s goes 0 -> 2"
  const Series& alpha1 = zipf_sweep().series.back();
  ASSERT_EQ(alpha1.label, "alpha=1.0");
  EXPECT_GT(alpha1.points.front().ell_star, 0.95);
  EXPECT_NEAR(alpha1.points.back().ell_star, 0.35, 0.05);
  for (std::size_t i = 1; i < alpha1.points.size(); ++i) {
    EXPECT_LE(alpha1.points[i].ell_star,
              alpha1.points[i - 1].ell_star + 1e-9);
  }
}

TEST(Figure5, PartialAlphaVanishesAtSmallS) {
  // "when alpha < 1, l* converges to 0 when s approaches 0". The
  // convergence point depends on how heavily the cost term weighs: under
  // our explicit amortization it has reached ~0 by s = 0.1 for
  // alpha <= 0.6, while alpha = 0.8 is still descending (EXPERIMENTS.md).
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_LT(zipf_sweep().series[s].points.front().ell_star, 0.02)
        << zipf_sweep().series[s].label;
  }
  // For every alpha < 1, s -> 0 pulls l* strictly below its peak.
  for (std::size_t s = 0; s + 1 < zipf_sweep().series.size(); ++s) {
    const Series& series = zipf_sweep().series[s];
    const auto max_it = std::max_element(
        series.points.begin(), series.points.end(),
        [](const auto& a, const auto& b) { return a.ell_star < b.ell_star; });
    EXPECT_LT(series.points.front().ell_star, max_it->ell_star)
        << series.label;
  }
}

TEST(Figure5, PartialAlphaHasInteriorMaximum) {
  // "for 0 <= alpha < 1, there exists a maximum l* around [s ~] 0.5-0.9"
  // (alpha <= 0.6 under our normalization; alpha = 0.8's cost share is too
  // small to pull the peak off the small-s plateau).
  for (std::size_t s = 0; s < 3; ++s) {
    const Series& series = zipf_sweep().series[s];
    const double peak = peak_parameter(series, Metric::kEllStar);
    EXPECT_GT(peak, 0.4) << series.label;
    EXPECT_LT(peak, 1.3) << series.label;
    // Interior: strictly above both endpoints.
    const double peak_value =
        metric_value(*std::max_element(
                         series.points.begin(), series.points.end(),
                         [](const auto& a, const auto& b) {
                           return a.ell_star < b.ell_star;
                         }),
                     Metric::kEllStar);
    EXPECT_GT(peak_value, series.points.front().ell_star);
    EXPECT_GT(peak_value, series.points.back().ell_star);
  }
}

TEST(Figure5, LowerAlphaLowerCoordination) {
  // "l* decreases when alpha is decreasing"
  const auto& series = zipf_sweep().series;
  for (std::size_t s = 1; s < series.size(); ++s) {
    for (std::size_t i = 0; i < series[s].points.size(); ++i) {
      EXPECT_GE(series[s].points[i].ell_star,
                series[s - 1].points[i].ell_star - 1e-9);
    }
  }
}

// --- Figure 6 -------------------------------------------------------------

TEST(Figure6, EllStarDecreasesWithNetworkSize) {
  // "l* decreases as n increases" (partial alpha; the cost scales with n).
  for (std::size_t s = 0; s + 1 < router_sweep().series.size(); ++s) {
    const Series& series = router_sweep().series[s];
    EXPECT_LT(series.points.back().ell_star,
              series.points.front().ell_star + 1e-9)
        << series.label;
  }
}

TEST(Figure6, HigherAlphaDrasticallyHigherCoordination) {
  const auto& series = router_sweep().series;
  // At every n, alpha = 1.0 coordinates more than alpha = 0.2.
  for (std::size_t i = 0; i < series[0].points.size(); ++i) {
    EXPECT_GT(series.back().points[i].ell_star,
              series.front().points[i].ell_star);
  }
}

// --- Figure 7 -------------------------------------------------------------

TEST(Figure7, AlphaOneConstantNearOne) {
  // "when alpha = 1, l* is a constant close to 1"
  const Series& alpha1 = cost_sweep().series.back();
  for (const auto& point : alpha1.points) {
    EXPECT_NEAR(point.ell_star, alpha1.points.front().ell_star, 1e-9);
    EXPECT_GT(point.ell_star, 0.9);
  }
}

TEST(Figure7, SmallAlphaDropsWithUnitCost) {
  // "for small alpha, l* decreases drastically as w increases"
  const Series& alpha02 = cost_sweep().series.front();
  EXPECT_LT(alpha02.points.back().ell_star,
            0.25 * alpha02.points.front().ell_star + 1e-9);
}

TEST(Figure7, LargerAlphaLargerEllForSameW) {
  const auto& series = cost_sweep().series;
  for (std::size_t s = 1; s < series.size(); ++s) {
    for (std::size_t i = 0; i < series[s].points.size(); ++i) {
      EXPECT_GE(series[s].points[i].ell_star,
                series[s - 1].points[i].ell_star - 1e-9);
    }
  }
}

// --- Figure 8 -------------------------------------------------------------

TEST(Figure8, OriginGainGrowsWithAlphaAndGamma) {
  for (const Series& series : alpha_sweep().series) {
    for (std::size_t i = 1; i < series.points.size(); ++i) {
      EXPECT_GE(series.points[i].origin_load_reduction,
                series.points[i - 1].origin_load_reduction - 1e-9)
          << series.label;
    }
  }
  // "a higher gamma leads to a higher overall origin load reduction"
  const auto& series = alpha_sweep().series;
  const std::size_t mid = series[0].points.size() / 2;
  for (std::size_t s = 1; s < series.size(); ++s) {
    EXPECT_GE(series[s].points[mid].origin_load_reduction,
              series[s - 1].points[mid].origin_load_reduction - 1e-9);
  }
}

// --- Figure 9 -------------------------------------------------------------

TEST(Figure9, OriginGainPeaksNearS13ForPartialAlpha) {
  // "the overall origin load reduction ... reaches the maximum at around
  // s = 1.3" (partial alpha; at alpha = 1 G_O keeps growing with s).
  for (const char* label : {"alpha=0.4", "alpha=0.6", "alpha=0.8"}) {
    const auto it = std::find_if(
        zipf_sweep().series.begin(), zipf_sweep().series.end(),
        [label](const Series& s) { return s.label == label; });
    ASSERT_NE(it, zipf_sweep().series.end());
    const double peak = peak_parameter(*it, Metric::kOriginGain);
    EXPECT_GT(peak, 1.0) << label;
    EXPECT_LT(peak, 1.55) << label;
  }
}

// --- Figure 10 ------------------------------------------------------------

TEST(Figure10, SmallAlphaOriginGainFlatInN) {
  // "when alpha is relatively small, the origin load reduction stays
  // roughly constant over n"
  const Series& alpha02 = router_sweep().series.front();
  double lo = 1.0, hi = 0.0;
  for (std::size_t i = 1; i < alpha02.points.size(); ++i) {  // skip n=10 edge
    lo = std::min(lo, alpha02.points[i].origin_load_reduction);
    hi = std::max(hi, alpha02.points[i].origin_load_reduction);
  }
  EXPECT_LT(hi - lo, 0.05);
}

TEST(Figure10, AlphaOneOriginGainGrowsWithN) {
  // "when alpha is approaching 1 ... the origin load reduction increases
  // with an increasing n"
  const Series& alpha1 = router_sweep().series.back();
  EXPECT_GT(alpha1.points.back().origin_load_reduction,
            alpha1.points.front().origin_load_reduction + 0.2);
}

// --- Figure 11 ------------------------------------------------------------

TEST(Figure11, SmallAlphaOriginGainDropsWithW) {
  // "when alpha is small, the origin load reduction decreases rapidly as
  // the unit coordination cost increases"
  const Series& alpha02 = cost_sweep().series.front();
  EXPECT_GT(alpha02.points.front().origin_load_reduction, 0.1);
  EXPECT_LT(alpha02.points.back().origin_load_reduction, 0.02);
}

TEST(Figure11, LargeAlphaOriginGainInvariantToW) {
  const Series& alpha1 = cost_sweep().series.back();
  EXPECT_NEAR(alpha1.points.front().origin_load_reduction,
              alpha1.points.back().origin_load_reduction, 1e-9);
}

// --- Figure 12 ------------------------------------------------------------

TEST(Figure12, RoutingGainGrowsWithAlphaAndGamma) {
  for (const Series& series : alpha_sweep().series) {
    for (std::size_t i = 1; i < series.points.size(); ++i) {
      EXPECT_GE(series.points[i].routing_improvement,
                series.points[i - 1].routing_improvement - 1e-9)
          << series.label;
    }
  }
  const auto& series = alpha_sweep().series;
  for (std::size_t s = 1; s < series.size(); ++s) {
    EXPECT_GT(series[s].points.back().routing_improvement,
              series[s - 1].points.back().routing_improvement);
  }
}

// --- Figure 13 ------------------------------------------------------------

TEST(Figure13, RoutingGainPeaksNearSEqualOne) {
  // "for s close to 1 ... the routing performance improvement is large
  // (reaching the maximum at around s = 1)"
  for (const Series& series : zipf_sweep().series) {
    const double peak = peak_parameter(series, Metric::kRoutingGain);
    EXPECT_GT(peak, 0.8) << series.label;
    EXPECT_LT(peak, 1.3) << series.label;
  }
}

TEST(Figure13, RoutingGainSmallFarFromOne) {
  // "when s is further away from 1 ... the improvement is smaller"
  const Series& alpha1 = zipf_sweep().series.back();
  const double at_peak =
      metric_value(*std::max_element(alpha1.points.begin(),
                                     alpha1.points.end(),
                                     [](const auto& a, const auto& b) {
                                       return a.routing_improvement <
                                              b.routing_improvement;
                                     }),
                   Metric::kRoutingGain);
  EXPECT_LT(alpha1.points.front().routing_improvement, 0.3 * at_peak);
  EXPECT_LT(alpha1.points.back().routing_improvement, 0.3 * at_peak);
}

// --- Theorem 2 headline ---------------------------------------------------

TEST(Theorem2, OppositeStrategiesAcrossTheSingularPoint) {
  // "different ranges of the Zipf exponent can lead to opposite optimal
  // strategies": s in (0,1) -> full coordination as n grows; s in (1,2) ->
  // none.
  const auto below = model::sweep_routers(
      model::with_alpha(model::with_zipf(base(), 0.6), 1.0),
      {20.0, 100.0, 500.0});
  const auto above = model::sweep_routers(
      model::with_alpha(model::with_zipf(base(), 1.5), 1.0),
      {20.0, 100.0, 500.0});
  ASSERT_TRUE(below.has_value());
  ASSERT_TRUE(above.has_value());
  EXPECT_GT((*below).back().ell_star, 0.97);
  EXPECT_LT((*above).back().ell_star, 0.3);
  // And the trends point in opposite directions.
  EXPECT_GT((*below).back().ell_star, (*below).front().ell_star);
  EXPECT_LT((*above).back().ell_star, (*above).front().ell_star);
}

}  // namespace
}  // namespace ccnopt::experiments
