#include "ccnopt/experiments/adaptive_loop.hpp"

#include <gtest/gtest.h>

#include "ccnopt/topology/datasets.hpp"
#include "ccnopt/topology/generators.hpp"

namespace ccnopt::experiments {
namespace {

AdaptiveLoopOptions fast_options() {
  AdaptiveLoopOptions options;
  options.catalog_size = 10000;
  options.capacity_c = 100;
  options.requests_per_epoch = 20000;
  options.s_per_epoch = {0.6, 0.8, 1.2, 1.4, 1.2, 0.8};
  return options;
}

TEST(AdaptiveLoop, OneReportPerEpoch) {
  const auto result = run_adaptive_loop(topology::geant(), fast_options());
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->epochs.size(), 6u);
  for (std::size_t e = 0; e < result->epochs.size(); ++e) {
    EXPECT_EQ(result->epochs[e].epoch, e);
    EXPECT_DOUBLE_EQ(result->epochs[e].true_s,
                     fast_options().s_per_epoch[e]);
  }
}

TEST(AdaptiveLoop, EstimatesTrackTheTrueExponent) {
  const auto result = run_adaptive_loop(topology::geant(), fast_options());
  ASSERT_TRUE(result.has_value());
  for (const AdaptiveEpochReport& report : result->epochs) {
    EXPECT_NEAR(report.estimated_s, report.true_s, 0.08)
        << "epoch " << report.epoch;
  }
}

TEST(AdaptiveLoop, AdaptiveBeatsStaticUnderDrift) {
  const auto result = run_adaptive_loop(topology::geant(), fast_options());
  ASSERT_TRUE(result.has_value());
  EXPECT_LT(result->mean_latency_adaptive_ms,
            result->mean_latency_static_ms);
}

TEST(AdaptiveLoop, OracleIsTheFloor) {
  const auto result = run_adaptive_loop(topology::geant(), fast_options());
  ASSERT_TRUE(result.has_value());
  // The oracle re-provisions with the true exponent: nothing beats it by
  // more than estimation noise.
  EXPECT_LE(result->mean_latency_oracle_ms,
            result->mean_latency_adaptive_ms + 0.05);
  EXPECT_LE(result->mean_latency_oracle_ms,
            result->mean_latency_static_ms + 0.05);
  // And the adaptive controller lands much closer to the oracle than the
  // static baseline does.
  const double adaptive_gap = result->mean_latency_adaptive_ms -
                              result->mean_latency_oracle_ms;
  const double static_gap =
      result->mean_latency_static_ms - result->mean_latency_oracle_ms;
  EXPECT_LT(adaptive_gap, 0.5 * static_gap);
}

TEST(AdaptiveLoop, FirstEpochMatchesStaticByConstruction) {
  // Both start from the same initial provisioning; the first epoch's
  // traffic is identical.
  const auto result = run_adaptive_loop(topology::geant(), fast_options());
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->epochs.front().latency_adaptive_ms,
                   result->epochs.front().latency_static_ms);
}

TEST(AdaptiveLoop, WorksOnSyntheticTopology) {
  AdaptiveLoopOptions options = fast_options();
  options.s_per_epoch = {0.7, 1.3};
  const auto result =
      run_adaptive_loop(topology::make_ring(6, 3.0), options);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->epochs.size(), 2u);
}

TEST(AdaptiveLoop, RejectsBadOptions) {
  AdaptiveLoopOptions one_epoch = fast_options();
  one_epoch.s_per_epoch = {0.8};
  EXPECT_FALSE(run_adaptive_loop(topology::geant(), one_epoch).has_value());

  AdaptiveLoopOptions tiny_catalog = fast_options();
  tiny_catalog.catalog_size = 100;
  EXPECT_FALSE(
      run_adaptive_loop(topology::geant(), tiny_catalog).has_value());
}

}  // namespace
}  // namespace ccnopt::experiments
