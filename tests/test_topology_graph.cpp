#include "ccnopt/topology/graph.hpp"

#include <gtest/gtest.h>

namespace ccnopt::topology {
namespace {

Graph triangle() {
  Graph g("tri");
  const NodeId a = g.add_node({"a", {}});
  const NodeId b = g.add_node({"b", {}});
  const NodeId c = g.add_node({"c", {}});
  EXPECT_TRUE(g.add_edge(a, b, 1.0).is_ok());
  EXPECT_TRUE(g.add_edge(b, c, 2.0).is_ok());
  EXPECT_TRUE(g.add_edge(a, c, 3.0).is_ok());
  return g;
}

TEST(Graph, NodeIdsAreDense) {
  Graph g("g");
  EXPECT_EQ(g.add_node({"n0", {}}), 0u);
  EXPECT_EQ(g.add_node({"n1", {}}), 1u);
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_EQ(g.node(0).name, "n0");
}

TEST(Graph, EdgeCountsBothConventions) {
  const Graph g = triangle();
  EXPECT_EQ(g.undirected_edge_count(), 3u);
  EXPECT_EQ(g.directed_edge_count(), 6u);  // the paper's Table II convention
}

TEST(Graph, EdgesAreBidirectional) {
  const Graph g = triangle();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_DOUBLE_EQ(*g.edge_latency(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(*g.edge_latency(1, 0), 1.0);
}

TEST(Graph, NeighborsSpan) {
  const Graph g = triangle();
  EXPECT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(Graph, RejectsSelfLoop) {
  Graph g("g");
  const NodeId a = g.add_node({"a", {}});
  const Status status = g.add_edge(a, a, 1.0);
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
}

TEST(Graph, RejectsUnknownNodes) {
  Graph g("g");
  g.add_node({"a", {}});
  EXPECT_EQ(g.add_edge(0, 5, 1.0).code(), ErrorCode::kOutOfRange);
}

TEST(Graph, RejectsNonPositiveLatency) {
  Graph g("g");
  const NodeId a = g.add_node({"a", {}});
  const NodeId b = g.add_node({"b", {}});
  EXPECT_EQ(g.add_edge(a, b, 0.0).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(g.add_edge(a, b, -1.0).code(), ErrorCode::kInvalidArgument);
}

TEST(Graph, RejectsDuplicateEdge) {
  Graph g("g");
  const NodeId a = g.add_node({"a", {}});
  const NodeId b = g.add_node({"b", {}});
  EXPECT_TRUE(g.add_edge(a, b, 1.0).is_ok());
  EXPECT_EQ(g.add_edge(b, a, 2.0).code(), ErrorCode::kFailedPrecondition);
  EXPECT_EQ(g.undirected_edge_count(), 1u);
}

TEST(Graph, FindNodeByName) {
  const Graph g = triangle();
  EXPECT_EQ(*g.find_node("b"), 1u);
  EXPECT_EQ(g.find_node("zzz").status().code(), ErrorCode::kNotFound);
}

TEST(Graph, ConnectivityDetection) {
  EXPECT_TRUE(triangle().is_connected());
  Graph g("disc");
  g.add_node({"a", {}});
  g.add_node({"b", {}});
  EXPECT_FALSE(g.is_connected());
  Graph empty("e");
  EXPECT_TRUE(empty.is_connected());
}

TEST(Graph, LinksNormalizedLowIdFirst) {
  Graph g("g");
  const NodeId a = g.add_node({"a", {}});
  const NodeId b = g.add_node({"b", {}});
  EXPECT_TRUE(g.add_edge(b, a, 4.0).is_ok());
  ASSERT_EQ(g.links().size(), 1u);
  EXPECT_EQ(g.links()[0].u, a);
  EXPECT_EQ(g.links()[0].v, b);
  EXPECT_DOUBLE_EQ(g.links()[0].latency_ms, 4.0);
}

TEST(GraphDeath, NodeAccessorBoundsChecked) {
  const Graph g = triangle();
  EXPECT_DEATH((void)g.node(3), "precondition");
  EXPECT_DEATH((void)g.neighbors(3), "precondition");
}

}  // namespace
}  // namespace ccnopt::topology
