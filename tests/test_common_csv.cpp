#include "ccnopt/common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ccnopt {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(CsvWriter, QuotesSeparator) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a,b", "c"});
  EXPECT_EQ(out.str(), "\"a,b\",c\n");
}

TEST(CsvWriter, EscapesQuotes) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"two\nlines", "x"});
  EXPECT_EQ(out.str(), "\"two\nlines\",x\n");
}

TEST(CsvWriter, CustomSeparator) {
  std::ostringstream out;
  CsvWriter csv(out, ';');
  csv.write_row({"a;b", "c,d"});
  // Only the active separator triggers quoting.
  EXPECT_EQ(out.str(), "\"a;b\";c,d\n");
}

TEST(CsvWriter, NumericRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_numeric_row({1.5, 2.25}, 2);
  EXPECT_EQ(out.str(), "1.50,2.25\n");
}

TEST(CsvWriter, MultipleRowsCounted) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_header({"x", "y"});
  csv.write_numeric_row({1.0, 2.0}, 0);
  csv.write_numeric_row({3.0, 4.0}, 0);
  EXPECT_EQ(csv.rows_written(), 3u);
  EXPECT_EQ(out.str(), "x,y\n1,2\n3,4\n");
}

}  // namespace
}  // namespace ccnopt
