#include "ccnopt/model/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ccnopt::model {
namespace {

SystemParams base() { return SystemParams::paper_defaults(); }

TEST(Lemma2Coefficients, MatchTheFormulas) {
  const SystemParams p = with_alpha(base(), 0.5);
  const auto coeff = lemma2_coefficients(p);
  ASSERT_TRUE(coeff.has_value());
  EXPECT_NEAR(coeff->a, p.latency.gamma() * std::pow(p.n, 1.0 - p.s), 1e-12);
  const double expected_b = (1.0 - p.alpha) / p.alpha *
                            (std::pow(p.catalog_n, 1.0 - p.s) - 1.0) /
                            (1.0 - p.s) * (p.n - 1.0) *
                            p.cost.effective_unit_cost() /
                            (p.latency.d1 - p.latency.d0) *
                            std::pow(p.capacity_c, p.s);
  EXPECT_NEAR(coeff->b, expected_b, 1e-9 * expected_b);
}

TEST(Lemma2Coefficients, BVanishesAtAlphaOne) {
  const auto coeff = lemma2_coefficients(with_alpha(base(), 1.0));
  ASSERT_TRUE(coeff.has_value());
  EXPECT_DOUBLE_EQ(coeff->b, 0.0);
}

TEST(Lemma2Coefficients, RequiresPositiveAlpha) {
  const auto coeff = lemma2_coefficients(with_alpha(base(), 0.0));
  EXPECT_FALSE(coeff.has_value());
}

TEST(ClosedFormAlpha1, HandComputedValue) {
  // gamma=5, s=0.8, n=20: l* = 1/(5^{-1.25} * 20^{-0.25} + 1) ~ 0.9405.
  const auto ell = closed_form_alpha1(base());
  ASSERT_TRUE(ell.has_value());
  EXPECT_NEAR(*ell, 0.9405, 5e-4);
}

TEST(ClosedFormAlpha1, PaperFigure5Endpoint) {
  // The paper reports l* ~ 0.35 at s -> 2 (gamma = 5, n = 20); only the
  // corrected gamma^{-1/s} form reproduces it (see the erratum note).
  const auto ell = closed_form_alpha1(with_zipf(base(), 1.95));
  ASSERT_TRUE(ell.has_value());
  EXPECT_NEAR(*ell, 0.35, 0.03);
}

TEST(ClosedFormAlpha1, MatchesLemma2AtAlphaOne) {
  for (double s : {0.5, 0.8, 1.3, 1.7}) {
    for (double gamma : {2.0, 5.0, 10.0}) {
      const SystemParams p = with_gamma(with_zipf(base(), s), gamma);
      const auto closed = closed_form_alpha1(p);
      const auto root = solve_lemma2(with_alpha(p, 1.0));
      ASSERT_TRUE(closed.has_value());
      ASSERT_TRUE(root.has_value());
      EXPECT_NEAR(*closed, root->ell_star, 1e-6)
          << "s=" << s << " gamma=" << gamma;
    }
  }
}

TEST(ClosedFormAlpha1, NearExactSolverAtAlphaOne) {
  // The closed form uses n-1 ~ n and 1+(n-1)l ~ nl; for n = 20 it must sit
  // within a percent of the exact first-order root.
  const auto closed = closed_form_alpha1(base());
  const auto exact = solve_exact_first_order(with_alpha(base(), 1.0));
  ASSERT_TRUE(closed.has_value());
  ASSERT_TRUE(exact.has_value());
  EXPECT_NEAR(*closed, exact->ell_star, 0.01);
}

TEST(ClosedFormAlpha1, LatencyScaleFree) {
  // Theorem 2: l* depends on gamma only, not on absolute latencies.
  SystemParams small = base();
  SystemParams large = base();
  large.latency.d0 *= 37.0;
  large.latency.d1 *= 37.0;
  large.latency.d2 *= 37.0;
  const auto ell_small = closed_form_alpha1(small);
  const auto ell_large = closed_form_alpha1(large);
  ASSERT_TRUE(ell_small.has_value());
  ASSERT_TRUE(ell_large.has_value());
  EXPECT_DOUBLE_EQ(*ell_small, *ell_large);
  // The exact solver shares the property at alpha = 1.
  const auto exact_small = solve_exact_first_order(with_alpha(small, 1.0));
  const auto exact_large = solve_exact_first_order(with_alpha(large, 1.0));
  EXPECT_NEAR(exact_small->ell_star, exact_large->ell_star, 1e-9);
}

TEST(ClosedFormAlpha1, OppositeLimitsAcrossSingularPoint) {
  // Theorem 2's headline: s in (0,1) drives l* -> 1 with n; s in (1,2)
  // drives l* -> 0.
  const auto below_small_n = closed_form_alpha1(with_routers(with_zipf(base(), 0.6), 20.0));
  const auto below_large_n = closed_form_alpha1(with_routers(with_zipf(base(), 0.6), 450.0));
  EXPECT_GT(*below_large_n, *below_small_n);
  EXPECT_GT(*below_large_n, 0.95);

  const auto above_small_n = closed_form_alpha1(with_routers(with_zipf(base(), 1.5), 20.0));
  const auto above_large_n = closed_form_alpha1(with_routers(with_zipf(base(), 1.5), 450.0));
  EXPECT_LT(*above_large_n, *above_small_n);
  EXPECT_LT(*above_large_n, 0.35);
}

// The three general solvers must agree on the optimum across the whole
// Table IV grid.
struct GridPoint {
  double alpha;
  double s;
  double gamma;
};

class SolverAgreement : public ::testing::TestWithParam<GridPoint> {};

TEST_P(SolverAgreement, ExactLemma2AndDirectAgree) {
  const GridPoint gp = GetParam();
  const SystemParams p =
      with_alpha(with_zipf(with_gamma(base(), gp.gamma), gp.s), gp.alpha);
  const auto exact = solve_exact_first_order(p);
  const auto direct = solve_direct(p);
  ASSERT_TRUE(exact.has_value());
  ASSERT_TRUE(direct.has_value());
  // Direct minimization is the oracle: same optimum up to the flatness of
  // the objective around it.
  EXPECT_NEAR(exact->ell_star, direct->ell_star, 1e-3);
  EXPECT_NEAR(exact->objective, direct->objective,
              1e-5 * (std::abs(direct->objective) + 1.0));

  if (gp.alpha > 0.05) {
    const auto lemma = solve_lemma2(p);
    ASSERT_TRUE(lemma.has_value());
    // Lemma 2 carries the paper's n-1 ~ n and 1+(n-1)l ~ nl
    // approximations, worth up to ~0.08 in l at n = 20.
    EXPECT_NEAR(lemma->ell_star, exact->ell_star, 0.1);
  }
}

std::string grid_point_name(
    const ::testing::TestParamInfo<GridPoint>& param_info) {
  const GridPoint& gp = param_info.param;
  return "alpha" + std::to_string(static_cast<int>(gp.alpha * 10)) + "_s" +
         std::to_string(static_cast<int>(gp.s * 10)) + "_gamma" +
         std::to_string(static_cast<int>(gp.gamma));
}

INSTANTIATE_TEST_SUITE_P(
    TableIVGrid, SolverAgreement,
    ::testing::Values(GridPoint{1.0, 0.8, 5.0}, GridPoint{0.5, 0.8, 5.0},
                      GridPoint{0.2, 0.8, 5.0}, GridPoint{0.8, 0.3, 5.0},
                      GridPoint{0.8, 1.5, 5.0}, GridPoint{0.6, 0.8, 2.0},
                      GridPoint{0.6, 0.8, 10.0}, GridPoint{1.0, 1.9, 8.0},
                      GridPoint{0.9, 0.5, 1.0}, GridPoint{0.3, 1.2, 6.0}),
    grid_point_name);

TEST(Optimize, AlphaZeroMeansNoCoordination) {
  const auto result = optimize(with_alpha(base(), 0.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_DOUBLE_EQ(result->ell_star, 0.0);
  EXPECT_DOUBLE_EQ(result->x_star, 0.0);
}

TEST(Optimize, ResultDecompositionConsistent) {
  const SystemParams p = with_alpha(base(), 0.6);
  const auto result = optimize(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->objective,
              p.alpha * result->routing + (1.0 - p.alpha) * result->cost,
              1e-9);
  EXPECT_NEAR(result->ell_star, result->x_star / p.capacity_c, 1e-12);
}

TEST(Optimize, ObjectiveIsActuallyMinimal) {
  const SystemParams p = with_alpha(base(), 0.7);
  const auto result = optimize(p);
  ASSERT_TRUE(result.has_value());
  const PerformanceModel model(p);
  for (double x = 0.0; x <= p.capacity_c; x += p.capacity_c / 64.0) {
    EXPECT_GE(model.objective(x), result->objective - 1e-9);
  }
}

TEST(Optimize, TinyZipfExponentSaturatesAtFullCoordination) {
  // s = 0.1 pushes the interior root within machine epsilon of c; the
  // solver must return the boundary rather than abort (regression test).
  const auto result = optimize(with_alpha(with_zipf(base(), 0.1), 1.0));
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->ell_star, 0.999);
}

TEST(Optimize, RejectsInvalidParams) {
  const auto result = optimize(with_zipf(base(), 1.0));
  EXPECT_FALSE(result.has_value());
}

TEST(SolveMethodNames, Distinct) {
  EXPECT_STRNE(to_string(SolveMethod::kClosedFormAlpha1),
               to_string(SolveMethod::kLemma2Root));
  EXPECT_STRNE(to_string(SolveMethod::kExactFirstOrder),
               to_string(SolveMethod::kDirectMinimization));
}

}  // namespace
}  // namespace ccnopt::model
