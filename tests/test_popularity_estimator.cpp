#include "ccnopt/popularity/estimator.hpp"

#include <gtest/gtest.h>

#include "ccnopt/common/random.hpp"
#include "ccnopt/popularity/sampler.hpp"

namespace ccnopt::popularity {
namespace {

std::vector<std::uint64_t> sample_histogram(std::uint64_t catalog, double s,
                                            std::uint64_t draws,
                                            std::uint64_t seed) {
  AliasSampler sampler(ZipfDistribution(catalog, s));
  Rng rng(seed);
  std::vector<std::uint64_t> histogram(catalog, 0);
  for (std::uint64_t i = 0; i < draws; ++i) {
    ++histogram[sampler.sample(rng) - 1];
  }
  return histogram;
}

TEST(RankHistogram, CountsRanks) {
  const std::vector<std::uint64_t> ranks = {1, 1, 3, 2, 1};
  const auto histogram = rank_histogram(ranks, 4);
  EXPECT_EQ(histogram, (std::vector<std::uint64_t>{3, 1, 1, 0}));
}

TEST(RankHistogramDeath, RejectsOutOfRangeRank) {
  const std::vector<std::uint64_t> ranks = {5};
  EXPECT_DEATH((void)rank_histogram(ranks, 4), "precondition");
}

// Both estimators must recover the exponent; the MLE much more tightly.
class EstimatorRecovery : public ::testing::TestWithParam<double> {};

TEST_P(EstimatorRecovery, MleRecoversExponent) {
  const double s = GetParam();
  const auto histogram = sample_histogram(500, s, 200000, 17);
  const auto fit = fit_zipf_mle(histogram);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->s, s, 0.03) << "s=" << s;
  EXPECT_EQ(fit->samples, 200000u);
}

TEST_P(EstimatorRecovery, LogLogRecoversExponentOnTheHead) {
  const double s = GetParam();
  const auto histogram = sample_histogram(500, s, 200000, 18);
  // Head truncation avoids the noisy singleton tail that biases the slope.
  const auto fit = fit_zipf_loglog(histogram, /*head_ranks=*/50);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->s, s, 0.12) << "s=" << s;
  EXPECT_GT(fit->r_squared, 0.9);
}

std::string exponent_name(const ::testing::TestParamInfo<double>& param_info) {
  std::string name = "s";
  name += std::to_string(static_cast<int>(param_info.param * 100));
  return name;
}

INSTANTIATE_TEST_SUITE_P(AcrossExponents, EstimatorRecovery,
                         ::testing::Values(0.5, 0.8, 1.0, 1.3, 1.6),
                         exponent_name);

TEST(FitZipfMle, MoreSamplesTightenTheEstimate) {
  const double s = 0.8;
  const auto small = fit_zipf_mle(sample_histogram(300, s, 3000, 3));
  const auto large = fit_zipf_mle(sample_histogram(300, s, 300000, 3));
  ASSERT_TRUE(small.has_value());
  ASSERT_TRUE(large.has_value());
  EXPECT_LE(std::abs(large->s - s), std::abs(small->s - s) + 0.01);
}

TEST(FitZipfMle, ExactProportionsGiveExactExponent) {
  // Feed the model's own expected counts: the MLE must return s almost
  // exactly (no sampling noise).
  const double s = 1.2;
  const std::uint64_t catalog = 200;
  const ZipfDistribution zipf(catalog, s);
  std::vector<std::uint64_t> histogram(catalog);
  for (std::uint64_t i = 0; i < catalog; ++i) {
    histogram[i] =
        static_cast<std::uint64_t>(zipf.pmf(i + 1) * 1e7 + 0.5);
  }
  const auto fit = fit_zipf_mle(histogram);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->s, s, 1e-3);
}

TEST(FitZipfMle, ClampsAtBracketEdges) {
  // Nearly all mass on rank 1 (a second rank keeps the fit well-posed):
  // steeper than any s in the bracket -> clamp high.
  std::vector<std::uint64_t> spike(100, 0);
  spike[0] = 1000;
  spike[1] = 1;
  const auto high = fit_zipf_mle(spike);
  ASSERT_TRUE(high.has_value());
  EXPECT_DOUBLE_EQ(high->s, 3.0);
  // Perfectly uniform: flatter than any s -> clamp low.
  std::vector<std::uint64_t> uniform(100, 10);
  const auto low = fit_zipf_mle(uniform);
  ASSERT_TRUE(low.has_value());
  EXPECT_DOUBLE_EQ(low->s, 0.05);
}

TEST(FitZipfMle, FailureModes) {
  EXPECT_FALSE(fit_zipf_mle(std::vector<std::uint64_t>{}).has_value());
  EXPECT_FALSE(fit_zipf_mle(std::vector<std::uint64_t>{5}).has_value());
  // One distinct rank only.
  std::vector<std::uint64_t> one(10, 0);
  one[3] = 7;
  EXPECT_FALSE(fit_zipf_mle(one).has_value());
}

TEST(FitZipfLogLog, FailureModes) {
  // Fewer than 3 distinct observed ranks.
  std::vector<std::uint64_t> two(10, 0);
  two[0] = 5;
  two[1] = 3;
  const auto fit = fit_zipf_loglog(two);
  EXPECT_FALSE(fit.has_value());
  EXPECT_EQ(fit.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(FitZipfLogLog, HeadTruncationRespected) {
  auto histogram = sample_histogram(400, 0.8, 100000, 9);
  // Corrupt the tail; a head-limited fit must not see it.
  for (std::size_t i = 100; i < histogram.size(); ++i) histogram[i] = 1000;
  const auto head_fit = fit_zipf_loglog(histogram, 50);
  ASSERT_TRUE(head_fit.has_value());
  EXPECT_NEAR(head_fit->s, 0.8, 0.15);
  const auto full_fit = fit_zipf_loglog(histogram, 0);
  ASSERT_TRUE(full_fit.has_value());
  EXPECT_GT(std::abs(full_fit->s - 0.8), std::abs(head_fit->s - 0.8));
}

}  // namespace
}  // namespace ccnopt::popularity
