#include "ccnopt/model/general.hpp"

#include <gtest/gtest.h>

#include "ccnopt/model/gains.hpp"
#include "ccnopt/model/performance.hpp"
#include "ccnopt/popularity/mandelbrot.hpp"

namespace ccnopt::model {
namespace {

SystemParams base() {
  return with_alpha(SystemParams::paper_defaults(), 1.0);
}

GeneralPerformanceModel with_zipf_cdf(const SystemParams& params) {
  const popularity::ContinuousZipf zipf(params.catalog_n, params.s);
  return GeneralPerformanceModel(
      GeneralParams::from_system(params),
      [zipf](double x) { return zipf.cdf(x); });
}

TEST(GeneralParams, FromSystemCopiesSharedFields) {
  const SystemParams p = base();
  const GeneralParams gp = GeneralParams::from_system(p);
  EXPECT_DOUBLE_EQ(gp.alpha, p.alpha);
  EXPECT_DOUBLE_EQ(gp.n, p.n);
  EXPECT_DOUBLE_EQ(gp.capacity_c, p.capacity_c);
  EXPECT_DOUBLE_EQ(gp.latency.d2, p.latency.d2);
  EXPECT_TRUE(gp.validate().is_ok());
}

TEST(GeneralParams, Validation) {
  GeneralParams gp = GeneralParams::from_system(base());
  gp.n = 1.0;
  EXPECT_FALSE(gp.validate().is_ok());
  gp = GeneralParams::from_system(base());
  gp.alpha = 2.0;
  EXPECT_FALSE(gp.validate().is_ok());
  gp = GeneralParams::from_system(base());
  gp.capacity_c = 0.0;
  EXPECT_FALSE(gp.validate().is_ok());
}

TEST(GeneralModel, ZipfCdfReproducesSpecializedModel) {
  const SystemParams p = base();
  const GeneralPerformanceModel general = with_zipf_cdf(p);
  const PerformanceModel specialized(p);
  for (double x : {0.0, 200.0, 700.0, 1000.0}) {
    EXPECT_NEAR(general.routing_performance(x),
                specialized.routing_performance(x), 1e-12);
    EXPECT_NEAR(general.objective(x), specialized.objective(x), 1e-12);
  }
}

TEST(GeneralModel, OptimizeMatchesSpecializedSolver) {
  for (double alpha : {1.0, 0.6}) {
    const SystemParams p = with_alpha(base(), alpha);
    const GeneralPerformanceModel general = with_zipf_cdf(p);
    const auto general_result = general.optimize(1024);
    const auto specialized_result = optimize(p);
    ASSERT_TRUE(general_result.has_value());
    ASSERT_TRUE(specialized_result.has_value());
    EXPECT_NEAR(general_result->objective, specialized_result->objective,
                1e-5 * (std::abs(specialized_result->objective) + 1.0))
        << "alpha=" << alpha;
    EXPECT_NEAR(general_result->ell_star, specialized_result->ell_star, 0.01);
  }
}

TEST(GeneralModel, GainsMatchSpecializedAtZipf) {
  const SystemParams p = base();
  const GeneralPerformanceModel general = with_zipf_cdf(p);
  const PerformanceModel specialized(p);
  const double x = 500.0;
  const auto g = general.gains(x);
  const GainReport reference = compute_gains(specialized, x);
  EXPECT_NEAR(g.origin_load_reduction, reference.origin_load_reduction,
              1e-12);
  EXPECT_NEAR(g.routing_improvement, reference.routing_improvement, 1e-12);
}

TEST(GeneralModel, MandelbrotPlateauErodesCoordinationValue) {
  // Flattening the head eventually destroys caching's leverage. The effect
  // is not monotone at small q (shifting mass out of the ultra-head — which
  // local stores cover either way — into the mid-range coordination serves
  // slightly *raises* G_R: measured 0.183 at q=0 vs 0.189 at q=100), but a
  // large plateau collapses it.
  const SystemParams p = base();
  auto gain_at = [&p](double q) {
    const popularity::ContinuousZipfMandelbrot zm(p.catalog_n, p.s, q);
    const GeneralPerformanceModel general(
        GeneralParams::from_system(p),
        [zm](double x) { return zm.cdf(x); });
    const auto strategy = general.optimize();
    EXPECT_TRUE(strategy.has_value());
    return general.gains(strategy->x_star).routing_improvement;
  };
  const double pure = gain_at(0.0);
  const double mild = gain_at(100.0);
  const double flat = gain_at(50000.0);
  EXPECT_GT(pure, 0.1);
  EXPECT_NEAR(mild, pure, 0.03);     // mild plateau barely moves it
  EXPECT_LT(flat, 0.5 * pure);       // heavy plateau collapses it
}

TEST(GeneralModel, UniformPopularityMakesAllStorageEqual) {
  // F(x) = x/N: every content equally popular. Coordination still helps
  // (more distinct contents covered at d1 instead of d2), so l* -> 1 at
  // alpha = 1; the gains are small because coverage n*c/N is.
  const SystemParams p = base();
  const double n_catalog = p.catalog_n;
  const GeneralPerformanceModel general(
      GeneralParams::from_system(p),
      [n_catalog](double x) {
        return std::clamp(x / n_catalog, 0.0, 1.0);
      });
  const auto strategy = general.optimize();
  ASSERT_TRUE(strategy.has_value());
  EXPECT_GT(strategy->ell_star, 0.99);
}

TEST(GeneralModelDeath, DomainChecks) {
  const GeneralPerformanceModel general = with_zipf_cdf(base());
  EXPECT_DEATH((void)general.routing_performance(-1.0), "precondition");
  EXPECT_DEATH((void)general.routing_performance(1001.0), "precondition");
}

}  // namespace
}  // namespace ccnopt::model
