#include "ccnopt/experiments/tables.hpp"

#include <gtest/gtest.h>

namespace ccnopt::experiments {
namespace {

TEST(Table3, FourRowsInTableOrder) {
  const auto rows = table3_rows();
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].name, "Abilene");
  EXPECT_EQ(rows[1].name, "CERNET");
  EXPECT_EQ(rows[2].name, "GEANT");
  EXPECT_EQ(rows[3].name, "US-A");
}

TEST(Table3, RouterCountsMatchTableII) {
  const auto rows = table3_rows();
  EXPECT_EQ(rows[0].n, 11u);
  EXPECT_EQ(rows[1].n, 36u);
  EXPECT_EQ(rows[2].n, 23u);
  EXPECT_EQ(rows[3].n, 20u);
}

TEST(Table3, ParametersPhysicallySensible) {
  for (const auto& row : table3_rows()) {
    // Max pairwise latency exceeds the mean.
    EXPECT_GT(row.unit_cost_w_ms, row.mean_latency_ms) << row.name;
    // Mean hops at least 1 (most pairs are not self) and below diameter.
    EXPECT_GT(row.mean_hops, 1.0) << row.name;
    EXPECT_LT(row.mean_hops, row.diameter_hops) << row.name;
    // Intradomain latencies: single-digit to tens of ms.
    EXPECT_GT(row.unit_cost_w_ms, 5.0) << row.name;
    EXPECT_LT(row.unit_cost_w_ms, 60.0) << row.name;
  }
}

TEST(PaperTable3, ReferenceValuesRecorded) {
  const auto paper = paper_table3();
  ASSERT_EQ(paper.size(), 4u);
  EXPECT_STREQ(paper[3].name, "US-A");
  EXPECT_DOUBLE_EQ(paper[3].w_ms, 26.7);
  EXPECT_DOUBLE_EQ(paper[3].d1_minus_d0_hops, 2.2842);
}

TEST(Table3VsPaper, SameOrderAndRegime) {
  const auto measured = table3_rows();
  const auto paper = paper_table3();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(measured[i].name, paper[i].name);
    EXPECT_EQ(static_cast<double>(measured[i].n), paper[i].n);
    EXPECT_NEAR(measured[i].mean_hops, paper[i].d1_minus_d0_hops,
                0.35 * paper[i].d1_minus_d0_hops);
  }
}

}  // namespace
}  // namespace ccnopt::experiments
