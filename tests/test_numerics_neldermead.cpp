#include "ccnopt/numerics/neldermead.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ccnopt/model/heterogeneous.hpp"

namespace ccnopt::numerics {
namespace {

TEST(NelderMead, QuadraticBowl2D) {
  const ObjectiveNd f = [](const std::vector<double>& x) {
    return (x[0] - 1.0) * (x[0] - 1.0) + 2.0 * (x[1] + 0.5) * (x[1] + 0.5);
  };
  const auto result =
      nelder_mead(f, {0.0, 0.0}, {-5.0, -5.0}, {5.0, 5.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->converged);
  EXPECT_NEAR(result->x[0], 1.0, 1e-4);
  EXPECT_NEAR(result->x[1], -0.5, 1e-4);
  EXPECT_NEAR(result->f, 0.0, 1e-8);
}

TEST(NelderMead, Rosenbrock2D) {
  const ObjectiveNd f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions options;
  options.max_evaluations = 100000;
  const auto result =
      nelder_mead(f, {-1.2, 1.0}, {-5.0, -5.0}, {5.0, 5.0}, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->x[0], 1.0, 1e-3);
  EXPECT_NEAR(result->x[1], 1.0, 1e-3);
}

TEST(NelderMead, HigherDimensionalSphere) {
  const ObjectiveNd f = [](const std::vector<double>& x) {
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      total += d * d;
    }
    return total;
  };
  const std::vector<double> start(6, 0.0);
  const std::vector<double> lower(6, -10.0);
  const std::vector<double> upper(6, 10.0);
  NelderMeadOptions options;
  options.max_evaluations = 200000;
  const auto result = nelder_mead(f, start, lower, upper, options);
  ASSERT_TRUE(result.has_value());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(result->x[i], static_cast<double>(i), 1e-2) << i;
  }
}

TEST(NelderMead, RespectsBoxConstraints) {
  // Unconstrained minimum at (-3, -3); box forces the corner (0, 0).
  const ObjectiveNd f = [](const std::vector<double>& x) {
    return (x[0] + 3.0) * (x[0] + 3.0) + (x[1] + 3.0) * (x[1] + 3.0);
  };
  const auto result = nelder_mead(f, {2.0, 2.0}, {0.0, 0.0}, {5.0, 5.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->x[0], 0.0, 1e-5);
  EXPECT_NEAR(result->x[1], 0.0, 1e-5);
}

TEST(NelderMead, StartOutsideBoxIsClamped) {
  const ObjectiveNd f = [](const std::vector<double>& x) {
    return x[0] * x[0];
  };
  const auto result = nelder_mead(f, {100.0}, {-1.0, }, {1.0});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->x[0], 0.0, 1e-5);
}

TEST(NelderMead, RejectsBadInputs) {
  const ObjectiveNd f = [](const std::vector<double>&) { return 0.0; };
  EXPECT_FALSE(nelder_mead(f, {}, {}, {}).has_value());
  EXPECT_FALSE(nelder_mead(f, {0.0}, {0.0, 1.0}, {1.0}).has_value());
  EXPECT_FALSE(nelder_mead(f, {0.0}, {1.0}, {1.0}).has_value());
}

TEST(NelderMead, EvaluationBudgetReported) {
  const ObjectiveNd f = [](const std::vector<double>& x) {
    return std::sin(x[0]) + x[0] * x[0];
  };
  NelderMeadOptions options;
  options.max_evaluations = 50;
  const auto result = nelder_mead(f, {3.0}, {-10.0}, {10.0}, options);
  ASSERT_TRUE(result.has_value());
  EXPECT_LE(result->evaluations, 60);  // a few evals past the check is fine
}

TEST(NelderMead, CrossChecksHeterogeneousCoordinateDescent) {
  // Independent oracle: Nelder-Mead over the full x vector must not find
  // a meaningfully better heterogeneous provisioning than coordinate
  // descent did.
  model::HeterogeneousParams hp = model::HeterogeneousParams::from_homogeneous(
      model::with_alpha(model::SystemParams::paper_defaults(), 1.0));
  hp.capacities.resize(6);
  for (std::size_t i = 0; i < hp.capacities.size(); ++i) {
    hp.capacities[i] = (i % 2 == 0) ? 600.0 : 1400.0;
  }
  const model::HeterogeneousModel hetero(hp);
  const auto descent = hetero.optimize_coordinate_descent();
  ASSERT_TRUE(descent.has_value());

  const ObjectiveNd objective = [&hetero](const std::vector<double>& x) {
    return hetero.objective(x);
  };
  NelderMeadOptions options;
  options.max_evaluations = 60000;
  const std::vector<double> lower(6, 0.0);
  const auto oracle = nelder_mead(objective, descent->x, lower,
                                  hp.capacities, options);
  ASSERT_TRUE(oracle.has_value());
  EXPECT_GE(oracle->f, descent->objective - 1e-4 * descent->objective);
}

}  // namespace
}  // namespace ccnopt::numerics
