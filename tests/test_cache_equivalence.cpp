// Property tests pinning the flat intrusive LRU/LFU/FIFO rewrites to the
// reference node-based implementations (cache/reference.hpp): identical
// request streams must produce identical per-request hit/miss results,
// identical stats, and identical resident sets — exact iteration order for
// LRU (MRU first) and FIFO (oldest first), set equality plus per-id
// frequency agreement for LFU (whose contents() order is unspecified on
// both sides).
#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ccnopt/cache/lfu.hpp"
#include "ccnopt/cache/policy.hpp"
#include "ccnopt/cache/reference.hpp"
#include "ccnopt/common/random.hpp"
#include "ccnopt/popularity/sampler.hpp"
#include "ccnopt/popularity/zipf.hpp"

namespace ccnopt::cache {
namespace {

std::uint64_t frequency_of(const CachePolicy& policy, ContentId id) {
  if (const auto* flat = dynamic_cast<const LfuCache*>(&policy)) {
    return flat->frequency(id);
  }
  if (const auto* ref = dynamic_cast<const ReferenceLfuCache*>(&policy)) {
    return ref->frequency(id);
  }
  return 0;
}

/// Replays `stream` through three implementations of `kind` — the flat
/// policy with its dense index, the flat policy with the sparse robin-hood
/// index forced, and the reference node-based policy — asserting lock-step
/// equivalence after every request. The index is pure bookkeeping, so both
/// flat variants must agree with the reference on every observable.
void replay(PolicyKind kind, std::size_t capacity,
            const std::vector<ContentId>& stream) {
  std::string trace = "policy=";
  trace += to_string(kind);
  trace += " capacity=";
  trace += std::to_string(capacity);
  trace += " stream_len=";
  trace += std::to_string(stream.size());
  SCOPED_TRACE(trace);
  const auto flat = make_policy(kind, capacity);
  const auto sparse =
      make_policy(kind, capacity, 1, IndexSpec{IndexMode::kSparse, 0});
  const auto reference = make_reference_policy(kind, capacity);
  ASSERT_STREQ(flat->name(), reference->name());
  ASSERT_STREQ(sparse->name(), reference->name());

  for (std::size_t i = 0; i < stream.size(); ++i) {
    const ContentId id = stream[i];
    const bool flat_hit = flat->admit(id);
    const bool sparse_hit = sparse->admit(id);
    const bool reference_hit = reference->admit(id);
    ASSERT_EQ(flat_hit, reference_hit)
        << "diverged at request " << i << " (id " << id << ")";
    ASSERT_EQ(sparse_hit, reference_hit)
        << "sparse index diverged at request " << i << " (id " << id << ")";
    ASSERT_EQ(flat->size(), reference->size()) << "after request " << i;
    ASSERT_EQ(sparse->size(), reference->size()) << "after request " << i;
    ASSERT_EQ(flat->contains(id), reference->contains(id))
        << "after request " << i;
    ASSERT_EQ(sparse->contains(id), reference->contains(id))
        << "after request " << i;
  }

  for (const CachePolicy* policy : {flat.get(), sparse.get()}) {
    EXPECT_EQ(policy->stats().hits, reference->stats().hits);
    EXPECT_EQ(policy->stats().misses, reference->stats().misses);
    EXPECT_EQ(policy->stats().insertions, reference->stats().insertions);
    EXPECT_EQ(policy->stats().evictions, reference->stats().evictions);
  }

  std::vector<ContentId> reference_contents = reference->contents();
  for (const CachePolicy* policy : {flat.get(), sparse.get()}) {
    std::vector<ContentId> contents = policy->contents();
    if (kind == PolicyKind::kLfu) {
      // LFU iteration order is unspecified; compare as sets, then require
      // per-id frequency agreement.
      std::vector<ContentId> reference_sorted = reference_contents;
      std::sort(contents.begin(), contents.end());
      std::sort(reference_sorted.begin(), reference_sorted.end());
      EXPECT_EQ(contents, reference_sorted);
      for (const ContentId id : contents) {
        EXPECT_EQ(frequency_of(*policy, id), frequency_of(*reference, id))
            << "frequency mismatch for id " << id;
      }
    } else {
      // LRU contents() is MRU-first and FIFO contents() is oldest-first on
      // both sides: exact order must match.
      EXPECT_EQ(contents, reference_contents);
    }
  }
}

constexpr PolicyKind kKinds[] = {PolicyKind::kLru, PolicyKind::kLfu,
                                 PolicyKind::kFifo};

std::vector<ContentId> zipf_stream(std::uint64_t catalog, double s,
                                   std::size_t length, std::uint64_t seed) {
  popularity::AliasSampler sampler(popularity::ZipfDistribution(catalog, s));
  Rng rng(seed);
  std::vector<ContentId> stream;
  stream.reserve(length);
  for (std::size_t i = 0; i < length; ++i) stream.push_back(sampler.sample(rng));
  return stream;
}

std::vector<ContentId> uniform_stream(std::uint64_t catalog,
                                      std::size_t length, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ContentId> stream;
  stream.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    stream.push_back(rng.uniform_int(1, catalog));
  }
  return stream;
}

TEST(CacheEquivalence, ZipfStreams) {
  for (const PolicyKind kind : kKinds) {
    for (const std::size_t capacity : {1u, 7u, 64u, 500u}) {
      replay(kind, capacity, zipf_stream(2000, 0.8, 20000, 42));
      replay(kind, capacity, zipf_stream(2000, 1.2, 20000, 43));
    }
  }
}

TEST(CacheEquivalence, UniformStreams) {
  for (const PolicyKind kind : kKinds) {
    for (const std::size_t capacity : {2u, 33u, 256u}) {
      replay(kind, capacity, uniform_stream(500, 20000, 7));
    }
  }
}

TEST(CacheEquivalence, ZeroCapacityNeverStores) {
  for (const PolicyKind kind : kKinds) {
    const auto stream = zipf_stream(100, 0.8, 2000, 11);
    replay(kind, 0, stream);
    const auto policy = make_policy(kind, 0);
    for (const ContentId id : stream) EXPECT_FALSE(policy->admit(id));
    EXPECT_EQ(policy->size(), 0u);
    EXPECT_EQ(policy->stats().insertions, 0u);
  }
}

TEST(CacheEquivalence, SequentialScanChurnsEverything) {
  // Adversarial for LRU/FIFO: a repeated scan wider than the cache evicts
  // every entry before reuse (0% hits for LRU/FIFO, not for LFU once
  // frequencies tie-break).
  std::vector<ContentId> stream;
  for (int lap = 0; lap < 50; ++lap) {
    for (ContentId id = 1; id <= 100; ++id) stream.push_back(id);
  }
  for (const PolicyKind kind : kKinds) {
    replay(kind, 64, stream);
  }
}

TEST(CacheEquivalence, CyclicWithHotSet) {
  // A hot set kept resident under LFU while a cold scan churns the rest.
  std::vector<ContentId> stream;
  Rng rng(13);
  for (int i = 0; i < 30000; ++i) {
    if (i % 3 == 0) {
      stream.push_back(rng.uniform_int(1, 8));  // hot
    } else {
      stream.push_back(100 + (static_cast<ContentId>(i) % 400));  // cold scan
    }
  }
  for (const PolicyKind kind : kKinds) {
    replay(kind, 32, stream);
  }
}

TEST(CacheEquivalence, RepeatedSingleId) {
  // Degenerate stream: one id, capacity 1 — every request after the first
  // hits; LFU frequency must track the request count exactly.
  std::vector<ContentId> stream(1000, 77);
  for (const PolicyKind kind : kKinds) {
    replay(kind, 1, stream);
  }
  LfuCache lfu(1);
  for (int i = 0; i < 1000; ++i) lfu.admit(77);
  EXPECT_EQ(lfu.frequency(77), 1000u);
}

TEST(CacheEquivalence, SparseIdsExerciseOverflowTable) {
  // Ids beyond the dense SlotMap limit land in the overflow map; behaviour
  // must stay identical to the reference policies.
  std::vector<ContentId> stream;
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const ContentId base =
        rng.bernoulli(0.5) ? 0 : (std::uint64_t{1} << 40);
    stream.push_back(base + rng.uniform_int(1, 200));
  }
  for (const PolicyKind kind : kKinds) {
    replay(kind, 48, stream);
  }
}

TEST(CacheEquivalence, ClearMidStreamStaysEquivalent) {
  // clear() between two stream halves: every implementation (dense-index
  // flat, sparse-index flat, reference) must restart from an empty store
  // while keeping its accumulated stats, and the halves must replay
  // identically afterwards.
  const auto first = zipf_stream(2000, 0.8, 10000, 51);
  const auto second = zipf_stream(2000, 1.1, 10000, 52);
  for (const PolicyKind kind : kKinds) {
    SCOPED_TRACE(to_string(kind));
    const auto flat = make_policy(kind, 64);
    const auto sparse =
        make_policy(kind, 64, 1, IndexSpec{IndexMode::kSparse, 0});
    const auto reference = make_reference_policy(kind, 64);
    for (const ContentId id : first) {
      flat->admit(id);
      sparse->admit(id);
      reference->admit(id);
    }
    const CacheStats stats_before = flat->stats();
    flat->clear();
    sparse->clear();
    reference->clear();
    ASSERT_EQ(flat->size(), 0u);
    ASSERT_EQ(sparse->size(), 0u);
    ASSERT_EQ(reference->size(), 0u);
    // Stats survive a clear (it resets contents, not accounting).
    ASSERT_EQ(flat->stats().requests(), stats_before.requests());
    for (const ContentId id : first) {
      ASSERT_FALSE(flat->contains(id));
      ASSERT_FALSE(sparse->contains(id));
    }
    for (std::size_t i = 0; i < second.size(); ++i) {
      const ContentId id = second[i];
      const bool flat_hit = flat->admit(id);
      const bool sparse_hit = sparse->admit(id);
      const bool reference_hit = reference->admit(id);
      ASSERT_EQ(flat_hit, reference_hit) << "request " << i;
      ASSERT_EQ(sparse_hit, reference_hit) << "request " << i;
    }
  }
}

TEST(CacheEquivalence, ClearThenRefillRepeatedly) {
  // Epoch-style usage (the simulator clears local partitions at
  // re-provisioning): many clear/refill cycles must never corrupt any
  // index flavour.
  for (const PolicyKind kind : kKinds) {
    SCOPED_TRACE(to_string(kind));
    const auto sparse =
        make_policy(kind, 32, 1, IndexSpec{IndexMode::kSparse, 0});
    const auto reference = make_reference_policy(kind, 32);
    Rng rng(77);
    for (int epoch = 0; epoch < 20; ++epoch) {
      for (int i = 0; i < 500; ++i) {
        const ContentId id = rng.uniform_int(1, 300);
        ASSERT_EQ(sparse->admit(id), reference->admit(id))
            << "epoch " << epoch << " request " << i;
      }
      sparse->clear();
      reference->clear();
      ASSERT_EQ(sparse->size(), 0u);
    }
  }
}

}  // namespace
}  // namespace ccnopt::cache
