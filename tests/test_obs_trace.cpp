// Determinism contract of request tracing: the sampled set is a pure
// function of the seed, and serialized traces are byte-identical whatever
// the thread count.
#include "ccnopt/obs/trace.hpp"

#include <sstream>

#include <gtest/gtest.h>

#include "ccnopt/obs/export.hpp"
#include "ccnopt/obs/registry.hpp"
#include "ccnopt/runtime/replication_runner.hpp"
#include "ccnopt/sim/simulation.hpp"
#include "ccnopt/topology/datasets.hpp"

namespace ccnopt::obs {
namespace {

TEST(TraceSampler, DisabledWhenKIsZero) {
  const TraceSampler sampler(7, 0);
  EXPECT_FALSE(sampler.enabled());
}

TEST(TraceSampler, KOfOneSamplesEveryRequest) {
  const TraceSampler sampler(7, 1);
  ASSERT_TRUE(sampler.enabled());
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(sampler.should_sample(i));
  }
}

TEST(TraceSampler, DecisionIsPureInSeedAndIndex) {
  const TraceSampler a(123, 10);
  const TraceSampler b(123, 10);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.should_sample(i), b.should_sample(i)) << "request " << i;
  }
}

TEST(TraceSampler, SamplesRoughlyOneInK) {
  const TraceSampler sampler(99, 10);
  int sampled = 0;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    if (sampler.should_sample(i)) ++sampled;
  }
  EXPECT_GT(sampled, 8000);
  EXPECT_LT(sampled, 12000);
}

TEST(TraceSampler, DifferentSeedsSampleDifferentSets) {
  const TraceSampler a(1, 10);
  const TraceSampler b(2, 10);
  int differs = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    if (a.should_sample(i) != b.should_sample(i)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(TraceWriters, CsvHasFixedHeaderAndOneLinePerEvent) {
  TraceBuffer traces;
  TraceEvent event;
  event.replication = 1;
  event.request_index = 42;
  event.router = 3;
  event.content = 17;
  event.tier = "local";
  event.hops = 0;
  event.served_by = 3;
  event.path = {3};
  event.placement_depth = -1;
  event.latency_ms = 1.25;
  traces.push_back(event);
  TraceEvent hop = event;
  hop.tier = "network";
  hop.hops = 2;
  hop.served_by = 9;
  hop.path = {3, 5, 9};
  hop.placement_depth = 1;
  traces.push_back(hop);
  std::ostringstream out;
  write_traces_csv(out, traces);
  EXPECT_EQ(out.str(),
            "replication,request,router,content,tier,hops,served_by,path,"
            "placement_depth,latency_ms\n"
            "1,42,3,17,local,0,3,3,-1,1.25\n"
            "1,42,3,17,network,2,9,3|5|9,1,1.25\n");
}

TEST(TraceWriters, JsonCarriesSchemaEventsAndHopPaths) {
  TraceBuffer traces;
  TraceEvent event;
  event.tier = "origin";
  event.path = {0, 4, 7};
  event.placement_depth = 2;
  traces.push_back(event);
  std::ostringstream out;
  write_traces_json(out, traces);
  EXPECT_NE(out.str().find("\"schema\": \"ccnopt-trace-v2\""),
            std::string::npos);
  EXPECT_NE(out.str().find("\"tier\": \"origin\""), std::string::npos);
  EXPECT_NE(out.str().find("\"path\": [0, 4, 7]"), std::string::npos);
  EXPECT_NE(out.str().find("\"placement_depth\": 2"), std::string::npos);
}

sim::SimConfig traced_config() {
  sim::SimConfig config;
  config.network.catalog_size = 2000;
  config.network.capacity_c = 50;
  config.coordinated_x = 20;
  config.measured_requests = 3000;
  config.seed = 99;
  config.trace_sample_k = 25;
  return config;
}

TEST(SimulationTrace, SampledEventsAreWellFormed) {
  const topology::Graph graph = topology::abilene();
  sim::Simulation simulation(graph, traced_config());
  simulation.run();
  const TraceBuffer& traces = simulation.traces();
  ASSERT_FALSE(traces.empty());
  for (const TraceEvent& event : traces) {
    EXPECT_EQ(event.replication, 0u);
    EXPECT_LT(event.router, graph.node_count());
    EXPECT_TRUE(event.tier == "local" || event.tier == "network" ||
                event.tier == "origin")
        << event.tier;
    EXPECT_GT(event.latency_ms, 0.0);
    // Every event carries its delivery path, requester first; the nearest
    // new copy (when one was placed) lies on that path.
    ASSERT_FALSE(event.path.empty());
    EXPECT_EQ(event.path.front(), event.router);
    for (const std::uint32_t node : event.path) {
      EXPECT_LT(node, graph.node_count());
    }
    // The path always ends at the serving router (for origin-tier
    // requests whose first hop is the origin gateway itself, that is a
    // one-node path).
    EXPECT_EQ(event.path.back(), event.served_by);
    if (event.tier == "local") {
      EXPECT_EQ(event.path.size(), 1u);
    } else if (event.tier == "network") {
      EXPECT_GT(event.path.size(), 1u);
    }
    EXPECT_GE(event.placement_depth, -1);
    EXPECT_LT(event.placement_depth,
              static_cast<std::int32_t>(event.path.size()));
  }
}

TEST(SimulationTrace, DisabledByDefault) {
  sim::SimConfig config = traced_config();
  config.trace_sample_k = 0;
  sim::Simulation simulation(topology::abilene(), config);
  simulation.run();
  EXPECT_TRUE(simulation.traces().empty());
}

std::string run_replicated_csv(std::size_t threads) {
  runtime::ThreadPool pool(threads);
  const runtime::ReplicationSummary summary =
      runtime::ReplicationRunner(pool).run(topology::abilene(),
                                           traced_config(), 6);
  std::ostringstream out;
  write_traces_csv(out, summary.traces);
  return out.str();
}

TEST(ReplicationTrace, ByteIdenticalAcrossThreadCounts) {
  const std::string one = run_replicated_csv(1);
  const std::string eight = run_replicated_csv(8);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
}

std::string run_replicated_metrics_json(std::size_t threads) {
  metrics().reset();
  runtime::ThreadPool pool(threads);
  const runtime::ReplicationSummary summary =
      runtime::ReplicationRunner(pool).run(topology::abilene(),
                                           traced_config(), 6);
  (void)summary;
  std::ostringstream out;
  write_registry_json(out, metrics().snapshot(), 0);
  return out.str();
}

TEST(ReplicationTrace, MetricsRegistryByteIdenticalAcrossThreadCounts) {
  const std::string one = run_replicated_metrics_json(1);
  const std::string eight = run_replicated_metrics_json(8);
  EXPECT_NE(one.find("sim.requests.measured"), std::string::npos);
  EXPECT_NE(one.find("sim.latency_ms"), std::string::npos);
  EXPECT_EQ(one, eight);
}

}  // namespace
}  // namespace ccnopt::obs
