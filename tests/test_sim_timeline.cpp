// Tests of the time-resolved telemetry contract: timelines are
// byte-identical for any thread count, per-epoch deltas sum to the
// whole-run report/counters, and the batched engine's epoch boundaries
// match the pure event loop exactly.
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ccnopt/obs/timeline.hpp"
#include "ccnopt/runtime/replication_runner.hpp"
#include "ccnopt/runtime/thread_pool.hpp"
#include "ccnopt/sim/simulation.hpp"
#include "ccnopt/sim/steady_state.hpp"
#include "ccnopt/topology/datasets.hpp"

namespace ccnopt {
namespace {

sim::SimConfig small_config() {
  sim::SimConfig config;
  config.network.catalog_size = 2000;
  config.network.capacity_c = 60;
  config.network.local_mode = sim::LocalStoreMode::kLru;
  config.coordinated_x = 30;
  config.zipf_s = 0.8;
  config.warmup_requests = 0;
  config.measured_requests = 6000;
  config.seed = 1234;
  config.timeline_epoch = 500;
  return config;
}

std::string timeline_bytes(const obs::Timeline& timeline) {
  std::ostringstream out;
  obs::write_timeline_json(out, timeline);
  return out.str();
}

double column_sum(const obs::Timeline& timeline, const char* name) {
  const std::size_t column = timeline.column_index(name);
  EXPECT_NE(column, obs::Timeline::npos) << name;
  return timeline.column_sum(column);
}

TEST(SimTimeline, ByteIdenticalAcrossThreadCountsOnAllDatasets) {
  // The determinism contract on every Table II topology: the merged
  // replication timeline from 1 worker and from 8 workers must serialize
  // to the same bytes.
  for (const topology::Graph& graph : topology::all_datasets()) {
    sim::SimConfig config = small_config();
    std::string serial_bytes, parallel_bytes;
    {
      runtime::ThreadPool pool(1);
      const runtime::ReplicationRunner runner(pool);
      serial_bytes = timeline_bytes(runner.run(graph, config, 3).timeline);
    }
    {
      runtime::ThreadPool pool(8);
      const runtime::ReplicationRunner runner(pool);
      parallel_bytes = timeline_bytes(runner.run(graph, config, 3).timeline);
    }
    EXPECT_FALSE(serial_bytes.empty());
    EXPECT_EQ(serial_bytes, parallel_bytes) << graph.name();
  }
}

TEST(SimTimeline, EpochDeltasSumToWholeRunReport) {
  const sim::SimConfig config = small_config();
  sim::Simulation simulation(topology::abilene(), config);
  const sim::SimReport report = simulation.run();
  const obs::Timeline& timeline = simulation.timeline();
  ASSERT_TRUE(timeline.enabled());
  ASSERT_EQ(timeline.epochs().size(), 12u);  // 6000 / 500

  const double requests = column_sum(timeline, "requests");
  EXPECT_EQ(static_cast<std::uint64_t>(requests), report.total_requests);
  EXPECT_NEAR(column_sum(timeline, "local") / requests,
              report.local_fraction, 1e-12);
  EXPECT_NEAR(column_sum(timeline, "network") / requests,
              report.network_fraction, 1e-12);
  EXPECT_NEAR(column_sum(timeline, "origin") / requests, report.origin_load,
              1e-12);
  EXPECT_NEAR(column_sum(timeline, "latency_ms_sum") / requests,
              report.mean_latency_ms, 1e-9);
  EXPECT_NEAR(column_sum(timeline, "hops_sum") / requests, report.mean_hops,
              1e-9);
  EXPECT_EQ(static_cast<std::uint64_t>(column_sum(timeline, "aggregated")),
            report.aggregated_requests);
}

TEST(SimTimeline, EvictionAndOccupancyColumnsMatchEndOfRunCounters) {
  const sim::SimConfig config = small_config();
  sim::Simulation simulation(topology::abilene(), config);
  simulation.run();
  const obs::Timeline& timeline = simulation.timeline();
  const sim::CcnNetwork::CacheTotals totals =
      simulation.network().cache_totals();

  EXPECT_EQ(static_cast<std::uint64_t>(column_sum(timeline, "evictions")),
            totals.evictions);
  EXPECT_EQ(static_cast<std::uint64_t>(column_sum(timeline, "insertions")),
            totals.insertions);
  // occupancy is an end-of-epoch gauge, not a delta: the last row holds the
  // final network-wide occupancy.
  const std::size_t occupancy = timeline.column_index("occupancy");
  ASSERT_NE(occupancy, obs::Timeline::npos);
  const std::vector<double> series = timeline.series(occupancy);
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(static_cast<std::uint64_t>(series.back()), totals.occupancy);
  EXPECT_LE(totals.occupancy, totals.capacity);
}

TEST(SimTimeline, LinkColumnsMatchNetworkCountersWhenTracked) {
  sim::SimConfig config = small_config();
  config.network.track_link_load = true;
  sim::Simulation simulation(topology::abilene(), config);
  simulation.run();
  const obs::Timeline& timeline = simulation.timeline();
  const sim::CcnNetwork& network = simulation.network();

  EXPECT_EQ(
      static_cast<std::uint64_t>(column_sum(timeline, "link_traversals")),
      network.total_link_traversals());
  const std::size_t column = timeline.column_index("max_link_load");
  ASSERT_NE(column, obs::Timeline::npos);
  EXPECT_EQ(static_cast<std::uint64_t>(timeline.series(column).back()),
            network.max_link_load());
}

TEST(SimTimeline, LinkColumnsAreZeroWhenTrackingIsOff) {
  const sim::SimConfig config = small_config();
  sim::Simulation simulation(topology::abilene(), config);
  simulation.run();
  EXPECT_EQ(column_sum(simulation.timeline(), "link_traversals"), 0.0);
  EXPECT_EQ(column_sum(simulation.timeline(), "max_link_load"), 0.0);
}

TEST(SimTimeline, BatchedEngineMatchesEventLoopAtUnalignedEpochs) {
  // Epoch size 333 never divides the 256-request block, so the batched
  // engine must truncate blocks at epoch boundaries to snapshot the same
  // network state the event loop sees.
  sim::SimConfig batched = small_config();
  batched.timeline_epoch = 333;
  batched.batch_size = 256;
  sim::SimConfig event = batched;
  event.batch_size = 0;

  sim::Simulation batched_sim(topology::geant(), batched);
  batched_sim.run();
  sim::Simulation event_sim(topology::geant(), event);
  event_sim.run();
  EXPECT_EQ(timeline_bytes(batched_sim.timeline()),
            timeline_bytes(event_sim.timeline()));
}

TEST(SimTimeline, AggregatedColumnAccountsForInterestJoiners) {
  sim::SimConfig config = small_config();
  config.interest_aggregation = true;
  sim::Simulation simulation(topology::abilene(), config);
  const sim::SimReport report = simulation.run();
  const obs::Timeline& timeline = simulation.timeline();

  // Per epoch: every emitted request is either served at a tier or joined
  // an in-flight fetch.
  const std::size_t requests = timeline.column_index("requests");
  const std::size_t local = timeline.column_index("local");
  const std::size_t network = timeline.column_index("network");
  const std::size_t origin = timeline.column_index("origin");
  const std::size_t aggregated = timeline.column_index("aggregated");
  for (const obs::TimelineEpoch& row : timeline.epochs()) {
    EXPECT_DOUBLE_EQ(row.values[requests],
                     row.values[local] + row.values[network] +
                         row.values[origin] + row.values[aggregated]);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(column_sum(timeline, "aggregated")),
            report.aggregated_requests);
}

TEST(SimTimeline, WarmupRequestsAppearInTheTimeline) {
  // The timeline covers warmup + measured (convergence must be visible),
  // while the report covers only the measured phase.
  sim::SimConfig config = small_config();
  config.warmup_requests = 1000;
  config.measured_requests = 5000;
  sim::Simulation simulation(topology::abilene(), config);
  const sim::SimReport report = simulation.run();
  const obs::Timeline& timeline = simulation.timeline();
  EXPECT_EQ(report.total_requests, 5000u);
  EXPECT_EQ(static_cast<std::uint64_t>(column_sum(timeline, "requests")),
            6000u);
}

TEST(SimTimeline, ReportFromTimelineReconstructsTheFullReport) {
  sim::SimConfig config = small_config();
  sim::Simulation simulation(topology::us_a(), config);
  const sim::SimReport report = simulation.run();
  const sim::SimReport rebuilt = sim::report_from_timeline(
      simulation.timeline(), 0, report.coordination_messages);

  EXPECT_EQ(rebuilt.total_requests, report.total_requests);
  EXPECT_EQ(rebuilt.aggregated_requests, report.aggregated_requests);
  EXPECT_EQ(rebuilt.upstream_fetches, report.upstream_fetches);
  EXPECT_NEAR(rebuilt.local_fraction, report.local_fraction, 1e-12);
  EXPECT_NEAR(rebuilt.network_fraction, report.network_fraction, 1e-12);
  EXPECT_NEAR(rebuilt.origin_load, report.origin_load, 1e-12);
  EXPECT_NEAR(rebuilt.mean_latency_ms, report.mean_latency_ms, 1e-9);
  EXPECT_NEAR(rebuilt.mean_hops, report.mean_hops, 1e-9);
  EXPECT_NEAR(rebuilt.mean_local_latency_ms, report.mean_local_latency_ms,
              1e-9);
  EXPECT_NEAR(rebuilt.mean_network_latency_ms,
              report.mean_network_latency_ms, 1e-9);
  EXPECT_NEAR(rebuilt.mean_origin_latency_ms, report.mean_origin_latency_ms,
              1e-9);
  EXPECT_EQ(rebuilt.coordination_messages, report.coordination_messages);
}

TEST(SimTimeline, RunToSteadyStateSplitsTheBudgetConsistently) {
  sim::SimConfig config = small_config();
  config.warmup_requests = 2000;  // folded into the measured budget
  config.measured_requests = 4000;
  config.timeline_epoch = 0;  // defaulted to total/64 inside
  const sim::SteadyStateRun run =
      sim::run_to_steady_state(topology::abilene(), config);

  EXPECT_EQ(run.full_report.total_requests, 6000u);
  EXPECT_EQ(run.report.total_requests + run.steady_state_requests, 6000u);
  ASSERT_TRUE(run.timeline.enabled());
  EXPECT_EQ(run.timeline.epoch_requests(), 6000u / 64u);
  if (run.steady.converged) {
    EXPECT_EQ(run.measured_from_epoch, run.steady.epoch);
  } else {
    EXPECT_EQ(run.measured_from_epoch, run.timeline.epochs().size() / 2);
  }
  // Deterministic: the same config reproduces the identical run.
  const sim::SteadyStateRun again =
      sim::run_to_steady_state(topology::abilene(), config);
  EXPECT_EQ(timeline_bytes(run.timeline), timeline_bytes(again.timeline));
  EXPECT_EQ(again.steady_state_requests, run.steady_state_requests);
}

TEST(SimTimeline, DisabledByDefault) {
  sim::SimConfig config = small_config();
  config.timeline_epoch = 0;
  sim::Simulation simulation(topology::abilene(), config);
  simulation.run();
  EXPECT_FALSE(simulation.timeline().enabled());
  EXPECT_TRUE(simulation.timeline().empty());
}

}  // namespace
}  // namespace ccnopt
