#include "ccnopt/cache/partitioned.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ccnopt/cache/lru.hpp"
#include "ccnopt/cache/static_cache.hpp"

namespace ccnopt::cache {
namespace {

std::unique_ptr<PartitionedStore> make_store(std::size_t total,
                                             std::size_t coordinated,
                                             std::vector<ContentId> assigned) {
  return std::make_unique<PartitionedStore>(
      total, coordinated, std::make_unique<LruCache>(total - coordinated),
      std::move(assigned));
}

TEST(Partitioned, LookupConsultsBothPartitions) {
  auto store = make_store(4, 2, {100, 101});
  EXPECT_TRUE(store->admit(100));  // coordinated hit
  EXPECT_FALSE(store->admit(7));   // miss -> admitted to local LRU
  EXPECT_TRUE(store->admit(7));    // local hit
  EXPECT_TRUE(store->contains(101));
  EXPECT_TRUE(store->contains(7));
}

TEST(Partitioned, CoordinatedHitsDoNotTouchLocal) {
  auto store = make_store(3, 1, {42});
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(store->admit(42));
  EXPECT_EQ(store->local().size(), 0u);
}

TEST(Partitioned, MissesOnlyAdmitIntoLocal) {
  auto store = make_store(3, 1, {42});
  store->admit(1);
  store->admit(2);
  store->admit(3);  // local capacity 2 -> evicts 1
  EXPECT_FALSE(store->contains(1));
  EXPECT_TRUE(store->contains(2));
  EXPECT_TRUE(store->contains(3));
  EXPECT_TRUE(store->coordinated_contains(42));
  EXPECT_LE(store->size(), store->capacity());
}

TEST(Partitioned, AssignCoordinatedReplacesEpoch) {
  auto store = make_store(4, 2, {10, 11});
  store->assign_coordinated({20});
  EXPECT_FALSE(store->coordinated_contains(10));
  EXPECT_TRUE(store->coordinated_contains(20));
  EXPECT_EQ(store->coordinated_contents(), (std::vector<ContentId>{20}));
}

TEST(Partitioned, ContentsUnionOfPartitions) {
  auto store = make_store(4, 2, {100, 101});
  store->admit(1);
  auto contents = store->contents();
  std::sort(contents.begin(), contents.end());
  EXPECT_EQ(contents, (std::vector<ContentId>{1, 100, 101}));
}

TEST(Partitioned, FullyCoordinated) {
  auto store = make_store(2, 2, {5, 6});
  EXPECT_FALSE(store->admit(9));  // nothing can be admitted locally
  EXPECT_FALSE(store->contains(9));
  EXPECT_EQ(store->size(), 2u);
}

TEST(Partitioned, FullyLocal) {
  auto store = make_store(2, 0, {});
  EXPECT_EQ(store->coordinated_capacity(), 0u);
  store->admit(1);
  EXPECT_TRUE(store->contains(1));
}

TEST(Partitioned, StatsAggregateAtStoreLevel) {
  auto store = make_store(3, 1, {42});
  store->admit(42);  // hit
  store->admit(1);   // miss
  store->admit(1);   // hit (local)
  EXPECT_EQ(store->stats().hits, 2u);
  EXPECT_EQ(store->stats().misses, 1u);
}

TEST(PartitionedDeath, LocalCapacityMustMatchSplit) {
  EXPECT_DEATH(PartitionedStore(4, 2, std::make_unique<LruCache>(3), {}),
               "precondition");
}

TEST(PartitionedDeath, AssignmentOverflow) {
  auto store = make_store(3, 1, {});
  EXPECT_DEATH(store->assign_coordinated({1, 2}), "precondition");
}

TEST(PartitionedDeath, CoordinatedExceedsTotal) {
  EXPECT_DEATH(PartitionedStore(2, 3, std::make_unique<LruCache>(0), {}),
               "precondition");
}

}  // namespace
}  // namespace ccnopt::cache
