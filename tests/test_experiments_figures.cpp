#include "ccnopt/experiments/figures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "ccnopt/experiments/report.hpp"

namespace ccnopt::experiments {
namespace {

model::SystemParams base() { return model::SystemParams::paper_defaults(); }

TEST(Grids, TableIVRangesRespected) {
  const auto alphas = alpha_grid();
  EXPECT_GT(alphas.front(), 0.0);
  EXPECT_DOUBLE_EQ(alphas.back(), 1.0);

  const auto zipfs = zipf_grid();
  for (double s : zipfs) {
    EXPECT_GE(s, 0.1);
    EXPECT_LE(s, 1.9);
    EXPECT_GT(std::abs(s - 1.0), 0.01);  // singular point excluded
  }

  const auto ns = router_grid();
  EXPECT_DOUBLE_EQ(ns.front(), 10.0);
  EXPECT_DOUBLE_EQ(ns.back(), 500.0);

  const auto ws = unit_cost_grid();
  EXPECT_DOUBLE_EQ(ws.front(), 10.0);
  EXPECT_DOUBLE_EQ(ws.back(), 100.0);

  EXPECT_EQ(gamma_series_values(), (std::vector<double>{2, 4, 6, 8, 10}));
  EXPECT_EQ(alpha_series_values().size(), 5u);
}

TEST(SweepVsAlpha, FiveGammaSeriesCoveringTheGrid) {
  const FigureData data = sweep_vs_alpha(base());
  ASSERT_EQ(data.series.size(), 5u);
  EXPECT_EQ(data.series[0].label, "gamma=2");
  EXPECT_EQ(data.series[4].label, "gamma=10");
  for (const Series& series : data.series) {
    EXPECT_EQ(series.points.size(), alpha_grid().size());
  }
}

TEST(SweepVsZipf, SeriesSkipOnlyTheSingularPoint) {
  const FigureData data = sweep_vs_zipf(base());
  ASSERT_EQ(data.series.size(), 5u);
  for (const Series& series : data.series) {
    EXPECT_EQ(series.points.size(), zipf_grid().size());
  }
}

TEST(MetricAccessors, ExtractTheRightField) {
  model::SweepPoint point;
  point.ell_star = 0.1;
  point.origin_load_reduction = 0.2;
  point.routing_improvement = 0.3;
  EXPECT_DOUBLE_EQ(metric_value(point, Metric::kEllStar), 0.1);
  EXPECT_DOUBLE_EQ(metric_value(point, Metric::kOriginGain), 0.2);
  EXPECT_DOUBLE_EQ(metric_value(point, Metric::kRoutingGain), 0.3);
  EXPECT_STREQ(to_string(Metric::kEllStar), "ell_star");
}

TEST(PrintSeriesTable, RendersHeaderAndRows) {
  const FigureData data = sweep_vs_alpha(base());
  std::ostringstream out;
  print_series_table(data, Metric::kEllStar, out, 10);
  const std::string text = out.str();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("gamma=6"), std::string::npos);
  EXPECT_NE(text.find("ell_star"), std::string::npos);
}

TEST(WriteSeriesCsv, OneRowPerPointPlusHeader) {
  const FigureData data = sweep_vs_alpha(base());
  std::ostringstream out;
  write_series_csv(data, out);
  const std::string text = out.str();
  std::size_t lines = 0;
  for (char c : text) lines += (c == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 1 + 5 * alpha_grid().size());
  EXPECT_NE(text.find("ell_star"), std::string::npos);
}

TEST(SweepVsRouters, SharedGridAcrossSeries) {
  const FigureData data = sweep_vs_routers(base());
  ASSERT_EQ(data.series.size(), 5u);
  for (const Series& series : data.series) {
    EXPECT_EQ(series.points.front().parameter, 10.0);
    EXPECT_EQ(series.points.back().parameter, 500.0);
  }
}

TEST(SweepVsUnitCost, AllValuesProduceResults) {
  const FigureData data = sweep_vs_unit_cost(base());
  for (const Series& series : data.series) {
    EXPECT_EQ(series.points.size(), unit_cost_grid().size());
  }
}

}  // namespace
}  // namespace ccnopt::experiments
